/**
 * @file
 * Deterministic random-number generation for all stochastic models.
 *
 * Every model that needs randomness owns (or is handed) an Rng seeded
 * explicitly by the experiment, so whole-system runs are reproducible.
 * Beyond the standard distributions, this provides the two distributions
 * the paper's measurements exhibit: Rayleigh (pulse-width spread,
 * Fig. 6) and a positively skewed sleep-overshoot ("usleep may be
 * lengthened slightly", §IV-A).
 */

#ifndef EMSC_SUPPORT_RNG_HPP
#define EMSC_SUPPORT_RNG_HPP

#include <cstdint>
#include <random>

namespace emsc {

/**
 * Seeded pseudo-random source wrapping std::mt19937_64 with the handful
 * of draw helpers the simulation models need.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine);
    }

    /** Standard normal scaled to the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Exponential with the given mean (not rate). */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine);
    }

    /**
     * Rayleigh-distributed draw with scale parameter sigma
     * (mode = sigma, mean = sigma * sqrt(pi/2)).
     */
    double rayleigh(double sigma);

    /**
     * Positively skewed timer-overshoot draw: a small Gaussian core plus
     * an exponential right tail. Models how usleep()/timer wakeups are
     * "lengthened slightly due to other system activity" but essentially
     * never wake early.
     *
     * @param core_sigma  standard deviation of the symmetric component
     * @param tail_mean   mean of the additive exponential tail
     * @return a non-negative overshoot amount
     */
    double skewedOvershoot(double core_sigma, double tail_mean);

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fork a child generator with an independent but derived stream. */
    Rng fork();

    /** Access the raw engine (for std::shuffle and friends). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace emsc

#endif // EMSC_SUPPORT_RNG_HPP
