/**
 * @file
 * Fixed-size worker pool and deterministic parallel-for.
 *
 * The experiment drivers run hundreds of independent Monte-Carlo
 * trials, and the STFT/carrier-search hot paths process thousands of
 * independent frames. Both decompose into "run body(i) for i in
 * [0, n)" with each index writing only its own output slot, so results
 * are bit-identical regardless of scheduling. parallelFor() is that
 * primitive: it fans indices out over a shared worker pool, and when
 * the configured thread count is 1 (EMSC_THREADS=1) it degenerates to
 * the plain serial loop — same iteration order, no threads touched.
 *
 * Determinism contract: parallelFor itself never reorders *writes*
 * (each index owns its slot) and never introduces randomness. For
 * stochastic trials, deriveSeed() maps (master seed, trial index) to a
 * statistically independent per-trial seed, so a trial's RNG stream
 * depends only on its index — not on which thread ran it or when.
 */

#ifndef EMSC_SUPPORT_THREAD_POOL_HPP
#define EMSC_SUPPORT_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emsc {

/**
 * Fixed-size pool of worker threads consuming a shared task queue.
 *
 * Most callers want parallelFor() instead; the pool is exposed for
 * tests and for callers that need raw task submission.
 */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (0 is allowed: submit() then fatals). */
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads currently running. */
    std::size_t workerCount() const;

    /** Grow the pool to at least `workers` threads (never shrinks). */
    void ensureWorkers(std::size_t workers);

    /** Enqueue a task for any idle worker. */
    void submit(std::function<void()> task);

  private:
    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::vector<std::thread> threads;
    std::vector<std::function<void()>> tasks;
    bool stopping = false;
};

/**
 * The shared pool backing parallelFor(), exposed for subsystems that
 * need long-lived tasks (e.g. streaming stage loops) on the same
 * workers. Created on first use and intentionally never destroyed, so
 * submitted tasks may outlive static teardown. Callers must
 * ensureWorkers() enough threads for their own concurrent long-running
 * tasks plus one, or parallelFor() fan-out from inside those tasks
 * could starve.
 */
ThreadPool &globalThreadPool();

/**
 * Number of threads parallelFor() uses: the EMSC_THREADS environment
 * variable when set to a positive integer, otherwise
 * std::thread::hardware_concurrency(). Always >= 1. The environment is
 * read once, on first use; setParallelThreads() overrides it.
 */
std::size_t parallelThreads();

/**
 * Override the parallelFor() thread count at runtime (tests, benches).
 * Pass 0 to drop the override and return to the environment/hardware
 * default.
 */
void setParallelThreads(std::size_t threads);

/** RAII thread-count override: restores the previous value on exit. */
class ScopedThreadCount
{
  public:
    explicit ScopedThreadCount(std::size_t threads);
    ~ScopedThreadCount();

    ScopedThreadCount(const ScopedThreadCount &) = delete;
    ScopedThreadCount &operator=(const ScopedThreadCount &) = delete;

  private:
    std::size_t previous;
};

/**
 * Run body(i) for every i in [0, n), spread across parallelThreads()
 * threads. Blocks until every index has completed.
 *
 * - Each index must write only state owned by that index; under that
 *   contract the result is bit-identical for any thread count.
 * - With 1 configured thread (or n <= 1) the loop runs inline in
 *   ascending order, exactly like the serial code it replaces.
 * - Nested calls (a body that itself calls parallelFor) run inline in
 *   the calling worker rather than deadlocking the pool.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body);

/** @return true when the calling thread is a pool worker. */
bool insideParallelWorker();

/**
 * Deterministic per-trial seed derivation (SplitMix64 over the master
 * seed and stream index). Distinct indices give statistically
 * independent streams; the map depends only on (master, index), never
 * on thread scheduling.
 */
std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t index);

} // namespace emsc

#endif // EMSC_SUPPORT_THREAD_POOL_HPP
