#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace emsc {

void
RunningStats::add(double x)
{
    ++n;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0.0)
{
    if (bins == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "Histogram requires at least one bin");
    if (!std::isfinite(lo) || !std::isfinite(hi))
        raiseError(ErrorKind::InvalidConfig,
                   "Histogram range must be finite (lo=%g hi=%g)", lo,
                   hi);
    if (!(hi > lo))
        raiseError(ErrorKind::InvalidConfig,
                   "Histogram range must be non-empty (lo=%g hi=%g)",
                   lo, hi);
    width = (hi - lo) / static_cast<double>(bins);
}

Histogram
Histogram::fromSamples(const std::vector<double> &samples, std::size_t bins)
{
    double lo = 0.0;
    double hi = 0.0;
    bool any = false;
    for (double x : samples) {
        if (std::isnan(x))
            continue;
        if (!any) {
            lo = hi = x;
            any = true;
        } else {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
    }
    if (!any)
        raiseError(ErrorKind::InsufficientData,
                   "Histogram::fromSamples requires a non-empty "
                   "(non-NaN) sample set");
    if (hi <= lo)
        hi = lo + 1e-12; // degenerate constant input
    Histogram h(lo, hi, bins);
    for (double x : samples)
        h.add(x);
    return h;
}

void
Histogram::add(double x)
{
    // A NaN bin index would be UB to cast; NaN carries no bin
    // information, so such samples are counted apart from the bins.
    if (std::isnan(x)) {
        ++nan_;
        return;
    }
    double bin = (x - lo) / width;
    std::ptrdiff_t last = static_cast<std::ptrdiff_t>(counts.size()) - 1;
    // Clamp in floating point first: a huge sample (or +-inf) can
    // exceed the ptrdiff_t range, which is UB to cast directly.
    std::ptrdiff_t idx;
    if (bin <= 0.0)
        idx = 0;
    else if (bin >= static_cast<double>(last))
        idx = last;
    else
        idx = static_cast<std::ptrdiff_t>(bin);
    counts[static_cast<std::size_t>(idx)] += 1.0;
    total_ += 1.0;
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo + (static_cast<double>(i) + 0.5) * width;
}

std::vector<double>
Histogram::density() const
{
    std::vector<double> d(counts.size(), 0.0);
    if (total_ <= 0.0)
        return d;
    double norm = 1.0 / (total_ * width);
    for (std::size_t i = 0; i < counts.size(); ++i)
        d[i] = counts[i] * norm;
    return d;
}

std::vector<double>
Histogram::smoothedCounts(std::size_t radius) const
{
    std::vector<double> out(counts.size(), 0.0);
    auto n = static_cast<std::ptrdiff_t>(counts.size());
    for (std::ptrdiff_t i = 0; i < n; ++i) {
        double acc = 0.0;
        int used = 0;
        for (std::ptrdiff_t j = i - static_cast<std::ptrdiff_t>(radius);
             j <= i + static_cast<std::ptrdiff_t>(radius); ++j) {
            if (j < 0 || j >= n)
                continue;
            acc += counts[static_cast<std::size_t>(j)];
            ++used;
        }
        out[static_cast<std::size_t>(i)] = used ? acc / used : 0.0;
    }
    return out;
}

std::vector<std::size_t>
Histogram::findPeaks(std::size_t radius, std::size_t min_separation) const
{
    std::vector<double> s = smoothedCounts(radius);
    auto n = static_cast<std::ptrdiff_t>(s.size());

    // Collect strict-or-plateau local maxima.
    std::vector<std::size_t> candidates;
    for (std::ptrdiff_t i = 0; i < n; ++i) {
        double left = i > 0 ? s[static_cast<std::size_t>(i - 1)] : -1.0;
        double right = i + 1 < n ? s[static_cast<std::size_t>(i + 1)] : -1.0;
        double v = s[static_cast<std::size_t>(i)];
        if (v > 0.0 && v >= left && v > right)
            candidates.push_back(static_cast<std::size_t>(i));
    }

    // Strongest-first greedy selection with a separation constraint.
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) { return s[a] > s[b]; });
    std::vector<std::size_t> picked;
    for (std::size_t c : candidates) {
        bool ok = true;
        for (std::size_t p : picked) {
            std::size_t d = c > p ? c - p : p - c;
            if (d < min_separation) {
                ok = false;
                break;
            }
        }
        if (ok)
            picked.push_back(c);
    }
    return picked;
}

double
quantile(std::vector<double> samples, double q)
{
    // NaN samples have no order; sorting them in leaves the order
    // statistics unspecified, so they are dropped up front.
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [](double x) { return std::isnan(x); }),
                  samples.end());
    if (samples.empty())
        raiseError(ErrorKind::InsufficientData,
                   "quantile of an empty (or all-NaN) sample set");
    q = std::clamp(q, 0.0, 1.0);
    std::sort(samples.begin(), samples.end());
    double pos = q * static_cast<double>(samples.size() - 1);
    auto i = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(i);
    if (i + 1 >= samples.size())
        return samples.back();
    return samples[i] * (1.0 - frac) + samples[i + 1] * frac;
}

double
median(std::vector<double> samples)
{
    return quantile(std::move(samples), 0.5);
}

double
fitRayleighSigma(const std::vector<double> &samples)
{
    if (samples.empty())
        raiseError(ErrorKind::InsufficientData,
                   "fitRayleighSigma of an empty sample set");
    double acc = 0.0;
    for (double x : samples)
        acc += x * x;
    return std::sqrt(acc / (2.0 * static_cast<double>(samples.size())));
}

double
rayleighGoodness(const std::vector<double> &samples, double sigma)
{
    if (samples.empty() || sigma <= 0.0)
        raiseError(ErrorKind::InsufficientData,
                   "rayleighGoodness requires samples and a positive "
                   "sigma");
    std::vector<double> xs(samples);
    std::sort(xs.begin(), xs.end());
    auto n = static_cast<double>(xs.size());
    // Cramer-von-Mises statistic against F(x) = 1 - exp(-x^2/(2 sigma^2)).
    double w = 1.0 / (12.0 * n);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double z = xs[i] / sigma;
        double f = 1.0 - std::exp(-0.5 * z * z);
        double target = (2.0 * static_cast<double>(i) + 1.0) / (2.0 * n);
        double d = f - target;
        w += d * d;
    }
    return w / n;
}

} // namespace emsc
