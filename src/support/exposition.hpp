/**
 * @file
 * Metrics exposition encoders and snapshot algebra.
 *
 * The telemetry registry serialises to one canonical JSON document
 * (emsc.metrics.v1, see telemetry::metricsJson).  This module adds
 * the read-side counterparts needed by the live observability layer:
 *
 *  - prometheusText() renders a MetricsSnapshot in the Prometheus
 *    text exposition format (version 0.0.4).  Both encoders consume
 *    the *same* MetricsSnapshot, so a text scrape and a JSON scrape
 *    taken from one snapshot agree on every value by construction.
 *  - snapshotFromJson() parses an emsc.metrics.v1 document back into
 *    a MetricsSnapshot — used by `emsc_tool top` (polling the
 *    /metrics.json endpoint), by `merge` (aggregating per-shard
 *    metrics files), and by the JSON/text round-trip test.
 *  - mergeSnapshots() folds snapshots from N sweep shards into one:
 *    counters, histograms and spans sum; gauges keep the maximum
 *    finite value (they are point-in-time readings such as
 *    high-water marks, so "max across shards" is the only merge that
 *    never invents a value no shard observed).
 *
 * Name translation to Prometheus conventions: every character
 * outside [a-zA-Z0-9_] becomes '_', the result is prefixed "emsc_",
 * counters gain the "_total" suffix, and span aggregates expose two
 * counter series ("<name>_span_count_total", "<name>_span_ns_total").
 */

#ifndef EMSC_SUPPORT_EXPOSITION_HPP
#define EMSC_SUPPORT_EXPOSITION_HPP

#include <string>
#include <string_view>
#include <vector>

#include "support/telemetry.hpp"

namespace emsc::json {
class Value;
}

namespace emsc::telemetry {

/** "emsc_" + name with every char outside [a-zA-Z0-9_] replaced by
 * '_', plus an optional suffix ("_total" for counters). */
std::string promName(std::string_view name, std::string_view suffix = "");

/** Escape a label value: backslash, double quote and newline. */
std::string promEscapeLabel(std::string_view value);

/** Escape HELP text: backslash and newline (quotes stay literal). */
std::string promEscapeHelp(std::string_view text);

/** Render `snap` as Prometheus text exposition format 0.0.4. */
std::string prometheusText(const MetricsSnapshot &snap);

/** Parse an emsc.metrics.v1 document; raises MalformedInput when the
 * schema tag is wrong or a section has the wrong shape. */
MetricsSnapshot snapshotFromJson(const json::Value &doc);

/** Fold shard snapshots into one (see file comment for semantics);
 * raises MalformedInput when two shards disagree on a histogram's
 * bucket bounds. */
MetricsSnapshot mergeSnapshots(const std::vector<MetricsSnapshot> &parts);

/** Load every existing path as emsc.metrics.v1 and merge; paths that
 * do not exist are skipped.  Returns the number of files folded in
 * via `loaded` (0 means "nothing to merge").  Raises on unreadable
 * or malformed files that do exist. */
MetricsSnapshot mergeMetricsFiles(const std::vector<std::string> &paths,
                                  std::size_t *loaded = nullptr);

} // namespace emsc::telemetry

#endif // EMSC_SUPPORT_EXPOSITION_HPP
