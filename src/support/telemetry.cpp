#include "support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace emsc::telemetry {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace {

/** Process-unique serial numbers keying the thread-local shard
 * caches, so a cached shard pointer can never be mistaken for one
 * belonging to a different (possibly destroyed) registry. */
std::atomic<std::uint64_t> g_next_serial{1};

void
atomicAddDouble(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomicMinDouble(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
}

void
atomicMaxDouble(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
}

} // namespace

/**
 * Per-thread shard.  The owning thread is the only writer: it grows
 * the deques under `growth` and updates slots with relaxed atomics.
 * Snapshot/reset threads take `growth` before touching the deques
 * (std::deque never relocates existing elements, but its bookkeeping
 * is not safe against a concurrent push_back).
 */
namespace {

struct HistShardSlot
{
    explicit HistShardSlot(std::size_t nbuckets)
        : buckets(std::make_unique<std::atomic<std::uint64_t>[]>(nbuckets)),
          nbuckets(nbuckets)
    {
        for (std::size_t i = 0; i < nbuckets; ++i)
            buckets[i].store(0, std::memory_order_relaxed);
    }

    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::size_t nbuckets = 0;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct Shard
{
    mutable std::mutex growth;
    std::deque<std::atomic<std::uint64_t>> counters;
    std::deque<HistShardSlot> hists;
};

} // namespace

struct MetricsRegistry::Impl
{
    enum class Kind { Counter, Gauge, Histogram };

    struct Desc
    {
        std::string name;
        Kind kind;
        /** Index into the kind's slot space. */
        std::size_t slot;
        std::vector<double> bounds; // histograms only
    };

    mutable std::mutex mtx;
    std::unordered_map<std::string, std::size_t> names;
    std::vector<Desc> metrics;
    std::size_t counterSlots = 0;
    std::size_t histSlots = 0;
    /** Bucket bounds indexed by histogram slot (copy of Desc's). */
    std::vector<std::vector<double>> histBounds;
    /** Gauges are registry-level: set per capture, not per sample. */
    std::deque<std::atomic<double>> gauges;
    std::vector<std::unique_ptr<Shard>> shards;
    /** Span aggregates; spans are coarse so a mutex map is fine. */
    std::map<std::string, SpanStat> spans;
    mutable std::mutex spanMtx;
    std::uint64_t serial = 0;

    Shard *localShard();
    std::size_t registerMetric(std::string_view name, Kind kind,
                               const std::vector<double> &bounds);
};

namespace {

struct ShardCacheEntry
{
    std::uint64_t serial;
    Shard *shard;
};

thread_local std::vector<ShardCacheEntry> t_shard_cache;

} // namespace

Shard *
MetricsRegistry::Impl::localShard()
{
    for (const auto &entry : t_shard_cache)
        if (entry.serial == serial)
            return entry.shard;
    auto owned = std::make_unique<Shard>();
    Shard *shard = owned.get();
    {
        std::lock_guard<std::mutex> lock(mtx);
        shards.push_back(std::move(owned));
    }
    t_shard_cache.push_back({serial, shard});
    return shard;
}

std::size_t
MetricsRegistry::Impl::registerMetric(std::string_view name, Kind kind,
                                      const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = names.find(std::string(name));
    if (it != names.end()) {
        const Desc &desc = metrics[it->second];
        if (desc.kind != kind)
            panic("metric '%s' re-registered with a different kind",
                  desc.name.c_str());
        return desc.slot;
    }
    Desc desc;
    desc.name = std::string(name);
    desc.kind = kind;
    switch (kind) {
      case Kind::Counter:
        desc.slot = counterSlots++;
        break;
      case Kind::Gauge:
        desc.slot = gauges.size();
        gauges.emplace_back(std::numeric_limits<double>::quiet_NaN());
        break;
      case Kind::Histogram:
        if (bounds.empty())
            panic("histogram '%s' needs at least one bucket bound",
                  desc.name.c_str());
        if (!std::is_sorted(bounds.begin(), bounds.end()))
            panic("histogram '%s' bounds must be ascending",
                  desc.name.c_str());
        desc.bounds = bounds;
        desc.slot = histSlots++;
        histBounds.push_back(bounds);
        break;
    }
    names.emplace(desc.name, metrics.size());
    metrics.push_back(desc);
    return metrics.back().slot;
}

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>())
{
    impl_->serial = g_next_serial.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked on purpose: call sites may report during static
    // destruction and the thread-local shard caches outlive tests.
    static MetricsRegistry *reg = new MetricsRegistry();
    return *reg;
}

std::size_t
MetricsRegistry::counterId(std::string_view name)
{
    return impl_->registerMetric(name, Impl::Kind::Counter, {});
}

std::size_t
MetricsRegistry::gaugeId(std::string_view name)
{
    return impl_->registerMetric(name, Impl::Kind::Gauge, {});
}

std::size_t
MetricsRegistry::histogramId(std::string_view name,
                             const std::vector<double> &bounds)
{
    return impl_->registerMetric(name, Impl::Kind::Histogram, bounds);
}

void
MetricsRegistry::counterAdd(std::size_t id, std::uint64_t n)
{
    Shard *shard = impl_->localShard();
    if (id >= shard->counters.size()) {
        std::lock_guard<std::mutex> lock(shard->growth);
        while (shard->counters.size() <= id)
            shard->counters.emplace_back(0);
    }
    shard->counters[id].fetch_add(n, std::memory_order_relaxed);
}

void
MetricsRegistry::gaugeSet(std::size_t id, double v)
{
    std::atomic<double> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(impl_->mtx);
        if (id >= impl_->gauges.size())
            panic("gauge id %zu out of range", id);
        slot = &impl_->gauges[id];
    }
    slot->store(v, std::memory_order_relaxed);
}

void
MetricsRegistry::gaugeMax(std::size_t id, double v)
{
    std::atomic<double> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(impl_->mtx);
        if (id >= impl_->gauges.size())
            panic("gauge id %zu out of range", id);
        slot = &impl_->gauges[id];
    }
    double cur = slot->load(std::memory_order_relaxed);
    if (std::isnan(cur)) {
        // First write wins the NaN slot; races fall through to max.
        if (slot->compare_exchange_strong(cur, v,
                                          std::memory_order_relaxed))
            return;
    }
    atomicMaxDouble(*slot, v);
}

void
MetricsRegistry::histogramObserve(std::size_t id, double v)
{
    // Bounds are immutable once registered; copy the raw range out
    // under the lock (the backing buffer never moves, but the table
    // itself can reallocate while other histograms register).
    const double *bfirst = nullptr;
    const double *blast = nullptr;
    std::size_t nslots = 0;
    {
        std::lock_guard<std::mutex> lock(impl_->mtx);
        if (id >= impl_->histBounds.size())
            panic("histogram id %zu out of range", id);
        const std::vector<double> &bounds = impl_->histBounds[id];
        bfirst = bounds.data();
        blast = bounds.data() + bounds.size();
        nslots = impl_->histSlots;
    }
    Shard *shard = impl_->localShard();
    if (id >= shard->hists.size()) {
        // Collect the missing slots' bucket counts before taking the
        // shard's growth lock: snapshot() holds the registry mutex
        // while it takes growth, so taking them in the opposite order
        // here would be a lock-order inversion. Reading hists.size()
        // without growth is safe — this thread is the only grower.
        std::vector<std::size_t> nbs;
        {
            std::lock_guard<std::mutex> lock(impl_->mtx);
            for (std::size_t s = shard->hists.size(); s <= id; ++s)
                nbs.push_back(s < nslots
                                  ? impl_->histBounds[s].size() + 1
                                  : 1);
        }
        std::lock_guard<std::mutex> lock(shard->growth);
        for (std::size_t nb : nbs)
            shard->hists.emplace_back(nb);
    }
    HistShardSlot &slot = shard->hists[id];
    std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bfirst, blast, v) - bfirst);
    if (bucket < slot.nbuckets)
        slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(slot.sum, v);
    atomicMinDouble(slot.min, v);
    atomicMaxDouble(slot.max, v);
}

void
MetricsRegistry::spanObserve(const char *name, std::uint64_t ns)
{
    std::lock_guard<std::mutex> lock(impl_->spanMtx);
    SpanStat &stat = impl_->spans[name];
    stat.count += 1;
    stat.totalNs += ns;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(impl_->mtx);
    for (const auto &desc : impl_->metrics) {
        switch (desc.kind) {
          case Impl::Kind::Counter: {
            std::uint64_t total = 0;
            for (const auto &shard : impl_->shards) {
                std::lock_guard<std::mutex> slock(shard->growth);
                if (desc.slot < shard->counters.size())
                    total += shard->counters[desc.slot].load(
                        std::memory_order_relaxed);
            }
            snap.counters.emplace_back(desc.name, total);
            break;
          }
          case Impl::Kind::Gauge:
            snap.gauges.emplace_back(
                desc.name,
                impl_->gauges[desc.slot].load(std::memory_order_relaxed));
            break;
          case Impl::Kind::Histogram: {
            HistogramSnapshot h;
            h.bounds = desc.bounds;
            h.buckets.assign(desc.bounds.size() + 1, 0);
            double lo = std::numeric_limits<double>::infinity();
            double hi = -std::numeric_limits<double>::infinity();
            for (const auto &shard : impl_->shards) {
                std::lock_guard<std::mutex> slock(shard->growth);
                if (desc.slot >= shard->hists.size())
                    continue;
                const HistShardSlot &slot = shard->hists[desc.slot];
                std::size_t nb =
                    std::min(slot.nbuckets, h.buckets.size());
                for (std::size_t i = 0; i < nb; ++i)
                    h.buckets[i] += slot.buckets[i].load(
                        std::memory_order_relaxed);
                h.count +=
                    slot.count.load(std::memory_order_relaxed);
                h.sum += slot.sum.load(std::memory_order_relaxed);
                lo = std::min(lo,
                              slot.min.load(std::memory_order_relaxed));
                hi = std::max(hi,
                              slot.max.load(std::memory_order_relaxed));
            }
            h.min = h.count ? lo : 0.0;
            h.max = h.count ? hi : 0.0;
            snap.histograms.emplace_back(desc.name, h);
            break;
          }
        }
    }
    {
        std::lock_guard<std::mutex> slock(impl_->spanMtx);
        for (const auto &[name, stat] : impl_->spans)
            snap.spans.emplace_back(name, stat);
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
    std::sort(snap.histograms.begin(), snap.histograms.end(), byName);
    std::sort(snap.spans.begin(), snap.spans.end(), byName);
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mtx);
    for (const auto &shard : impl_->shards) {
        std::lock_guard<std::mutex> slock(shard->growth);
        for (auto &c : shard->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &h : shard->hists) {
            for (std::size_t i = 0; i < h.nbuckets; ++i)
                h.buckets[i].store(0, std::memory_order_relaxed);
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0.0, std::memory_order_relaxed);
            h.min.store(std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
            h.max.store(-std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
        }
    }
    for (auto &g : impl_->gauges)
        g.store(std::numeric_limits<double>::quiet_NaN(),
                std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> slock(impl_->spanMtx);
        impl_->spans.clear();
    }
}

const std::uint64_t *
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto &c : counters)
        if (c.first == name)
            return &c.second;
    return nullptr;
}

const double *
MetricsSnapshot::gauge(std::string_view name) const
{
    for (const auto &g : gauges)
        if (g.first == name)
            return &g.second;
    return nullptr;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const auto &h : histograms)
        if (h.first == name)
            return &h.second;
    return nullptr;
}

const SpanStat *
MetricsSnapshot::span(std::string_view name) const
{
    for (const auto &s : spans)
        if (s.first == name)
            return &s.second;
    return nullptr;
}

std::vector<double>
expBounds(double lo, double hi, double factor)
{
    if (lo <= 0.0 || hi < lo || factor <= 1.0)
        panic("expBounds(%g, %g, %g): need 0 < lo <= hi, factor > 1",
              lo, hi, factor);
    std::vector<double> bounds;
    for (double b = lo; b < hi * factor; b *= factor) {
        bounds.push_back(b);
        if (bounds.size() > 256)
            panic("expBounds: more than 256 buckets");
    }
    return bounds;
}

/* ------------------------------------------------------------------ */
/* Trace collector                                                     */
/* ------------------------------------------------------------------ */

namespace {

constexpr std::size_t kMaxEventsPerThread = std::size_t(1) << 18;

struct TraceBuf
{
    mutable std::mutex mtx;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
};

struct TraceCacheEntry
{
    std::uint64_t serial;
    TraceBuf *buf;
};

thread_local std::vector<TraceCacheEntry> t_trace_cache;
thread_local std::uint32_t t_span_depth = 0;

} // namespace

struct TraceCollector::Impl
{
    mutable std::mutex mtx;
    std::vector<std::unique_ptr<TraceBuf>> bufs;
    std::atomic<std::uint64_t> dropped{0};
    std::uint64_t serial = 0;
    std::uint64_t epochNs = 0;

    TraceBuf *
    localBuf()
    {
        for (const auto &entry : t_trace_cache)
            if (entry.serial == serial)
                return entry.buf;
        auto owned = std::make_unique<TraceBuf>();
        TraceBuf *buf = owned.get();
        {
            std::lock_guard<std::mutex> lock(mtx);
            buf->tid = static_cast<std::uint32_t>(bufs.size() + 1);
            bufs.push_back(std::move(owned));
        }
        t_trace_cache.push_back({serial, buf});
        return buf;
    }
};

TraceCollector::TraceCollector() : impl_(std::make_unique<Impl>())
{
    impl_->serial = g_next_serial.fetch_add(1, std::memory_order_relaxed);
    impl_->epochNs = steadyNowNs();
}

TraceCollector::~TraceCollector() = default;

TraceCollector &
TraceCollector::global()
{
    static TraceCollector *collector = new TraceCollector();
    return *collector;
}

void
TraceCollector::record(const char *name, std::uint64_t start_ns,
                       std::uint64_t dur_ns, std::uint32_t depth)
{
    TraceBuf *buf = impl_->localBuf();
    std::lock_guard<std::mutex> lock(buf->mtx);
    if (buf->events.size() >= kMaxEventsPerThread) {
        impl_->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf->events.push_back({name, buf->tid, depth, start_ns, dur_ns});
}

std::uint64_t
TraceCollector::sinceEpochNs() const
{
    return steadyNowNs() - impl_->epochNs;
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::vector<TraceEvent> merged;
    std::lock_guard<std::mutex> lock(impl_->mtx);
    for (const auto &buf : impl_->bufs) {
        std::lock_guard<std::mutex> block(buf->mtx);
        merged.insert(merged.end(), buf->events.begin(),
                      buf->events.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startNs < b.startNs;
                     });
    return merged;
}

std::uint64_t
TraceCollector::dropped() const
{
    return impl_->dropped.load(std::memory_order_relaxed);
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mtx);
    for (const auto &buf : impl_->bufs) {
        std::lock_guard<std::mutex> block(buf->mtx);
        buf->events.clear();
    }
    impl_->dropped.store(0, std::memory_order_relaxed);
    impl_->epochNs = steadyNowNs();
}

std::string
TraceCollector::chromeJson() const
{
    json::Value root = json::Value::object();
    root.set("displayTimeUnit", "ms");
    json::Value list = json::Value::array();
    for (const TraceEvent &ev : events()) {
        json::Value e = json::Value::object();
        e.set("name", ev.name);
        e.set("cat", "emsc");
        e.set("ph", "X");
        e.set("ts", static_cast<double>(ev.startNs) / 1e3);
        e.set("dur", static_cast<double>(ev.durNs) / 1e3);
        e.set("pid", 1);
        e.set("tid", static_cast<double>(ev.tid));
        json::Value args = json::Value::object();
        args.set("depth", static_cast<double>(ev.depth));
        e.set("args", std::move(args));
        list.push(std::move(e));
    }
    root.set("traceEvents", std::move(list));
    root.set("droppedEvents", static_cast<double>(dropped()));
    return root.dump(0);
}

/* ------------------------------------------------------------------ */
/* TraceSpan                                                           */
/* ------------------------------------------------------------------ */

TraceSpan::TraceSpan(const char *name) : name_(name)
{
    armed_ = MetricsRegistry::global().enabled() ||
             TraceCollector::global().enabled();
    if (!armed_)
        return;
    ++t_span_depth;
    start_ = steadyNowNs();
}

TraceSpan::~TraceSpan()
{
    if (!armed_)
        return;
    std::uint64_t end = steadyNowNs();
    std::uint64_t dur = end > start_ ? end - start_ : 0;
    --t_span_depth;
    MetricsRegistry &reg = MetricsRegistry::global();
    if (reg.enabled())
        reg.spanObserve(name_, dur);
    TraceCollector &collector = TraceCollector::global();
    if (collector.enabled()) {
        std::uint64_t since = collector.sinceEpochNs();
        std::uint64_t rel_start = since > dur ? since - dur : 0;
        collector.record(name_, rel_start, dur, t_span_depth);
    }
}

std::uint32_t
TraceSpan::currentDepth()
{
    return t_span_depth;
}

ScopedTelemetry::ScopedTelemetry(bool metrics, bool trace,
                                 bool reset_on_exit)
    : prevMetrics_(MetricsRegistry::global().enabled()),
      prevTrace_(TraceCollector::global().enabled()),
      resetOnExit_(reset_on_exit)
{
    if (metrics)
        MetricsRegistry::global().setEnabled(true);
    if (trace)
        TraceCollector::global().setEnabled(true);
}

ScopedTelemetry::~ScopedTelemetry()
{
    MetricsRegistry::global().setEnabled(prevMetrics_);
    TraceCollector::global().setEnabled(prevTrace_);
    if (resetOnExit_) {
        MetricsRegistry::global().reset();
        TraceCollector::global().clear();
    }
}

/* ------------------------------------------------------------------ */
/* Report serialisation                                                */
/* ------------------------------------------------------------------ */

json::Value
metricsJson(const MetricsSnapshot &snap)
{
    json::Value root = json::Value::object();
    root.set("schema", "emsc.metrics.v1");

    json::Value counters = json::Value::object();
    for (const auto &[name, v] : snap.counters)
        counters.set(name, static_cast<double>(v));
    root.set("counters", std::move(counters));

    json::Value gauges = json::Value::object();
    for (const auto &[name, v] : snap.gauges) {
        // Unset gauges serialise as null rather than a fake zero.
        if (std::isnan(v))
            gauges.set(name, json::Value(nullptr));
        else
            gauges.set(name, v);
    }
    root.set("gauges", std::move(gauges));

    json::Value hists = json::Value::object();
    for (const auto &[name, h] : snap.histograms) {
        json::Value entry = json::Value::object();
        json::Value bounds = json::Value::array();
        for (double b : h.bounds)
            bounds.push(b);
        entry.set("bounds", std::move(bounds));
        json::Value buckets = json::Value::array();
        for (std::uint64_t b : h.buckets)
            buckets.push(static_cast<double>(b));
        entry.set("buckets", std::move(buckets));
        entry.set("count", static_cast<double>(h.count));
        entry.set("sum", h.sum);
        entry.set("min", h.min);
        entry.set("max", h.max);
        hists.set(name, std::move(entry));
    }
    root.set("histograms", std::move(hists));

    json::Value spans = json::Value::object();
    for (const auto &[name, s] : snap.spans) {
        json::Value entry = json::Value::object();
        entry.set("count", static_cast<double>(s.count));
        entry.set("total_ns", static_cast<double>(s.totalNs));
        entry.set("mean_ns",
                  s.count ? static_cast<double>(s.totalNs) /
                                static_cast<double>(s.count)
                          : 0.0);
        spans.set(name, std::move(entry));
    }
    root.set("spans", std::move(spans));
    return root;
}

json::Value
metricsJson(const MetricsRegistry &reg)
{
    return metricsJson(reg.snapshot());
}

namespace {

void
writeTextFile(const std::string &path, const std::string &text,
              const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        raiseError(ErrorKind::IoError, "cannot open %s file '%s'",
                   what, path.c_str());
    std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = wrote == text.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        raiseError(ErrorKind::IoError, "short write to %s file '%s'",
                   what, path.c_str());
}

} // namespace

void
writeMetricsFile(const std::string &path)
{
    writeTextFile(path, metricsJson(MetricsRegistry::global()).dump(2),
                  "metrics");
}

void
writeTraceFile(const std::string &path)
{
    writeTextFile(path, TraceCollector::global().chromeJson(), "trace");
}

} // namespace emsc::telemetry
