#include "support/snapshotter.hpp"

#include <chrono>
#include <cmath>

#include "support/json.hpp"

namespace emsc::telemetry {

SnapshotRing::SnapshotRing(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

void
SnapshotRing::push(TimedSnapshot snap)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(snap));
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

std::size_t
SnapshotRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

TimedSnapshot
SnapshotRing::oldest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.empty() ? TimedSnapshot{} : ring_.front();
}

TimedSnapshot
SnapshotRing::newest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.empty() ? TimedSnapshot{} : ring_.back();
}

json::Value
SnapshotRing::seriesJson() const
{
    std::deque<TimedSnapshot> copy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        copy = ring_;
    }
    json::Value root = json::Value::object();
    root.set("schema", "emsc.metrics.series.v1");
    root.set("capacity", static_cast<double>(capacity_));

    json::Value frames = json::Value::array();
    for (const TimedSnapshot &ts : copy) {
        json::Value frame = json::Value::object();
        frame.set("t_ns", static_cast<double>(ts.steadyNs));
        json::Value counters = json::Value::object();
        for (const auto &[name, v] : ts.snap.counters)
            counters.set(name, static_cast<double>(v));
        frame.set("counters", std::move(counters));
        json::Value gauges = json::Value::object();
        for (const auto &[name, v] : ts.snap.gauges)
            gauges.set(name, std::isnan(v) ? json::Value(nullptr)
                                           : json::Value(v));
        frame.set("gauges", std::move(gauges));
        frames.push(std::move(frame));
    }
    root.set("frames", std::move(frames));

    json::Value deltas = json::Value::object();
    if (copy.size() >= 2) {
        const TimedSnapshot &prev = copy[copy.size() - 2];
        for (const auto &[name, v] : copy.back().snap.counters) {
            const std::uint64_t *was = prev.snap.counter(name);
            std::uint64_t base = was ? *was : 0;
            deltas.set(name,
                       static_cast<double>(v >= base ? v - base : 0));
        }
    }
    root.set("deltas", std::move(deltas));

    json::Value rates = json::Value::object();
    if (copy.size() >= 2 &&
        copy.back().steadyNs > copy.front().steadyNs) {
        double window = static_cast<double>(copy.back().steadyNs -
                                            copy.front().steadyNs) /
                        1e9;
        for (const auto &[name, v] : copy.back().snap.counters) {
            const std::uint64_t *was = copy.front().snap.counter(name);
            std::uint64_t base = was ? *was : 0;
            double delta =
                static_cast<double>(v >= base ? v - base : 0);
            rates.set(name, delta / window);
        }
    }
    root.set("rates_per_s", std::move(rates));
    return root;
}

Snapshotter::Snapshotter(std::size_t ringCapacity) : ring_(ringCapacity) {}

Snapshotter::~Snapshotter()
{
    stop();
}

void
Snapshotter::start(std::size_t periodMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (thread_.joinable())
        return;
    stopping_ = false;
    thread_ = std::thread([this, periodMs] { loop(periodMs); });
}

void
Snapshotter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!thread_.joinable())
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    thread_ = std::thread();
    stopping_ = false;
}

TimedSnapshot
Snapshotter::scrape()
{
    TimedSnapshot ts;
    ts.steadyNs = steadyNowNs();
    ts.snap = MetricsRegistry::global().snapshot();
    ring_.push(ts);
    return ts;
}

void
Snapshotter::loop(std::size_t periodMs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        cv_.wait_for(lock, std::chrono::milliseconds(periodMs),
                     [this] { return stopping_; });
        if (stopping_)
            break;
        lock.unlock();
        TimedSnapshot ts;
        ts.steadyNs = steadyNowNs();
        ts.snap = MetricsRegistry::global().snapshot();
        ring_.push(std::move(ts));
        lock.lock();
    }
}

} // namespace emsc::telemetry
