/**
 * @file
 * Text renderer for the live metrics view (`emsc_tool top`).
 *
 * Pure function of two snapshots (current + optional previous with
 * the wall-clock distance between them), so the layout is unit
 * testable without sockets or timers.  The view groups the metric
 * namespaces an operator watches during a run — serve.* session
 * state, engine.* unit progress, channel.* signal quality, modem.*
 * symbol errors, flight.* dump activity — and derives per-second
 * rates plus a rolling symbol-error rate from the counter deltas.
 */

#ifndef EMSC_SUPPORT_TOPVIEW_HPP
#define EMSC_SUPPORT_TOPVIEW_HPP

#include <string>

#include "support/telemetry.hpp"

namespace emsc::telemetry {

/**
 * Render `cur` as a multi-line dashboard.  When `prev` is non-null
 * and `dtSeconds` > 0, counter lines gain a "/s" rate column and the
 * modem section shows the rolling symbol-error rate over the
 * interval.
 */
std::string renderMetricsTop(const MetricsSnapshot &cur,
                             const MetricsSnapshot *prev,
                             double dtSeconds);

} // namespace emsc::telemetry

#endif // EMSC_SUPPORT_TOPVIEW_HPP
