#include "support/flight.hpp"

#include <cstdio>

#include <sys/stat.h>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"

namespace emsc::flight {

namespace {

/** mkdir -p, best effort: dump() reports the real failure if this
 * could not produce a usable directory. */
void
ensureDumpDir(const std::string &dir)
{
    std::string sofar;
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            sofar += dir[i];
            continue;
        }
        if (!sofar.empty())
            ::mkdir(sofar.c_str(), 0777);
        if (i < dir.size())
            sofar += '/';
    }
}

} // namespace

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder instance;
    return instance;
}

void
FlightRecorder::arm(const std::string &dir, std::size_t maxDumps)
{
    if (!dir.empty())
        ensureDumpDir(dir);
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = dir;
    maxDumps_ = maxDumps;
    dumpsWritten_ = 0;
    dumpsSuppressed_ = 0;
    seq_ = 0;
    events_.clear();
    envelope_.clear();
    envelopeRate_ = 0.0;
    envelopeFirstIndex_ = 0;
    armed_.store(true, std::memory_order_relaxed);
}

void
FlightRecorder::disarm()
{
    armed_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    dir_.clear();
    events_.clear();
    envelope_.clear();
    envelopeRate_ = 0.0;
    envelopeFirstIndex_ = 0;
}

void
FlightRecorder::record(const char *kind, json::Value data)
{
    if (!armed())
        return;
    static telemetry::Counter recorded(
        telemetry::MetricsRegistry::global(), "flight.events");
    recorded.add();
    FlightEvent ev;
    ev.tNs = telemetry::steadyNowNs();
    ev.kind = kind;
    ev.data = std::move(data);
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(ev));
    while (events_.size() > maxEvents())
        events_.pop_front();
}

void
FlightRecorder::recordEnvelope(const double *y, std::size_t n,
                               double sampleRate)
{
    if (!armed() || !y || n == 0)
        return;
    std::size_t keep = n < maxEnvelopeSamples() ? n : maxEnvelopeSamples();
    std::lock_guard<std::mutex> lock(mutex_);
    envelope_.assign(y + (n - keep), y + n);
    envelopeRate_ = sampleRate;
    envelopeFirstIndex_ = n - keep;
}

json::Value
FlightRecorder::dumpJson(const std::string &reason) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value root = json::Value::object();
    root.set("schema", "emsc.flight.v1");
    root.set("reason", reason);
    root.set("dumped_at_ns",
             static_cast<double>(telemetry::steadyNowNs()));
    json::Value list = json::Value::array();
    for (const FlightEvent &ev : events_) {
        json::Value e = json::Value::object();
        e.set("t_ns", static_cast<double>(ev.tNs));
        e.set("kind", ev.kind);
        e.set("data", ev.data.isNull() ? json::Value::object()
                                       : ev.data);
        list.push(std::move(e));
    }
    root.set("events", std::move(list));
    if (envelope_.empty()) {
        root.set("envelope", json::Value(nullptr));
    } else {
        json::Value env = json::Value::object();
        env.set("sample_rate", envelopeRate_);
        env.set("first_index",
                static_cast<double>(envelopeFirstIndex_));
        json::Value samples = json::Value::array();
        for (double v : envelope_)
            samples.push(v);
        env.set("samples", std::move(samples));
        root.set("envelope", std::move(env));
    }
    return root;
}

std::string
FlightRecorder::dump(const std::string &reason)
{
    if (!armed())
        return "";
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (dir_.empty())
            return ""; // record-only mode
        if (dumpsWritten_ >= maxDumps_) {
            ++dumpsSuppressed_;
            static telemetry::Counter suppressed(
                telemetry::MetricsRegistry::global(),
                "flight.dumps_suppressed");
            suppressed.add();
            return "";
        }
        char name[128];
        std::snprintf(name, sizeof(name), "flight-%04llu-%s.json",
                      static_cast<unsigned long long>(seq_++),
                      reason.c_str());
        path = dir_ + "/" + name;
    }
    json::Value doc = dumpJson(reason);
    try {
        json::writeFileAtomic(path, doc.dump(2));
    } catch (const RecoverableError &e) {
        warn("flight dump failed: %s", e.what());
        return "";
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++dumpsWritten_;
    }
    static telemetry::Counter dumps(telemetry::MetricsRegistry::global(),
                                    "flight.dumps");
    dumps.add();
    return path;
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<FlightEvent>(events_.begin(), events_.end());
}

std::size_t
FlightRecorder::dumpsWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dumpsWritten_;
}

std::size_t
FlightRecorder::dumpsSuppressed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dumpsSuppressed_;
}

} // namespace emsc::flight
