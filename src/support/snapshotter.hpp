/**
 * @file
 * Periodic metrics snapshotter with a bounded in-memory time series.
 *
 * The exposition endpoint needs two views of the registry: "now"
 * (one fresh snapshot per scrape) and "recently" (a short history so
 * rates and deltas of serve.sessions.active, engine.unit.*,
 * modem.*.symbol_errors are visible while the run is live).  The
 * Snapshotter provides both: a background thread samples the global
 * registry every `periodMs` into a SnapshotRing holding the last N
 * timed snapshots; scrape() additionally takes an immediate sample
 * (pushed into the same ring) and returns it, so what a scraper sees
 * is by construction the registry state at scrape time — identical
 * to an end-of-run emsc.metrics.v1 written from the same state.
 *
 * Memory is bounded by capacity × snapshot size; at the default 120
 * frames and sub-millisecond snapshot cost the sampler is invisible
 * next to the receiver's own work.
 */

#ifndef EMSC_SUPPORT_SNAPSHOTTER_HPP
#define EMSC_SUPPORT_SNAPSHOTTER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "support/telemetry.hpp"

namespace emsc::json {
class Value;
}

namespace emsc::telemetry {

/** One ring entry: a snapshot plus the steady-clock time it was
 * taken, so consumers can turn counter deltas into rates. */
struct TimedSnapshot
{
    std::uint64_t steadyNs = 0;
    MetricsSnapshot snap;
};

/** Bounded, thread-safe history of timed snapshots (oldest evicted
 * first).  All methods lock; push/seriesJson are not hot paths. */
class SnapshotRing
{
  public:
    explicit SnapshotRing(std::size_t capacity = 120);

    void push(TimedSnapshot snap);
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /** Oldest and newest entries; empty snapshots when size()==0. */
    TimedSnapshot oldest() const;
    TimedSnapshot newest() const;

    /**
     * "emsc.metrics.series.v1": frames of {t_ns, counters, gauges}
     * (histograms/spans are omitted from frames — they are bulky and
     * their deltas are rarely what a live view needs), plus
     * "deltas" (newest minus previous frame, per counter) and
     * "rates_per_s" (newest minus oldest over the window).
     */
    json::Value seriesJson() const;

  private:
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::deque<TimedSnapshot> ring_;
};

/** Background sampler of the global MetricsRegistry. */
class Snapshotter
{
  public:
    explicit Snapshotter(std::size_t ringCapacity = 120);
    ~Snapshotter();
    Snapshotter(const Snapshotter &) = delete;
    Snapshotter &operator=(const Snapshotter &) = delete;

    /** Start the periodic sampler; idempotent. */
    void start(std::size_t periodMs = 500);
    /** Stop and join the sampler thread; idempotent. */
    void stop();

    /** Take a fresh snapshot now, record it in the ring, return it. */
    TimedSnapshot scrape();

    const SnapshotRing &ring() const { return ring_; }

  private:
    void loop(std::size_t periodMs);

    SnapshotRing ring_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace emsc::telemetry

#endif // EMSC_SUPPORT_SNAPSHOTTER_HPP
