/**
 * @file
 * Streaming statistics, histograms and quantile helpers.
 *
 * The receiver-side algorithms in the paper are built on simple
 * statistics of measured quantities: the median bit spacing (§IV-B2),
 * the bimodal per-bit power histogram whose two peaks pick the decision
 * threshold (Fig. 7), and the Rayleigh-shaped pulse-width PDF (Fig. 6).
 * This header provides those primitives.
 */

#ifndef EMSC_SUPPORT_STATS_HPP
#define EMSC_SUPPORT_STATS_HPP

#include <cstddef>
#include <vector>

namespace emsc {

/**
 * Numerically stable running mean/variance/extrema accumulator
 * (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n; }
    /** Mean of the observations (0 when empty). */
    double mean() const { return n ? mu : 0.0; }
    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;
    /** Square root of variance(). */
    double stddev() const;
    /** Smallest observation (+inf when empty). */
    double min() const { return lo; }
    /** Largest observation (-inf when empty). */
    double max() const { return hi; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 1e308;
    double hi = -1e308;
};

/**
 * Fixed-range equal-width histogram with the smoothing and peak-finding
 * operations the threshold-selection algorithm needs.
 */
class Histogram
{
  public:
    /**
     * @param lo    lower edge of the first bin
     * @param hi    upper edge of the last bin (must exceed lo)
     * @param bins  number of bins (must be at least 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /**
     * Build a histogram spanning [min, max] of the given samples.
     * NaN samples are excluded from the range (and subsequently
     * ignored by add()); raises a RecoverableError when no non-NaN
     * sample remains.
     */
    static Histogram fromSamples(const std::vector<double> &samples,
                                 std::size_t bins);

    /**
     * Add one sample; out-of-range samples clamp to the edge bins.
     * NaN samples carry no bin information: they are ignored (not
     * binned, not part of total()) and tallied in nanDropped().
     */
    void add(double x);

    /** Number of bins. */
    std::size_t size() const { return counts.size(); }
    /** Raw count in bin i. */
    double count(std::size_t i) const { return counts[i]; }
    /** Center value of bin i. */
    double binCenter(std::size_t i) const;
    /** Total number of samples added (excluding dropped NaNs). */
    double total() const { return total_; }
    /** Number of NaN samples dropped by add(). */
    std::size_t nanDropped() const { return nan_; }

    /** Counts normalised to a probability density (integrates to ~1). */
    std::vector<double> density() const;

    /**
     * Return a copy of the counts smoothed with a centered moving
     * average of the given half-width (radius).
     */
    std::vector<double> smoothedCounts(std::size_t radius) const;

    /**
     * Find local maxima of the smoothed counts, strongest first.
     *
     * @param radius        smoothing radius applied before peak finding
     * @param min_separation  minimum distance between peaks, in bins
     * @return bin indices of the located peaks
     */
    std::vector<std::size_t> findPeaks(std::size_t radius,
                                       std::size_t min_separation) const;

  private:
    double lo;
    double hi;
    double width;
    double total_ = 0.0;
    std::size_t nan_ = 0;
    std::vector<double> counts;
};

/**
 * Return the q-quantile (0 <= q <= 1) of the samples using linear
 * interpolation between order statistics. The input is copied. NaN
 * samples are dropped before ranking; a sample set that is empty (or
 * entirely NaN) raises a RecoverableError.
 */
double quantile(std::vector<double> samples, double q);

/** Convenience wrapper: quantile(samples, 0.5). */
double median(std::vector<double> samples);

/**
 * Maximum-likelihood Rayleigh scale estimate
 * sigma^2 = sum(x_i^2) / (2 n). Used to check the Fig. 6 pulse-width
 * distribution really is Rayleigh-shaped.
 */
double fitRayleighSigma(const std::vector<double> &samples);

/**
 * One-sample Cramer-von-Mises-style goodness statistic of the samples
 * against a Rayleigh(sigma) distribution; smaller is a better fit.
 */
double rayleighGoodness(const std::vector<double> &samples, double sigma);

} // namespace emsc

#endif // EMSC_SUPPORT_STATS_HPP
