/**
 * @file
 * Minimal JSON value model, writer and parser.
 *
 * The telemetry layer, the bench reporters and the schema validator
 * all need to emit and re-read machine-readable reports without any
 * external dependency, so this implements just enough of RFC 8259:
 * null/bool/number/string/array/object values, a recursive-descent
 * parser, and a writer with optional pretty-printing.  Objects keep
 * insertion order (vector of pairs) so emitted reports are stable
 * and diffable across runs.
 */

#ifndef EMSC_SUPPORT_JSON_HPP
#define EMSC_SUPPORT_JSON_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace emsc::json {

/** One JSON value; a tagged union with ordered object members. */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(double n) : type_(Type::Number), number_(n) {}
    Value(int n) : type_(Type::Number), number_(n) {}
    Value(long n) : type_(Type::Number), number_(static_cast<double>(n)) {}
    Value(unsigned n) : type_(Type::Number), number_(n) {}
    Value(unsigned long n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {
    }
    Value(unsigned long long n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {
    }
    Value(const char *s) : type_(Type::String), string_(s) {}
    Value(std::string s) : type_(Type::String), string_(std::move(s)) {}

    static Value array() { Value v; v.type_ = Type::Array; return v; }
    static Value object() { Value v; v.type_ = Type::Object; return v; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }
    const std::vector<Value> &items() const { return items_; }
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return members_;
    }

    /** Append to an array value (converts a Null value to Array). */
    Value &push(Value v);
    /**
     * Set an object member (converts a Null value to Object).
     * Overwrites an existing member of the same key in place, so
     * member order stays stable.
     */
    Value &set(const std::string &key, Value v);
    /** Find an object member; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /**
     * Serialise. `indent` > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse `text` into `out`.  Returns true on success; on failure
     * returns false and, when `error` is non-null, stores a short
     * description with the byte offset of the problem.
     */
    static bool parse(const std::string &text, Value &out,
                      std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Crash-safe file write: the text lands in `path + ".tmp"`, is
 * fsync'd, and is renamed over `path`, so readers observe either the
 * old content or the complete new content — never a torn file. Used
 * for merged sweep artifacts and any report a concurrent process may
 * read while it is being replaced.
 *
 * @throws RecoverableError (IoError) when any step fails; the tmp
 *         file is removed on failure.
 */
void writeFileAtomic(const std::string &path, const std::string &text);

} // namespace emsc::json

#endif // EMSC_SUPPORT_JSON_HPP
