/**
 * @file
 * Decibel and ratio conversion helpers used across the EM and SDR models.
 */

#ifndef EMSC_SUPPORT_UNITS_HPP
#define EMSC_SUPPORT_UNITS_HPP

#include <cmath>

namespace emsc {

/** Convert a power ratio to decibels. */
inline double
powerToDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

/** Convert decibels to a power ratio. */
inline double
dbToPower(double db)
{
    return std::pow(10.0, db / 10.0);
}

/** Convert an amplitude (field/voltage) ratio to decibels. */
inline double
amplitudeToDb(double ratio)
{
    return 20.0 * std::log10(ratio);
}

/** Convert decibels to an amplitude (field/voltage) ratio. */
inline double
dbToAmplitude(double db)
{
    return std::pow(10.0, db / 20.0);
}

} // namespace emsc

#endif // EMSC_SUPPORT_UNITS_HPP
