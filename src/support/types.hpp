/**
 * @file
 * Fundamental scalar types and unit helpers shared by every emsc module.
 *
 * Simulation time is kept as a signed 64-bit count of nanoseconds. Using
 * an integer tick (rather than floating-point seconds) keeps event
 * ordering exact and makes every experiment bit-for-bit reproducible.
 */

#ifndef EMSC_SUPPORT_TYPES_HPP
#define EMSC_SUPPORT_TYPES_HPP

#include <cstdint>

namespace emsc {

/** Simulation time in integer nanoseconds. */
using TimeNs = std::int64_t;

/** Frequency in hertz. */
using Hertz = double;

/** Electrical quantities. */
using Volts = double;
using Amps = double;
using Watts = double;
using Coulombs = double;

/** Dimensionless ratio expressed in decibels. */
using Decibels = double;

/** One microsecond expressed in simulation ticks. */
inline constexpr TimeNs kMicrosecond = 1000;
/** One millisecond expressed in simulation ticks. */
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
/** One second expressed in simulation ticks. */
inline constexpr TimeNs kSecond = 1000 * kMillisecond;

/** Convert a tick count to floating-point seconds. */
constexpr double
toSeconds(TimeNs t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Convert floating-point seconds to the nearest tick count. */
constexpr TimeNs
fromSeconds(double s)
{
    return static_cast<TimeNs>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/** Convert floating-point microseconds to ticks. */
constexpr TimeNs
fromMicroseconds(double us)
{
    return fromSeconds(us * 1e-6);
}

/** Convert floating-point milliseconds to ticks. */
constexpr TimeNs
fromMilliseconds(double ms)
{
    return fromSeconds(ms * 1e-3);
}

} // namespace emsc

#endif // EMSC_SUPPORT_TYPES_HPP
