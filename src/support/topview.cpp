#include "support/topview.hpp"

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace emsc::telemetry {

namespace {

struct RateContext
{
    const MetricsSnapshot *prev = nullptr;
    double dt = 0.0;
};

std::string
num(double v)
{
    char buf[48];
    if (std::fabs(v) >= 1000.0 || v == std::floor(v))
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

double
counterDelta(const RateContext &ctx, std::string_view name,
             std::uint64_t cur)
{
    if (!ctx.prev)
        return 0.0;
    const std::uint64_t *was = ctx.prev->counter(name);
    std::uint64_t base = was ? *was : 0;
    return cur >= base ? static_cast<double>(cur - base) : 0.0;
}

void
counterLine(std::string &out, const RateContext &ctx,
            std::string_view name, std::uint64_t v)
{
    char buf[160];
    if (ctx.prev && ctx.dt > 0.0) {
        double rate = counterDelta(ctx, name, v) / ctx.dt;
        std::snprintf(buf, sizeof(buf), "  %-38.*s %12llu  %10s/s\n",
                      static_cast<int>(name.size()), name.data(),
                      static_cast<unsigned long long>(v),
                      num(rate).c_str());
    } else {
        std::snprintf(buf, sizeof(buf), "  %-38.*s %12llu\n",
                      static_cast<int>(name.size()), name.data(),
                      static_cast<unsigned long long>(v));
    }
    out += buf;
}

void
gaugeLine(std::string &out, std::string_view name, double v)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-38.*s %12s\n",
                  static_cast<int>(name.size()), name.data(),
                  num(v).c_str());
    out += buf;
}

bool
hasPrefix(std::string_view name, std::string_view prefix)
{
    return name.size() >= prefix.size() &&
           name.substr(0, prefix.size()) == prefix;
}

/** Emit one namespace section; returns whether anything rendered. */
bool
section(std::string &out, const MetricsSnapshot &cur,
        const RateContext &ctx, const char *title,
        std::string_view prefix)
{
    std::string body;
    for (const auto &[name, v] : cur.counters)
        if (hasPrefix(name, prefix))
            counterLine(body, ctx, name, v);
    for (const auto &[name, v] : cur.gauges)
        if (hasPrefix(name, prefix) && !std::isnan(v))
            gaugeLine(body, name, v);
    if (body.empty())
        return false;
    out += std::string(title) + "\n" + body;
    return true;
}

} // namespace

std::string
renderMetricsTop(const MetricsSnapshot &cur, const MetricsSnapshot *prev,
                 double dtSeconds)
{
    RateContext ctx{prev, dtSeconds};
    std::string out;
    bool any = false;
    any |= section(out, cur, ctx, "serve", "serve.");
    any |= section(out, cur, ctx, "engine", "engine.");
    any |= section(out, cur, ctx, "channel", "channel.");

    // modem section with a rolling symbol-error rate derived from
    // the symbol/symbol_errors counter deltas over the interval.
    std::string modem;
    for (const auto &[name, v] : cur.counters)
        if (hasPrefix(name, "modem."))
            counterLine(modem, ctx, name, v);
    for (const auto &[name, v] : cur.gauges)
        if (hasPrefix(name, "modem.") && !std::isnan(v))
            gaugeLine(modem, name, v);
    if (prev) {
        // Pair every "modem.<x>.symbol_errors" with "modem.<x>.symbols".
        for (const auto &[name, v] : cur.counters) {
            constexpr std::string_view kSuffix = ".symbol_errors";
            if (!hasPrefix(name, "modem.") || name.size() < kSuffix.size() ||
                name.substr(name.size() - kSuffix.size()) != kSuffix)
                continue;
            std::string base =
                name.substr(0, name.size() - kSuffix.size());
            const std::uint64_t *symbols =
                cur.counter(base + ".symbols");
            if (!symbols)
                continue;
            double dErr = counterDelta(ctx, name, v);
            double dSym =
                counterDelta(ctx, base + ".symbols", *symbols);
            if (dSym > 0.0)
                gaugeLine(modem, base + ".rolling_ser",
                          dErr / dSym);
        }
    }
    if (!modem.empty()) {
        out += "modem\n" + modem;
        any = true;
    }

    any |= section(out, cur, ctx, "stream", "stream.");
    any |= section(out, cur, ctx, "flight", "flight.");
    if (!any)
        out += "(no metrics yet — is the registry enabled?)\n";
    return out;
}

} // namespace emsc::telemetry
