/**
 * @file
 * Signal-quality flight recorder.
 *
 * A bounded ring of timestamped events fed from the receiver/stream
 * path (carrier locks, per-reception quality summaries, fault
 * events, watchdog/retry firings) plus a bounded excerpt of the most
 * recent demodulated envelope.  When a decode fails, a CRC
 * hard-fails, or the engine's watchdog/retry fires, the recorder
 * dumps everything it holds as one self-contained "emsc.flight.v1"
 * JSON post-mortem — the signal-quality context *around* the
 * failure, which aggregate counters cannot reconstruct.
 *
 * Overhead contract (enforced by the perf_stream armed-vs-disabled
 * sub-bench and bench_gate, budget <3% throughput): armed() is one
 * relaxed atomic load, and a disarmed recorder does nothing else.
 * Armed recording takes a mutex but only at per-capture / per-frame
 * / per-fault granularity — never per sample — mirroring the
 * telemetry instrumentation rules.
 *
 * arm("") arms recording without a dump directory: events and the
 * envelope excerpt accumulate and dumpJson() works, but dump() never
 * touches the filesystem.  Tools wire directories via --flight-dir;
 * the armed bench uses arm("") to measure pure tap cost.
 */

#ifndef EMSC_SUPPORT_FLIGHT_HPP
#define EMSC_SUPPORT_FLIGHT_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace emsc::flight {

/** One recorded event; `data` is a small JSON object whose shape
 * depends on `kind` (see DESIGN.md §12 for the catalogue). */
struct FlightEvent
{
    std::uint64_t tNs = 0;
    std::string kind;
    json::Value data;
};

class FlightRecorder
{
  public:
    /** The process-wide recorder all taps report to. */
    static FlightRecorder &global();

    FlightRecorder() = default;
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Arm the recorder.  `dir` is where dump() writes post-mortems
     * ("" = record-only, no files); `maxDumps` caps files written
     * per arm() so a pathological run cannot fill a disk — further
     * dumps are counted as suppressed.
     */
    void arm(const std::string &dir, std::size_t maxDumps = 32);
    /** Disarm and clear all recorded state. */
    void disarm();
    /** One relaxed load; every tap checks this first. */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Record an event (no-op when disarmed). */
    void record(const char *kind, json::Value data = json::Value());
    /**
     * Keep the tail of the most recent demodulated envelope (at most
     * `maxEnvelopeSamples()` samples) so a post-mortem shows the
     * waveform the decision was made on.  No-op when disarmed.
     */
    void recordEnvelope(const double *y, std::size_t n,
                        double sampleRate);

    /** The post-mortem document for the current ring state. */
    json::Value dumpJson(const std::string &reason) const;
    /**
     * Write a post-mortem named "flight-<seq>-<reason>.json" into
     * the armed directory.  Returns the path written, or "" when
     * disarmed, record-only, or past the dump cap.  Write failures
     * are logged, never thrown: a post-mortem must not turn one
     * failure into two.
     */
    std::string dump(const std::string &reason);

    /** Events currently held (copy; for tests and tools). */
    std::vector<FlightEvent> events() const;
    std::size_t dumpsWritten() const;
    std::size_t dumpsSuppressed() const;

    static constexpr std::size_t maxEvents() { return 256; }
    static constexpr std::size_t maxEnvelopeSamples() { return 512; }

  private:
    std::atomic<bool> armed_{false};
    mutable std::mutex mutex_;
    std::string dir_;
    std::size_t maxDumps_ = 0;
    std::size_t dumpsWritten_ = 0;
    std::size_t dumpsSuppressed_ = 0;
    std::uint64_t seq_ = 0;
    std::deque<FlightEvent> events_;
    std::vector<double> envelope_;
    double envelopeRate_ = 0.0;
    std::uint64_t envelopeFirstIndex_ = 0;
};

} // namespace emsc::flight

#endif // EMSC_SUPPORT_FLIGHT_HPP
