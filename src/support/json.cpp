#include "support/json.hpp"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"

namespace emsc::json {

Value &
Value::push(Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    items_.push_back(std::move(v));
    return *this;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double n)
{
    if (!std::isfinite(n)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    double rounded = std::nearbyint(n);
    if (rounded == n && std::fabs(n) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", n);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    // Trim to the shortest round-trip form.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, n);
        if (std::strtod(probe, nullptr) == n) {
            out += probe;
            return;
        }
    }
    out += buf;
}

void
appendNewlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, number_);
        break;
      case Type::String:
        appendEscaped(out, string_);
        break;
      case Type::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            if (indent > 0)
                appendNewlineIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            appendNewlineIndent(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            if (indent > 0)
                appendNewlineIndent(out, indent, depth + 1);
            appendEscaped(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            appendNewlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent parser over a raw byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Value &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *what)
    {
        if (error_) {
            *error_ = what;
            *error_ += " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            out = Value();
            return literal("null");
          case 't':
            out = Value(true);
            return literal("true");
          case 'f':
            out = Value(false);
            return literal("false");
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
          }
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = text_.c_str() + pos_;
        char c = text_[pos_];
        if (c != '-' && (c < '0' || c > '9'))
            return fail("unexpected character");
        char *end = nullptr;
        double n = std::strtod(start, &end);
        if (end == start)
            return fail("malformed number");
        pos_ += static_cast<std::size_t>(end - start);
        out = Value(n);
        return true;
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xf0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xd800 && cp < 0xdc00) {
                    // High surrogate: expect a paired low surrogate.
                    if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                        text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        unsigned lo = 0;
                        if (!parseHex4(lo))
                            return false;
                        if (lo < 0xdc00 || lo > 0xdfff)
                            return fail("unpaired surrogate");
                        cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                    } else {
                        return fail("unpaired surrogate");
                    }
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        ++pos_; // '['
        out = Value::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value item;
            skipSpace();
            if (!parseValue(item, depth + 1))
                return false;
            out.push(std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        ++pos_; // '{'
        out = Value::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member name");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':'");
            Value member;
            skipSpace();
            if (!parseValue(member, depth + 1))
                return false;
            out.set(key, std::move(member));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Value::parse(const std::string &text, Value &out, std::string *error)
{
    Parser parser(text, error);
    return parser.run(out);
}

void
writeFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        raiseError(ErrorKind::IoError, "cannot create %s: %s",
                   tmp.c_str(), std::strerror(errno));
    bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
              text.size();
    ok = std::fflush(f) == 0 && ok;
    ok = ::fsync(fileno(f)) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        std::remove(tmp.c_str());
        raiseError(ErrorKind::IoError, "cannot write %s: %s",
                   path.c_str(), std::strerror(err));
    }
}

} // namespace emsc::json
