#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace emsc {

namespace {

// Atomic so worker threads may call inform() while a test scope
// flips verbosity without a data race.
std::atomic<bool> g_verbose{true};

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (!g_verbose.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace emsc
