#include "support/rng.hpp"

#include <cmath>

namespace emsc {

double
Rng::rayleigh(double sigma)
{
    // Inverse-CDF sampling: F(x) = 1 - exp(-x^2 / (2 sigma^2)).
    double u = uniform();
    if (u >= 1.0)
        u = std::nextafter(1.0, 0.0);
    return sigma * std::sqrt(-2.0 * std::log1p(-u));
}

double
Rng::skewedOvershoot(double core_sigma, double tail_mean)
{
    double core = std::fabs(gaussian(0.0, core_sigma));
    double tail = tail_mean > 0.0 ? exponential(tail_mean) : 0.0;
    return core + tail;
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; children remain
    // deterministic but decorrelated from subsequent parent draws.
    std::uint64_t child_seed = engine();
    return Rng(child_seed ^ 0x9e3779b97f4a7c15ull);
}

} // namespace emsc
