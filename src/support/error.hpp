/**
 * @file
 * Recoverable runtime errors and Result-style failure propagation.
 *
 * The library distinguishes three failure tiers (see also logging.hpp):
 *
 *  - RecoverableError / raiseError(): a *runtime-data* problem — a
 *    capture too short to analyse, an unreadable IQ file, a degenerate
 *    configuration value, an empty sample set. Thrown by library code
 *    in src/ and caught at stage boundaries (channel::receive, the
 *    core:: experiment drivers, TrialRunner::runChecked), which turn
 *    it into a structured per-result failure so a long-running sweep
 *    degrades per-capture instead of dying fleet-wide.
 *  - fatal(): reserved for CLI entry points (examples/, tools/,
 *    bench/) where exiting the process *is* the right response; see
 *    runOrDie() for the boundary adapter.
 *  - panic(): an internal invariant was violated (a bug); abort().
 */

#ifndef EMSC_SUPPORT_ERROR_HPP
#define EMSC_SUPPORT_ERROR_HPP

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "support/logging.hpp"

namespace emsc {

/** Broad classification of a recoverable runtime error. */
enum class ErrorKind {
    /** A configuration value is outside its meaningful domain. */
    InvalidConfig,
    /** Input data (a file, a bit stream) is malformed. */
    MalformedInput,
    /** Too little data to run the requested analysis. */
    InsufficientData,
    /** A file or device I/O operation failed. */
    IoError,
    /** A resource budget (quota, session slot, buffer cap) ran out. */
    ResourceExhausted,
};

/** Human-readable name of an ErrorKind ("invalid-config", ...). */
const char *errorKindName(ErrorKind kind);

/** Structured description of a recoverable failure. */
struct Error
{
    ErrorKind kind = ErrorKind::MalformedInput;
    std::string message;

    /** "kind: message" rendering for logs and diagnostics. */
    std::string describe() const;
};

/**
 * Exception carrying an Error. Thrown by raiseError() from library
 * code on malformed runtime input; callers either let it propagate to
 * a stage boundary or convert it with attempt().
 */
class RecoverableError : public std::runtime_error
{
  public:
    RecoverableError(ErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {
    }

    ErrorKind kind() const { return kind_; }

    /** Copy into a value-type Error for storage in a result struct. */
    Error toError() const { return Error{kind_, what()}; }

  private:
    ErrorKind kind_;
};

/**
 * Report a recoverable runtime-data error: format the message
 * printf-style and throw RecoverableError. The counterpart of fatal()
 * for conditions a long-running pipeline must survive.
 */
[[noreturn]] void raiseError(ErrorKind kind, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Either a value or an Error. Used where explicit-return error
 * handling reads better than exceptions (per-trial sweep results).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : val(std::move(value)) {}
    Result(Error error) : err(std::move(error)) {}

    /** Whether a value is present. */
    bool ok() const { return !err.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The value; panics (a bug) when called on a failed Result. */
    const T &
    value() const
    {
        requireOk();
        return *val;
    }

    T &
    value()
    {
        requireOk();
        return *val;
    }

    /** The error; panics (a bug) when called on a successful Result. */
    const Error &
    error() const
    {
        if (ok())
            panic("Result::error on a successful Result");
        return *err;
    }

  private:
    void
    requireOk() const
    {
        if (!ok())
            panic("Result::value on a failed Result: %s",
                  err->message.c_str());
    }

    std::optional<T> val;
    std::optional<Error> err;
};

/**
 * Run fn(), converting a thrown RecoverableError into a failed
 * Result; any other exception propagates (it is not a data error).
 */
template <typename Fn>
auto
attempt(Fn &&fn) -> Result<decltype(fn())>
{
    using R = decltype(fn());
    try {
        return Result<R>(fn());
    } catch (const RecoverableError &e) {
        return Result<R>(e.toError());
    }
}

/**
 * CLI boundary adapter: run fn() and turn a RecoverableError into
 * fatal(). Keeps exit(1)-on-bad-input behaviour in examples/, tools/
 * and bench/ entry points without any library code calling fatal()
 * on runtime data itself.
 */
template <typename Fn>
int
runOrDie(Fn &&fn)
{
    try {
        return fn();
    } catch (const RecoverableError &e) {
        fatal("%s", e.what());
    }
}

} // namespace emsc

#endif // EMSC_SUPPORT_ERROR_HPP
