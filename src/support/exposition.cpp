#include "support/exposition.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace emsc::telemetry {

namespace {

/** Shortest %g form that still round-trips a double; integers print
 * without an exponent so counter samples stay human-readable. */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[64];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

std::string
formatValue(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
emitHeader(std::string &out, const std::string &pname,
           std::string_view source, const char *type)
{
    out += "# HELP " + pname + " emsc metric " +
           promEscapeHelp(source) + "\n";
    out += "# TYPE " + pname + " " + type + "\n";
}

const json::Value &
requireObject(const json::Value &doc, const char *key)
{
    const json::Value *v = doc.find(key);
    if (!v || !v->isObject())
        raiseError(ErrorKind::MalformedInput,
                   "metrics document: missing object section '%s'", key);
    return *v;
}

double
requireNumber(const json::Value &obj, const char *key, const char *where)
{
    const json::Value *v = obj.find(key);
    if (!v || !v->isNumber())
        raiseError(ErrorKind::MalformedInput,
                   "metrics document: %s missing number '%s'", where, key);
    return v->number();
}

} // namespace

std::string
promName(std::string_view name, std::string_view suffix)
{
    std::string out = "emsc_";
    out.reserve(out.size() + name.size() + suffix.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    out.append(suffix);
    return out;
}

std::string
promEscapeLabel(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
promEscapeHelp(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
prometheusText(const MetricsSnapshot &snap)
{
    std::string out;
    // Sections render in the snapshot's name-sorted order, so output
    // is byte-stable across scrapes of identical state.
    for (const auto &[name, v] : snap.counters) {
        std::string pname = promName(name, "_total");
        emitHeader(out, pname, name, "counter");
        out += pname + " " + formatValue(v) + "\n";
    }
    for (const auto &[name, v] : snap.gauges) {
        if (std::isnan(v))
            continue; // unset gauge: no sample, not a fake zero
        std::string pname = promName(name);
        emitHeader(out, pname, name, "gauge");
        out += pname + " " + formatValue(v) + "\n";
    }
    for (const auto &[name, h] : snap.histograms) {
        std::string pname = promName(name);
        emitHeader(out, pname, name, "histogram");
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            cum += i < h.buckets.size() ? h.buckets[i] : 0;
            out += pname + "_bucket{le=\"" +
                   promEscapeLabel(formatValue(h.bounds[i])) + "\"} " +
                   formatValue(cum) + "\n";
        }
        out += pname + "_bucket{le=\"+Inf\"} " + formatValue(h.count) +
               "\n";
        out += pname + "_sum " + formatValue(h.sum) + "\n";
        out += pname + "_count " + formatValue(h.count) + "\n";
    }
    for (const auto &[name, s] : snap.spans) {
        std::string cname = promName(name, "_span_count_total");
        emitHeader(out, cname, name, "counter");
        out += cname + " " + formatValue(s.count) + "\n";
        std::string tname = promName(name, "_span_ns_total");
        emitHeader(out, tname, name, "counter");
        out += tname + " " + formatValue(s.totalNs) + "\n";
    }
    return out;
}

MetricsSnapshot
snapshotFromJson(const json::Value &doc)
{
    const json::Value *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string() != "emsc.metrics.v1")
        raiseError(ErrorKind::MalformedInput,
                   "metrics document: schema is not emsc.metrics.v1");

    MetricsSnapshot snap;
    for (const auto &[name, v] : requireObject(doc, "counters").members()) {
        if (!v.isNumber())
            raiseError(ErrorKind::MalformedInput,
                       "metrics document: counter '%s' is not a number",
                       name.c_str());
        snap.counters.emplace_back(name,
                                   static_cast<std::uint64_t>(v.number()));
    }
    for (const auto &[name, v] : requireObject(doc, "gauges").members()) {
        if (v.isNull()) {
            snap.gauges.emplace_back(
                name, std::numeric_limits<double>::quiet_NaN());
            continue;
        }
        if (!v.isNumber())
            raiseError(ErrorKind::MalformedInput,
                       "metrics document: gauge '%s' is not a number",
                       name.c_str());
        snap.gauges.emplace_back(name, v.number());
    }
    for (const auto &[name, v] :
         requireObject(doc, "histograms").members()) {
        if (!v.isObject())
            raiseError(ErrorKind::MalformedInput,
                       "metrics document: histogram '%s' is not an object",
                       name.c_str());
        HistogramSnapshot h;
        const json::Value *bounds = v.find("bounds");
        const json::Value *buckets = v.find("buckets");
        if (!bounds || !bounds->isArray() || !buckets ||
            !buckets->isArray())
            raiseError(ErrorKind::MalformedInput,
                       "metrics document: histogram '%s' missing "
                       "bounds/buckets",
                       name.c_str());
        for (const json::Value &b : bounds->items())
            h.bounds.push_back(b.number());
        for (const json::Value &b : buckets->items())
            h.buckets.push_back(static_cast<std::uint64_t>(b.number()));
        h.count = static_cast<std::uint64_t>(
            requireNumber(v, "count", name.c_str()));
        h.sum = requireNumber(v, "sum", name.c_str());
        h.min = requireNumber(v, "min", name.c_str());
        h.max = requireNumber(v, "max", name.c_str());
        snap.histograms.emplace_back(name, std::move(h));
    }
    for (const auto &[name, v] : requireObject(doc, "spans").members()) {
        if (!v.isObject())
            raiseError(ErrorKind::MalformedInput,
                       "metrics document: span '%s' is not an object",
                       name.c_str());
        SpanStat s;
        s.count = static_cast<std::uint64_t>(
            requireNumber(v, "count", name.c_str()));
        s.totalNs = static_cast<std::uint64_t>(
            requireNumber(v, "total_ns", name.c_str()));
        snap.spans.emplace_back(name, s);
    }
    return snap;
}

MetricsSnapshot
mergeSnapshots(const std::vector<MetricsSnapshot> &parts)
{
    MetricsSnapshot out;
    auto counterAt = [&](const std::string &name) -> std::uint64_t & {
        for (auto &[n, v] : out.counters)
            if (n == name)
                return v;
        out.counters.emplace_back(name, 0);
        return out.counters.back().second;
    };
    for (const MetricsSnapshot &part : parts) {
        for (const auto &[name, v] : part.counters)
            counterAt(name) += v;
        for (const auto &[name, v] : part.gauges) {
            double *prev = nullptr;
            for (auto &[n, g] : out.gauges)
                if (n == name)
                    prev = &g;
            if (!prev) {
                out.gauges.emplace_back(name, v);
            } else if (std::isnan(*prev) ||
                       (!std::isnan(v) && v > *prev)) {
                *prev = v;
            }
        }
        for (const auto &[name, h] : part.histograms) {
            HistogramSnapshot *prev = nullptr;
            for (auto &[n, ph] : out.histograms)
                if (n == name)
                    prev = &ph;
            if (!prev) {
                out.histograms.emplace_back(name, h);
                continue;
            }
            if (prev->bounds != h.bounds)
                raiseError(ErrorKind::MalformedInput,
                           "cannot merge histogram '%s': shards disagree "
                           "on bucket bounds",
                           name.c_str());
            if (prev->buckets.size() < h.buckets.size())
                prev->buckets.resize(h.buckets.size(), 0);
            for (std::size_t i = 0; i < h.buckets.size(); ++i)
                prev->buckets[i] += h.buckets[i];
            if (h.count) {
                prev->min = prev->count ? std::min(prev->min, h.min)
                                        : h.min;
                prev->max = prev->count ? std::max(prev->max, h.max)
                                        : h.max;
            }
            prev->count += h.count;
            prev->sum += h.sum;
        }
        for (const auto &[name, s] : part.spans) {
            SpanStat *prev = nullptr;
            for (auto &[n, ps] : out.spans)
                if (n == name)
                    prev = &ps;
            if (!prev) {
                out.spans.emplace_back(name, s);
            } else {
                prev->count += s.count;
                prev->totalNs += s.totalNs;
            }
        }
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(out.counters.begin(), out.counters.end(), byName);
    std::sort(out.gauges.begin(), out.gauges.end(), byName);
    std::sort(out.histograms.begin(), out.histograms.end(), byName);
    std::sort(out.spans.begin(), out.spans.end(), byName);
    return out;
}

MetricsSnapshot
mergeMetricsFiles(const std::vector<std::string> &paths,
                  std::size_t *loaded)
{
    std::vector<MetricsSnapshot> parts;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in.is_open())
            continue; // shard never ran or wrote no metrics: skip
        std::ostringstream text;
        text << in.rdbuf();
        if (!in.good() && !in.eof())
            raiseError(ErrorKind::IoError,
                       "cannot read metrics file '%s'", path.c_str());
        json::Value doc;
        std::string err;
        if (!json::Value::parse(text.str(), doc, &err))
            raiseError(ErrorKind::MalformedInput,
                       "metrics file '%s': %s", path.c_str(),
                       err.c_str());
        parts.push_back(snapshotFromJson(doc));
    }
    if (loaded)
        *loaded = parts.size();
    return mergeSnapshots(parts);
}

} // namespace emsc::telemetry
