#include "support/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/logging.hpp"

namespace emsc {

namespace {

thread_local bool tl_inside_worker = false;

/** Environment/hardware default, resolved once. */
std::size_t
defaultThreadCount()
{
    static const std::size_t resolved = [] {
        if (const char *env = std::getenv("EMSC_THREADS")) {
            char *end = nullptr;
            long v = std::strtol(env, &end, 10);
            if (end != env && v > 0)
                return static_cast<std::size_t>(v);
            warn("ignoring invalid EMSC_THREADS value \"%s\"", env);
        }
        unsigned hc = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hc > 0 ? hc : 1);
    }();
    return resolved;
}

std::atomic<std::size_t> g_override{0};

/**
 * Shared pool backing parallelFor. Created on first parallel use and
 * intentionally leaked: worker threads must outlive every static
 * destructor that might still fan out work during teardown.
 */
ThreadPool &
globalPool()
{
    static ThreadPool *pool = new ThreadPool(parallelThreads() - 1);
    return *pool;
}

} // namespace

ThreadPool &
globalThreadPool()
{
    return globalPool();
}

ThreadPool::ThreadPool(std::size_t workers)
{
    ensureWorkers(workers);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

std::size_t
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return threads.size();
}

void
ThreadPool::ensureWorkers(std::size_t workers)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (stopping)
        panic("ThreadPool::ensureWorkers after shutdown");
    while (threads.size() < workers)
        threads.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (threads.empty())
            fatal("ThreadPool::submit on a pool with no workers");
        tasks.push_back(std::move(task));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    tl_inside_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !tasks.empty(); });
            if (stopping && tasks.empty())
                return;
            task = std::move(tasks.back());
            tasks.pop_back();
        }
        task();
    }
}

std::size_t
parallelThreads()
{
    std::size_t o = g_override.load(std::memory_order_relaxed);
    return o > 0 ? o : defaultThreadCount();
}

void
setParallelThreads(std::size_t threads)
{
    g_override.store(threads, std::memory_order_relaxed);
}

ScopedThreadCount::ScopedThreadCount(std::size_t threads)
    : previous(g_override.load(std::memory_order_relaxed))
{
    setParallelThreads(threads);
}

ScopedThreadCount::~ScopedThreadCount()
{
    setParallelThreads(previous);
}

bool
insideParallelWorker()
{
    return tl_inside_worker;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    std::size_t threads = parallelThreads();
    // Serial path: configured single-threaded, trivially small, or a
    // nested call from inside a pool worker (fanning out again would
    // have the worker wait on tasks only it could run).
    if (threads <= 1 || n <= 1 || tl_inside_worker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    struct Job
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> active{0};
        std::mutex done_mtx;
        std::condition_variable done_cv;
        std::exception_ptr error;
        std::mutex error_mtx;
    };
    auto job = std::make_shared<Job>();

    auto drain = [job, &body, n] {
        for (;;) {
            std::size_t i =
                job->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job->error_mtx);
                if (!job->error)
                    job->error = std::current_exception();
            }
        }
    };

    ThreadPool &pool = globalPool();
    std::size_t helpers = std::min(threads, n) - 1;
    pool.ensureWorkers(helpers);
    job->active.store(helpers, std::memory_order_relaxed);
    for (std::size_t w = 0; w < helpers; ++w) {
        pool.submit([job, drain] {
            drain();
            if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(job->done_mtx);
                job->done_cv.notify_all();
            }
        });
    }

    // The caller works the same queue instead of idling.
    drain();

    std::unique_lock<std::mutex> lock(job->done_mtx);
    job->done_cv.wait(lock, [&job] {
        return job->active.load(std::memory_order_acquire) == 0;
    });

    if (job->error)
        std::rethrow_exception(job->error);
}

std::uint64_t
deriveSeed(std::uint64_t master, std::uint64_t index)
{
    // SplitMix64 applied to the master seed offset by the stream index
    // (golden-ratio spacing keeps adjacent indices far apart in state
    // space). Bijective mixing: no two indices collide for a fixed
    // master seed.
    std::uint64_t z = master + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace emsc
