/**
 * @file
 * Unified telemetry: a metrics registry and hierarchical trace spans.
 *
 * Every subsystem reports into one process-wide substrate instead of
 * growing bespoke counter structs:
 *
 *  - MetricsRegistry holds named counters, gauges and fixed-bucket
 *    histograms.  Counters and histograms are sharded per thread
 *    (each thread owns a shard and updates it with relaxed atomics;
 *    a snapshot merges all shards), so hot-path increments never
 *    contend.  Gauges are registry-level atomics since they are
 *    low-frequency (set once per capture, not per sample).
 *  - TraceSpan is an RAII scoped timer.  Spans aggregate per-name
 *    totals into the registry (the "spans" section of a metrics
 *    report) and, when the TraceCollector is enabled, also record
 *    individual events exportable as Chrome trace_event JSON for
 *    about:tracing / Perfetto.
 *
 * Both layers are near-zero cost when disabled: every operation
 * first checks one relaxed atomic flag and returns.  Telemetry is
 * disabled by default; `emsc_tool --metrics/--trace` and tests turn
 * it on explicitly.
 *
 * Instrumentation rules (the overhead budget): instrument per
 * capture, per chunk, per trial or per stage — never per sample or
 * per bit.  Span names must be string literals (they are stored as
 * `const char *`).
 */

#ifndef EMSC_SUPPORT_TELEMETRY_HPP
#define EMSC_SUPPORT_TELEMETRY_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace emsc::json {
class Value;
}

namespace emsc::telemetry {

/** Monotonic clock reading in nanoseconds (std::steady_clock). */
std::uint64_t steadyNowNs();

/** Merged state of one histogram at snapshot time. */
struct HistogramSnapshot
{
    /** Upper bucket bounds, ascending; values <= bounds[i] land in
     * bucket i, values above the last bound in the overflow bucket. */
    std::vector<double> bounds;
    /** bounds.size() + 1 entries; last is the overflow bucket. */
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Aggregate of all exits of one named span. */
struct SpanStat
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
};

/** Point-in-time merged view of a registry; names are sorted. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    std::vector<std::pair<std::string, SpanStat>> spans;

    /** Lookup helpers; nullptr when the name is not present. */
    const std::uint64_t *counter(std::string_view name) const;
    const double *gauge(std::string_view name) const;
    const HistogramSnapshot *histogram(std::string_view name) const;
    const SpanStat *span(std::string_view name) const;
};

/**
 * Registry of named metrics.  Registration (counterId/gaugeId/
 * histogramId) takes a lock and may be done eagerly at start-up or
 * lazily from a call site; the returned id stays valid for the
 * registry's lifetime (reset() clears values, not registrations).
 * Update paths are lock-free on the owner thread's shard.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry all library call sites report to. */
    static MetricsRegistry &global();

    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Register (or look up) a metric; panics on a kind mismatch. */
    std::size_t counterId(std::string_view name);
    std::size_t gaugeId(std::string_view name);
    std::size_t histogramId(std::string_view name,
                            const std::vector<double> &bounds);

    /** Update paths; call only when enabled() (handles do the check). */
    void counterAdd(std::size_t id, std::uint64_t n);
    void gaugeSet(std::size_t id, double v);
    /** Keep the running maximum (high-water marks). */
    void gaugeMax(std::size_t id, double v);
    void histogramObserve(std::size_t id, double v);

    /** Fold one span exit into the per-name aggregates. */
    void spanObserve(const char *name, std::uint64_t ns);

    /** Merge every shard into a stable, name-sorted snapshot. */
    MetricsSnapshot snapshot() const;
    /** Zero all values; keeps registrations and issued ids valid. */
    void reset();

  private:
    struct Impl;

    std::atomic<bool> enabled_{false};
    std::unique_ptr<Impl> impl_;
};

/**
 * Light handles caching a registry id; the intended call-site idiom
 * is a function-local static:
 *
 *     static telemetry::Counter hits(
 *         telemetry::MetricsRegistry::global(), "dsp.fft_plan.hits");
 *     hits.add();
 *
 * All operations are no-ops (one relaxed load + branch) while the
 * registry is disabled.
 */
class Counter
{
  public:
    Counter() = default;
    Counter(MetricsRegistry &reg, std::string_view name)
        : reg_(&reg), id_(reg.counterId(name))
    {
    }
    void
    add(std::uint64_t n = 1) const
    {
        if (reg_ && reg_->enabled())
            reg_->counterAdd(id_, n);
    }

  private:
    MetricsRegistry *reg_ = nullptr;
    std::size_t id_ = 0;
};

class Gauge
{
  public:
    Gauge() = default;
    Gauge(MetricsRegistry &reg, std::string_view name)
        : reg_(&reg), id_(reg.gaugeId(name))
    {
    }
    void
    set(double v) const
    {
        if (reg_ && reg_->enabled())
            reg_->gaugeSet(id_, v);
    }
    void
    max(double v) const
    {
        if (reg_ && reg_->enabled())
            reg_->gaugeMax(id_, v);
    }

  private:
    MetricsRegistry *reg_ = nullptr;
    std::size_t id_ = 0;
};

class Histogram
{
  public:
    Histogram() = default;
    Histogram(MetricsRegistry &reg, std::string_view name,
              const std::vector<double> &bounds)
        : reg_(&reg), id_(reg.histogramId(name, bounds))
    {
    }
    void
    observe(double v) const
    {
        if (reg_ && reg_->enabled())
            reg_->histogramObserve(id_, v);
    }

  private:
    MetricsRegistry *reg_ = nullptr;
    std::size_t id_ = 0;
};

/** Geometric bucket bounds from `lo` up to at least `hi`. */
std::vector<double> expBounds(double lo, double hi, double factor = 2.0);

/** One recorded span occurrence (timestamps relative to the
 * collector's epoch so events from all threads share a timeline). */
struct TraceEvent
{
    const char *name = nullptr;
    std::uint32_t tid = 0;
    /** Nesting depth on the recording thread at span entry. */
    std::uint32_t depth = 0;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
};

/**
 * Collector of individual trace events, one bounded buffer per
 * thread.  Disabled by default; when over the per-thread cap new
 * events are counted as dropped instead of recorded.
 */
class TraceCollector
{
  public:
    TraceCollector();
    ~TraceCollector();
    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    static TraceCollector &global();

    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    void record(const char *name, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint32_t depth);
    /** Nanoseconds elapsed since the collector's epoch. */
    std::uint64_t sinceEpochNs() const;

    /** All recorded events, merged across threads, sorted by start. */
    std::vector<TraceEvent> events() const;
    std::uint64_t dropped() const;
    void clear();

    /** Chrome trace_event JSON ("X" complete events). */
    std::string chromeJson() const;

  private:
    struct Impl;

    std::atomic<bool> enabled_{false};
    std::unique_ptr<Impl> impl_;
};

/**
 * RAII scoped timer.  Armed when the global metrics registry or the
 * global trace collector is enabled at construction; on destruction
 * it folds the duration into the registry's span aggregates and,
 * when tracing, records a TraceEvent.  `name` must be a string
 * literal.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name);
    ~TraceSpan();
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Current nesting depth on this thread (for tests). */
    static std::uint32_t currentDepth();

  private:
    const char *name_;
    std::uint64_t start_ = 0;
    bool armed_ = false;
};

/**
 * Test/tool guard: enables the global registry (and optionally the
 * global trace collector) for its scope, restoring the previous
 * enabled state on exit.  `resetOnExit` additionally clears the
 * values accumulated during the scope so test cases stay isolated.
 */
class ScopedTelemetry
{
  public:
    explicit ScopedTelemetry(bool metrics = true, bool trace = false,
                             bool reset_on_exit = true);
    ~ScopedTelemetry();
    ScopedTelemetry(const ScopedTelemetry &) = delete;
    ScopedTelemetry &operator=(const ScopedTelemetry &) = delete;

  private:
    bool prevMetrics_;
    bool prevTrace_;
    bool resetOnExit_;
};

/** Serialise a snapshot under the "emsc.metrics.v1" schema. */
json::Value metricsJson(const MetricsSnapshot &snap);
/** Serialise a snapshot of `reg` under the "emsc.metrics.v1" schema. */
json::Value metricsJson(const MetricsRegistry &reg);

/** Write the global registry's metrics JSON; raises IoError. */
void writeMetricsFile(const std::string &path);
/** Write the global collector's Chrome trace JSON; raises IoError. */
void writeTraceFile(const std::string &path);

} // namespace emsc::telemetry

#endif // EMSC_SUPPORT_TELEMETRY_HPP
