#include "support/error.hpp"

#include <cstdarg>
#include <cstdio>

namespace emsc {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::InvalidConfig:
        return "invalid-config";
      case ErrorKind::MalformedInput:
        return "malformed-input";
      case ErrorKind::InsufficientData:
        return "insufficient-data";
      case ErrorKind::IoError:
        return "io-error";
      case ErrorKind::ResourceExhausted:
        return "resource-exhausted";
    }
    return "unknown";
}

std::string
Error::describe() const
{
    return std::string(errorKindName(kind)) + ": " + message;
}

void
raiseError(ErrorKind kind, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);

    std::string msg;
    if (needed > 0) {
        msg.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(msg.data(), msg.size(), fmt, args);
        msg.resize(static_cast<std::size_t>(needed));
    }
    va_end(args);
    throw RecoverableError(kind, msg);
}

} // namespace emsc
