/**
 * @file
 * Minimal gem5-style status and error reporting.
 *
 * Severity model follows the gem5 convention:
 *  - inform(): normal operating message, no connotation of error.
 *  - warn():   something may be modelled imperfectly but can proceed.
 *  - fatal():  the user asked for something impossible; exit(1).
 *              Reserved for CLI entry points (examples/, tools/,
 *              bench/); library code in src/ reports runtime-data
 *              problems via raiseError() (support/error.hpp) instead.
 *  - panic():  an internal invariant was violated (a bug); abort().
 */

#ifndef EMSC_SUPPORT_LOGGING_HPP
#define EMSC_SUPPORT_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace emsc {

/** Print an informational message to stderr with an "info:" prefix. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr with a "warn:" prefix. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error (bad CLI flags, impossible parameters)
 * and terminate the process with exit code 1. Only CLI entry points
 * may call this; for runtime data reachable inside the library, throw
 * with raiseError() (support/error.hpp) so pipelines can recover.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal logic error (a bug in emsc itself) and abort(),
 * producing a core dump where enabled.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable or disable inform() output (warnings/errors always print). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

/**
 * RAII guard for the global verbosity flag: sets it for the scope
 * and restores the previous value on exit, so tests and benches that
 * silence inform() cannot leak the setting across cases.
 */
class ScopedVerbosity
{
  public:
    explicit ScopedVerbosity(bool verbose_in_scope)
        : prev_(verbose())
    {
        setVerbose(verbose_in_scope);
    }
    ~ScopedVerbosity() { setVerbose(prev_); }
    ScopedVerbosity(const ScopedVerbosity &) = delete;
    ScopedVerbosity &operator=(const ScopedVerbosity &) = delete;

  private:
    bool prev_;
};

} // namespace emsc

#endif // EMSC_SUPPORT_LOGGING_HPP
