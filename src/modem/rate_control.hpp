/**
 * @file
 * Adaptive-rate link control: a deterministic probe-measure-step
 * state machine over a ladder of symbol rates.
 *
 * The driver owns the ladder (e.g. OOK sleep periods or FSK/ASK
 * symbol periods, fastest first) and runs one probe transmission per
 * step; the controller decides the next rung from the measured BER.
 * The policy is a visited-set hill climb: a failing rung steps down,
 * a passing rung steps up while a faster rung is untried, and the
 * walk settles as soon as it would revisit a rung — which, under BER
 * monotone in rate, is exactly the fastest passing rung, reached
 * within one overshoot step of any start.
 */

#ifndef EMSC_MODEM_RATE_CONTROL_HPP
#define EMSC_MODEM_RATE_CONTROL_HPP

#include <cstddef>
#include <vector>

namespace emsc::modem {

/** Controller configuration. */
struct RateControllerConfig
{
    /** Ladder size; rung 0 is the fastest rate. */
    std::size_t rungs = 0;
    /** Starting rung. */
    std::size_t start = 0;
    /** A probe passes when its BER is at or below this. */
    double targetBer = 1e-2;
    /**
     * Payload bit rate of each rung (fastest first), published as the
     * modem.rate.current_bps gauge when provided. Size must be 0 or
     * `rungs`.
     */
    std::vector<double> rungBps;
};

/**
 * The probe-measure-step state machine. Pure and deterministic apart
 * from its telemetry side effects (modem.rate.current_bps gauge,
 * modem.rate.steps counter).
 */
class RateController
{
  public:
    /** Raises InvalidConfig on an empty ladder or bad start/bps size. */
    explicit RateController(const RateControllerConfig &config);

    /** Rung the next probe should run at. */
    std::size_t current() const { return cur; }

    /** Rate transitions taken so far. */
    std::size_t steps() const { return transitions; }

    /** True once the controller has settled on a rung. */
    bool settled() const { return done; }

    /**
     * Feed the BER measured by a probe at current(). Returns true
     * while another probe is required, false once settled.
     */
    bool report(double ber);

  private:
    void moveTo(std::size_t rung);
    void publishRate() const;

    RateControllerConfig cfg;
    std::size_t cur;
    std::size_t transitions = 0;
    bool done = false;
    /** Per-rung verdict: -1 untried, 0 failed, 1 passed. */
    std::vector<int> verdict;
};

} // namespace emsc::modem

#endif // EMSC_MODEM_RATE_CONTROL_HPP
