/**
 * @file
 * Shared machinery for the fixed-symbol-grid demodulators (B-FSK,
 * ML-ASK): incremental corrupt-span scanning, prefix-sum windows over
 * the decimated envelope, and the exhaustive grid-offset search.
 *
 * Internal to the modem library.
 */

#ifndef EMSC_MODEM_FIXED_GRID_HPP
#define EMSC_MODEM_FIXED_GRID_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "sdr/iq.hpp"

namespace emsc::modem::detail {

/** Raw-sample corrupt-span detector thresholds. */
struct SpanScannerConfig
{
    /** max(|I|,|Q|) at or below this counts as a dead sample. */
    double deadLevel = 0.02;
    /** Dead runs shorter than this many raw samples are ignored. */
    std::size_t minDeadRun = 192;
    /** max(|I|,|Q|) at or above this counts as clipped. */
    double clipLevel = 0.97;
    /** Clip runs shorter than this many raw samples are ignored. */
    std::size_t minClipRun = 8;
    /** Spans closer than this many raw samples are merged. */
    std::size_t mergeGap = 1024;
};

/**
 * Incremental dropout/saturation span scanner. Run state carries
 * across feed() calls, so chunked and whole-capture scans of the same
 * samples produce identical spans — the property the batch/streaming
 * decode-equality guarantee rests on.
 */
class FaultSpanScanner
{
  public:
    explicit FaultSpanScanner(const SpanScannerConfig &config = {})
        : cfg(config)
    {
    }

    /** Scan the next contiguous chunk of raw samples. */
    void feed(const std::vector<sdr::IqSample> &samples);

    /** Close open runs and return merged spans [begin, end). */
    std::vector<std::pair<std::size_t, std::size_t>> finish();

  private:
    void closeRun(std::size_t run, std::size_t min_run);

    SpanScannerConfig cfg;
    std::size_t pos = 0;
    std::size_t deadRun = 0;
    std::size_t clipRun = 0;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
};

/** Prefix sums for O(1) window means over an envelope. */
class PrefixSum
{
  public:
    explicit PrefixSum(const std::vector<double> &x);

    /** Sum over [a, b) with indices clamped to the data. */
    double sum(std::size_t a, std::size_t b) const;

    /** Mean over [a, b); 0 when the window is empty. */
    double mean(std::size_t a, std::size_t b) const;

    std::size_t size() const { return ps.size() - 1; }

  private:
    std::vector<double> ps;
};

/** p-th percentile (0..1) of a vector; 0 when empty. */
double percentile(std::vector<double> xs, double p);

/**
 * Mark decimated-envelope samples affected by raw corrupt spans.
 * Envelope sample j summarises the trailing `window` raw samples
 * ending at j*decimation, so a raw span [r0, r1) touches every j with
 * j*decimation in [r0, r1 + window).
 */
std::vector<std::uint8_t>
markCorruptEnvelope(const std::vector<std::pair<std::size_t, std::size_t>> &spans,
                    std::size_t envelope_len, std::size_t decimation,
                    std::size_t window);

/** A symbol grid on the decimated envelope. */
struct SymbolGrid
{
    /** Envelope index of the first symbol's start. */
    double firstStart = 0.0;
    /** Symbol period in envelope samples (not necessarily integer). */
    double periodSamples = 0.0;
    /** Number of whole symbols on the grid. */
    std::size_t count = 0;

    double start(std::size_t k) const
    {
        return firstStart + static_cast<double>(k) * periodSamples;
    }
};

/**
 * Exhaustive symbol-grid offset search. Tries every integer offset in
 * [-P, P) around `active_begin`, keeps whole symbols inside
 * [active_begin, active_end], and returns the grid maximising
 * `score(grid)` (higher is better). `score` is called once per
 * candidate with at least one symbol; count==0 grids are skipped.
 */
template <typename ScoreFn>
SymbolGrid
searchGridOffset(std::size_t active_begin, std::size_t active_end,
                 double period_samples, ScoreFn &&score)
{
    SymbolGrid best;
    double best_score = 0.0;
    bool have = false;
    auto p = static_cast<long long>(period_samples);
    if (p < 1)
        p = 1;
    for (long long off = -p; off < p; ++off) {
        double first =
            static_cast<double>(active_begin) + static_cast<double>(off);
        if (first < 0.0)
            continue;
        double span = static_cast<double>(active_end) - first;
        if (span < period_samples)
            continue;
        SymbolGrid grid;
        grid.firstStart = first;
        grid.periodSamples = period_samples;
        grid.count = static_cast<std::size_t>(span / period_samples);
        double s = score(grid);
        if (!have || s > best_score) {
            have = true;
            best_score = s;
            best = grid;
        }
    }
    return best;
}

} // namespace emsc::modem::detail

#endif // EMSC_MODEM_FIXED_GRID_HPP
