/**
 * @file
 * The OOK-RZ modem: a thin adapter over the legacy transmitter and
 * receiver pipelines. The point of this file is what it does NOT do —
 * it adds no processing of its own, so decoding through the modem
 * abstraction is bit-identical to calling channel::receive() /
 * stream::ReceiverOps directly (asserted by tests/test_modem.cpp).
 */

#include <algorithm>

#include "modem/impl.hpp"
#include "stream/receiver_ops.hpp"

namespace emsc::modem::detail {

namespace {

class OokRzModulator final : public Modulator
{
  public:
    explicit OokRzModulator(const channel::TxParams &params) : p(params) {}

    ModemKind kind() const override { return ModemKind::OokRz; }

    double
    nominalBitPeriodS(const cpu::OsModel &os) const override
    {
        return channel::CovertTransmitter::estimatedBitPeriod(os, p);
    }

    std::size_t
    symbolCount(std::size_t frame_bits) const override
    {
        return frame_bits;
    }

    void
    start(sim::EventKernel &kernel, cpu::OsModel &os,
          const channel::Bits &bits, TimeNs start,
          std::function<void(TimeNs)> done) override
    {
        tx = std::make_unique<channel::CovertTransmitter>(os, bits, p);
        kernel.scheduleAt(start, [this, &kernel, done = std::move(done)] {
            tx->start([&kernel, done] { done(kernel.now()); });
        });
    }

    TimeNs
    txStart(TimeNs scheduled_start) const override
    {
        if (tx && !tx->sentBits().empty())
            return tx->sentBits().front().start;
        return scheduled_start;
    }

  private:
    channel::TxParams p;
    std::unique_ptr<channel::CovertTransmitter> tx;
};

class OokRzDemodulator final : public Demodulator
{
  public:
    explicit OokRzDemodulator(const channel::ReceiverConfig &config)
        : cfg(config)
    {
    }

    ModemKind kind() const override { return ModemKind::OokRz; }

    DemodResult
    demodulate(const sdr::IqCapture &capture) override
    {
        return fromReceiver(channel::receive(capture, cfg));
    }

    DemodResult
    demodulateStream(stream::ChunkSource &source) override
    {
        stream::ReceiverOps ops(cfg);
        stream::StreamingResult sr = ops.runStreaming(source);
        return fromReceiver(sr.rx);
    }

  private:
    DemodResult
    fromReceiver(const channel::ReceiverResult &rx) const
    {
        DemodResult out;
        out.kind = ModemKind::OokRz;
        out.bits = rx.labeled.bits;
        out.erasures = rx.erasureMask;
        out.frame = rx.frame;
        out.carrierHz = rx.carrierHz;
        out.symbolsDecoded = rx.labeled.bits.size();
        out.erasedSymbols = static_cast<std::size_t>(
            std::count(rx.erasureMask.begin(), rx.erasureMask.end(), 1));
        out.corruptSpans = rx.corruptedSpans;
        out.diagnostic = rx.diagnostic;
        out.failure = rx.failure;
        return out;
    }

    channel::ReceiverConfig cfg;
};

} // namespace

std::unique_ptr<Modulator>
makeOokRzModulator(const ModemConfig &config)
{
    return std::make_unique<OokRzModulator>(config.ook);
}

std::unique_ptr<Demodulator>
makeOokRzDemodulator(const ModemConfig &config,
                     const channel::ReceiverConfig &receiver)
{
    (void)config;
    return std::make_unique<OokRzDemodulator>(receiver);
}

} // namespace emsc::modem::detail
