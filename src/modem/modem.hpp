/**
 * @file
 * Pluggable modulation subsystem.
 *
 * The covert channel's original encoding — OOK with return-to-zero
 * activity bursts (Fig. 3) — is only one way to key data onto the
 * VRM's switching emanation. This module abstracts "how bits become
 * power-state activity" (Modulator) and "how a capture becomes bits"
 * (Demodulator) behind one interface and ships three modems:
 *
 *  - ook-rz:  the legacy scheme, delegating to CovertTransmitter and
 *             the channel/stream receiver pipelines (bit-identical to
 *             using them directly);
 *  - bfsk:    binary FSK — each symbol retunes the VRM's switching
 *             frequency to one of two lines around the nominal, read
 *             back with a two-bin sliding-DFT discriminator;
 *  - mlask4:  4-level ASK — graded busy-duty symbols produce four
 *             distinguishable envelope amplitudes, Gray-mapped to bit
 *             pairs, with per-level thresholds recovered from a
 *             training prefix by 1-D clustering.
 *
 * Demodulators expose both a whole-capture and a chunked entry point;
 * the batch path routes through the same incremental core as the
 * streaming one, so the two decode identically by construction.
 */

#ifndef EMSC_MODEM_MODEM_HPP
#define EMSC_MODEM_MODEM_HPP

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "channel/coding.hpp"
#include "channel/receiver.hpp"
#include "channel/transmitter.hpp"
#include "cpu/os.hpp"
#include "sdr/iq.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "stream/chunk.hpp"
#include "support/error.hpp"
#include "support/types.hpp"

namespace emsc::modem {

/** The shipped modulation schemes. */
enum class ModemKind
{
    OokRz,
    Bfsk,
    Mlask4,
};

/** Stable name of a modem ("ook-rz", "bfsk", "mlask4"). */
const char *modemName(ModemKind kind);

/** Inverse of modemName(); raises InvalidConfig on unknown names. */
ModemKind parseModemName(const std::string &name);

/** Binary-FSK parameters. */
struct BfskConfig
{
    /** Symbol period (us). */
    double symbolPeriodUs = 400.0;
    /**
     * Fractional frequency shift: a 0-symbol commands
     * fsw*(1 - deviation), a 1-symbol fsw*(1 + deviation). The
     * default puts each line ~3 search bins away from the nominal, so
     * idle-time background activity (which emits at the nominal
     * frequency) does not leak into either mark/space bin.
     */
    double deviation = 0.03;
    /**
     * Fraction of each symbol spent busy. The idle tail absorbs
     * syscall overhead and scheduler slip so symbols stay on the
     * absolute grid.
     */
    double busyDuty = 0.90;
    /** Sliding-DFT window for the mark/space envelope banks. */
    std::size_t window = 256;
    /** Envelope decimation. */
    std::size_t decimation = 16;
    /**
     * |mark-space discriminator| below this marks the symbol as an
     * erasure instead of guessing the bit.
     */
    double erasureMargin = 0.12;
};

/** Four-level ASK parameters. */
struct MlaskConfig
{
    /** Symbol period (us). */
    double symbolPeriodUs = 600.0;
    /**
     * Busy-duty of each amplitude level, ascending. Graded duty maps
     * to graded envelope amplitude at the switching line; the spacing
     * widens toward the top to compensate for the envelope's concave
     * duty response (the idle skip-mode floor compresses high duties
     * more than low ones).
     */
    std::array<double, 4> dutyLevels{0.12, 0.33, 0.57, 0.95};
    /**
     * Training prefix: this many repeats of the level ramp
     * [3,2,1,0] precede the frame so the receiver can recover the
     * four level thresholds before decoding (the leading full-duty
     * symbols double as a P-state warm-up).
     */
    std::size_t trainingRepeats = 8;
    /** Sliding-DFT window for the envelope. */
    std::size_t window = 256;
    /** Envelope decimation. */
    std::size_t decimation = 16;
    /**
     * A symbol whose mean sits within this fraction of the local
     * inter-centroid gap of a decision threshold erases its bit pair
     * instead of guessing the level.
     */
    double erasureMargin = 0.18;
};

/** One modem choice plus the per-scheme knobs. */
struct ModemConfig
{
    ModemKind kind = ModemKind::OokRz;
    /** OOK-RZ transmitter timing (the legacy TxParams). */
    channel::TxParams ook;
    BfskConfig bfsk;
    MlaskConfig mlask;
    /**
     * Mark symbols overlapping detected corrupt spans (SDR dropouts,
     * saturation) as erasures for the frame parser instead of
     * decoding garbage values. Applies to the fixed-grid modems; the
     * OOK path has its own segmented-receiver erasure machinery.
     */
    bool markFaultErasures = true;
};

/**
 * Transmitter side of a modem: schedules the OS/CPU activity (and,
 * for frequency-keying schemes, the VRM retune plan) that encodes a
 * frame's channel bits.
 */
class Modulator
{
  public:
    virtual ~Modulator() = default;

    virtual ModemKind kind() const = 0;

    /** Estimated average seconds per channel bit (horizon planning). */
    virtual double nominalBitPeriodS(const cpu::OsModel &os) const = 0;

    /** Channel symbols emitted for a frame of `frame_bits` bits. */
    virtual std::size_t symbolCount(std::size_t frame_bits) const = 0;

    /**
     * Schedule the transmission of `bits` beginning at `start`;
     * `done(end)` fires once on the kernel after the final symbol.
     * Call before running the kernel.
     */
    virtual void start(sim::EventKernel &kernel, cpu::OsModel &os,
                       const channel::Bits &bits, TimeNs start,
                       std::function<void(TimeNs)> done) = 0;

    /** Time the first symbol actually started (valid after the run). */
    virtual TimeNs txStart(TimeNs scheduled_start) const
    {
        return scheduled_start;
    }

    /**
     * Switching-frequency command timeline for frequency-keying
     * modems (values in Hz; <= 0 means nominal), or nullptr for
     * amplitude-only schemes. Valid after start(); the link driver
     * installs it into the PMU before synthesising switch events.
     */
    virtual const sim::Timeline<Hertz> *frequencyPlan() const
    {
        return nullptr;
    }
};

/** Everything a demodulation pass extracted from one capture. */
struct DemodResult
{
    ModemKind kind = ModemKind::OokRz;
    /** Demodulated channel bits (includes training/garbage symbols). */
    channel::Bits bits;
    /** Erasure mask parallel to bits; empty when nothing was erased. */
    channel::Bits erasures;
    /** Frame parse of the bit stream. */
    channel::ParsedFrame frame;
    /** Spectral line (or mark line) the demodulator tracked (Hz). */
    double carrierHz = 0.0;
    /** Symbol rate used/recovered (Hz; 0 for the self-timed OOK path). */
    double symbolRateHz = 0.0;
    /** Symbols (OOK: bits) decoded from the capture. */
    std::size_t symbolsDecoded = 0;
    /** Symbols erased (fault spans or low-confidence decisions). */
    std::size_t erasedSymbols = 0;
    /** Corrupt spans (dropout/saturation) detected in the capture. */
    std::size_t corruptSpans = 0;
    /** mlask4: recovered inter-level decision thresholds (ascending). */
    std::vector<double> levelThresholds;
    /** Notes about adjusted/degraded configuration, if any. */
    std::string diagnostic;
    /** Set when demodulation stopped on a recoverable error. */
    std::optional<Error> failure;

    bool ok() const { return !failure.has_value(); }
};

/**
 * Receiver side of a modem. Stateless across calls: one instance can
 * decode many captures.
 */
class Demodulator
{
  public:
    virtual ~Demodulator() = default;

    virtual ModemKind kind() const = 0;

    /** Decode a whole capture. */
    virtual DemodResult demodulate(const sdr::IqCapture &capture) = 0;

    /**
     * Decode a chunked capture. For the fixed-grid modems this is the
     * same incremental core the batch entry feeds, so the decoded
     * payload is identical; for OOK it is the bounded-memory
     * streaming receiver.
     */
    virtual DemodResult demodulateStream(stream::ChunkSource &source) = 0;
};

/**
 * Build the transmitter for a modem.
 *
 * @param switch_frequency_hz  the target VRM's nominal switching
 *                             frequency (frequency-keying modems
 *                             derive their mark/space lines from it)
 */
std::unique_ptr<Modulator> makeModulator(const ModemConfig &config,
                                         double switch_frequency_hz);

/**
 * Build the receiver for a modem. `receiver` supplies the frame
 * format for every modem and the full pipeline configuration for the
 * OOK path; `switch_frequency_hz` anchors the fixed-grid modems'
 * expected spectral lines (a covert-channel receiver knows the agreed
 * band; tuner/oscillator ppm errors are far below one DFT bin).
 */
std::unique_ptr<Demodulator>
makeDemodulator(const ModemConfig &config,
                const channel::ReceiverConfig &receiver,
                double switch_frequency_hz);

} // namespace emsc::modem

#endif // EMSC_MODEM_MODEM_HPP
