/**
 * @file
 * Binary FSK over the VRM switching frequency.
 *
 * Transmit side: every symbol period the modulator commands the buck
 * controller to f0 = fsw*(1-dev) (space) or f1 = fsw*(1+dev) (mark)
 * through the PMU's frequency plan, and keeps the core busy for most
 * of the symbol so the line is actually radiating. Symbols sit on an
 * absolute time grid (the attacker's analogue of an absolute-deadline
 * timer loop), so OS jitter does not accumulate across the frame.
 *
 * Receive side: two sliding-DFT envelope banks track the mark and
 * space lines; the normalised discriminator d = (y1-y0)/(y1+y0)
 * swings to +-1 with the keyed line. The symbol grid offset is
 * recovered by exhaustive search (the period is agreed, only the
 * phase is unknown), maximising per-symbol discriminator decisiveness.
 * Low-|d| symbols and symbols over detected corrupt spans become
 * erasures for the frame parser rather than coin flips.
 */

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/acquisition.hpp"
#include "modem/fixed_grid.hpp"
#include "modem/impl.hpp"
#include "support/error.hpp"

namespace emsc::modem::detail {

namespace {

/**
 * Warm-up bits prepended to the frame: they pull the core to its
 * fastest P-state before the sync word and, being alternating, merely
 * extend the frame's alternating sync run as seen by the parser.
 */
constexpr std::uint8_t kWarmup[] = {1, 0, 1, 0};
constexpr std::size_t kWarmupBits = 4;

class BfskModulator final : public Modulator
{
  public:
    BfskModulator(const BfskConfig &config, double fsw)
        : cfg(config), f0(fsw * (1.0 - config.deviation)),
          f1(fsw * (1.0 + config.deviation))
    {
        if (cfg.symbolPeriodUs <= 0.0 || cfg.deviation <= 0.0 ||
            cfg.busyDuty <= 0.0 || cfg.busyDuty > 1.0)
            raiseError(ErrorKind::InvalidConfig,
                       "bfsk: symbolPeriodUs/deviation must be positive "
                       "and busyDuty in (0, 1]");
    }

    ModemKind kind() const override { return ModemKind::Bfsk; }

    double
    nominalBitPeriodS(const cpu::OsModel &os) const override
    {
        (void)os;
        return cfg.symbolPeriodUs * 1e-6;
    }

    std::size_t
    symbolCount(std::size_t frame_bits) const override
    {
        return frame_bits + kWarmupBits;
    }

    void
    start(sim::EventKernel &kernel, cpu::OsModel &os,
          const channel::Bits &bits, TimeNs start,
          std::function<void(TimeNs)> done) override
    {
        channel::Bits stream(kWarmup, kWarmup + kWarmupBits);
        stream.insert(stream.end(), bits.begin(), bits.end());

        auto period = static_cast<TimeNs>(
            std::llround(cfg.symbolPeriodUs * 1e3));
        double freq = os.cpu().config().pstates.fastest().frequency;
        auto cycles = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(cfg.busyDuty *
                                          cfg.symbolPeriodUs * 1e-6 *
                                          freq));

        plan.emplace(0.0);
        for (std::size_t k = 0; k < stream.size(); ++k) {
            TimeNs at = start + static_cast<TimeNs>(k) * period;
            plan->set(at, stream[k] ? f1 : f0);
            kernel.scheduleAt(at, [&os, cycles] {
                os.runBusyCycles(cycles, [] {});
            });
        }
        TimeNs end =
            start + static_cast<TimeNs>(stream.size()) * period;
        plan->set(end, 0.0);
        kernel.scheduleAt(end, [&kernel, done = std::move(done)] {
            done(kernel.now());
        });
    }

    const sim::Timeline<Hertz> *
    frequencyPlan() const override
    {
        return plan ? &*plan : nullptr;
    }

  private:
    BfskConfig cfg;
    double f0;
    double f1;
    std::optional<sim::Timeline<Hertz>> plan;
};

class BfskDemodulator final : public Demodulator
{
  public:
    BfskDemodulator(const ModemConfig &config,
                    const channel::ReceiverConfig &receiver, double fsw)
        : cfg(config.bfsk), frame(receiver.frame),
          markErasures(config.markFaultErasures),
          f0(fsw * (1.0 - config.bfsk.deviation)),
          f1(fsw * (1.0 + config.bfsk.deviation))
    {
    }

    ModemKind kind() const override { return ModemKind::Bfsk; }

    DemodResult
    demodulate(const sdr::IqCapture &capture) override
    {
        Banks banks(*this, capture.sampleRate, capture.centerFrequency);
        banks.feed(capture.samples);
        return decide(banks);
    }

    DemodResult
    demodulateStream(stream::ChunkSource &source) override
    {
        Banks banks(*this, source.sampleRate(),
                    source.centerFrequency());
        stream::IqChunk chunk;
        while (source.next(chunk))
            banks.feed(chunk.samples);
        return decide(banks);
    }

  private:
    /** The incremental state both entry points feed identically. */
    struct Banks
    {
        static channel::AcquisitionConfig
        acqFor(const BfskDemodulator &d)
        {
            channel::AcquisitionConfig acq;
            acq.window = d.cfg.window;
            acq.decimation = d.cfg.decimation;
            acq.harmonics = 1;
            return acq;
        }

        Banks(const BfskDemodulator &d, double sample_rate,
              double center_freq)
            : sampleRate(sample_rate),
              space(d.f0, center_freq, sample_rate, acqFor(d)),
              mark(d.f1, center_freq, sample_rate, acqFor(d))
        {
        }

        void
        feed(const std::vector<sdr::IqSample> &samples)
        {
            space.feed(samples);
            mark.feed(samples);
            scanner.feed(samples);
        }

        double sampleRate;
        channel::StreamingAcquirer space;
        channel::StreamingAcquirer mark;
        FaultSpanScanner scanner;
    };

    DemodResult
    decide(Banks &banks)
    {
        DemodResult out;
        out.kind = ModemKind::Bfsk;
        out.carrierHz = f1;
        out.symbolRateHz = 1e6 / cfg.symbolPeriodUs;
        try {
            decideImpl(banks, out);
        } catch (const RecoverableError &e) {
            out.failure = e.toError();
        }
        return out;
    }

    void
    decideImpl(Banks &banks, DemodResult &out)
    {
        const std::vector<double> &y0 = banks.space.envelope();
        const std::vector<double> &y1 = banks.mark.envelope();
        std::size_t n = std::min(y0.size(), y1.size());
        auto spans = banks.scanner.finish();
        out.corruptSpans = spans.size();

        double dec_rate =
            banks.sampleRate / static_cast<double>(cfg.decimation);
        double period = cfg.symbolPeriodUs * 1e-6 * dec_rate;
        if (static_cast<double>(n) < 4.0 * period)
            raiseError(ErrorKind::InsufficientData,
                       "bfsk: capture too short (%zu envelope samples "
                       "for a %g-sample symbol)", n, period);

        std::vector<double> s(n), d(n);
        for (std::size_t i = 0; i < n; ++i)
            s[i] = y0[i] + y1[i];
        double eps = 1e-6 * percentile(s, 0.9) + 1e-30;
        for (std::size_t i = 0; i < n; ++i)
            d[i] = (y1[i] - y0[i]) / (s[i] + eps);

        // Active span: where either keyed line carries energy. The
        // nominal-frequency background (idle gaps, other processes)
        // lands bins away from both lines and stays below threshold.
        double thr = 0.3 * percentile(s, 0.9);
        std::size_t a0 = n, a1 = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (s[i] > thr) {
                if (a0 == n)
                    a0 = i;
                a1 = i;
            }
        }
        if (a0 == n || static_cast<double>(a1 - a0) < period)
            raiseError(ErrorKind::InsufficientData,
                       "bfsk: no keyed activity above the noise floor");

        PrefixSum pd(d);
        // Measurement window per symbol: skip the DFT ramp-in at the
        // symbol start and the idle tail at its end.
        auto win = [&](double a, std::size_t &w0, std::size_t &w1) {
            w0 = static_cast<std::size_t>(
                std::llround(a + 0.35 * period));
            w1 = static_cast<std::size_t>(
                std::llround(a + 0.90 * period));
        };

        std::size_t end = std::min(
            n - 1, a1 + static_cast<std::size_t>(period));
        SymbolGrid grid = searchGridOffset(
            a0, end, period, [&](const SymbolGrid &g) {
                double acc = 0.0;
                for (std::size_t k = 0; k < g.count; ++k) {
                    std::size_t w0, w1;
                    win(g.start(k), w0, w1);
                    acc += std::fabs(pd.mean(w0, w1));
                }
                return acc / static_cast<double>(g.count);
            });
        if (grid.count == 0)
            raiseError(ErrorKind::InsufficientData,
                       "bfsk: no symbol grid fits the active span");

        std::vector<std::uint8_t> bad =
            markCorruptEnvelope(spans, n, cfg.decimation, cfg.window);
        std::vector<double> badf(bad.begin(), bad.end());
        PrefixSum pbad(badf);

        out.bits.reserve(grid.count);
        out.erasures.assign(grid.count, 0);
        bool any_erased = false;
        for (std::size_t k = 0; k < grid.count; ++k) {
            double a = grid.start(k);
            std::size_t w0, w1;
            win(a, w0, w1);
            double md = pd.mean(w0, w1);
            out.bits.push_back(md > 0.0 ? 1 : 0);
            bool erase = std::fabs(md) < cfg.erasureMargin;
            if (markErasures && !erase) {
                auto b0 = static_cast<std::size_t>(std::floor(a));
                auto b1 = static_cast<std::size_t>(
                    std::ceil(a + period));
                erase = pbad.sum(b0, b1) > 0.0;
            }
            if (erase) {
                out.erasures[k] = 1;
                any_erased = true;
                ++out.erasedSymbols;
            }
        }
        out.symbolsDecoded = grid.count;

        out.frame = any_erased
                        ? channel::parseFrame(out.bits, out.erasures,
                                              frame)
                        : channel::parseFrame(out.bits, frame);
        if (!any_erased)
            out.erasures.clear();
    }

    BfskConfig cfg;
    channel::FrameConfig frame;
    bool markErasures;
    double f0;
    double f1;
};

} // namespace

std::unique_ptr<Modulator>
makeBfskModulator(const ModemConfig &config, double switch_frequency_hz)
{
    return std::make_unique<BfskModulator>(config.bfsk,
                                           switch_frequency_hz);
}

std::unique_ptr<Demodulator>
makeBfskDemodulator(const ModemConfig &config,
                    const channel::ReceiverConfig &receiver,
                    double switch_frequency_hz)
{
    return std::make_unique<BfskDemodulator>(config, receiver,
                                             switch_frequency_hz);
}

} // namespace emsc::modem::detail
