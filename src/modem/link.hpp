/**
 * @file
 * End-to-end covert-channel runs through the modem abstraction: the
 * modem-generic counterpart of core::runCovertChannel(). One options
 * struct drives transmitter scheduling, fault injection, EM scene
 * assembly, SDR capture and demodulation for any registered modem,
 * with the same seeding discipline as the legacy driver (one master
 * RNG, fixed fork order) so runs are reproducible across machines.
 */

#ifndef EMSC_MODEM_LINK_HPP
#define EMSC_MODEM_LINK_HPP

#include <cstdint>
#include <optional>

#include "channel/coding.hpp"
#include "channel/receiver.hpp"
#include "core/device.hpp"
#include "core/setup.hpp"
#include "modem/modem.hpp"
#include "sdr/rtlsdr.hpp"
#include "sim/faults.hpp"
#include "support/error.hpp"

namespace emsc::modem {

/** Options for one modem link run. */
struct ModemLinkOptions
{
    ModemConfig modem;
    /** Random payload length when payload is empty. */
    std::size_t payloadBits = 256;
    channel::Bits payload;
    std::uint64_t seed = 1;
    /** OOK-RZ rate knob (us); 0 = the device's default. */
    double sleepPeriodUs = 0.0;
    bool backgroundActivity = true;
    double backgroundIntensity = 1.0;
    double captureMarginS = 0.02;
    /** Frame format (all modems) + full pipeline config (OOK). */
    channel::ReceiverConfig receiver;
    sdr::SdrConfig sdr;
    /** Center the SDR so the relevant lines fall in band. */
    bool autoTune = true;
    sim::FaultConfig faults;
    /** Decode via the chunked entry point instead of whole-capture. */
    bool streamingDecode = false;
    std::size_t streamChunkSamples = 1 << 15;
};

/** The transmit+capture half of a link run (demodulation not yet run). */
struct ModemCapture
{
    sdr::IqCapture capture;
    channel::Bits payload;
    channel::Bits frameBits;
    TimeNs txStart = 0;
    TimeNs txEnd = 0;
    double elapsedS = 0.0;
    std::size_t symbolsSent = 0;
    std::size_t faultEvents = 0;
    double switchingFrequency = 0.0;
};

/**
 * Run the transmitter simulation and synthesise the capture for a
 * modem link, without demodulating. Shared by runModemLink(), the
 * round-trip tests and the demodulation benchmarks (which want a
 * fixed capture to decode repeatedly). May throw RecoverableError.
 */
ModemCapture buildModemCapture(const core::DeviceProfile &device,
                               const core::MeasurementSetup &setup,
                               const ModemLinkOptions &options);

/** Outcome of one modem link run. */
struct ModemLinkResult
{
    ModemKind kind = ModemKind::OokRz;
    bool frameFound = false;
    /** Channel-bit error rates from semi-global alignment. */
    double ber = 0.0;
    double insertionProb = 0.0;
    double deletionProb = 0.0;
    /** Payload-level error rate (subs+ins+del over payload bits). */
    double berPayload = 0.0;
    double trBps = 0.0;
    double trPayloadBps = 0.0;
    double elapsedS = 0.0;
    double carrierHz = 0.0;
    std::size_t payloadBits = 0;
    std::size_t channelBits = 0;
    std::size_t symbolsSent = 0;
    std::size_t symbolsDecoded = 0;
    /** Channel-symbol substitution count from the alignment. */
    std::size_t symbolErrors = 0;
    std::size_t erasedSymbols = 0;
    std::size_t corruptSpans = 0;
    std::size_t faultEvents = 0;
    bool crcOk = false;
    channel::FrameIntegrity integrity = channel::FrameIntegrity::None;
    channel::Bits decodedPayload;
    std::optional<Error> failure;

    bool ok() const { return !failure.has_value(); }
};

/**
 * One full link run: modulate, propagate, capture, demodulate,
 * score. Never terminates the process; recoverable errors land in
 * result.failure. Publishes modem.<name>.symbols and
 * modem.<name>.symbol_errors telemetry.
 */
ModemLinkResult runModemLink(const core::DeviceProfile &device,
                             const core::MeasurementSetup &setup,
                             const ModemLinkOptions &options);

} // namespace emsc::modem

#endif // EMSC_MODEM_LINK_HPP
