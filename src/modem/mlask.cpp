/**
 * @file
 * Four-level amplitude-shift keying over graded throttling states.
 *
 * Transmit side: each symbol period the modulator burns a busy loop
 * sized to one of four duty fractions; the time-averaged envelope at
 * the switching line scales with the duty, giving four
 * distinguishable amplitude levels. Levels carry Gray-coded bit pairs
 * so a one-level decision error costs one bit, not two. A training
 * prefix of descending level ramps lets the receiver recover the
 * per-level decision thresholds without knowing the channel gain (and
 * its leading full-duty symbols warm the P-state governor up).
 *
 * Receive side: a single sliding-DFT envelope bank at the switching
 * line; symbol grid phase by exhaustive offset search scoring each
 * candidate with a shape-matched correlation: every symbol is split
 * into early/late half-window means and matched against the expected
 * busy-run occupancy of each level (the busy run starts at the symbol
 * boundary and is stretched by the trailing-window DFT smear), so the
 * scorer peaks only where the windows actually contain the symbol's
 * energy — a plain whole-symbol-mean correlation is flat across the
 * onset-delay/smear band because the periodic training ramp still
 * orders its levels under a shifted grid while random data symbols
 * inherit the previous symbol's smear. The training ramp is located
 * by the same shape-matched correlation against the [3,2,1,0]xN
 * pattern; the
 * labelled training symbols give the four level centroids directly
 * (background bursts around the transmission would otherwise pollute a
 * blind clustering), thresholds are the inter-centroid midpoints, and
 * symbols over detected corrupt spans erase both of their bits.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/acquisition.hpp"
#include "modem/fixed_grid.hpp"
#include "modem/impl.hpp"
#include "support/error.hpp"

namespace emsc::modem::detail {

namespace {

constexpr std::size_t kLevels = 4;

/** Gray code of a 2-bit value (level index <- bit pair). */
inline std::size_t
grayEncode(std::size_t p)
{
    return p ^ (p >> 1);
}

/** Inverse Gray code of a 2-bit value (bit pair <- level index). */
inline std::size_t
grayDecode(std::size_t g)
{
    std::size_t hi = (g >> 1) & 1;
    std::size_t lo = (g & 1) ^ hi;
    return (hi << 1) | lo;
}

/** Symbol levels for a frame: training ramps then Gray-coded pairs. */
std::vector<std::size_t>
symbolLevels(const channel::Bits &bits, std::size_t training_repeats)
{
    std::vector<std::size_t> levels;
    levels.reserve(training_repeats * kLevels + bits.size() / 2 + 1);
    for (std::size_t r = 0; r < training_repeats; ++r)
        for (std::size_t l = kLevels; l-- > 0;)
            levels.push_back(l);
    for (std::size_t i = 0; i < bits.size(); i += 2) {
        std::size_t hi = bits[i];
        std::size_t lo = i + 1 < bits.size() ? bits[i + 1] : 0;
        levels.push_back(grayEncode((hi << 1) | lo));
    }
    return levels;
}

class MlaskModulator final : public Modulator
{
  public:
    MlaskModulator(const MlaskConfig &config, double fsw) : cfg(config)
    {
        (void)fsw;
        if (cfg.symbolPeriodUs <= 0.0)
            raiseError(ErrorKind::InvalidConfig,
                       "mlask4: symbolPeriodUs must be positive");
        for (std::size_t l = 1; l < kLevels; ++l)
            if (cfg.dutyLevels[l] <= cfg.dutyLevels[l - 1])
                raiseError(ErrorKind::InvalidConfig,
                           "mlask4: dutyLevels must be strictly "
                           "ascending");
        if (cfg.dutyLevels.front() <= 0.0 || cfg.dutyLevels.back() > 1.0)
            raiseError(ErrorKind::InvalidConfig,
                       "mlask4: dutyLevels must lie in (0, 1]");
    }

    ModemKind kind() const override { return ModemKind::Mlask4; }

    double
    nominalBitPeriodS(const cpu::OsModel &os) const override
    {
        (void)os;
        // Two bits per symbol; the 3x horizon slack in the link driver
        // absorbs the training prefix.
        return cfg.symbolPeriodUs * 1e-6 * 0.5;
    }

    std::size_t
    symbolCount(std::size_t frame_bits) const override
    {
        return cfg.trainingRepeats * kLevels + (frame_bits + 1) / 2;
    }

    void
    start(sim::EventKernel &kernel, cpu::OsModel &os,
          const channel::Bits &bits, TimeNs start,
          std::function<void(TimeNs)> done) override
    {
        std::vector<std::size_t> levels =
            symbolLevels(bits, cfg.trainingRepeats);
        auto period = static_cast<TimeNs>(
            std::llround(cfg.symbolPeriodUs * 1e3));
        double freq = os.cpu().config().pstates.fastest().frequency;
        for (std::size_t k = 0; k < levels.size(); ++k) {
            auto cycles = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       cfg.dutyLevels[levels[k]] *
                       cfg.symbolPeriodUs * 1e-6 * freq));
            kernel.scheduleAt(
                start + static_cast<TimeNs>(k) * period,
                [&os, cycles] { os.runBusyCycles(cycles, [] {}); });
        }
        TimeNs end =
            start + static_cast<TimeNs>(levels.size()) * period;
        kernel.scheduleAt(end, [&kernel, done = std::move(done)] {
            done(kernel.now());
        });
    }

  private:
    MlaskConfig cfg;
};

class MlaskDemodulator final : public Demodulator
{
  public:
    MlaskDemodulator(const ModemConfig &config,
                     const channel::ReceiverConfig &receiver, double fsw)
        : cfg(config.mlask), frame(receiver.frame),
          markErasures(config.markFaultErasures), carrier(fsw)
    {
    }

    ModemKind kind() const override { return ModemKind::Mlask4; }

    DemodResult
    demodulate(const sdr::IqCapture &capture) override
    {
        Bank bank(*this, capture.sampleRate, capture.centerFrequency);
        bank.feed(capture.samples);
        return decide(bank);
    }

    DemodResult
    demodulateStream(stream::ChunkSource &source) override
    {
        Bank bank(*this, source.sampleRate(), source.centerFrequency());
        stream::IqChunk chunk;
        while (source.next(chunk))
            bank.feed(chunk.samples);
        return decide(bank);
    }

  private:
    struct Bank
    {
        static channel::AcquisitionConfig
        acqFor(const MlaskDemodulator &d)
        {
            channel::AcquisitionConfig acq;
            acq.window = d.cfg.window;
            acq.decimation = d.cfg.decimation;
            acq.harmonics = 1;
            return acq;
        }

        Bank(const MlaskDemodulator &d, double sample_rate,
             double center_freq)
            : sampleRate(sample_rate),
              line(d.carrier, center_freq, sample_rate, acqFor(d))
        {
        }

        void
        feed(const std::vector<sdr::IqSample> &samples)
        {
            line.feed(samples);
            scanner.feed(samples);
        }

        double sampleRate;
        channel::StreamingAcquirer line;
        FaultSpanScanner scanner;
    };

    DemodResult
    decide(Bank &bank)
    {
        DemodResult out;
        out.kind = ModemKind::Mlask4;
        out.carrierHz = carrier;
        out.symbolRateHz = 1e6 / cfg.symbolPeriodUs;
        try {
            decideImpl(bank, out);
        } catch (const RecoverableError &e) {
            out.failure = e.toError();
        }
        return out;
    }

    void
    decideImpl(Bank &bank, DemodResult &out)
    {
        const std::vector<double> &y = bank.line.envelope();
        std::size_t n = y.size();
        auto spans = bank.scanner.finish();
        out.corruptSpans = spans.size();
        std::vector<std::uint8_t> bad =
            markCorruptEnvelope(spans, n, cfg.decimation, cfg.window);
        std::vector<double> badf(bad.begin(), bad.end());
        PrefixSum pbad(badf);

        double dec_rate =
            bank.sampleRate / static_cast<double>(cfg.decimation);
        double period = cfg.symbolPeriodUs * 1e-6 * dec_rate;
        std::size_t min_symbols = cfg.trainingRepeats * kLevels;
        if (static_cast<double>(n) <
            static_cast<double>(min_symbols + 4) * period)
            raiseError(ErrorKind::InsufficientData,
                       "mlask4: capture too short (%zu envelope "
                       "samples, need the %zu-symbol training prefix "
                       "plus a frame)", n, min_symbols);

        // Smooth over one symbol period so low-duty symbols do not
        // fragment the active span.
        PrefixSum py(y);
        auto pi = static_cast<std::size_t>(std::max(1.0, period));
        std::vector<double> sm(n);
        for (std::size_t i = 0; i < n; ++i)
            sm[i] = py.mean(i + 1 > pi ? i + 1 - pi : 0, i + 1);

        double thr = 0.15 * percentile(sm, 0.9);
        std::size_t a0 = n, a1 = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (sm[i] > thr) {
                if (a0 == n)
                    a0 = i;
                a1 = i;
            }
        }
        if (a0 == n ||
            static_cast<double>(a1 - a0) <
                static_cast<double>(min_symbols) * period)
            raiseError(ErrorKind::InsufficientData,
                       "mlask4: no symbol activity above the noise "
                       "floor");

        // Per-symbol statistic. The window starts where the trailing
        // DFT window lies fully inside the symbol (envelope sample j
        // covers raw samples [j*dec - window, j*dec), so the first
        // window/dec samples smear in the previous symbol's tail).
        // All levels share one busy amplitude — only the length of
        // the front busy run encodes the level — so once the front
        // run ends, any later high sample is an OS background burst,
        // not signal: clip it to the idle floor before averaging.
        // Without this, bursts in a low-duty symbol's idle tail
        // reliably push it up a level.
        double smear = static_cast<double>(cfg.window) /
                       static_cast<double>(cfg.decimation);
        double global_span =
            percentile(y, 0.9) - percentile(y, 0.1);
        // Returns {clipped mean, clipped-sample count}. A symbol with
        // a significant clipped count is ambiguous — the high tail
        // could equally be a burst (clipping is right) or the back
        // half of a preemption-split busy run (clipping is wrong) —
        // so the caller erases it rather than trusting the decision.
        // The busy/idle threshold is taken from the symbol's own
        // min/max so a mid-capture gain step (fault injection) does
        // not invalidate it; near-flat symbols (all idle, or all busy
        // at L3) have nothing to clip and pass through unchanged.
        auto symbol_stat =
            [&](double a) -> std::pair<double, std::size_t> {
            auto w0 = static_cast<std::size_t>(
                std::llround(a + std::min(smear, 0.45 * period)));
            auto w1 = static_cast<std::size_t>(
                std::llround(a + period));
            w1 = std::min(w1, n);
            if (w1 <= w0)
                return {0.0, 0};
            double mn = y[w0], mx = y[w0];
            for (std::size_t i = w0; i < w1; ++i) {
                mn = std::min(mn, y[i]);
                mx = std::max(mx, y[i]);
            }
            if (mx - mn < 0.2 * global_span)
                return {py.mean(w0, w1), 0};
            double burst_thr = mn + 0.3 * (mx - mn);
            double acc = 0.0;
            bool in_front = true;
            std::size_t low_run = 0, clipped = 0;
            for (std::size_t i = w0; i < w1; ++i) {
                double v = y[i];
                if (in_front) {
                    // Momentary dips (pulse-skip ripple, P-state
                    // ramps) must not end the run: require a few
                    // consecutive low samples.
                    low_run = v < burst_thr ? low_run + 1 : 0;
                    if (low_run >= 3)
                        in_front = false;
                } else if (v > burst_thr) {
                    v = mn;
                    ++clipped;
                }
                acc += v;
            }
            return {acc / static_cast<double>(w1 - w0), clipped};
        };
        // Half-symbol means for the grid-phase search. Scoring whole-
        // symbol means against the training ramp has a plateau as wide
        // as the onset-delay+smear band: a grid shifted a few samples
        // early still orders the training levels correctly (it swaps
        // trailing idle for the previous symbol's smear tail), and on
        // data symbols — whose neighbours are not a known ramp — that
        // same spill decides levels. Splitting each symbol into early
        // and late halves and matching both against the expected busy
        // occupancy of each half makes the score peak where the
        // windows actually contain the symbol's energy.
        double half = 0.5 * period;
        auto early_mean = [&](double a) {
            auto w0 = static_cast<std::size_t>(std::llround(a));
            auto w1 = std::min(
                static_cast<std::size_t>(std::llround(a + half)), n);
            return w1 > w0 ? py.mean(w0, w1) : 0.0;
        };
        auto late_mean = [&](double a) {
            auto w0 = static_cast<std::size_t>(
                std::llround(a + half));
            auto w1 = std::min(
                static_cast<std::size_t>(std::llround(a + period)),
                n);
            return w1 > w0 ? py.mean(w0, w1) : 0.0;
        };
        // Expected busy occupancy of each half-window per level: the
        // busy run covers [0, duty*P + smear] of the (energy-aligned)
        // symbol, so the measured half-means fit
        // `mean = floor + gain * occupancy` with one (gain, floor)
        // across both halves — exactly what a Pearson correlation
        // against the occupancy template absorbs.
        std::array<double, kLevels> occE{}, occL{};
        for (std::size_t l = 0; l < kLevels; ++l) {
            double dur = cfg.dutyLevels[l] * period + smear;
            occE[l] = std::min(dur, half) / half;
            occL[l] = std::clamp((dur - half) / (period - half), 0.0,
                                 1.0);
        }

        // Known training level pattern, used both to score candidate
        // grid phases (the descending ramps correlate sharply only on
        // the true symbol boundaries) and to anchor the frame start.
        std::vector<std::size_t> tmpl;
        tmpl.reserve(min_symbols);
        for (std::size_t r = 0; r < cfg.trainingRepeats; ++r)
            for (std::size_t l = kLevels; l-- > 0;)
                tmpl.push_back(l);

        // A symbol overlapping a detected corrupt span (dropout,
        // saturation) must not vote in the phase search or the
        // training correlation — one dropout inside the training
        // prefix would otherwise poison the true phase's score and
        // shift the whole grid.
        auto symbol_bad = [&](double a) {
            auto b0 = static_cast<std::size_t>(
                std::max(0.0, std::floor(a)));
            auto b1 = std::min(
                n, static_cast<std::size_t>(std::ceil(a + period)));
            return b1 > b0 && pbad.sum(b0, b1) > 0.0;
        };

        auto shape_features = [&](const SymbolGrid &g,
                                  std::vector<double> &e,
                                  std::vector<double> &l,
                                  std::vector<std::uint8_t> &sk) {
            e.resize(g.count);
            l.resize(g.count);
            sk.resize(g.count);
            for (std::size_t k = 0; k < g.count; ++k) {
                double a = g.start(k);
                e[k] = early_mean(a);
                l[k] = late_mean(a);
                sk[k] = symbol_bad(a) ? 1 : 0;
            }
        };
        std::size_t end = std::min(
            n - 1, a1 + static_cast<std::size_t>(period));
        std::vector<double> fe, fl;
        std::vector<std::uint8_t> fsk;
        SymbolGrid grid = searchGridOffset(
            a0, end, period, [&](const SymbolGrid &g) {
                shape_features(g, fe, fl, fsk);
                return locateTrainingShape(fe, fl, tmpl, occE, occL,
                                           fsk)
                    .second;
            });
        if (grid.count < min_symbols)
            raiseError(ErrorKind::InsufficientData,
                       "mlask4: symbol grid shorter than the training "
                       "prefix (%zu of %zu symbols)", grid.count,
                       min_symbols);

        constexpr std::size_t kClipErase = 3;
        std::vector<double> means(grid.count);
        std::vector<std::size_t> clipped(grid.count);
        std::vector<std::uint8_t> skip(grid.count);
        for (std::size_t k = 0; k < grid.count; ++k) {
            auto [m, c] = symbol_stat(grid.start(k));
            means[k] = m;
            clipped[k] = c;
            skip[k] = symbol_bad(grid.start(k)) ? 1 : 0;
        }

        // Locate the training ramp by correlation with its known
        // level pattern. Symbols before the ramp are pre-transmission
        // background and are dropped, not decoded.
        shape_features(grid, fe, fl, fsk);
        std::size_t s0 =
            locateTrainingShape(fe, fl, tmpl, occE, occL, fsk).first;

        // Average the labelled training symbols into per-level
        // centroids, preferring symbols untouched by burst clipping
        // or fault spans.
        std::array<double, kLevels> centroids{};
        std::array<std::size_t, kLevels> cnt{};
        for (std::size_t i = 0; i < tmpl.size(); ++i) {
            if (clipped[s0 + i] >= kClipErase || skip[s0 + i] != 0)
                continue;
            centroids[tmpl[i]] += means[s0 + i];
            ++cnt[tmpl[i]];
        }
        for (std::size_t i = 0; i < tmpl.size(); ++i) {
            if (cnt[tmpl[i]] > 0)
                continue;
            centroids[tmpl[i]] += means[s0 + i];
        }
        for (std::size_t l = 0; l < kLevels; ++l) {
            double d = cnt[l] > 0
                           ? static_cast<double>(cnt[l])
                           : static_cast<double>(
                                 cfg.trainingRepeats);
            centroids[l] /= d;
        }
        bool ascending = true;
        for (std::size_t l = 1; l < kLevels; ++l)
            ascending = ascending && centroids[l] > centroids[l - 1];
        if (!ascending) {
            // Training mislocated (e.g. swamped by interference):
            // fall back to blind clustering of the post-anchor
            // symbols so a frame search still gets a chance.
            std::vector<double> tail(
                means.begin() + static_cast<std::ptrdiff_t>(s0),
                means.end());
            centroids = cluster(tail);
            out.diagnostic = "training ramp not recovered; "
                             "fell back to blind level clustering";
        }
        out.levelThresholds.resize(kLevels - 1);
        for (std::size_t l = 0; l + 1 < kLevels; ++l)
            out.levelThresholds[l] =
                0.5 * (centroids[l] + centroids[l + 1]);

        out.bits.reserve((grid.count - s0) * 2);
        out.erasures.reserve((grid.count - s0) * 2);
        bool any_erased = false;
        for (std::size_t k = s0; k < grid.count; ++k) {
            std::size_t level = 0;
            while (level + 1 < kLevels &&
                   means[k] > out.levelThresholds[level])
                ++level;
            std::size_t p = grayDecode(level);
            // Low-confidence decision: too close to a neighbouring
            // threshold relative to the local inter-centroid gap, or
            // enough clipped energy that burst and split busy run
            // cannot be told apart.
            bool erase = clipped[k] >= kClipErase;
            for (std::size_t l = 0; l + 1 < kLevels; ++l) {
                double gap = centroids[l + 1] - centroids[l];
                if (std::fabs(means[k] - out.levelThresholds[l]) <
                    cfg.erasureMargin * gap)
                    erase = true;
            }
            if (markErasures && !erase)
                erase = skip[k] != 0;
            out.bits.push_back((p >> 1) & 1);
            out.bits.push_back(p & 1);
            out.erasures.push_back(erase ? 1 : 0);
            out.erasures.push_back(erase ? 1 : 0);
            if (erase) {
                any_erased = true;
                ++out.erasedSymbols;
            }
        }
        out.symbolsDecoded = grid.count - s0;

        out.frame = any_erased
                        ? channel::parseFrame(out.bits, out.erasures,
                                              frame)
                        : channel::parseFrame(out.bits, frame);
        if (!any_erased)
            out.erasures.clear();
    }

    /**
     * {index, correlation} of the training ramp inside the per-symbol
     * early/late half-window means, by maximum masked Pearson
     * correlation against the expected per-level half-occupancies.
     * Each candidate window contributes two points per symbol (early,
     * late) to one correlation, fitting `mean = floor + gain *
     * occupancy` with a single gain/floor — so the score rewards
     * windows that contain each symbol's energy where the level's
     * duty says it should be, and decays off the true grid phase
     * instead of plateauing the way whole-symbol means do. Symbols
     * flagged in `skip` (fault-span overlap) are left out; a window
     * with fewer than half its symbols clean is not considered.
     */
    static std::pair<std::size_t, double>
    locateTrainingShape(const std::vector<double> &early,
                        const std::vector<double> &late,
                        const std::vector<std::size_t> &tmpl,
                        const std::array<double, kLevels> &occ_early,
                        const std::array<double, kLevels> &occ_late,
                        const std::vector<std::uint8_t> &skip)
    {
        std::size_t w = tmpl.size();
        std::size_t best = 0;
        double best_score = -1.0;
        for (std::size_t s = 0; s + w <= early.size(); ++s) {
            double m_mean = 0.0, t_mean = 0.0;
            std::size_t used = 0;
            for (std::size_t i = 0; i < w; ++i) {
                if (skip[s + i] != 0)
                    continue;
                m_mean += early[s + i] + late[s + i];
                t_mean += occ_early[tmpl[i]] + occ_late[tmpl[i]];
                ++used;
            }
            if (used < (w + 1) / 2)
                continue;
            m_mean /= static_cast<double>(2 * used);
            t_mean /= static_cast<double>(2 * used);
            double dot = 0.0, m_norm = 0.0, t_norm = 0.0;
            auto accum = [&](double m, double t) {
                double dm = m - m_mean;
                double dt = t - t_mean;
                dot += dm * dt;
                m_norm += dm * dm;
                t_norm += dt * dt;
            };
            for (std::size_t i = 0; i < w; ++i) {
                if (skip[s + i] != 0)
                    continue;
                accum(early[s + i], occ_early[tmpl[i]]);
                accum(late[s + i], occ_late[tmpl[i]]);
            }
            double score =
                dot / std::sqrt(t_norm * m_norm + 1e-30);
            if (score > best_score) {
                best_score = score;
                best = s;
            }
        }
        return {best, best_score};
    }

    /** Deterministic 1-D Lloyd clustering, centroids ascending. */
    static std::array<double, kLevels>
    cluster(const std::vector<double> &xs)
    {
        std::array<double, kLevels> c{};
        for (std::size_t l = 0; l < kLevels; ++l)
            c[l] = percentile(
                xs, (static_cast<double>(l) + 0.5) /
                        static_cast<double>(kLevels));
        for (int iter = 0; iter < 25; ++iter) {
            std::array<double, kLevels> sum{};
            std::array<std::size_t, kLevels> cnt{};
            for (double x : xs) {
                std::size_t best = 0;
                double best_d = std::fabs(x - c[0]);
                for (std::size_t l = 1; l < kLevels; ++l) {
                    double dl = std::fabs(x - c[l]);
                    if (dl < best_d) {
                        best_d = dl;
                        best = l;
                    }
                }
                sum[best] += x;
                ++cnt[best];
            }
            for (std::size_t l = 0; l < kLevels; ++l)
                if (cnt[l] > 0)
                    c[l] = sum[l] / static_cast<double>(cnt[l]);
            std::sort(c.begin(), c.end());
        }
        return c;
    }

    MlaskConfig cfg;
    channel::FrameConfig frame;
    bool markErasures;
    double carrier;
};

} // namespace

std::unique_ptr<Modulator>
makeMlaskModulator(const ModemConfig &config, double switch_frequency_hz)
{
    return std::make_unique<MlaskModulator>(config.mlask,
                                            switch_frequency_hz);
}

std::unique_ptr<Demodulator>
makeMlaskDemodulator(const ModemConfig &config,
                     const channel::ReceiverConfig &receiver,
                     double switch_frequency_hz)
{
    return std::make_unique<MlaskDemodulator>(config, receiver,
                                              switch_frequency_hz);
}

} // namespace emsc::modem::detail
