#include "modem/link.hpp"

#include <algorithm>

#include "channel/metrics.hpp"
#include "cpu/os.hpp"
#include "em/scene.hpp"
#include "sim/kernel.hpp"
#include "stream/chunk.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "vrm/pmu.hpp"

namespace emsc::modem {

namespace {

/** Lead-in of system idle time before the transmitter starts. */
constexpr TimeNs kLeadIn = 5 * kMillisecond;

channel::Bits
randomPayload(std::size_t nbits, Rng &rng)
{
    channel::Bits bits(nbits);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    return bits;
}

} // namespace

ModemCapture
buildModemCapture(const core::DeviceProfile &device,
                  const core::MeasurementSetup &setup,
                  const ModemLinkOptions &options)
{
    // Same master/fork discipline as core::runCovertChannel so seeded
    // modem runs reproduce independently of modem kind.
    Rng master(options.seed);
    Rng rng_payload = master.fork();
    Rng rng_os = master.fork();
    Rng rng_vrm = master.fork();
    Rng rng_em = master.fork();
    Rng rng_sdr = master.fork();

    ModemCapture out;
    out.switchingFrequency = device.buck.switchFrequency;
    out.payload = options.payload.empty()
                      ? randomPayload(options.payloadBits, rng_payload)
                      : options.payload;
    out.frameBits =
        channel::buildFrame(out.payload, options.receiver.frame);

    sim::EventKernel kernel;
    cpu::CpuCore core(kernel, device.core);
    cpu::OsModel os(kernel, core, device.os, rng_os);

    ModemConfig modem_cfg = options.modem;
    modem_cfg.ook.sleepPeriodUs = options.sleepPeriodUs > 0.0
                                      ? options.sleepPeriodUs
                                      : device.defaultSleepUs;
    std::unique_ptr<Modulator> mod =
        makeModulator(modem_cfg, device.buck.switchFrequency);
    out.symbolsSent = mod->symbolCount(out.frameBits.size());

    double est_bit = mod->nominalBitPeriodS(os);
    TimeNs horizon =
        kLeadIn +
        fromSeconds(est_bit *
                    static_cast<double>(out.frameBits.size()) * 3.0) +
        kSecond;

    sim::FaultPlan faults;
    if (options.faults.active()) {
        sim::FaultConfig fault_cfg = options.faults;
        if (fault_cfg.seed == 0)
            fault_cfg.seed = deriveSeed(options.seed, 0x464155ull);
        faults = sim::buildFaultPlan(fault_cfg, 0, horizon);
        out.faultEvents = faults.events.size();
        os.schedulePreemptions(faults);
    }

    if (options.backgroundActivity) {
        os.setBackgroundIntensity(options.backgroundIntensity);
        os.startBackgroundActivity(horizon);
    }

    bool done = false;
    TimeNs tx_end = 0;
    mod->start(kernel, os, out.frameBits, kLeadIn, [&](TimeNs end) {
        done = true;
        tx_end = end;
    });

    while (!done && kernel.now() < horizon)
        kernel.runUntil(kernel.now() + 10 * kMillisecond);
    if (!done) {
        warn("modem transmission did not finish within the horizon");
        tx_end = kernel.now();
    }

    out.txStart = mod->txStart(kLeadIn);
    out.txEnd = tx_end;
    out.elapsedS = toSeconds(tx_end - out.txStart);

    TimeNs margin = fromSeconds(options.captureMarginS);
    TimeNs t0 = std::max<TimeNs>(0, out.txStart - margin);
    TimeNs t1 = tx_end + margin;

    vrm::Pmu pmu(core, device.buck, rng_vrm);
    if (const sim::Timeline<Hertz> *plan = mod->frequencyPlan())
        pmu.setFrequencyPlan(*plan);
    std::vector<vrm::SwitchEvent> events = pmu.switchingEvents(t0, t1);

    em::SceneConfig scene = makeScene(device.emitterCoupling, setup);
    if (faults.countOf(sim::FaultKind::InterfererOnset) > 0)
        scene.environment =
            em::applyInterfererOnsets(scene.environment, faults);
    em::ReceptionPlan plan =
        em::buildReceptionPlan(scene, events, t0, t1, rng_em);

    sdr::SdrConfig sdr_cfg = options.sdr;
    if (options.autoTune)
        sdr_cfg.centerFrequency = 1.5 * device.buck.switchFrequency;
    sdr::RtlSdr radio(sdr_cfg, rng_sdr);
    out.capture =
        radio.capture(plan, t0, t1, faults.empty() ? nullptr : &faults);
    return out;
}

namespace {

ModemLinkResult
runModemLinkImpl(const core::DeviceProfile &device,
                 const core::MeasurementSetup &setup,
                 const ModemLinkOptions &options)
{
    ModemLinkResult result;
    result.kind = options.modem.kind;

    ModemCapture cap = buildModemCapture(device, setup, options);
    result.payloadBits = cap.payload.size();
    result.channelBits = cap.frameBits.size();
    result.symbolsSent = cap.symbolsSent;
    result.faultEvents = cap.faultEvents;
    result.elapsedS = cap.elapsedS;
    if (result.elapsedS > 0.0) {
        result.trBps = static_cast<double>(cap.frameBits.size()) /
                       result.elapsedS;
        result.trPayloadBps =
            static_cast<double>(cap.payload.size()) / result.elapsedS;
    }

    std::unique_ptr<Demodulator> demod = makeDemodulator(
        options.modem, options.receiver, device.buck.switchFrequency);
    DemodResult rx;
    if (options.streamingDecode) {
        stream::MemoryChunkSource source(cap.capture,
                                         options.streamChunkSamples);
        rx = demod->demodulateStream(source);
    } else {
        rx = demod->demodulate(cap.capture);
    }

    result.carrierHz = rx.carrierHz;
    result.frameFound = rx.frame.found;
    result.symbolsDecoded = rx.symbolsDecoded;
    result.erasedSymbols = rx.erasedSymbols;
    result.corruptSpans = rx.corruptSpans;
    result.crcOk = rx.frame.crcOk;
    result.integrity = rx.frame.integrity;
    result.decodedPayload = rx.frame.payload;
    if (!rx.ok()) {
        result.failure = rx.failure;
        return result;
    }
    if (!rx.frame.found)
        return result;

    const channel::FrameConfig &fc = options.receiver.frame;
    std::size_t prefix = fc.syncBits + fc.zeroBits + fc.preamble.size();
    channel::Bits tx_body(cap.frameBits.begin() +
                              static_cast<std::ptrdiff_t>(prefix),
                          cap.frameBits.end());
    channel::Bits rx_tail(
        rx.bits.begin() + static_cast<std::ptrdiff_t>(std::min(
                              rx.frame.payloadStart, rx.bits.size())),
        rx.bits.end());
    channel::AlignmentCounts counts =
        channel::alignBitsSemiGlobal(tx_body, rx_tail);
    result.ber = counts.errorRate();
    result.insertionProb = counts.insertionRate();
    result.deletionProb = counts.deletionRate();
    // Symbol-error estimate from bit substitutions: one decision per
    // bit for the binary modems, one per bit pair for mlask4.
    result.symbolErrors = options.modem.kind == ModemKind::Mlask4
                              ? (counts.substitutions + 1) / 2
                              : counts.substitutions;

    channel::AlignmentCounts pcounts =
        channel::alignBits(cap.payload, rx.frame.payload);
    result.berPayload =
        (static_cast<double>(pcounts.substitutions) +
         static_cast<double>(pcounts.insertions) +
         static_cast<double>(pcounts.deletions)) /
        static_cast<double>(cap.payload.size());
    return result;
}

/** Per-modem symbol counters under the documented metric names. */
void
publishModemTelemetry(const ModemLinkResult &result)
{
    telemetry::MetricsRegistry &reg = telemetry::MetricsRegistry::global();
    static telemetry::Counter runs(reg, "modem.runs");
    static telemetry::Counter framesFound(reg, "modem.frames_found");
    static telemetry::Counter failedRuns(reg, "modem.failed_runs");
    static telemetry::Counter ookSymbols(reg, "modem.ook-rz.symbols");
    static telemetry::Counter ookErrors(reg,
                                        "modem.ook-rz.symbol_errors");
    static telemetry::Counter bfskSymbols(reg, "modem.bfsk.symbols");
    static telemetry::Counter bfskErrors(reg,
                                         "modem.bfsk.symbol_errors");
    static telemetry::Counter mlaskSymbols(reg, "modem.mlask4.symbols");
    static telemetry::Counter mlaskErrors(reg,
                                          "modem.mlask4.symbol_errors");
    if (!reg.enabled())
        return;
    runs.add();
    if (result.frameFound)
        framesFound.add();
    if (result.failure)
        failedRuns.add();
    telemetry::Counter *symbols = nullptr;
    telemetry::Counter *errors = nullptr;
    switch (result.kind) {
    case ModemKind::OokRz:
        symbols = &ookSymbols;
        errors = &ookErrors;
        break;
    case ModemKind::Bfsk:
        symbols = &bfskSymbols;
        errors = &bfskErrors;
        break;
    case ModemKind::Mlask4:
        symbols = &mlaskSymbols;
        errors = &mlaskErrors;
        break;
    }
    if (symbols != nullptr) {
        symbols->add(result.symbolsDecoded);
        errors->add(result.symbolErrors);
    }
}

} // namespace

ModemLinkResult
runModemLink(const core::DeviceProfile &device,
             const core::MeasurementSetup &setup,
             const ModemLinkOptions &options)
{
    telemetry::TraceSpan span("modem.link_run");
    ModemLinkResult result;
    result.kind = options.modem.kind;
    try {
        result = runModemLinkImpl(device, setup, options);
    } catch (const RecoverableError &e) {
        result.failure = e.toError();
    }
    publishModemTelemetry(result);
    return result;
}

} // namespace emsc::modem
