#include "modem/scenes.hpp"

#include <algorithm>
#include <memory>

#include "channel/metrics.hpp"
#include "channel/transmitter.hpp"
#include "core/setup.hpp"
#include "cpu/os.hpp"
#include "em/scene.hpp"
#include "sim/kernel.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "vrm/pmu.hpp"

namespace emsc::modem {

const char *
twoTxSceneName(TwoTxScene scene)
{
    switch (scene) {
    case TwoTxScene::Collision:
        return "collision";
    case TwoTxScene::Fdm:
        return "fdm";
    case TwoTxScene::NearFar:
        return "near-far";
    }
    return "unknown";
}

namespace {

constexpr TimeNs kLeadIn = 5 * kMillisecond;

channel::Bits
randomPayload(std::size_t nbits, Rng &rng)
{
    channel::Bits bits(nbits);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    return bits;
}

/** One transmitter's simulation stack, kept alive for PMU synthesis. */
struct TxRun
{
    core::DeviceProfile device;
    channel::Bits payload;
    channel::Bits frameBits;
    std::unique_ptr<sim::EventKernel> kernel;
    std::unique_ptr<cpu::CpuCore> core;
    std::unique_ptr<cpu::OsModel> os;
    std::unique_ptr<channel::CovertTransmitter> tx;
    TimeNs start = 0;
    TimeNs end = 0;
};

void
runTransmitter(TxRun &run, const TwoTxOptions &options, Rng &rng_os)
{
    run.kernel = std::make_unique<sim::EventKernel>();
    run.core = std::make_unique<cpu::CpuCore>(*run.kernel,
                                              run.device.core);
    run.os = std::make_unique<cpu::OsModel>(*run.kernel, *run.core,
                                            run.device.os, rng_os);

    channel::TxParams params;
    params.sleepPeriodUs = options.sleepPeriodUs > 0.0
                               ? options.sleepPeriodUs
                               : run.device.defaultSleepUs;
    run.tx = std::make_unique<channel::CovertTransmitter>(
        *run.os, run.frameBits, params);

    double est_bit =
        channel::CovertTransmitter::estimatedBitPeriod(*run.os, params);
    TimeNs horizon =
        kLeadIn +
        fromSeconds(est_bit *
                    static_cast<double>(run.frameBits.size()) * 3.0) +
        kSecond;
    run.os->startBackgroundActivity(horizon);

    bool done = false;
    run.kernel->scheduleAt(kLeadIn, [&] {
        run.tx->start([&] {
            done = true;
            run.end = run.kernel->now();
        });
    });
    while (!done && run.kernel->now() < horizon)
        run.kernel->runUntil(run.kernel->now() + 10 * kMillisecond);
    if (!done) {
        warn("two-tx scene: transmitter did not finish in the horizon");
        run.end = run.kernel->now();
    }
    run.start = run.tx->sentBits().empty()
                    ? kLeadIn
                    : run.tx->sentBits().front().start;
}

/** Score one decode attempt against one transmitter's payload. */
TwoTxOutcome
scoreAgainst(const channel::ReceiverResult &rx,
             const channel::Bits &payload)
{
    TwoTxOutcome out;
    out.frameFound = rx.frame.found;
    out.carrierHz = rx.carrierHz;
    if (!rx.frame.found)
        return out;
    channel::AlignmentCounts counts =
        channel::alignBits(payload, rx.frame.payload);
    out.berPayload = (static_cast<double>(counts.substitutions) +
                      static_cast<double>(counts.insertions) +
                      static_cast<double>(counts.deletions)) /
                     static_cast<double>(payload.size());
    out.payloadRecovered = rx.frame.payload == payload;
    return out;
}

TwoTxResult
runTwoTransmitterSceneImpl(TwoTxScene scene,
                           const core::DeviceProfile &device,
                           const TwoTxOptions &options)
{
    Rng master(options.seed);
    Rng rng_payload_a = master.fork();
    Rng rng_payload_b = master.fork();
    Rng rng_os_a = master.fork();
    Rng rng_os_b = master.fork();
    Rng rng_vrm_a = master.fork();
    Rng rng_vrm_b = master.fork();
    Rng rng_em = master.fork();
    Rng rng_sdr = master.fork();

    TwoTxResult result;
    result.scene = scene;

    TxRun a, b;
    a.device = device;
    b.device = device;
    switch (scene) {
    case TwoTxScene::Collision:
    case TwoTxScene::NearFar:
        // Distinct oscillators: the same nominal part, a few hundred
        // ppm apart — well inside one search bin, a true co-channel.
        b.device.buck.frequencyErrorPpm += 300.0;
        break;
    case TwoTxScene::Fdm:
        // A keys the low line f, B the high line 2f. Running A's buck
        // at 50% duty nulls its even harmonics, so A's second
        // harmonic does not land on B's fundamental.
        a.device.buck.switchFrequency = 0.5 * device.buck.switchFrequency;
        a.device.buck.dutyCycle = 0.5;
        break;
    }

    a.payload = randomPayload(options.payloadBits, rng_payload_a);
    b.payload = randomPayload(options.payloadBits, rng_payload_b);
    a.frameBits = channel::buildFrame(a.payload, options.receiver.frame);
    b.frameBits = channel::buildFrame(b.payload, options.receiver.frame);

    runTransmitter(a, options, rng_os_a);
    runTransmitter(b, options, rng_os_b);

    TimeNs margin = fromSeconds(options.captureMarginS);
    TimeNs t0 = std::max<TimeNs>(0, std::min(a.start, b.start) - margin);
    TimeNs t1 = std::max(a.end, b.end) + margin;

    vrm::Pmu pmu_a(*a.core, a.device.buck, rng_vrm_a);
    std::vector<vrm::SwitchEvent> events_a = pmu_a.switchingEvents(t0, t1);
    vrm::Pmu pmu_b(*b.core, b.device.buck, rng_vrm_b);
    std::vector<vrm::SwitchEvent> events_b = pmu_b.switchingEvents(t0, t1);

    core::MeasurementSetup near = core::nearFieldSetup();
    em::SceneConfig scene_cfg =
        core::makeScene(device.emitterCoupling, near);
    std::vector<em::EmitterStream> emitters(2);
    emitters[0].emitterCoupling = device.emitterCoupling;
    emitters[0].path = near.path;
    emitters[0].events = &events_a;
    emitters[1].emitterCoupling = device.emitterCoupling;
    emitters[1].path = scene == TwoTxScene::NearFar
                           ? core::distanceSetup(options.farDistanceM).path
                           : near.path;
    emitters[1].events = &events_b;
    em::ReceptionPlan plan =
        em::buildMultiReceptionPlan(scene_cfg, emitters, t0, t1, rng_em);

    sdr::SdrConfig sdr_cfg = options.sdr;
    // Center between the lowest fundamental and its first harmonic so
    // every keyed line stays in band.
    sdr_cfg.centerFrequency =
        1.5 * std::min(a.device.buck.switchFrequency,
                       b.device.buck.switchFrequency);
    sdr::RtlSdr radio(sdr_cfg, rng_sdr);
    sdr::IqCapture capture = radio.capture(plan, t0, t1);

    // Carrier census: the FDM-aware multi-line search, plus what the
    // legacy single-line estimator would have picked.
    channel::AcquisitionConfig search = options.receiver.acquisition;
    search.fdmAware = true;
    search.quietSearch = true;
    result.lines = channel::estimateCarriers(capture, search, 4);
    channel::AcquisitionConfig single = options.receiver.acquisition;
    single.quietSearch = true;
    result.singleEstimateHz = channel::estimateCarrier(capture, single);

    if (scene == TwoTxScene::Fdm) {
        // Per-transmitter decode on a band around its own line,
        // fundamental only (the harmonic bins belong to the other
        // transmitter's part of the spectrum).
        const TxRun *runs[2] = {&a, &b};
        for (std::size_t i = 0; i < 2; ++i) {
            channel::ReceiverConfig cfg = options.receiver;
            double fx = runs[i]->device.buck.switchFrequency;
            cfg.acquisition.searchLowHz = fx - 40e3;
            cfg.acquisition.searchHighHz = fx + 40e3;
            cfg.acquisition.harmonics = 1;
            channel::ReceiverResult rx = channel::receive(capture, cfg);
            result.tx[i] = scoreAgainst(rx, runs[i]->payload);
        }
    } else {
        // One full-band decode; score it against both payloads. Both
        // outcomes share the frame/carrier — the interesting question
        // is whose payload (if anyone's) survived.
        channel::ReceiverResult rx =
            channel::receive(capture, options.receiver);
        result.tx[0] = scoreAgainst(rx, a.payload);
        result.tx[1] = scoreAgainst(rx, b.payload);
    }
    return result;
}

} // namespace

TwoTxResult
runTwoTransmitterScene(TwoTxScene scene, const core::DeviceProfile &device,
                       const TwoTxOptions &options)
{
    TwoTxResult result;
    result.scene = scene;
    try {
        result = runTwoTransmitterSceneImpl(scene, device, options);
    } catch (const RecoverableError &e) {
        result.failure = e.toError();
    }
    return result;
}

} // namespace emsc::modem
