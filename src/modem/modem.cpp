#include "modem/modem.hpp"

#include "modem/impl.hpp"
#include "support/error.hpp"

namespace emsc::modem {

const char *
modemName(ModemKind kind)
{
    switch (kind) {
    case ModemKind::OokRz:
        return "ook-rz";
    case ModemKind::Bfsk:
        return "bfsk";
    case ModemKind::Mlask4:
        return "mlask4";
    }
    return "unknown";
}

ModemKind
parseModemName(const std::string &name)
{
    if (name == "ook-rz")
        return ModemKind::OokRz;
    if (name == "bfsk")
        return ModemKind::Bfsk;
    if (name == "mlask4")
        return ModemKind::Mlask4;
    raiseError(ErrorKind::InvalidConfig,
               "unknown modem '%s' (expected ook-rz, bfsk or mlask4)",
               name.c_str());
}

std::unique_ptr<Modulator>
makeModulator(const ModemConfig &config, double switch_frequency_hz)
{
    switch (config.kind) {
    case ModemKind::OokRz:
        return detail::makeOokRzModulator(config);
    case ModemKind::Bfsk:
        return detail::makeBfskModulator(config, switch_frequency_hz);
    case ModemKind::Mlask4:
        return detail::makeMlaskModulator(config, switch_frequency_hz);
    }
    raiseError(ErrorKind::InvalidConfig, "unknown modem kind %d",
               static_cast<int>(config.kind));
}

std::unique_ptr<Demodulator>
makeDemodulator(const ModemConfig &config,
                const channel::ReceiverConfig &receiver,
                double switch_frequency_hz)
{
    switch (config.kind) {
    case ModemKind::OokRz:
        return detail::makeOokRzDemodulator(config, receiver);
    case ModemKind::Bfsk:
        return detail::makeBfskDemodulator(config, receiver,
                                           switch_frequency_hz);
    case ModemKind::Mlask4:
        return detail::makeMlaskDemodulator(config, receiver,
                                            switch_frequency_hz);
    }
    raiseError(ErrorKind::InvalidConfig, "unknown modem kind %d",
               static_cast<int>(config.kind));
}

} // namespace emsc::modem
