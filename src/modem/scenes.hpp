/**
 * @file
 * Multi-transmitter scene experiments: two machines radiating into
 * one antenna.
 *
 * Three geometries matter for the ablation:
 *  - collision: both VRMs on the same nominal switching frequency at
 *    comparable power — co-channel interference, neither reliably
 *    decodable;
 *  - fdm: transmitters keyed on harmonically related lines f and 2f.
 *    The low transmitter runs its buck at 50% duty so its second
 *    harmonic (which would land exactly on the high transmitter's
 *    fundamental) is nulled, and the FDM-aware carrier search keeps
 *    the 2f line from being demoted as "somebody's harmonic";
 *  - near-far: same frequency, but one transmitter close and one
 *    distant — the classic capture effect, the near one wins.
 */

#ifndef EMSC_MODEM_SCENES_HPP
#define EMSC_MODEM_SCENES_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "channel/acquisition.hpp"
#include "channel/receiver.hpp"
#include "core/device.hpp"
#include "sdr/rtlsdr.hpp"
#include "support/error.hpp"

namespace emsc::modem {

/** The two-transmitter geometries. */
enum class TwoTxScene
{
    Collision,
    Fdm,
    NearFar,
};

/** Stable name ("collision", "fdm", "near-far"). */
const char *twoTxSceneName(TwoTxScene scene);

/** Options for a two-transmitter run. */
struct TwoTxOptions
{
    std::uint64_t seed = 1;
    /** Payload bits per transmitter (payloads are independent). */
    std::size_t payloadBits = 96;
    /** OOK sleep period (us); 0 = the device default. */
    double sleepPeriodUs = 0.0;
    double captureMarginS = 0.02;
    /** Receiver pipeline template (acquisition band is overridden). */
    channel::ReceiverConfig receiver;
    sdr::SdrConfig sdr;
    /** Line-of-sight distance of the far transmitter (near-far). */
    double farDistanceM = 0.3;
};

/** Per-transmitter outcome. */
struct TwoTxOutcome
{
    bool frameFound = false;
    /** Decoded payload matches this transmitter's payload exactly. */
    bool payloadRecovered = false;
    /** Payload-level error rate against this transmitter's payload. */
    double berPayload = 1.0;
    /** Line the decode attempt locked on (Hz; 0 = none). */
    double carrierHz = 0.0;
};

/** Everything a two-transmitter run produced. */
struct TwoTxResult
{
    TwoTxScene scene = TwoTxScene::Collision;
    /** Outcome per transmitter (index 0 = tx A, 1 = tx B). */
    std::array<TwoTxOutcome, 2> tx;
    /** Modulated lines found by the FDM-aware carrier search. */
    std::vector<channel::CarrierLine> lines;
    /**
     * What the legacy single-carrier estimator picks on the same
     * capture (Hz) — in the FDM scene it demotes the 2f line and
     * reports only the low one, which is the regression the fdmAware
     * flag exists for.
     */
    double singleEstimateHz = 0.0;
    std::optional<Error> failure;

    bool ok() const { return !failure.has_value(); }
};

/**
 * Run a two-transmitter scene: two independent OS/CPU/VRM stacks
 * (seeded from one master), their switch-event streams merged through
 * em::buildMultiReceptionPlan into one capture, then per-transmitter
 * decode attempts. Never terminates the process.
 */
TwoTxResult runTwoTransmitterScene(TwoTxScene scene,
                                   const core::DeviceProfile &device,
                                   const TwoTxOptions &options);

} // namespace emsc::modem

#endif // EMSC_MODEM_SCENES_HPP
