/**
 * @file
 * Internal per-modem factory hooks wired together by modem.cpp.
 */

#ifndef EMSC_MODEM_IMPL_HPP
#define EMSC_MODEM_IMPL_HPP

#include <memory>

#include "modem/modem.hpp"

namespace emsc::modem::detail {

std::unique_ptr<Modulator> makeOokRzModulator(const ModemConfig &config);
std::unique_ptr<Demodulator>
makeOokRzDemodulator(const ModemConfig &config,
                     const channel::ReceiverConfig &receiver);

std::unique_ptr<Modulator> makeBfskModulator(const ModemConfig &config,
                                             double switch_frequency_hz);
std::unique_ptr<Demodulator>
makeBfskDemodulator(const ModemConfig &config,
                    const channel::ReceiverConfig &receiver,
                    double switch_frequency_hz);

std::unique_ptr<Modulator> makeMlaskModulator(const ModemConfig &config,
                                              double switch_frequency_hz);
std::unique_ptr<Demodulator>
makeMlaskDemodulator(const ModemConfig &config,
                     const channel::ReceiverConfig &receiver,
                     double switch_frequency_hz);

} // namespace emsc::modem::detail

#endif // EMSC_MODEM_IMPL_HPP
