#include "modem/fixed_grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace emsc::modem::detail {

void
FaultSpanScanner::closeRun(std::size_t run, std::size_t min_run)
{
    if (run >= min_run)
        spans.emplace_back(pos - run, pos);
}

void
FaultSpanScanner::feed(const std::vector<sdr::IqSample> &samples)
{
    for (const sdr::IqSample &s : samples) {
        double mag = std::max(std::abs(s.real()), std::abs(s.imag()));
        if (mag <= cfg.deadLevel) {
            ++deadRun;
        } else {
            closeRun(deadRun, cfg.minDeadRun);
            deadRun = 0;
        }
        if (mag >= cfg.clipLevel) {
            ++clipRun;
        } else {
            closeRun(clipRun, cfg.minClipRun);
            clipRun = 0;
        }
        ++pos;
    }
}

std::vector<std::pair<std::size_t, std::size_t>>
FaultSpanScanner::finish()
{
    closeRun(deadRun, cfg.minDeadRun);
    deadRun = 0;
    closeRun(clipRun, cfg.minClipRun);
    clipRun = 0;

    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<std::size_t, std::size_t>> merged;
    for (const auto &[b, e] : spans) {
        if (!merged.empty() && b <= merged.back().second + cfg.mergeGap)
            merged.back().second = std::max(merged.back().second, e);
        else
            merged.emplace_back(b, e);
    }
    spans.clear();
    return merged;
}

PrefixSum::PrefixSum(const std::vector<double> &x) : ps(x.size() + 1, 0.0)
{
    for (std::size_t i = 0; i < x.size(); ++i)
        ps[i + 1] = ps[i] + x[i];
}

double
PrefixSum::sum(std::size_t a, std::size_t b) const
{
    a = std::min(a, ps.size() - 1);
    b = std::min(b, ps.size() - 1);
    if (b <= a)
        return 0.0;
    return ps[b] - ps[a];
}

double
PrefixSum::mean(std::size_t a, std::size_t b) const
{
    a = std::min(a, ps.size() - 1);
    b = std::min(b, ps.size() - 1);
    if (b <= a)
        return 0.0;
    return (ps[b] - ps[a]) / static_cast<double>(b - a);
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(xs.size() - 1) + 0.5);
    std::nth_element(xs.begin(),
                     xs.begin() + static_cast<std::ptrdiff_t>(idx),
                     xs.end());
    return xs[idx];
}

std::vector<std::uint8_t>
markCorruptEnvelope(
    const std::vector<std::pair<std::size_t, std::size_t>> &spans,
    std::size_t envelope_len, std::size_t decimation, std::size_t window)
{
    std::vector<std::uint8_t> bad(envelope_len, 0);
    if (decimation == 0)
        return bad;
    for (const auto &[r0, r1] : spans) {
        std::size_t jlo = (r0 + decimation - 1) / decimation;
        std::size_t jhi = (r1 + window) / decimation + 1;
        for (std::size_t j = jlo; j < std::min(jhi, envelope_len); ++j)
            bad[j] = 1;
    }
    return bad;
}

} // namespace emsc::modem::detail
