#include "modem/rate_control.hpp"

#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace emsc::modem {

RateController::RateController(const RateControllerConfig &config)
    : cfg(config), cur(config.start),
      verdict(config.rungs, -1)
{
    if (cfg.rungs == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "rate controller needs at least one rung");
    if (cfg.start >= cfg.rungs)
        raiseError(ErrorKind::InvalidConfig,
                   "rate controller start rung %zu out of range "
                   "(%zu rungs)", cfg.start, cfg.rungs);
    if (!cfg.rungBps.empty() && cfg.rungBps.size() != cfg.rungs)
        raiseError(ErrorKind::InvalidConfig,
                   "rate controller rungBps has %zu entries for %zu "
                   "rungs", cfg.rungBps.size(), cfg.rungs);
    publishRate();
}

void
RateController::publishRate() const
{
    telemetry::MetricsRegistry &reg = telemetry::MetricsRegistry::global();
    static telemetry::Gauge currentBps(reg, "modem.rate.current_bps");
    if (!reg.enabled() || cfg.rungBps.empty())
        return;
    currentBps.set(cfg.rungBps[cur]);
}

void
RateController::moveTo(std::size_t rung)
{
    telemetry::MetricsRegistry &reg = telemetry::MetricsRegistry::global();
    static telemetry::Counter steps(reg, "modem.rate.steps");
    cur = rung;
    ++transitions;
    if (reg.enabled())
        steps.add();
    publishRate();
}

bool
RateController::report(double ber)
{
    if (done)
        return false;
    bool pass = ber <= cfg.targetBer;
    verdict[cur] = pass ? 1 : 0;
    if (!pass) {
        if (cur + 1 < cfg.rungs) {
            bool settled_below = verdict[cur + 1] != -1;
            moveTo(cur + 1);
            // Stepping back onto a probed rung ends the walk: with a
            // passing rung below we are one overshoot step past the
            // best rate; with a failing one there is nothing better.
            done = settled_below;
        } else {
            // Slowest rung still fails: nowhere left to go.
            done = true;
        }
    } else {
        if (cur > 0 && verdict[cur - 1] == -1)
            moveTo(cur - 1);
        else
            done = true;
    }
    return !done;
}

} // namespace emsc::modem
