#include "serve/manager.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace emsc::serve {

namespace {

telemetry::Gauge &
activeGauge()
{
    static telemetry::Gauge g(telemetry::MetricsRegistry::global(),
                              "serve.sessions.active");
    return g;
}

telemetry::Gauge &
queueHighWater()
{
    static telemetry::Gauge g(telemetry::MetricsRegistry::global(),
                              "serve.queue.high_water");
    return g;
}

telemetry::Counter &
admissionRejected()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.admission.rejected");
    return c;
}

telemetry::Counter &
sessionsOpened()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.sessions.opened");
    return c;
}

telemetry::Counter &
sessionsClosed()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.sessions.closed");
    return c;
}

telemetry::Counter &
quotaExceeded()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.quota.exceeded");
    return c;
}

} // namespace

/**
 * Session state. Lock ordering: the session mutex is leaf-level —
 * never taken while holding the manager mutex's *callers'* locks and
 * never held across decoder work. Exactly one thread at a time owns
 * the decoder, marked by `busy`; `taskQueued` dedupes pool
 * submissions; `closing` fences out new feeds and stale tasks.
 */
struct SessionManager::Session
{
    Session(std::uint64_t session_id, std::size_t quota,
            const channel::ReceiverConfig &rx,
            const stream::StreamMeta &meta,
            const stream::StreamingOptions &opts)
        : id(session_id), quotaSamples(quota), decoder(rx, meta, opts)
    {
        progress.id = session_id;
    }

    const std::uint64_t id;
    const std::size_t quotaSamples;

    std::mutex m;
    std::condition_variable cv;
    std::deque<stream::IqChunk> pending;
    /** A drain task sits in the pool queue (dedupe flag). */
    bool taskQueued = false;
    /** Some thread currently owns the decoder. */
    bool busy = false;
    /** close() has started; feeds and stale tasks back off. */
    bool closing = false;
    /** Decoder failed: accept-and-drop further chunks. */
    bool failed = false;
    /** Raw samples actually pushed into the decoder (quota basis). */
    std::size_t fedSamples = 0;
    SessionProgress progress;
    stream::StreamingDecoder decoder;
};

SessionManager::SessionManager(const channel::ReceiverConfig &receiver,
                               const stream::StreamingOptions &options,
                               const Config &config)
    : rxCfg(receiver), streamOpts(options), cfg(config)
{
    // Drain tasks are short-lived and never wait on other tasks, so
    // two workers are enough for liveness; more cores give more
    // concurrent sessions actually decoding.
    globalThreadPool().ensureWorkers(
        std::max<std::size_t>(2, parallelThreads() - 1));
}

std::uint64_t
SessionManager::open(const stream::StreamMeta &meta)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (sessions.size() >= cfg.maxSessions) {
        admissionRejected().add();
        raiseError(ErrorKind::ResourceExhausted,
                   "session limit reached: %zu active of max %zu",
                   sessions.size(), cfg.maxSessions);
    }
    const std::uint64_t id = nextId++;
    // The decoder constructor may raise InvalidConfig; nothing has
    // been inserted yet, so the map stays consistent.
    auto s = std::make_shared<Session>(id, cfg.quotaSamples, rxCfg,
                                       meta, streamOpts);
    sessions.emplace(id, std::move(s));
    activeGauge().set(static_cast<double>(sessions.size()));
    sessionsOpened().add();
    return id;
}

std::shared_ptr<SessionManager::Session>
SessionManager::find(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = sessions.find(id);
    if (it == sessions.end())
        raiseError(ErrorKind::InvalidConfig,
                   "unknown session id %llu",
                   static_cast<unsigned long long>(id));
    return it->second;
}

bool
SessionManager::tryFeed(std::uint64_t id, stream::IqChunk &&chunk)
{
    std::shared_ptr<Session> s = find(id);
    bool schedule = false;
    {
        std::lock_guard<std::mutex> lock(s->m);
        if (s->closing)
            raiseError(ErrorKind::InvalidConfig,
                       "session %llu is closing",
                       static_cast<unsigned long long>(s->id));
        if (s->failed) {
            // Accept and drop: the producer keeps its simple loop and
            // learns about the failure from poll()/close().
            return true;
        }
        if (s->pending.size() >= cfg.maxPendingChunks)
            return false;
        s->pending.push_back(std::move(chunk));
        queueHighWater().max(static_cast<double>(s->pending.size()));
        if (!s->busy && !s->taskQueued) {
            s->taskQueued = true;
            schedule = true;
        }
    }
    if (schedule) {
        // The task captures the shared_ptr, never `this`: the manager
        // may be destroyed while stale tasks are still queued.
        std::shared_ptr<Session> sp = s;
        globalThreadPool().submit([sp] { drainLoop(sp); });
    }
    return true;
}

void
SessionManager::drainLoop(const std::shared_ptr<Session> &s)
{
    std::unique_lock<std::mutex> lock(s->m);
    s->taskQueued = false;
    // close() owns the rest of this session's lifetime, and a second
    // drainer must not touch the decoder concurrently.
    if (s->busy || s->closing)
        return;
    s->busy = true;
    while (!s->pending.empty() && !s->closing) {
        stream::IqChunk chunk = std::move(s->pending.front());
        s->pending.pop_front();
        lock.unlock();
        const bool ok = feedOne(*s, std::move(chunk));
        lock.lock();
        if (!ok) {
            s->failed = true;
            s->pending.clear();
        }
        updateProgressLocked(*s);
    }
    s->busy = false;
    lock.unlock();
    s->cv.notify_all();
}

bool
SessionManager::feedOne(Session &s, stream::IqChunk &&chunk)
{
    if (s.quotaSamples > 0 &&
        s.fedSamples + chunk.samples.size() > s.quotaSamples) {
        quotaExceeded().add();
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "session sample quota exceeded: %zu fed + %zu "
                      "pending > quota %zu",
                      s.fedSamples, chunk.samples.size(),
                      s.quotaSamples);
        s.decoder.fail(Error{ErrorKind::ResourceExhausted, msg});
        return false;
    }
    s.fedSamples += chunk.samples.size();
    try {
        s.decoder.feed(std::move(chunk));
    } catch (const RecoverableError &) {
        // The decoder recorded the failure in its result already.
        return false;
    }
    return true;
}

void
SessionManager::updateProgressLocked(Session &s)
{
    s.progress.samplesIn = s.decoder.samplesIn();
    s.progress.chunksIn = s.decoder.chunksIn();
    s.progress.bitsDecoded = s.decoder.bitsDecoded();
    s.progress.framesDecoded = s.decoder.framesDecoded();
    s.progress.carrierHz = s.decoder.carrierEstimate();
    s.progress.snrDb = s.decoder.snrDb();
    s.progress.streaming = s.decoder.streaming();
    if (s.decoder.failure()) {
        s.progress.failed = true;
        s.progress.failure = *s.decoder.failure();
    }
}

SessionProgress
SessionManager::poll(std::uint64_t id) const
{
    std::shared_ptr<Session> s = find(id);
    std::lock_guard<std::mutex> lock(s->m);
    SessionProgress out = s->progress;
    out.pendingChunks = s->pending.size();
    out.failed = out.failed || s->failed;
    return out;
}

stream::StreamingResult
SessionManager::close(std::uint64_t id)
{
    std::shared_ptr<Session> s = find(id);
    std::deque<stream::IqChunk> leftover;
    {
        std::unique_lock<std::mutex> lock(s->m);
        if (s->closing)
            raiseError(ErrorKind::InvalidConfig,
                       "session %llu is already closed",
                       static_cast<unsigned long long>(s->id));
        s->closing = true;
        // Wait only for a *running* drainer (finite work: it re-checks
        // `closing` per chunk). A merely queued task will observe
        // `closing` and return, so this never deadlocks even when all
        // pool workers are blocked in close() themselves.
        s->cv.wait(lock, [&] { return !s->busy; });
        s->busy = true;
        leftover.swap(s->pending);
    }

    // Drain the remainder inline on the caller's thread.
    bool ok = !s->failed;
    while (ok && !leftover.empty()) {
        stream::IqChunk chunk = std::move(leftover.front());
        leftover.pop_front();
        ok = feedOne(*s, std::move(chunk));
    }
    stream::StreamingResult result = s->decoder.finish();

    {
        std::lock_guard<std::mutex> lock(mtx);
        sessions.erase(id);
        activeGauge().set(static_cast<double>(sessions.size()));
        sessionsClosed().add();
    }
    return result;
}

std::size_t
SessionManager::activeSessions() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return sessions.size();
}

} // namespace emsc::serve
