#include "serve/metrics_http.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"
#include "support/exposition.hpp"
#include "support/json.hpp"

namespace emsc::serve {

namespace {

/** Same loopback-only bind as the serve control listener. */
std::pair<int, std::uint16_t>
bindLoopbackHttp(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        raiseError(ErrorKind::IoError, "socket() failed: %s",
                   std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 16) < 0) {
        int err = errno;
        ::close(fd);
        raiseError(ErrorKind::IoError,
                   "cannot listen on 127.0.0.1:%u: %s", port,
                   std::strerror(err));
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) <
        0) {
        int err = errno;
        ::close(fd);
        raiseError(ErrorKind::IoError, "getsockname() failed: %s",
                   std::strerror(err));
    }
    return {fd, ntohs(addr.sin_port)};
}

std::string
httpResponse(int status, const char *statusText,
             const std::string &contentType, const std::string &body)
{
    std::string out = "HTTP/1.0 " + std::to_string(status) + " " +
                      statusText + "\r\n";
    out += "Content-Type: " + contentType + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

/** Blocking write of the whole buffer (client sockets are blocking). */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

MetricsEndpoint::MetricsEndpoint(const MetricsEndpointConfig &config)
    : cfg(config), snapshotter_(config.ringCapacity)
{
}

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

void
MetricsEndpoint::start()
{
    if (running_.load())
        return;
    auto [fd, bound] = bindLoopbackHttp(cfg.port);
    listenFd_ = fd;
    boundPort_ = bound;
    stopping_.store(false);
    running_.store(true);
    snapshotter_.start(cfg.periodMs);
    thread_ = std::thread([this] { loop(); });
}

void
MetricsEndpoint::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    if (thread_.joinable())
        thread_.join();
    snapshotter_.stop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false);
}

std::string
MetricsEndpoint::respond(const std::string &path)
{
    if (path == "/metrics") {
        telemetry::TimedSnapshot ts = snapshotter_.scrape();
        return httpResponse(200, "OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            telemetry::prometheusText(ts.snap));
    }
    if (path == "/metrics.json") {
        telemetry::TimedSnapshot ts = snapshotter_.scrape();
        return httpResponse(200, "OK", "application/json",
                            telemetry::metricsJson(ts.snap).dump(2));
    }
    if (path == "/series.json")
        return httpResponse(200, "OK", "application/json",
                            snapshotter_.ring().seriesJson().dump(2));
    if (path == "/healthz")
        return httpResponse(200, "OK", "text/plain", "ok\n");
    return httpResponse(404, "Not Found", "text/plain",
                        "unknown path\n");
}

void
MetricsEndpoint::loop()
{
    while (!stopping_.load()) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, 100);
        if (rc <= 0)
            continue;
        int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        // Scrapers are loopback and short-lived: one bounded blocking
        // request/response per connection, 2 s ceiling.
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

        std::string req;
        char buf[1024];
        while (req.size() < 8192 &&
               req.find("\r\n\r\n") == std::string::npos) {
            ssize_t n = ::read(client, buf, sizeof buf);
            if (n <= 0)
                break;
            req.append(buf, static_cast<std::size_t>(n));
        }
        std::string path;
        if (req.rfind("GET ", 0) == 0) {
            std::size_t end = req.find(' ', 4);
            if (end != std::string::npos)
                path = req.substr(4, end - 4);
        }
        std::string resp =
            path.empty()
                ? httpResponse(400, "Bad Request", "text/plain",
                               "only GET is supported\n")
                : respond(path);
        writeAll(client, resp);
        ::close(client);
    }
}

std::string
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    std::string service = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0)
        raiseError(ErrorKind::IoError, "cannot resolve %s: %s",
                   host.c_str(), ::gai_strerror(rc));
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        raiseError(ErrorKind::IoError, "cannot connect to %s:%u",
                   host.c_str(), port);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                      "\r\nConnection: close\r\n\r\n";
    if (!writeAll(fd, req)) {
        ::close(fd);
        raiseError(ErrorKind::IoError, "write to %s:%u failed",
                   host.c_str(), port);
    }
    std::string resp;
    char buf[4096];
    while (true) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t split = resp.find("\r\n\r\n");
    if (split == std::string::npos)
        raiseError(ErrorKind::MalformedInput,
                   "malformed HTTP response from %s:%u", host.c_str(),
                   port);
    std::string statusLine = resp.substr(0, resp.find("\r\n"));
    if (statusLine.find(" 200 ") == std::string::npos)
        raiseError(ErrorKind::IoError, "HTTP error from %s:%u: %s",
                   host.c_str(), port, statusLine.c_str());
    return resp.substr(split + 4);
}

} // namespace emsc::serve
