/**
 * @file
 * SessionManager: many concurrent receiver sessions multiplexed over
 * the shared thread pool.
 *
 * Each session owns a push-driven StreamingDecoder plus a small queue
 * of pending chunks. Feeding a chunk never blocks: tryFeed() enqueues
 * and, if no drain task is already queued or running for that session,
 * submits one to the global thread pool. The drain task pops pending
 * chunks and pushes them through the decoder; at most one task per
 * session is ever live, so the decoder itself needs no locking and a
 * fixed-size pool interleaves an arbitrary number of sessions
 * (no thread-per-stage, no thread-per-session).
 *
 * Admission control and quotas:
 *  - open() rejects with ResourceExhausted once maxSessions are
 *    active (`serve.admission.rejected` counts rejects).
 *  - A per-session sample quota (quotaSamples) turns the session into
 *    a failed one the moment it is exceeded; the failure surfaces on
 *    poll()/close() while other sessions are untouched.
 *  - maxPendingChunks bounds per-session queue memory; tryFeed()
 *    returns false (backpressure) when the queue is full, and the
 *    caller retries after draining the socket or waiting.
 *
 * close() is deadlock-free by construction: it never waits for a
 * *queued* pool task, only for a currently-running drain to step out
 * of the decoder, then drains the remaining chunks inline on the
 * caller's thread. A stale queued task observes `closing` and returns
 * immediately, so sessions can be closed even when every pool worker
 * is itself blocked in close().
 */

#ifndef EMSC_SERVE_MANAGER_HPP
#define EMSC_SERVE_MANAGER_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "stream/decoder.hpp"
#include "stream/receiver_ops.hpp"
#include "support/error.hpp"

namespace emsc::serve {

/** Snapshot of one session's progress for Status replies. */
struct SessionProgress
{
    std::uint64_t id = 0;
    std::size_t samplesIn = 0;
    std::size_t chunksIn = 0;
    /** Chunks accepted but not yet through the decoder. */
    std::size_t pendingChunks = 0;
    std::size_t bitsDecoded = 0;
    /** Frames decoded so far (0 or 1: one frame per session). */
    std::size_t framesDecoded = 0;
    double carrierHz = 0.0;
    /** Warm-up carrier-lock SNR (dB); NaN until calibrated. */
    double snrDb = std::numeric_limits<double>::quiet_NaN();
    /** Warm-up finished, stage chain live. */
    bool streaming = false;
    bool failed = false;
    /** Valid when failed. */
    Error failure;
};

class SessionManager
{
  public:
    struct Config
    {
        /** Admission limit: open() rejects beyond this. */
        std::size_t maxSessions = 64;
        /** Per-session raw-sample quota; 0 = unlimited. */
        std::size_t quotaSamples = 0;
        /** Per-session pending-chunk bound (backpressure point). */
        std::size_t maxPendingChunks = 8;
    };

    SessionManager(const channel::ReceiverConfig &receiver,
                   const stream::StreamingOptions &options,
                   const Config &config);

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Admit a new session.
     * @return its id (never 0).
     * @throws RecoverableError (ResourceExhausted) at the session
     *         limit, or InvalidConfig from the decoder for a bad meta.
     */
    std::uint64_t open(const stream::StreamMeta &meta);

    /**
     * Queue one chunk for `id` and schedule a drain.
     * @return false when the session's pending queue is full — the
     *         caller must retry later (backpressure). Chunks fed to an
     *         already-failed session are accepted and dropped: the
     *         failure surfaces on poll()/close().
     * @throws RecoverableError (InvalidConfig) for an unknown or
     *         closing session.
     */
    bool tryFeed(std::uint64_t id, stream::IqChunk &&chunk);

    /** @throws RecoverableError (InvalidConfig) for an unknown id. */
    SessionProgress poll(std::uint64_t id) const;

    /**
     * Finish the session: drain whatever is still pending on the
     * calling thread, finish the decoder, release the slot.
     * @throws RecoverableError (InvalidConfig) for an unknown or
     *         already-closing id.
     */
    stream::StreamingResult close(std::uint64_t id);

    std::size_t activeSessions() const;
    const Config &config() const { return cfg; }

  private:
    struct Session;

    std::shared_ptr<Session> find(std::uint64_t id) const;
    /** Pool-task body: drain pending chunks through the decoder. */
    static void drainLoop(const std::shared_ptr<Session> &s);
    /** Push one chunk (quota check + decoder.feed). Caller must hold
     * the drain ownership (`busy`), not the session lock.
     * @return false once the session has failed. */
    static bool feedOne(Session &s, stream::IqChunk &&chunk);
    static void updateProgressLocked(Session &s);

    channel::ReceiverConfig rxCfg;
    stream::StreamingOptions streamOpts;
    Config cfg;

    mutable std::mutex mtx;
    std::map<std::uint64_t, std::shared_ptr<Session>> sessions;
    std::uint64_t nextId = 1;
};

} // namespace emsc::serve

#endif // EMSC_SERVE_MANAGER_HPP
