#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <utility>

#include "support/telemetry.hpp"

namespace emsc::serve {

namespace {

telemetry::Counter &
orphanedSessions()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.sessions.orphaned");
    return c;
}

telemetry::Counter &
shutdownDrained()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.shutdown.drained");
    return c;
}

telemetry::Counter &
shutdownAborted()
{
    static telemetry::Counter c(telemetry::MetricsRegistry::global(),
                                "serve.shutdown.aborted");
    return c;
}

/** Bind a nonblocking loopback listener; returns {fd, bound port}. */
std::pair<int, std::uint16_t>
bindLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        raiseError(ErrorKind::IoError, "socket() failed: %s",
                   std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 16) < 0) {
        int err = errno;
        ::close(fd);
        raiseError(ErrorKind::IoError,
                   "cannot listen on 127.0.0.1:%u: %s", port,
                   std::strerror(err));
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) <
        0) {
        int err = errno;
        ::close(fd);
        raiseError(ErrorKind::IoError, "getsockname() failed: %s",
                   std::strerror(err));
    }
    return {fd, ntohs(addr.sin_port)};
}

} // namespace

struct Server::Conn
{
    int fd = -1;
    bool rtl = false;
    bool dead = false;
    /** Stop reading, drop once the out buffer drains. */
    bool closeAfterFlush = false;

    FrameReader reader;
    std::vector<std::uint8_t> out;
    std::size_t outCursor = 0;

    std::uint64_t sessionId = 0;
    bool sessionOpen = false;
    /** Close frame seen; finish once the stalled chunk lands. */
    bool closeRequested = false;

    /** Backpressured chunk awaiting SessionManager capacity. */
    std::optional<stream::IqChunk> stalled;
    std::size_t nextChunkIndex = 0;
    std::size_t nextFirstSample = 0;

    /** rtl only: undecoded tail bytes (header prefix, odd byte). */
    std::vector<std::uint8_t> raw;
    bool rtlHeaderChecked = false;
    /** rtl only: samples aggregated toward the next chunk. */
    std::vector<sdr::IqSample> agg;
};

Server::Server(const channel::ReceiverConfig &receiver,
               const stream::StreamingOptions &options,
               const ServerConfig &config)
    : manager(receiver, options, config.sessions), cfg(config)
{
    auto [cfd, cport] = bindLoopback(cfg.port);
    controlFd = cfd;
    controlPort_ = cport;
    if (cfg.rtlIngest) {
        try {
            auto [rfd, rport] = bindLoopback(cfg.rtlPort);
            rtlFd = rfd;
            rtlPort_ = rport;
        } catch (...) {
            ::close(controlFd);
            throw;
        }
    }
}

Server::~Server() { stop(); }

void
Server::start()
{
    if (running.exchange(true))
        return;
    stopRequested.store(false);
    worker = std::thread([this] { loop(); });
}

void
Server::shutdown(double grace_seconds)
{
    drainGraceSeconds.store(grace_seconds);
    drainRequested.store(true);
    // The loop exits on its own once every connection drained or the
    // deadline passed; stop() below is just the idempotent cleanup.
    if (worker.joinable())
        worker.join();
    stop();
}

void
Server::stop()
{
    stopRequested.store(true);
    if (worker.joinable())
        worker.join();
    running.store(false);
    // Connections the loop never got to tear down (or that exist
    // because start() was never called) are finished here.
    for (auto &conn : conns)
        finishConn(*conn);
    conns.clear();
    if (controlFd >= 0) {
        ::close(controlFd);
        controlFd = -1;
    }
    if (rtlFd >= 0) {
        ::close(rtlFd);
        rtlFd = -1;
    }
}

std::vector<stream::StreamingResult>
Server::takeRtlResults()
{
    std::lock_guard<std::mutex> lock(resultsMtx);
    std::vector<stream::StreamingResult> out;
    out.swap(rtlResults);
    return out;
}

void
Server::loop()
{
    bool draining = false;
    std::chrono::steady_clock::time_point drainDeadline;
    while (!stopRequested.load()) {
        if (!draining && drainRequested.load()) {
            // Drain: no new sessions (listeners close now), every
            // live connection is pushed onto its normal close path so
            // the protocol's final Result/Error frames still go out.
            draining = true;
            drainDeadline =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        drainGraceSeconds.load()));
            if (controlFd >= 0) {
                ::close(controlFd);
                controlFd = -1;
            }
            if (rtlFd >= 0) {
                ::close(rtlFd);
                rtlFd = -1;
            }
            for (auto &conn : conns)
                if (!conn->dead)
                    beginDrain(*conn);
        }
        if (draining &&
            (conns.empty() ||
             std::chrono::steady_clock::now() >= drainDeadline))
            break;

        std::vector<pollfd> fds;
        // fd -1 entries are ignored by poll() and keep the index
        // layout stable once the listeners close during a drain.
        fds.push_back({controlFd, POLLIN, 0});
        if (cfg.rtlIngest)
            fds.push_back({rtlFd, POLLIN, 0});
        const std::size_t firstConn = fds.size();
        for (const auto &conn : conns) {
            short events = 0;
            // A stalled chunk pauses reading: the kernel buffer then
            // backpressures the producer.
            if (!conn->closeAfterFlush && !conn->stalled &&
                !conn->closeRequested)
                events |= POLLIN;
            if (conn->outCursor < conn->out.size())
                events |= POLLOUT;
            fds.push_back({conn->fd, events, 0});
        }

        // Connections accepted below this line have no pollfd entry
        // yet; only the first `polled` conns may be indexed into fds.
        const std::size_t polled = conns.size();

        ::poll(fds.data(), fds.size(), 10);

        if (fds[0].revents & POLLIN)
            acceptPending(controlFd, false);
        if (rtlFd >= 0 && (fds[1].revents & POLLIN))
            acceptPending(rtlFd, true);

        for (std::size_t i = 0; i < polled; ++i) {
            Conn &conn = *conns[i];
            const short re = fds[firstConn + i].revents;
            if (conn.dead)
                continue;
            if (re & POLLOUT) {
                if (!flushOutput(conn)) {
                    conn.dead = true;
                    continue;
                }
            }
            if (re & (POLLIN | POLLHUP | POLLERR)) {
                if (!handleReadable(conn)) {
                    conn.dead = true;
                    continue;
                }
            }
        }

        for (auto &conn : conns) {
            if (!conn->dead)
                pumpStalled(*conn);
            // Once a draining connection's session has settled (its
            // Result/Error frame is queued), drop it after the flush.
            if (draining && !conn->sessionOpen &&
                !conn->closeAfterFlush)
                conn->closeAfterFlush = true;
            if (conn->closeAfterFlush &&
                conn->outCursor >= conn->out.size())
                conn->dead = true;
        }

        for (std::size_t i = 0; i < conns.size();) {
            if (conns[i]->dead) {
                finishConn(*conns[i]);
                if (draining)
                    shutdownDrained().add();
                conns.erase(conns.begin() +
                            static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }

    // Connections still here were cut off: either a hard stop() or a
    // drain that ran out its deadline.
    if (draining && !conns.empty())
        shutdownAborted().add(conns.size());
    for (auto &conn : conns)
        finishConn(*conn);
    conns.clear();
}

void
Server::beginDrain(Conn &conn)
{
    if (conn.rtl) {
        // An rtl peer speaks no protocol: stop reading, decode what
        // already arrived, publish via takeRtlResults() (finishConn).
        conn.closeAfterFlush = true;
        return;
    }
    if (conn.sessionOpen) {
        // Behave as if the client sent Close: the stalled chunk still
        // lands and the normal Result frame goes out.
        conn.closeRequested = true;
        pumpStalled(conn);
        return;
    }
    sendError(conn, ErrorKind::ResourceExhausted,
              "server draining for shutdown");
    conn.closeAfterFlush = true;
}

void
Server::acceptPending(int listen_fd, bool rtl)
{
    for (;;) {
        int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0)
            return;
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->rtl = rtl;
        if (rtl) {
            // rtl peers speak no control protocol: the session opens
            // implicitly with the server defaults, and an admission
            // reject simply drops the connection.
            try {
                conn->sessionId = manager.open(cfg.defaults);
                conn->sessionOpen = true;
            } catch (const RecoverableError &) {
                ::close(fd);
                continue;
            }
        }
        conns.push_back(std::move(conn));
    }
}

bool
Server::handleReadable(Conn &conn)
{
    std::uint8_t buf[65536];
    for (;;) {
        ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
        if (n == 0) {
            // Orderly EOF: flush what we owe, then drop. finishConn()
            // settles any session still open.
            conn.closeAfterFlush = true;
            return true;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            if (errno == EINTR)
                continue;
            return false;
        }
        const bool ok =
            conn.rtl ? handleRtlBytes(conn, buf,
                                      static_cast<std::size_t>(n))
                     : handleControlBytes(conn, buf,
                                          static_cast<std::size_t>(n));
        if (!ok)
            return false;
        // A stall (or a Close in the frame batch) pauses reading;
        // whatever the kernel still holds waits for the next tick.
        if (conn.stalled || conn.closeRequested ||
            conn.closeAfterFlush)
            return true;
        if (n < static_cast<ssize_t>(sizeof buf))
            return true;
    }
}

bool
Server::handleControlBytes(Conn &conn, const std::uint8_t *data,
                           std::size_t size)
{
    conn.reader.push(data, size);
    Frame frame;
    for (;;) {
        try {
            if (!conn.reader.next(frame))
                return true;
        } catch (const RecoverableError &e) {
            // Framing is gone: report once, stop reading, drop after
            // the error frame drains.
            sendError(conn, e.kind(), e.what());
            conn.closeAfterFlush = true;
            return true;
        }
        if (!handleFrame(conn, frame))
            return false;
        if (conn.stalled || conn.closeRequested ||
            conn.closeAfterFlush)
            return true;
    }
}

bool
Server::handleFrame(Conn &conn, const Frame &frame)
{
    switch (frame.type) {
    case FrameType::Open: {
        if (conn.sessionOpen) {
            sendError(conn, ErrorKind::InvalidConfig,
                      "session already open on this connection");
            return true;
        }
        stream::StreamMeta meta = cfg.defaults;
        try {
            json::Value body = parseJsonBody(frame);
            auto numField = [&body](const char *key, double &out) {
                const json::Value *v = body.find(key);
                if (!v)
                    return;
                if (!v->isNumber())
                    raiseError(ErrorKind::MalformedInput,
                               "open field \"%s\" must be a number",
                               key);
                out = v->number();
            };
            numField("sample_rate", meta.sampleRate);
            numField("center_freq", meta.centerFrequency);
            double start = static_cast<double>(meta.startTime);
            numField("start_time_ns", start);
            meta.startTime = static_cast<TimeNs>(start);
            conn.sessionId = manager.open(meta);
        } catch (const RecoverableError &e) {
            sendError(conn, e.kind(), e.what());
            return true;
        }
        conn.sessionOpen = true;
        conn.closeRequested = false;
        conn.nextChunkIndex = 0;
        conn.nextFirstSample = 0;
        json::Value ok = json::Value::object();
        ok.set("session", static_cast<double>(conn.sessionId));
        sendFrame(conn, encodeJsonFrame(FrameType::OpenOk, ok));
        return true;
    }
    case FrameType::Data: {
        if (!conn.sessionOpen) {
            sendError(conn, ErrorKind::InvalidConfig,
                      "data frame before open");
            return true;
        }
        if (frame.body.size() % 2 != 0) {
            // Mirror IqFileReader's truncated-sample contract: the
            // frame is rejected with a diagnostic, the stream is
            // still framed, the connection survives.
            sendError(conn, ErrorKind::MalformedInput,
                      "data frame carries a truncated IQ sample "
                      "(odd byte count " +
                          std::to_string(frame.body.size()) + ")");
            return true;
        }
        if (frame.body.empty())
            return true;
        stream::IqChunk chunk;
        chunk.index = conn.nextChunkIndex++;
        chunk.firstSample = conn.nextFirstSample;
        appendIqFromU8(frame.body.data(), frame.body.size(),
                       chunk.samples);
        conn.nextFirstSample += chunk.samples.size();
        conn.stalled = std::move(chunk);
        pumpStalled(conn);
        return true;
    }
    case FrameType::Poll: {
        if (!conn.sessionOpen) {
            sendError(conn, ErrorKind::InvalidConfig,
                      "poll frame before open");
            return true;
        }
        SessionProgress p = manager.poll(conn.sessionId);
        json::Value body = json::Value::object();
        body.set("session", static_cast<double>(p.id));
        body.set("samples_in", static_cast<double>(p.samplesIn));
        body.set("chunks_in", static_cast<double>(p.chunksIn));
        body.set("pending_chunks",
                 static_cast<double>(p.pendingChunks));
        body.set("bits_decoded", static_cast<double>(p.bitsDecoded));
        body.set("frames_decoded",
                 static_cast<double>(p.framesDecoded));
        body.set("carrier_hz", p.carrierHz);
        // Unmeasured SNR serialises as null, mirroring gauge JSON.
        body.set("snr_db", std::isnan(p.snrDb) ? json::Value(nullptr)
                                               : json::Value(p.snrDb));
        body.set("streaming", p.streaming);
        body.set("failed", p.failed);
        if (p.failed) {
            body.set("failure_kind", errorKindName(p.failure.kind));
            body.set("failure_message", p.failure.message);
        }
        sendFrame(conn, encodeJsonFrame(FrameType::Status, body));
        return true;
    }
    case FrameType::Close: {
        if (!conn.sessionOpen) {
            sendError(conn, ErrorKind::InvalidConfig,
                      "close frame before open");
            return true;
        }
        conn.closeRequested = true;
        pumpStalled(conn);
        return true;
    }
    default:
        sendError(conn, ErrorKind::MalformedInput,
                  std::string("unexpected ") +
                      frameTypeName(frame.type) +
                      " frame from client");
        return true;
    }
}

bool
Server::handleRtlBytes(Conn &conn, const std::uint8_t *data,
                       std::size_t size)
{
    conn.raw.insert(conn.raw.end(), data, data + size);
    if (!conn.rtlHeaderChecked) {
        if (conn.raw.size() < 4)
            return true;
        if (std::memcmp(conn.raw.data(), "RTL0", 4) == 0) {
            // rtl_tcp prefixes its stream with a 12-byte banner
            // (magic + tuner type + gain count); skip it.
            if (conn.raw.size() < 12)
                return true;
            conn.raw.erase(conn.raw.begin(), conn.raw.begin() + 12);
        }
        conn.rtlHeaderChecked = true;
    }
    const std::size_t pairs = conn.raw.size() / 2;
    appendIqFromU8(conn.raw.data(), pairs * 2, conn.agg);
    conn.raw.erase(conn.raw.begin(),
                   conn.raw.begin() +
                       static_cast<std::ptrdiff_t>(pairs * 2));
    while (!conn.stalled && conn.agg.size() >= cfg.chunkSamples) {
        stream::IqChunk chunk;
        chunk.index = conn.nextChunkIndex++;
        chunk.firstSample = conn.nextFirstSample;
        chunk.samples.assign(
            conn.agg.begin(),
            conn.agg.begin() +
                static_cast<std::ptrdiff_t>(cfg.chunkSamples));
        conn.agg.erase(conn.agg.begin(),
                       conn.agg.begin() + static_cast<std::ptrdiff_t>(
                                              cfg.chunkSamples));
        conn.nextFirstSample += chunk.samples.size();
        conn.stalled = std::move(chunk);
        pumpStalled(conn);
    }
    return true;
}

void
Server::pumpStalled(Conn &conn)
{
    if (conn.stalled) {
        try {
            if (!manager.tryFeed(conn.sessionId,
                                 std::move(*conn.stalled)))
                return;
        } catch (const RecoverableError &e) {
            conn.stalled.reset();
            if (!conn.rtl)
                sendError(conn, e.kind(), e.what());
            return;
        }
        conn.stalled.reset();
    }
    if (conn.closeRequested && !conn.stalled) {
        conn.closeRequested = false;
        stream::StreamingResult result;
        try {
            result = manager.close(conn.sessionId);
        } catch (const RecoverableError &e) {
            conn.sessionOpen = false;
            sendError(conn, e.kind(), e.what());
            return;
        }
        conn.sessionOpen = false;
        json::Value body = json::Value::object();
        body.set("session", static_cast<double>(conn.sessionId));
        body.set("ok", !result.rx.failure.has_value());
        body.set("streamed", result.streamed);
        body.set("batch_fallback", result.batchFallback);
        body.set("frame_found", result.rx.frame.found);
        body.set("bits_total",
                 static_cast<double>(result.rx.labeled.bits.size()));
        body.set("carrier_hz", result.rx.carrierHz);
        if (result.rx.frame.found) {
            json::Value payload = json::Value::array();
            for (std::uint8_t bit : result.rx.frame.payload)
                payload.push(static_cast<double>(bit));
            body.set("payload_bits", std::move(payload));
            body.set("integrity", channel::frameIntegrityName(
                                      result.rx.frame.integrity));
        }
        if (result.rx.failure) {
            json::Value failure = json::Value::object();
            failure.set("kind",
                        errorKindName(result.rx.failure->kind));
            failure.set("message", result.rx.failure->message);
            body.set("failure", std::move(failure));
        }
        sendFrame(conn, encodeJsonFrame(FrameType::Result, body));
    }
}

bool
Server::flushOutput(Conn &conn)
{
    while (conn.outCursor < conn.out.size()) {
        ssize_t n = ::send(conn.fd, conn.out.data() + conn.outCursor,
                           conn.out.size() - conn.outCursor,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            if (errno == EINTR)
                continue;
            return false;
        }
        conn.outCursor += static_cast<std::size_t>(n);
    }
    conn.out.clear();
    conn.outCursor = 0;
    return true;
}

void
Server::sendFrame(Conn &conn, std::vector<std::uint8_t> frame)
{
    conn.out.insert(conn.out.end(), frame.begin(), frame.end());
    flushOutput(conn);
}

void
Server::sendError(Conn &conn, ErrorKind kind, const std::string &msg)
{
    json::Value body = json::Value::object();
    body.set("kind", errorKindName(kind));
    body.set("message", msg);
    sendFrame(conn, encodeJsonFrame(FrameType::Error, body));
}

void
Server::finishConn(Conn &conn)
{
    if (conn.sessionOpen) {
        // Feed the stalled chunk home before closing so an rtl EOF
        // decodes everything it received. close() drains inline, so a
        // bounded retry converges as drain tasks free queue slots.
        for (int i = 0; conn.stalled && i < 1000; ++i) {
            try {
                if (manager.tryFeed(conn.sessionId,
                                    std::move(*conn.stalled)))
                    conn.stalled.reset();
            } catch (const RecoverableError &) {
                conn.stalled.reset();
            }
            if (conn.stalled)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
        if (conn.rtl && !conn.agg.empty() && !conn.stalled) {
            stream::IqChunk tail;
            tail.index = conn.nextChunkIndex++;
            tail.firstSample = conn.nextFirstSample;
            tail.samples = std::move(conn.agg);
            tail.last = true;
            for (int i = 0; i < 1000; ++i) {
                try {
                    if (manager.tryFeed(conn.sessionId,
                                        std::move(tail)))
                        break;
                } catch (const RecoverableError &) {
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        }
        try {
            stream::StreamingResult result =
                manager.close(conn.sessionId);
            if (conn.rtl) {
                std::lock_guard<std::mutex> lock(resultsMtx);
                rtlResults.push_back(std::move(result));
            } else {
                // A control client that vanished without Close left
                // its decode behind; the result has no reader.
                orphanedSessions().add();
            }
        } catch (const RecoverableError &) {
        }
        conn.sessionOpen = false;
    }
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
}

} // namespace emsc::serve
