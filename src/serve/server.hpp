/**
 * @file
 * Loopback socket front-end for the SessionManager.
 *
 * One background thread runs a poll() loop over two listeners:
 *
 *  - the *control* port speaks the length-prefixed frame protocol
 *    (serve/protocol.hpp): Open → Data* → Poll* → Close, one session
 *    per connection;
 *  - the optional *rtl* port accepts raw rtl_tcp-style byte streams
 *    (an optional 12-byte "RTL0" header followed by interleaved u8
 *    IQ). Each connection becomes an implicit session with the
 *    server's default StreamMeta; the decode result is published via
 *    takeRtlResults() when the peer disconnects.
 *
 * The server binds 127.0.0.1 only: the service multiplexes local
 * capture producers, it is not a network daemon.
 *
 * Backpressure: when SessionManager::tryFeed() rejects a chunk, the
 * connection stops reading (POLLIN off) and retries the stalled chunk
 * every loop tick until it is accepted — the kernel socket buffer then
 * pushes back on the producer.
 */

#ifndef EMSC_SERVE_SERVER_HPP
#define EMSC_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/manager.hpp"
#include "serve/protocol.hpp"
#include "stream/decoder.hpp"

namespace emsc::serve {

struct ServerConfig
{
    /** Control port; 0 picks an ephemeral port. */
    std::uint16_t port = 0;
    /** Whether to open the raw-IQ ingest listener at all. */
    bool rtlIngest = true;
    /** rtl ingest port; 0 picks an ephemeral port. */
    std::uint16_t rtlPort = 0;
    /** Meta for rtl sessions and Open frames with missing fields. */
    stream::StreamMeta defaults;
    /** Samples aggregated per chunk on the rtl ingest path. */
    std::size_t chunkSamples = std::size_t{1} << 15;
    SessionManager::Config sessions;
};

class Server
{
  public:
    /**
     * Bind the listeners (no thread yet).
     * @throws RecoverableError (IoError) when a bind fails.
     */
    Server(const channel::ReceiverConfig &receiver,
           const stream::StreamingOptions &options,
           const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Start the poll loop on a background thread. */
    void start();
    /** Stop the loop, close connections, finish open sessions.
     * Idempotent; also called by the destructor. */
    void stop();

    /**
     * Graceful shutdown (SIGTERM path): close the listeners so no new
     * session can arrive, ask every in-flight session to finish — the
     * control protocol's normal Result (or an Error frame for
     * sessionless connections) is emitted before the connection drops
     * — and wait up to `grace_seconds` for the drain. Connections
     * still alive at the deadline are torn down the hard way.
     * Telemetry: serve.shutdown.drained counts connections that
     * finished inside the deadline, serve.shutdown.aborted those cut
     * off at it. Blocks until the loop has exited; idempotent with
     * stop().
     */
    void shutdown(double grace_seconds);

    /** Actually-bound ports (resolved when ephemeral was requested). */
    std::uint16_t controlPort() const { return controlPort_; }
    /** 0 when rtl ingest is disabled. */
    std::uint16_t rtlPort() const { return rtlPort_; }

    SessionManager &sessions() { return manager; }

    /** Completed rtl-session results accumulated since the last call
     * (FIFO). Thread-safe. */
    std::vector<stream::StreamingResult> takeRtlResults();

  private:
    struct Conn;

    void loop();
    void acceptPending(int listen_fd, bool rtl);
    /** @return false when the connection must be dropped. */
    bool handleReadable(Conn &conn);
    bool handleControlBytes(Conn &conn, const std::uint8_t *data,
                            std::size_t size);
    bool handleFrame(Conn &conn, const Frame &frame);
    bool handleRtlBytes(Conn &conn, const std::uint8_t *data,
                        std::size_t size);
    /** Push the connection's stalled/aggregated chunk if possible. */
    void pumpStalled(Conn &conn);
    /** Put one connection on the drain path (see shutdown()). */
    void beginDrain(Conn &conn);
    bool flushOutput(Conn &conn);
    void sendFrame(Conn &conn, std::vector<std::uint8_t> frame);
    void sendError(Conn &conn, ErrorKind kind, const std::string &msg);
    void finishConn(Conn &conn);

    SessionManager manager;
    ServerConfig cfg;
    int controlFd = -1;
    int rtlFd = -1;
    std::uint16_t controlPort_ = 0;
    std::uint16_t rtlPort_ = 0;

    std::thread worker;
    std::atomic<bool> running{false};
    std::atomic<bool> stopRequested{false};
    std::atomic<bool> drainRequested{false};
    /** Read by the loop once drainRequested is observed. */
    std::atomic<double> drainGraceSeconds{0.0};

    std::vector<std::unique_ptr<Conn>> conns;

    std::mutex resultsMtx;
    std::vector<stream::StreamingResult> rtlResults;
};

} // namespace emsc::serve

#endif // EMSC_SERVE_SERVER_HPP
