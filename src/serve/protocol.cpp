#include "serve/protocol.hpp"

#include <cstring>

#include "support/error.hpp"

namespace emsc::serve {

const char *
frameTypeName(FrameType type)
{
    switch (type) {
    case FrameType::Open: return "open";
    case FrameType::OpenOk: return "open-ok";
    case FrameType::Data: return "data";
    case FrameType::Poll: return "poll";
    case FrameType::Status: return "status";
    case FrameType::Close: return "close";
    case FrameType::Result: return "result";
    case FrameType::Error: return "error";
    }
    return "unknown";
}

bool
knownFrameType(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(FrameType::Open) &&
           raw <= static_cast<std::uint8_t>(FrameType::Error);
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::uint8_t *body, std::size_t size)
{
    if (size + 1 > kMaxFrameLength)
        raiseError(ErrorKind::InvalidConfig,
                   "frame body of %zu bytes exceeds the %u-byte frame "
                   "limit",
                   size, kMaxFrameLength - 1);
    std::vector<std::uint8_t> out;
    out.reserve(4 + 1 + size);
    const std::uint32_t length = static_cast<std::uint32_t>(size + 1);
    out.push_back(static_cast<std::uint8_t>(length & 0xff));
    out.push_back(static_cast<std::uint8_t>((length >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((length >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((length >> 24) & 0xff));
    out.push_back(static_cast<std::uint8_t>(type));
    if (size > 0)
        out.insert(out.end(), body, body + size);
    return out;
}

std::vector<std::uint8_t>
encodeJsonFrame(FrameType type, const json::Value &body)
{
    const std::string text = body.dump();
    return encodeFrame(
        type, reinterpret_cast<const std::uint8_t *>(text.data()),
        text.size());
}

json::Value
parseJsonBody(const Frame &frame)
{
    if (frame.body.empty())
        return json::Value::object();
    std::string text(reinterpret_cast<const char *>(frame.body.data()),
                     frame.body.size());
    json::Value out;
    std::string err;
    if (!json::Value::parse(text, out, &err))
        raiseError(ErrorKind::MalformedInput,
                   "%s frame body is not valid JSON: %s",
                   frameTypeName(frame.type), err.c_str());
    return out;
}

void
FrameReader::push(const std::uint8_t *data, std::size_t size)
{
    // Drop the consumed prefix before growing: a client that trickles
    // bytes should not make the buffer creep upward forever.
    if (cursor > 0 && (cursor == buf.size() || cursor >= 4096)) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(cursor));
        cursor = 0;
    }
    buf.insert(buf.end(), data, data + size);
}

bool
FrameReader::next(Frame &out)
{
    const std::size_t avail = buf.size() - cursor;
    if (avail < 4)
        return false;
    const std::uint8_t *p = buf.data() + cursor;
    const std::uint32_t length =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (length == 0)
        raiseError(ErrorKind::MalformedInput,
                   "frame header declares zero length (missing type "
                   "byte)");
    if (length > kMaxFrameLength)
        raiseError(ErrorKind::MalformedInput,
                   "frame length %u exceeds the %u-byte limit", length,
                   kMaxFrameLength);
    if (avail < 4 + static_cast<std::size_t>(length))
        return false;
    const std::uint8_t raw = p[4];
    if (!knownFrameType(raw))
        raiseError(ErrorKind::MalformedInput,
                   "unknown frame type 0x%02x", raw);
    out.type = static_cast<FrameType>(raw);
    out.body.assign(p + 5, p + 4 + length);
    cursor += 4 + static_cast<std::size_t>(length);
    return true;
}

void
appendIqFromU8(const std::uint8_t *bytes, std::size_t size,
               std::vector<sdr::IqSample> &out)
{
    out.reserve(out.size() + size / 2);
    for (std::size_t i = 0; i + 1 < size; i += 2)
        out.push_back(iqFromU8(bytes[i], bytes[i + 1]));
}

} // namespace emsc::serve
