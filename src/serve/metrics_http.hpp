/**
 * @file
 * Metrics exposition endpoint: a tiny loopback HTTP/1.0 listener
 * serving live views of the global telemetry registry.
 *
 * Routes:
 *   /metrics       Prometheus text exposition format 0.0.4
 *   /metrics.json  emsc.metrics.v1 snapshot
 *   /series.json   emsc.metrics.series.v1 (the snapshotter's ring of
 *                  recent snapshots with per-counter deltas/rates)
 *   /healthz       "ok\n" liveness probe
 *
 * Every /metrics and /metrics.json request takes a *fresh* registry
 * snapshot (recorded into the same ring the periodic sampler feeds),
 * so a scrape always equals the registry state at scrape time — a
 * scrape taken after a run quiesces is byte-for-value identical to
 * the end-of-run emsc.metrics.v1 file.
 *
 * One endpoint serves every tool: `emsc_tool serve` starts it next
 * to the session listener, `emsc_tool sweep` (and any other
 * subcommand) as a sidecar via the global --metrics-port flag, and
 * perf_serve embeds one to assert scrape/snapshot equality.  Binds
 * 127.0.0.1 only, same trust model as the serve control socket.
 */

#ifndef EMSC_SERVE_METRICS_HTTP_HPP
#define EMSC_SERVE_METRICS_HTTP_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "support/snapshotter.hpp"

namespace emsc::serve {

struct MetricsEndpointConfig
{
    /** TCP port on 127.0.0.1; 0 = ephemeral (read back via port()). */
    std::uint16_t port = 0;
    /** Period of the background ring sampler (ms). */
    std::size_t periodMs = 500;
    /** Ring capacity in snapshots (periodMs * capacity of history). */
    std::size_t ringCapacity = 120;
};

class MetricsEndpoint
{
  public:
    explicit MetricsEndpoint(const MetricsEndpointConfig &config = {});
    ~MetricsEndpoint();
    MetricsEndpoint(const MetricsEndpoint &) = delete;
    MetricsEndpoint &operator=(const MetricsEndpoint &) = delete;

    /** Bind, start the acceptor thread and the ring sampler.
     * Raises IoError when the port cannot be bound; idempotent. */
    void start();
    /** Stop and join; idempotent, called by the destructor. */
    void stop();

    /** Bound port (valid after start()). */
    std::uint16_t port() const { return boundPort_; }
    bool running() const { return running_.load(); }

  private:
    void loop();
    std::string respond(const std::string &path);

    MetricsEndpointConfig cfg;
    telemetry::Snapshotter snapshotter_;
    int listenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

/**
 * Minimal HTTP/1.0 GET client for the endpoint above (used by
 * `emsc_tool top` and the tests; not a general HTTP client).
 * Returns the response body; raises IoError on connect/read errors
 * or a non-200 status.
 */
std::string httpGet(const std::string &host, std::uint16_t port,
                    const std::string &path);

} // namespace emsc::serve

#endif // EMSC_SERVE_METRICS_HTTP_HPP
