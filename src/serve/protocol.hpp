/**
 * @file
 * Length-prefixed wire protocol of the multi-session receiver service.
 *
 * Every frame on a control connection is
 *
 *     [u32 LE length][u8 type][body ...]
 *
 * where `length` counts the type byte plus the body (so the smallest
 * legal frame is length 1: a bare type). The length is capped at
 * kMaxFrameLength; anything larger — or a length of 0 — is a
 * malformed stream and raises MalformedInput, because a desynchronised
 * framing layer cannot be resynchronised safely.
 *
 * Frame types (client → server unless noted):
 *
 *   Open   (1)  JSON body: {"sample_rate": Hz, "center_freq": Hz,
 *               "start_time_ns": ns} — every field optional, server
 *               defaults apply. One session per connection.
 *   OpenOk (2)  server → client, JSON {"session": id}.
 *   Data   (3)  raw interleaved u8 IQ samples (rtl_sdr convention:
 *               I,Q,I,Q..., 127.5 = zero). Must contain whole samples
 *               (even byte count).
 *   Poll   (4)  empty body; server answers Status.
 *   Status (5)  server → client, JSON progress snapshot.
 *   Close  (6)  empty body; server finishes the decode and answers
 *               Result.
 *   Result (7)  server → client, JSON decode result (payload bits,
 *               frame integrity, failure if any).
 *   Error  (8)  server → client, JSON {"kind", "message"}. Sent in
 *               reply to a rejected or malformed request; framing-level
 *               errors additionally close the connection.
 *
 * JSON bodies use the repo's own json::Value; a body that fails to
 * parse raises MalformedInput.
 */

#ifndef EMSC_SERVE_PROTOCOL_HPP
#define EMSC_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sdr/iq.hpp"
#include "support/json.hpp"

namespace emsc::serve {

enum class FrameType : std::uint8_t {
    Open = 1,
    OpenOk = 2,
    Data = 3,
    Poll = 4,
    Status = 5,
    Close = 6,
    Result = 7,
    Error = 8,
};

/** Human-readable frame-type name ("open", "data", ...). */
const char *frameTypeName(FrameType type);

/** Whether `raw` is one of the FrameType values. */
bool knownFrameType(std::uint8_t raw);

/** Maximum legal `length` header value (type byte + body). 16 MiB of
 * body bounds a malicious or corrupt peer's allocation. */
constexpr std::uint32_t kMaxFrameLength = (1u << 24) + 1;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> body;
};

/** Serialise a frame: header + type + body. */
std::vector<std::uint8_t> encodeFrame(FrameType type,
                                      const std::uint8_t *body,
                                      std::size_t size);

/** Serialise a frame whose body is compact JSON. */
std::vector<std::uint8_t> encodeJsonFrame(FrameType type,
                                          const json::Value &body);

/**
 * Parse a frame's body as JSON. An empty body parses as an empty
 * object (the protocol's optional-body convention).
 * @throws RecoverableError (MalformedInput) on invalid JSON.
 */
json::Value parseJsonBody(const Frame &frame);

/**
 * Incremental frame parser over an arbitrary byte stream: push()
 * whatever the socket produced, then drain complete frames with
 * next(). Partial frames stay buffered across pushes.
 */
class FrameReader
{
  public:
    /** Append raw bytes from the transport. */
    void push(const std::uint8_t *data, std::size_t size);

    /**
     * Extract the next complete frame.
     * @return false when no complete frame is buffered yet.
     * @throws RecoverableError (MalformedInput) on a zero or oversized
     *         length header or an unknown frame type — the stream is
     *         unsynchronised and must be torn down.
     */
    bool next(Frame &out);

    /** Bytes currently buffered (complete or partial). */
    std::size_t buffered() const { return buf.size() - cursor; }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t cursor = 0;
};

/** rtl_sdr u8 → complex baseband, the readIqU8 convention. */
inline sdr::IqSample
iqFromU8(std::uint8_t i, std::uint8_t q)
{
    return sdr::IqSample{(static_cast<double>(i) - 127.5) / 127.5,
                         (static_cast<double>(q) - 127.5) / 127.5};
}

/** Append `size/2` samples decoded from interleaved u8 bytes.
 * `size` must be even (the caller owns half-sample handling). */
void appendIqFromU8(const std::uint8_t *bytes, std::size_t size,
                    std::vector<sdr::IqSample> &out);

} // namespace emsc::serve

#endif // EMSC_SERVE_PROTOCOL_HPP
