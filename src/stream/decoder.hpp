/**
 * @file
 * Push-driven streaming decoder: the resumable counterpart of
 * ReceiverOps::runStreaming() for callers that *receive* chunks
 * instead of pulling them from a ChunkSource — the serve session
 * layer, live socket ingest. feed() does a bounded amount of work on
 * the calling thread and returns; no thread, queue, or consumer loop
 * is owned per decoder, so a scheduler can interleave hundreds of
 * decoders over a small worker pool.
 *
 * The decode itself is the exact runStreaming() algorithm: buffer a
 * warm-up prefix, calibrate carrier/window/timing on it, then replay
 * the buffered chunks and every later chunk through the same stage
 * chain (via StageCascade). A capture that ends inside the warm-up is
 * decoded by the batch path at finish(), and a feed() that raises a
 * RecoverableError records the failure in the result before
 * rethrowing — finish() afterwards still returns a well-formed
 * StreamingResult, exactly like runStreaming()'s catch.
 *
 * Not thread-safe: the caller serialises feed()/finish()/accessors
 * (the serve SessionManager guarantees one in-flight task per
 * session).
 */

#ifndef EMSC_STREAM_DECODER_HPP
#define EMSC_STREAM_DECODER_HPP

#include <chrono>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stream/pipeline.hpp"
#include "stream/receiver_ops.hpp"
#include "stream/stages.hpp"

namespace emsc::stream {

namespace detail {

/** Append "; note" to a diagnostic string (no separator when empty). */
void appendNote(std::string &diag, const std::string &note);

/**
 * Window-geometry validation identical to the batch receive() entry:
 * clamp minWindow, round both to powers of two, record diagnostics.
 * Returns the validated minimum window.
 */
std::size_t validateWindow(channel::AcquisitionConfig &acq,
                           std::size_t min_window, std::string &diag);

/**
 * Warm-up size actually buffered: the requested sample count raised
 * (with a diagnostic note) to what the Welch carrier search needs.
 */
std::size_t warmupTarget(const channel::AcquisitionConfig &acq,
                         std::size_t requested, std::string &diag);

/** Everything warm-up calibration decided for the streaming stages. */
struct WarmupCalibration
{
    /** Acquisition config after adaptive-window refinement. */
    channel::AcquisitionConfig acq;
    /** Timing seed handed to TimingStage. */
    TimingCalibration cal;
    /** Decimated envelope sample rate (Hz). */
    double decRate = 0.0;
    /** Carrier-lock SNR of the warm-up estimate (dB; NaN when the
     * estimator could not measure it). */
    double snrDb = std::numeric_limits<double>::quiet_NaN();
    /** False when no carrier was found (nothing else is valid). */
    bool carrierFound = false;
};

/**
 * Calibrate on the buffered warm-up capture: carrier estimate,
 * adaptive-window refinement, and the initial signaling-time /
 * edge-kernel / reference-quantile seed. Records carrierHz,
 * windowUsed and diagnostics into `rx` exactly as runStreaming()
 * historically did.
 */
WarmupCalibration calibrateWarmup(const channel::ReceiverConfig &cfg,
                                  const sdr::IqCapture &warm,
                                  channel::AcquisitionConfig acq,
                                  std::size_t min_window,
                                  channel::ReceiverResult &rx);

/** The wired stage chain plus the raw pointers result assembly needs.
 * Stage order is pipeline order (envelope, [keylog], timing, label,
 * decode). */
struct StageSet
{
    std::vector<std::unique_ptr<StreamStage>> stages;
    EnvelopeStage *envelope = nullptr;
    /** Null unless StreamingOptions::detectKeystrokes. */
    KeystrokeStage *keystroke = nullptr;
    DecodeStage *decode = nullptr;
};

/** Build the runStreaming() stage chain from a warm-up calibration. */
StageSet buildStages(const channel::ReceiverConfig &cfg,
                     const WarmupCalibration &calib, double carrier_hz,
                     double center_frequency, double sample_rate,
                     TimeNs start_time, const StreamingOptions &opts);

/**
 * Fill the receiver-shaped result from the finished stage chain (the
 * tail of runStreaming(): timing, labeled bits, frame, erasures,
 * segment summary, keystrokes, first-bit latency).
 */
void assembleResult(const StageSet &set, double dec_rate,
                    StreamingResult &out);

/**
 * Batch-decode a capture that ended inside the warm-up buffer (it fit
 * in memory anyway): channel::receive over the buffered prefix, with
 * the batch-fallback diagnostics and optional keystroke detection.
 */
void decodeWarmupBatch(const channel::ReceiverConfig &cfg,
                       const sdr::IqCapture &warm,
                       const StreamingOptions &opts,
                       std::size_t chunk_count, StreamingResult &out);

} // namespace detail

/** Capture metadata a push-driven decode cannot read off a source. */
struct StreamMeta
{
    /** Raw IQ sample rate (Hz); must be positive. */
    double sampleRate = 0.0;
    /** Frequency the receiver believes it is tuned to (Hz). */
    double centerFrequency = 0.0;
    /** Absolute time of the capture's first sample. */
    TimeNs startTime = 0;
};

class StreamingDecoder
{
  public:
    /**
     * @throws RecoverableError (InvalidConfig) on a non-positive
     * sample rate.
     */
    StreamingDecoder(const channel::ReceiverConfig &config,
                     const StreamMeta &meta,
                     const StreamingOptions &options = {});

    StreamingDecoder(const StreamingDecoder &) = delete;
    StreamingDecoder &operator=(const StreamingDecoder &) = delete;

    /**
     * Consume one chunk (chunks must arrive in capture order). May
     * raise a RecoverableError from calibration or a stage; the
     * failure is recorded in the result before the rethrow, and the
     * decoder then ignores further chunks — finish() still returns.
     */
    void feed(IqChunk &&chunk);

    /**
     * Record an externally-detected failure (a quota breach, a wire
     * error) and stop decoding; further chunks are counted but
     * ignored. The first recorded failure wins.
     */
    void fail(const Error &error);

    /**
     * End of stream: flush the stages (or batch-decode a capture that
     * never left warm-up), assemble the result, and publish stream/
     * receiver telemetry exactly as runStreaming() does. Never throws
     * a RecoverableError — late failures land in result.rx.failure.
     * May be called once.
     */
    StreamingResult finish();

    /** True after finish(). */
    bool finished() const { return finished_; }
    /** True once warm-up calibrated and the stage chain is running. */
    bool streaming() const { return live_; }
    /** Chunks / raw samples fed so far (including ignored ones). */
    std::size_t chunksIn() const { return srcChunks; }
    std::size_t samplesIn() const { return srcSamples; }
    /** Labeled bits decoded so far (0 until streaming()). */
    std::size_t bitsDecoded() const;
    /** Frames decoded so far (0 or 1: one frame per session). */
    std::size_t framesDecoded() const;
    /** Current carrier estimate in Hz (0 until calibrated). */
    double carrierEstimate() const;
    /** Carrier-lock SNR measured during warm-up calibration (dB;
     * NaN until calibrated or when unmeasurable). */
    double snrDb() const { return snrDb_; }
    /** First failure recorded so far, if any. */
    const std::optional<Error> &failure() const
    {
        return result.rx.failure;
    }

  private:
    void beginStreaming();

    channel::ReceiverConfig cfg;
    StreamMeta meta;
    StreamingOptions opts;
    /** Window-validated acquisition config (pre-calibration). */
    channel::AcquisitionConfig acq;
    std::size_t minWindow = 0;
    std::size_t warmupNeeded = 0;

    /** Warm-up buffer (cleared once streaming or at finish). */
    std::vector<IqChunk> warm;
    std::size_t warmSamples = 0;

    /** Live stage chain (valid once live_). Stats addresses must stay
     * stable for StageCascade, hence the one-shot assign(). */
    detail::StageSet set;
    std::vector<StageStats> stats;
    StageCascade cascade;
    double decRate = 0.0;

    StreamingResult result;
    double snrDb_ = std::numeric_limits<double>::quiet_NaN();
    std::size_t srcChunks = 0;
    std::size_t srcSamples = 0;
    std::chrono::steady_clock::time_point t0;
    bool started = false;
    bool live_ = false;
    /** Decoding settled early (no carrier, error): ignore chunks. */
    bool dead_ = false;
    bool finished_ = false;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_DECODER_HPP
