#include "stream/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <utility>

#include "support/error.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace emsc::stream {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - since)
            .count());
}

/** Internal unwind signal when a downstream queue was aborted. */
struct QueueAborted
{
};

} // namespace

struct StreamPipeline::Worker
{
    std::unique_ptr<StreamStage> stage;
    std::unique_ptr<SampleQueue> input;
    std::size_t queueCapacity = 0;
    StageStats stats;
    std::size_t emitSeq = 0;
};

StreamPipeline::StreamPipeline() = default;
StreamPipeline::~StreamPipeline() = default;

void
StreamPipeline::addStage(std::unique_ptr<StreamStage> stage,
                         std::size_t queue_capacity)
{
    if (!stage)
        panic("StreamPipeline::addStage with a null stage");
    if (queue_capacity == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "stage queue capacity must be positive");
    auto w = std::make_unique<Worker>();
    w->stage = std::move(stage);
    w->queueCapacity = queue_capacity;
    w->stats.name = w->stage->name();
    workers.push_back(std::move(w));
}

StreamReport
StreamPipeline::run(ChunkSource &source)
{
    if (used)
        panic("StreamPipeline::run called twice");
    used = true;
    if (workers.empty())
        raiseError(ErrorKind::InvalidConfig,
                   "StreamPipeline::run with no stages");

    telemetry::TraceSpan span("stream.run");
    Clock::time_point t0 = Clock::now();
    if (parallelThreads() <= 1 || insideParallelWorker())
        runInline(source);
    else
        runThreaded(source);
    report.totalNs = elapsedNs(t0);

    report.peakBufferedSamples = 0;
    report.stages.clear();
    for (const auto &w : workers) {
        report.peakBufferedSamples += w->stats.totalPeakSamples();
        report.stages.push_back(w->stats);
    }
    report.publish();
    return report;
}

void
StreamPipeline::runInline(ChunkSource &source)
{
    // Single-threaded mode delegates to the shared StageCascade (the
    // same scheduler the push-driven StreamingDecoder uses): every
    // message is carried through all stages depth-first on the calling
    // thread — no queues, no worker threads.
    StageCascade cascade;
    for (auto &w : workers)
        cascade.attach(w->stage.get(), &w->stats);

    IqChunk chunk;
    while (source.next(chunk)) {
        ++report.sourceChunks;
        report.sourceSamples += chunk.samples.size();
        StreamMessage msg;
        msg.seq = chunk.index;
        msg.payload = std::move(chunk);
        cascade.feed(std::move(msg));
        chunk = IqChunk{};
    }
    cascade.finish();
}

void
StageCascade::attach(StreamStage *stage, StageStats *stats)
{
    if (stage == nullptr || stats == nullptr)
        panic("StageCascade::attach with a null stage or stats");
    if (done)
        panic("StageCascade::attach after finish");
    slots.push_back(Slot{stage, stats, 0});
}

void
StageCascade::feed(StreamMessage &&msg)
{
    if (done)
        panic("StageCascade::feed after finish");
    feedFrom(0, std::move(msg));
}

void
StageCascade::feedFrom(std::size_t index, StreamMessage &&msg)
{
    if (index >= slots.size())
        return;
    Slot &s = slots[index];
    ++s.stats->chunksIn;
    s.stats->samplesIn += msg.sampleUnits();
    // Exclusive per-stage timing: subtract the nested downstream time
    // from this stage's own.
    std::uint64_t nested = 0;
    StreamStage::Emit emit = [&](StreamMessage &&out) {
        out.seq = s.emitSeq++;
        ++s.stats->chunksOut;
        Clock::time_point c0 = Clock::now();
        feedFrom(index + 1, std::move(out));
        nested += elapsedNs(c0);
    };
    Clock::time_point p0 = Clock::now();
    s.stage->process(std::move(msg), emit);
    std::uint64_t dt = elapsedNs(p0);
    s.stats->processNs += dt > nested ? dt - nested : 0;
    s.stats->peakBufferedSamples = std::max(
        s.stats->peakBufferedSamples, s.stage->bufferedSamples());
}

void
StageCascade::finish()
{
    if (done)
        panic("StageCascade::finish called twice");
    done = true;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot &s = slots[i];
        std::uint64_t nested = 0;
        StreamStage::Emit emit = [&](StreamMessage &&out) {
            out.seq = s.emitSeq++;
            ++s.stats->chunksOut;
            Clock::time_point c0 = Clock::now();
            feedFrom(i + 1, std::move(out));
            nested += elapsedNs(c0);
        };
        Clock::time_point p0 = Clock::now();
        s.stage->finish(emit);
        std::uint64_t dt = elapsedNs(p0);
        s.stats->processNs += dt > nested ? dt - nested : 0;
        s.stats->peakBufferedSamples = std::max(
            s.stats->peakBufferedSamples, s.stage->bufferedSamples());
    }
}

void
StreamPipeline::runThreaded(ChunkSource &source)
{
    for (auto &w : workers)
        w->input = std::make_unique<SampleQueue>(w->queueCapacity);

    std::atomic<bool> failed{false};
    std::mutex errMtx;
    std::exception_ptr firstError;
    std::mutex doneMtx;
    std::condition_variable doneCv;
    std::size_t remaining = workers.size();

    auto abortAll = [&] {
        failed.store(true, std::memory_order_release);
        for (auto &w : workers)
            w->input->abort();
    };
    auto recordError = [&] {
        {
            std::lock_guard<std::mutex> lock(errMtx);
            if (!firstError)
                firstError = std::current_exception();
        }
        abortAll();
    };

    ThreadPool &pool = globalThreadPool();
    pool.ensureWorkers(workers.size());

    for (std::size_t i = 0; i < workers.size(); ++i) {
        pool.submit([&, i] {
            Worker &w = *workers[i];
            SampleQueue *out = i + 1 < workers.size()
                                   ? workers[i + 1]->input.get()
                                   : nullptr;
            StreamStage::Emit emit = [&](StreamMessage &&m) {
                m.seq = w.emitSeq++;
                ++w.stats.chunksOut;
                if (out && !out->push(std::move(m)))
                    throw QueueAborted{};
            };
            try {
                StreamMessage msg;
                while (w.input->pop(msg)) {
                    ++w.stats.chunksIn;
                    w.stats.samplesIn += msg.sampleUnits();
                    Clock::time_point p0 = Clock::now();
                    w.stage->process(std::move(msg), emit);
                    w.stats.processNs += elapsedNs(p0);
                    w.stats.peakBufferedSamples =
                        std::max(w.stats.peakBufferedSamples,
                                 w.stage->bufferedSamples());
                }
                if (!failed.load(std::memory_order_acquire)) {
                    Clock::time_point p0 = Clock::now();
                    w.stage->finish(emit);
                    w.stats.processNs += elapsedNs(p0);
                    w.stats.peakBufferedSamples =
                        std::max(w.stats.peakBufferedSamples,
                                 w.stage->bufferedSamples());
                }
                if (out)
                    out->close();
            } catch (const QueueAborted &) {
                // Teardown in progress; nothing to record.
            } catch (...) {
                recordError();
            }
            {
                // Notify under the lock: once remaining hits 0 the
                // waiting run() may return and destroy the cv, so the
                // notify must happen-before that wakeup.
                std::lock_guard<std::mutex> lock(doneMtx);
                --remaining;
                doneCv.notify_all();
            }
        });
    }

    // The caller's thread pumps the source into the first queue;
    // backpressure from any stage propagates here and throttles
    // production.
    try {
        IqChunk chunk;
        while (source.next(chunk)) {
            ++report.sourceChunks;
            report.sourceSamples += chunk.samples.size();
            StreamMessage msg;
            msg.seq = chunk.index;
            msg.payload = std::move(chunk);
            if (!workers[0]->input->push(std::move(msg)))
                break; // aborted by a failing stage
            chunk = IqChunk{};
        }
    } catch (...) {
        recordError();
    }
    workers[0]->input->close();

    {
        std::unique_lock<std::mutex> lock(doneMtx);
        doneCv.wait(lock, [&] { return remaining == 0; });
    }

    // Stage loops have joined (the cv wait synchronises-with their
    // final notify), so stats and queues are safe to read unlocked.
    for (std::size_t i = 0; i < workers.size(); ++i) {
        SampleQueue::Stats qs = workers[i]->input->stats();
        workers[i]->stats.queueHighWater = qs.highWater;
        workers[i]->stats.queuePeakSamples = qs.peakSamples;
        workers[i]->stats.stallPopNs = qs.popWaitNs;
        if (i + 1 < workers.size())
            workers[i]->stats.stallPushNs =
                workers[i + 1]->input->stats().pushWaitNs;
    }

    if (firstError)
        std::rethrow_exception(firstError);
}

void
StreamReport::publish() const
{
    telemetry::MetricsRegistry &reg =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter runs(reg, "stream.pipeline.runs");
    static telemetry::Counter totalNsCounter(reg,
                                             "stream.pipeline.total_ns");
    static telemetry::Counter srcSamples(reg, "stream.source.samples");
    static telemetry::Counter srcChunks(reg, "stream.source.chunks");
    static telemetry::Gauge peak(
        reg, "stream.pipeline.peak_buffered_samples");
    if (!reg.enabled())
        return;
    runs.add();
    totalNsCounter.add(totalNs);
    srcSamples.add(sourceSamples);
    srcChunks.add(sourceChunks);
    peak.max(static_cast<double>(peakBufferedSamples));
    for (const StageStats &s : stages) {
        // Stage names are dynamic, so resolve ids per run (a handful
        // of registry lookups per pipeline, not per chunk).
        std::string base = "stream.stage." + s.name + ".";
        reg.counterAdd(reg.counterId(base + "chunks_in"), s.chunksIn);
        reg.counterAdd(reg.counterId(base + "chunks_out"),
                       s.chunksOut);
        reg.counterAdd(reg.counterId(base + "samples_in"),
                       s.samplesIn);
        reg.counterAdd(reg.counterId(base + "process_ns"),
                       s.processNs);
        reg.counterAdd(reg.counterId(base + "stall_pop_ns"),
                       s.stallPopNs);
        reg.counterAdd(reg.counterId(base + "stall_push_ns"),
                       s.stallPushNs);
        reg.gaugeMax(reg.gaugeId(base + "queue_high_water"),
                     static_cast<double>(s.queueHighWater));
        reg.gaugeMax(reg.gaugeId(base + "peak_samples"),
                     static_cast<double>(s.totalPeakSamples()));
    }
}

std::string
StreamReport::format() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-10s %10s %10s %12s %8s %10s %10s %6s %10s\n",
                  "stage", "in", "out", "samples", "ns/smp",
                  "stall-in", "stall-out", "qpeak", "buffered");
    out += line;
    for (const StageStats &s : stages) {
        std::snprintf(
            line, sizeof(line),
            "%-10s %10zu %10zu %12zu %8.2f %8.1fms %8.1fms %6zu %10zu\n",
            s.name.c_str(), s.chunksIn, s.chunksOut, s.samplesIn,
            s.nsPerSample(),
            static_cast<double>(s.stallPopNs) * 1e-6,
            static_cast<double>(s.stallPushNs) * 1e-6, s.queueHighWater,
            s.peakBufferedSamples);
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "total: %.1f ms, %zu chunks, %zu samples, peak "
                  "buffered %zu sample units\n",
                  static_cast<double>(totalNs) * 1e-6, sourceChunks,
                  sourceSamples, peakBufferedSamples);
    out += line;
    return out;
}

} // namespace emsc::stream
