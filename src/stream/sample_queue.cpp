#include "stream/sample_queue.hpp"

#include <chrono>
#include <utility>

#include "support/error.hpp"

namespace emsc::stream {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - since)
            .count());
}

} // namespace

SampleQueue::SampleQueue(std::size_t capacity)
{
    if (capacity == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "SampleQueue capacity must be positive");
    ring.resize(capacity);
}

bool
SampleQueue::push(StreamMessage &&msg)
{
    std::unique_lock<std::mutex> lock(mtx);
    std::uint64_t waited = 0;
    if (!aborted && !closed && count == ring.size()) {
        Clock::time_point t0 = Clock::now();
        notFull.wait(lock, [this] {
            return aborted || closed || count < ring.size();
        });
        waited = elapsedNs(t0);
    }
    if (aborted || closed) {
        // The wait (if any) ended in teardown, not a transfer: leave
        // pushWaitNs alone so stall time only measures successful
        // backpressure, and count the post-close refusal.
        if (closed && !aborted)
            ++acc.rejectedAfterClose;
        return false;
    }
    acc.pushWaitNs += waited;
    std::size_t units = msg.sampleUnits();
    ring[(head + count) % ring.size()] = std::move(msg);
    ++count;
    samples += units;
    ++acc.pushed;
    acc.highWater = std::max(acc.highWater, count);
    acc.peakSamples = std::max(acc.peakSamples, samples);
    lock.unlock();
    notEmpty.notify_one();
    return true;
}

bool
SampleQueue::pop(StreamMessage &out)
{
    std::unique_lock<std::mutex> lock(mtx);
    std::uint64_t waited = 0;
    if (!aborted && count == 0 && !closed) {
        Clock::time_point t0 = Clock::now();
        notEmpty.wait(lock,
                      [this] { return aborted || count > 0 || closed; });
        waited = elapsedNs(t0);
    }
    if (aborted || count == 0)
        return false; // woken for teardown/EOF: no transfer to charge
    acc.popWaitNs += waited;
    out = std::move(ring[head]);
    ring[head] = StreamMessage{};
    head = (head + 1) % ring.size();
    --count;
    samples -= out.sampleUnits();
    ++acc.popped;
    lock.unlock();
    notFull.notify_one();
    return true;
}

void
SampleQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        closed = true;
    }
    notEmpty.notify_all();
    // Producers blocked on a full ring must also wake: their push now
    // resolves to a rejectedAfterClose refusal instead of waiting for
    // space that may never appear once the consumer has drained out.
    notFull.notify_all();
}

void
SampleQueue::abort()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        aborted = true;
        for (StreamMessage &m : ring)
            m = StreamMessage{};
        count = 0;
        samples = 0;
    }
    notEmpty.notify_all();
    notFull.notify_all();
}

SampleQueue::Stats
SampleQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return acc;
}

} // namespace emsc::stream
