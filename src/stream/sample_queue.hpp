/**
 * @file
 * Fixed-capacity blocking ring buffer connecting pipeline stages.
 *
 * Backpressure is the memory bound: a producer faster than its
 * consumer blocks in push() once the ring holds `capacity` messages,
 * so no queue ever buffers more than capacity × chunk-size sample
 * units regardless of capture length. close() ends the stream
 * gracefully (consumers drain what remains); abort() ends it
 * immediately (both sides unblock and fail fast), used for error
 * teardown.
 */

#ifndef EMSC_STREAM_SAMPLE_QUEUE_HPP
#define EMSC_STREAM_SAMPLE_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "stream/stage.hpp"

namespace emsc::stream {

class SampleQueue
{
  public:
    /** Occupancy and wait accounting, read after the run completes. */
    struct Stats
    {
        /** Messages pushed / popped over the queue's lifetime. */
        std::size_t pushed = 0;
        std::size_t popped = 0;
        /** Peak simultaneous messages in the ring. */
        std::size_t highWater = 0;
        /** Peak simultaneous sample units in the ring. */
        std::size_t peakSamples = 0;
        /**
         * Total nanoseconds producers spent blocked in push() *for
         * transfers that succeeded*. A waiter woken by abort() (or a
         * close() racing its wait) is torn down, not transferring, so
         * its wait time is excluded rather than inflating the
         * stall-time a profile attributes to real backpressure.
         */
        std::uint64_t pushWaitNs = 0;
        /** Same accounting on the consumer side of pop(). */
        std::uint64_t popWaitNs = 0;
        /** push() calls refused because the queue was already closed. */
        std::size_t rejectedAfterClose = 0;
    };

    explicit SampleQueue(std::size_t capacity);

    SampleQueue(const SampleQueue &) = delete;
    SampleQueue &operator=(const SampleQueue &) = delete;

    /**
     * Enqueue a message, blocking while the ring is full.
     * @return false when the queue was aborted or already closed (the
     *         message is dropped; a post-close push is additionally
     *         tallied in Stats::rejectedAfterClose). Closing the
     *         stream is a producer-side statement that nothing else is
     *         coming, so a late producer gets a refusal it can observe
     *         instead of corrupting the drained ring.
     */
    bool push(StreamMessage &&msg);

    /**
     * Dequeue the oldest message, blocking while the ring is empty.
     * @return false when the stream ended: closed and drained, or
     *         aborted.
     */
    bool pop(StreamMessage &out);

    /** Mark the end of the stream; pending messages remain poppable. */
    void close();

    /** Tear the queue down: unblock everyone, drop pending messages. */
    void abort();

    Stats stats() const;

  private:
    mutable std::mutex mtx;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::vector<StreamMessage> ring;
    std::size_t head = 0;  // next pop position
    std::size_t count = 0; // messages in the ring
    std::size_t samples = 0;
    bool closed = false;
    bool aborted = false;
    Stats acc;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_SAMPLE_QUEUE_HPP
