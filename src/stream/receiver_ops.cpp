#include "stream/receiver_ops.hpp"

#include <utility>

#include "stream/decoder.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace emsc::stream {

namespace {

/** Replays buffered warm-up chunks, then continues with the source. */
class ReplayThenSource : public ChunkSource
{
  public:
    ReplayThenSource(std::vector<IqChunk> warm_chunks, ChunkSource &rest)
        : warm(std::move(warm_chunks)), tail(&rest)
    {
    }

    bool
    next(IqChunk &out) override
    {
        if (cursor < warm.size()) {
            out = std::move(warm[cursor]);
            warm[cursor] = IqChunk{};
            ++cursor;
            return true;
        }
        return tail->next(out);
    }

    double sampleRate() const override { return tail->sampleRate(); }
    double centerFrequency() const override
    {
        return tail->centerFrequency();
    }
    TimeNs startTime() const override { return tail->startTime(); }
    std::size_t totalSamples() const override
    {
        return tail->totalSamples();
    }

  private:
    std::vector<IqChunk> warm;
    ChunkSource *tail;
    std::size_t cursor = 0;
};

} // namespace

channel::ReceiverResult
ReceiverOps::runBatch(const sdr::IqCapture &capture) const
{
    return channel::receive(capture, cfg);
}

StreamingResult
ReceiverOps::runStreaming(ChunkSource &source,
                          const StreamingOptions &options) const
{
    StreamingResult out;
    telemetry::TraceSpan span("stream.streaming_decode");
    try {
        streamInto(source, options, out);
    } catch (const RecoverableError &e) {
        out.rx.failure = e.toError();
    }
    // The warm-up batch fallback publishes inside channel::receive();
    // every other outcome (streamed decode, carrier miss, stage
    // failure) is reported here so both decode paths surface the same
    // channel.* metric names.
    if (!out.batchFallback)
        channel::publishReceiverTelemetry(out.rx);
    return out;
}

void
ReceiverOps::streamInto(ChunkSource &source,
                        const StreamingOptions &opts,
                        StreamingResult &out) const
{
    if (opts.queueCapacity == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "StreamingOptions::queueCapacity must be positive");

    channel::AcquisitionConfig acq = cfg.acquisition;
    channel::ReceiverResult &rx = out.rx;
    std::size_t min_window =
        detail::validateWindow(acq, cfg.minWindow, rx.diagnostic);
    std::size_t warmup =
        detail::warmupTarget(acq, opts.warmupSamples, rx.diagnostic);

    // ---- Warm-up: buffer a bounded prefix for calibration. ----
    std::vector<IqChunk> warm;
    std::size_t warmSamples = 0;
    bool exhausted = false;
    {
        IqChunk c;
        while (warmSamples < warmup) {
            if (!source.next(c)) {
                exhausted = true;
                break;
            }
            warmSamples += c.samples.size();
            bool last = c.last;
            warm.push_back(std::move(c));
            c = IqChunk{};
            if (last) {
                exhausted = true;
                break;
            }
        }
    }

    sdr::IqCapture warmCap;
    warmCap.sampleRate = source.sampleRate();
    warmCap.centerFrequency = source.centerFrequency();
    warmCap.startTime = source.startTime();
    warmCap.samples.reserve(warmSamples);
    for (const IqChunk &c : warm)
        warmCap.samples.insert(warmCap.samples.end(), c.samples.begin(),
                               c.samples.end());

    if (exhausted) {
        // The whole capture fit inside the warm-up buffer: the batch
        // path decodes it in one shot with identical results and no
        // extra memory beyond what was already resident.
        detail::decodeWarmupBatch(cfg, warmCap, opts, warm.size(), out);
        return;
    }

    // ---- Calibration on the warm prefix. ----
    detail::WarmupCalibration calib =
        detail::calibrateWarmup(cfg, warmCap, acq, min_window, rx);
    if (!calib.carrierFound)
        return;

    // ---- Assemble and run the pipeline. ----
    detail::StageSet set = detail::buildStages(
        cfg, calib, rx.carrierHz, warmCap.centerFrequency,
        warmCap.sampleRate, warmCap.startTime, opts);

    StreamPipeline pipe;
    for (auto &stage : set.stages)
        pipe.addStage(std::move(stage), opts.queueCapacity);

    // Free the contiguous warm copy before streaming: the chunks
    // themselves are replayed through the pipeline.
    warmCap.samples.clear();
    warmCap.samples.shrink_to_fit();

    ReplayThenSource replay(std::move(warm), source);
    out.report = pipe.run(replay);
    out.streamed = true;

    // ---- Assemble the receiver-shaped result. ----
    detail::assembleResult(set, calib.decRate, out);
}

} // namespace emsc::stream
