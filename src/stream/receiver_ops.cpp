#include "stream/receiver_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "channel/acquisition.hpp"
#include "channel/timing.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace emsc::stream {

namespace {

/** Smallest window the adaptation may reach (mirrors receive()). */
constexpr std::size_t kWindowFloor = 16;

void
appendNote(std::string &diag, const std::string &note)
{
    if (!diag.empty())
        diag += "; ";
    diag += note;
}

/**
 * Window-geometry validation identical to the batch receive() entry:
 * clamp minWindow, round both to powers of two, record diagnostics.
 */
std::size_t
validateWindow(channel::AcquisitionConfig &acq, std::size_t min_window,
               std::string &diag)
{
    if (min_window < kWindowFloor) {
        char note[96];
        std::snprintf(note, sizeof(note), "minWindow %zu clamped to %zu",
                      min_window, kWindowFloor);
        appendNote(diag, note);
        min_window = kWindowFloor;
    }
    if (!dsp::isPowerOfTwo(min_window)) {
        std::size_t rounded = dsp::nextPowerOfTwo(min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "minWindow %zu rounded up to power of two %zu",
                      min_window, rounded);
        appendNote(diag, note);
        min_window = rounded;
    }
    if (acq.window == 0 || !dsp::isPowerOfTwo(acq.window) ||
        acq.window < min_window) {
        std::size_t rounded =
            std::max(dsp::nextPowerOfTwo(acq.window), min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "acquisition window %zu adjusted to %zu", acq.window,
                      rounded);
        appendNote(diag, note);
        acq.window = rounded;
    }
    return min_window;
}

/** Replays buffered warm-up chunks, then continues with the source. */
class ReplayThenSource : public ChunkSource
{
  public:
    ReplayThenSource(std::vector<IqChunk> warm_chunks, ChunkSource &rest)
        : warm(std::move(warm_chunks)), tail(&rest)
    {
    }

    bool
    next(IqChunk &out) override
    {
        if (cursor < warm.size()) {
            out = std::move(warm[cursor]);
            warm[cursor] = IqChunk{};
            ++cursor;
            return true;
        }
        return tail->next(out);
    }

    double sampleRate() const override { return tail->sampleRate(); }
    double centerFrequency() const override
    {
        return tail->centerFrequency();
    }
    TimeNs startTime() const override { return tail->startTime(); }
    std::size_t totalSamples() const override
    {
        return tail->totalSamples();
    }

  private:
    std::vector<IqChunk> warm;
    ChunkSource *tail;
    std::size_t cursor = 0;
};

} // namespace

channel::ReceiverResult
ReceiverOps::runBatch(const sdr::IqCapture &capture) const
{
    return channel::receive(capture, cfg);
}

StreamingResult
ReceiverOps::runStreaming(ChunkSource &source,
                          const StreamingOptions &options) const
{
    StreamingResult out;
    telemetry::TraceSpan span("stream.streaming_decode");
    try {
        streamInto(source, options, out);
    } catch (const RecoverableError &e) {
        out.rx.failure = e.toError();
    }
    // The warm-up batch fallback publishes inside channel::receive();
    // every other outcome (streamed decode, carrier miss, stage
    // failure) is reported here so both decode paths surface the same
    // channel.* metric names.
    if (!out.batchFallback)
        channel::publishReceiverTelemetry(out.rx);
    return out;
}

void
ReceiverOps::streamInto(ChunkSource &source,
                        const StreamingOptions &opts,
                        StreamingResult &out) const
{
    if (opts.queueCapacity == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "StreamingOptions::queueCapacity must be positive");

    channel::AcquisitionConfig acq = cfg.acquisition;
    channel::ReceiverResult &rx = out.rx;
    std::size_t min_window =
        validateWindow(acq, cfg.minWindow, rx.diagnostic);
    std::size_t dec = std::max<std::size_t>(1, acq.decimation);

    // The warm-up must at least feed the Welch carrier search.
    std::size_t warmup =
        std::max(opts.warmupSamples, 4 * acq.searchWindow);
    if (warmup != opts.warmupSamples) {
        char note[96];
        std::snprintf(note, sizeof(note),
                      "warmupSamples raised to %zu for the carrier "
                      "search",
                      warmup);
        appendNote(rx.diagnostic, note);
    }

    // ---- Warm-up: buffer a bounded prefix for calibration. ----
    std::vector<IqChunk> warm;
    std::size_t warmSamples = 0;
    bool exhausted = false;
    {
        IqChunk c;
        while (warmSamples < warmup) {
            if (!source.next(c)) {
                exhausted = true;
                break;
            }
            warmSamples += c.samples.size();
            bool last = c.last;
            warm.push_back(std::move(c));
            c = IqChunk{};
            if (last) {
                exhausted = true;
                break;
            }
        }
    }

    sdr::IqCapture warmCap;
    warmCap.sampleRate = source.sampleRate();
    warmCap.centerFrequency = source.centerFrequency();
    warmCap.startTime = source.startTime();
    warmCap.samples.reserve(warmSamples);
    for (const IqChunk &c : warm)
        warmCap.samples.insert(warmCap.samples.end(), c.samples.begin(),
                               c.samples.end());

    if (exhausted) {
        // The whole capture fit inside the warm-up buffer: the batch
        // path decodes it in one shot with identical results and no
        // extra memory beyond what was already resident.
        std::string diag = std::move(rx.diagnostic);
        rx = channel::receive(warmCap, cfg);
        if (!diag.empty())
            appendNote(diag, rx.diagnostic);
        else
            diag = std::move(rx.diagnostic);
        rx.diagnostic = std::move(diag);
        appendNote(rx.diagnostic,
                   "capture ended inside warm-up: batch decode");
        out.batchFallback = true;
        out.report.sourceChunks = warm.size();
        out.report.sourceSamples = warmCap.samples.size();
        if (opts.detectKeystrokes && !rx.acquired.y.empty()) {
            keylog::DetectionResult det = keylog::detectKeystrokes(
                rx.acquired, warmCap.startTime, opts.detector);
            out.keystrokes = std::move(det.keystrokes);
            if (opts.onKeystroke)
                for (const keylog::DetectedKeystroke &k : out.keystrokes)
                    opts.onKeystroke(k);
        }
        return;
    }

    // ---- Calibration on the warm prefix. ----
    rx.carrierHz = channel::estimateCarrier(warmCap, acq);
    if (rx.carrierHz <= 0.0) {
        appendNote(rx.diagnostic,
                   "no carrier found in the warm-up prefix");
        return;
    }

    channel::AcquiredSignal warmSig;
    channel::BitTiming warmTiming;
    while (true) {
        warmSig = channel::acquire(warmCap, acq, rx.carrierHz);
        rx.windowUsed = acq.window;
        channel::TimingConfig tc = cfg.timing;
        if (tc.rampHint == 0)
            tc.rampHint = acq.window / dec;
        try {
            warmTiming = channel::recoverTiming(warmSig.y, tc);
        } catch (const RecoverableError &) {
            // Warm-up too short/flat to time: the streaming stage
            // falls back to its generic calibration below.
            warmTiming = channel::BitTiming{};
        }
        if (!cfg.adaptiveWindow)
            break;
        double bit_samples =
            warmTiming.signalingTime * static_cast<double>(dec);
        bool too_coarse =
            warmTiming.signalingTime > 0.0 &&
            bit_samples < 2.5 * static_cast<double>(acq.window);
        std::size_t halved = acq.window / 2;
        if (!too_coarse || halved < min_window)
            break;
        acq.window = halved;
    }

    TimingCalibration cal;
    cal.timing = cfg.timing;
    double tsig0 = warmTiming.signalingTime;
    if (tsig0 <= 4.0)
        tsig0 = cfg.timing.periodHint > 4.0 ? cfg.timing.periodHint
                                            : 64.0;
    cal.signalingTime = tsig0;
    std::size_t l_d = cfg.timing.edgeKernel;
    if (l_d == 0)
        l_d = static_cast<std::size_t>(std::lround(0.5 * tsig0));
    cal.edgeKernel = std::clamp<std::size_t>(l_d & ~std::size_t{1}, 4,
                                             4096);
    if (warmSig.y.size() >= 4 * cal.edgeKernel) {
        // Seed the stage's adaptive edge threshold with the same
        // quantile statistic the batch recovery uses.
        try {
            std::vector<double> edges =
                dsp::edgeDetect(warmSig.y, cal.edgeKernel);
            dsp::PeakOptions po;
            po.minDistance = std::max<std::size_t>(
                4, static_cast<std::size_t>(
                       std::lround(cfg.timing.minSpacingRatio * tsig0)));
            std::vector<std::size_t> pk = dsp::findPeaks(edges, po);
            std::vector<double> heights;
            heights.reserve(pk.size());
            for (std::size_t i : pk)
                heights.push_back(edges[i]);
            if (!heights.empty())
                cal.referenceQuantile =
                    quantile(std::move(heights), cfg.timing.peakQuantile);
        } catch (const RecoverableError &) {
            // Leave the stage to self-seed from its first span.
        }
    }

    // ---- Assemble and run the pipeline. ----
    double decRate = warmCap.sampleRate / static_cast<double>(dec);

    auto envStage = std::make_unique<EnvelopeStage>(
        rx.carrierHz, warmCap.centerFrequency, warmCap.sampleRate, acq,
        opts.tracker);
    EnvelopeStage *envP = envStage.get();
    std::unique_ptr<KeystrokeStage> keyStage;
    KeystrokeStage *keyP = nullptr;
    if (opts.detectKeystrokes) {
        keyStage = std::make_unique<KeystrokeStage>(
            decRate, warmCap.startTime, opts.detector, opts.onKeystroke);
        keyP = keyStage.get();
    }
    auto timStage = std::make_unique<TimingStage>(cal);
    auto labStage =
        std::make_unique<LabelStage>(cfg.labeling, cfg.labeling.batchBits);
    auto decStage = std::make_unique<DecodeStage>(cfg.frame);
    DecodeStage *decP = decStage.get();

    StreamPipeline pipe;
    pipe.addStage(std::move(envStage), opts.queueCapacity);
    if (keyStage)
        pipe.addStage(std::move(keyStage), opts.queueCapacity);
    pipe.addStage(std::move(timStage), opts.queueCapacity);
    pipe.addStage(std::move(labStage), opts.queueCapacity);
    pipe.addStage(std::move(decStage), opts.queueCapacity);

    // Free the contiguous warm copy before streaming: the chunks
    // themselves are replayed through the pipeline.
    warmCap.samples.clear();
    warmCap.samples.shrink_to_fit();

    ReplayThenSource replay(std::move(warm), source);
    out.report = pipe.run(replay);
    out.streamed = true;

    // ---- Assemble the receiver-shaped result. ----
    rx.acquired.sampleRate = decRate;
    rx.acquired.carrierHz = envP->carrierEstimate();
    appendNote(rx.diagnostic,
               "streaming decode: envelope not retained (bounded "
               "memory)");
    rx.timing.signalingTime = decP->signalingTime();
    rx.timing.starts = decP->starts();
    rx.labeled = decP->labeled();
    rx.frame = decP->frame();
    if (decP->anyErased())
        rx.erasureMask = decP->erasureMask();

    channel::ReceiverSegment seg;
    seg.begin = 0;
    seg.end = envP->envelopeSamples();
    seg.carrierHz = envP->carrierEstimate();
    seg.signalingTime = rx.timing.signalingTime;
    seg.bits = rx.labeled.bits.size();
    rx.segments.push_back(seg);

    out.firstBitLatencyNs = decP->firstBitLatencyNs();
    if (keyP)
        out.keystrokes = keyP->events();
}

} // namespace emsc::stream
