/**
 * @file
 * Streaming pipeline scheduler with built-in per-stage observability.
 *
 * Each stage gets a bounded input queue and a single consumer loop
 * running on the shared worker pool; the caller's thread pumps the
 * ChunkSource into the first queue. Backpressure from any queue
 * propagates back to the source, bounding resident memory, and the
 * single-consumer FIFO discipline makes stage state — and therefore
 * the final output — bit-identical for any thread count. When the
 * configured thread count is 1 the pipeline degenerates to an inline
 * cascade on the calling thread (no queues, no threads), which is also
 * used from inside pool workers to avoid starving the pool.
 *
 * Error handling follows the repo contract: a RecoverableError thrown
 * by any stage aborts every queue, the run tears down, and the first
 * error is rethrown from run() for the stage boundary
 * (ReceiverOps::runStreaming) to convert into a structured failure.
 */

#ifndef EMSC_STREAM_PIPELINE_HPP
#define EMSC_STREAM_PIPELINE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/sample_queue.hpp"
#include "stream/stage.hpp"

namespace emsc::stream {

/** Counters for one stage of a completed run. */
struct StageStats
{
    std::string name;
    /** Messages consumed / emitted. */
    std::size_t chunksIn = 0;
    std::size_t chunksOut = 0;
    /** Sample units consumed. */
    std::size_t samplesIn = 0;
    /** Time inside process()/finish(). */
    std::uint64_t processNs = 0;
    /** Time blocked waiting for input (consumer-side stall). */
    std::uint64_t stallPopNs = 0;
    /** Time blocked pushing output downstream (producer-side stall). */
    std::uint64_t stallPushNs = 0;
    /** Peak messages in this stage's input queue. */
    std::size_t queueHighWater = 0;
    /** Peak sample units in this stage's input queue. */
    std::size_t queuePeakSamples = 0;
    /** Peak sample units retained inside the stage itself. */
    std::size_t peakBufferedSamples = 0;

    /**
     * Peak sample units attributable to this stage: its input queue's
     * peak plus its own internal buffering.  The single definition
     * behind both StreamReport::peakBufferedSamples and the published
     * stream.stage.<name>.peak_samples gauge.
     */
    std::size_t
    totalPeakSamples() const
    {
        return queuePeakSamples + peakBufferedSamples;
    }

    double
    nsPerSample() const
    {
        return samplesIn > 0 ? static_cast<double>(processNs) /
                                   static_cast<double>(samplesIn)
                             : 0.0;
    }
};

/** Whole-run observability report. */
struct StreamReport
{
    std::vector<StageStats> stages;
    /** Wall time of the run (pump start to last stage finish). */
    std::uint64_t totalNs = 0;
    /** Raw IQ samples the source produced. */
    std::size_t sourceSamples = 0;
    /** Chunks the source produced. */
    std::size_t sourceChunks = 0;
    /**
     * Upper bound on peak simultaneously-buffered sample units across
     * the whole pipeline: sum of every queue's and every stage's peak.
     * O(queue capacity x chunk + window) by construction — independent
     * of capture length.
     */
    std::size_t peakBufferedSamples = 0;

    /** Human-readable table for CLI output. */
    std::string format() const;

    /**
     * Publish the report into the global telemetry registry under the
     * stable stream.* metric names.  StreamReport itself stays a view
     * over the same numbers; this is the one name table both the
     * batch-style report consumers and the registry share.  No-op
     * while telemetry is disabled.  Called by StreamPipeline::run().
     */
    void publish() const;
};

/**
 * Inline depth-first stage scheduler: carries each message through a
 * fixed stage chain on the calling thread with the same per-stage
 * accounting (exclusive process time, peak buffered samples) as the
 * threaded pipeline.  This is the resumable core shared by
 * StreamPipeline's inline mode and the push-driven StreamingDecoder:
 * feed() returns between messages instead of owning a consumer loop,
 * so a scheduler (the serve session manager) can interleave many
 * cascades over one worker pool without a thread per stage.
 *
 * Stages and stats are borrowed, not owned; both must stay alive and
 * at stable addresses for the cascade's lifetime.  Not thread-safe —
 * the caller serialises attach()/feed()/finish().  Determinism is the
 * stage contract's: one driver, message order, so the output stream is
 * bit-identical to a pipeline run over the same chunks.
 */
class StageCascade
{
  public:
    /** Append a stage; `stats` accumulates its counters. */
    void attach(StreamStage *stage, StageStats *stats);

    /** Carry one message through every stage, depth-first. */
    void feed(StreamMessage &&msg);

    /**
     * Flush every stage in chain order (upstream flushes feed the
     * downstream stages). feed() must not be called afterwards.
     */
    void finish();

    bool finished() const { return done; }

  private:
    struct Slot
    {
        StreamStage *stage = nullptr;
        StageStats *stats = nullptr;
        std::size_t emitSeq = 0;
    };

    void feedFrom(std::size_t index, StreamMessage &&msg);

    std::vector<Slot> slots;
    bool done = false;
};

class StreamPipeline
{
  public:
    StreamPipeline();
    ~StreamPipeline();

    StreamPipeline(const StreamPipeline &) = delete;
    StreamPipeline &operator=(const StreamPipeline &) = delete;

    /**
     * Append a stage. `queue_capacity` bounds the stage's input queue
     * (messages). The pipeline owns the stage; callers needing to read
     * results after the run keep a raw pointer (valid for the
     * pipeline's lifetime).
     */
    void addStage(std::unique_ptr<StreamStage> stage,
                  std::size_t queue_capacity = 4);

    /**
     * Drain the source through every stage. Blocks until the last
     * stage has finished. May be called once per pipeline.
     */
    StreamReport run(ChunkSource &source);

  private:
    struct Worker;

    void runInline(ChunkSource &source);
    void runThreaded(ChunkSource &source);

    std::vector<std::unique_ptr<Worker>> workers;
    StreamReport report;
    bool used = false;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_PIPELINE_HPP
