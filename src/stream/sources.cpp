#include "stream/sources.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace emsc::stream {

IqFileChunkSource::IqFileChunkSource(const std::string &path,
                                     double sample_rate,
                                     double center_frequency,
                                     std::size_t chunk_samples,
                                     TimeNs capture_start)
    : reader(path, sample_rate, center_frequency), start(capture_start),
      chunk(chunk_samples)
{
    if (chunk == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "IqFileChunkSource chunk size must be positive");
}

bool
IqFileChunkSource::next(IqChunk &out)
{
    if (finished)
        return false;
    std::size_t first = reader.samplesRead();
    std::vector<sdr::IqSample> samples;
    std::size_t got = reader.readNext(chunk, samples);
    if (got == 0) {
        finished = true;
        return false;
    }
    out.index = index++;
    out.firstSample = first;
    out.samples = std::move(samples);
    out.last = reader.exhausted();
    finished = out.last;
    return true;
}

SdrChunkSource::SdrChunkSource(const sdr::SdrConfig &config, Rng &rng,
                               const em::ReceptionPlan &reception,
                               TimeNs start, TimeNs end,
                               std::size_t chunk_samples,
                               const sim::FaultPlan *fault_plan)
    : plan(&reception), faults(fault_plan), t0(start), chunk(chunk_samples)
{
    if (chunk == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "SdrChunkSource chunk size must be positive");
    sdr::SdrConfig cfg = config;
    if (!cfg.idealFrontEnd && cfg.fixedGain <= 0.0) {
        // captureChunk() refuses the per-buffer AGC (it would step the
        // level at every chunk boundary); probe the gain a whole-buffer
        // capture would settle on and hold it for the run. The probe
        // runs on a copy of the RNG so the shared noise stream the
        // chunks will consume is left untouched.
        Rng probe_rng = rng;
        sdr::RtlSdr probe(cfg, probe_rng);
        cfg.fixedGain = probe.measureAgcGain(reception, start, end);
    }
    sdr = std::make_unique<sdr::RtlSdr>(cfg, rng);
    total = sdr->sampleCount(start, end);
}

bool
SdrChunkSource::next(IqChunk &out)
{
    if (done >= total)
        return false;
    std::size_t count = std::min(chunk, total - done);
    sdr::IqCapture piece =
        sdr->captureChunk(*plan, t0, done, count, total, faults);
    out.index = index++;
    out.firstSample = done;
    out.samples = std::move(piece.samples);
    done += count;
    out.last = done >= total;
    return true;
}

} // namespace emsc::stream
