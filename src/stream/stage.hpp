/**
 * @file
 * Streaming stage interface and the messages that flow between stages.
 *
 * A StreamStage consumes one message at a time and emits zero or more
 * output messages. Stages keep whatever bounded internal state their
 * algorithm needs (a sliding-DFT window, a pending envelope span, a
 * batch of unlabeled bit powers) and report its size so the pipeline
 * can prove the whole run's resident memory is O(window + chunk)
 * rather than O(capture).
 *
 * Determinism contract: each stage instance is driven by exactly one
 * consumer loop, in message order. Stage state therefore evolves
 * identically regardless of how many threads the pipeline uses, and
 * the final output stream is bit-identical for any thread count.
 */

#ifndef EMSC_STREAM_STAGE_HPP
#define EMSC_STREAM_STAGE_HPP

#include <cstddef>
#include <functional>
#include <variant>
#include <vector>

#include "channel/coding.hpp"
#include "stream/chunk.hpp"

namespace emsc::stream {

/** A piece of the decimated Eq. (1) envelope. */
struct EnvelopeChunk
{
    /** Global decimated index of y[0]. */
    std::size_t firstIndex = 0;
    /** Envelope samples. */
    std::vector<double> y;
    /**
     * Parallel to y: true where the underlying raw samples showed a
     * sustained dropout/saturation run (the envelope there is
     * meaningless and bits overlapping it become erasures).
     */
    std::vector<char> corrupt;
    /** Carrier estimate in effect while this chunk was acquired (Hz). */
    double carrierHz = 0.0;
};

/** A run of recovered (and possibly labeled) channel bits. */
struct BitChunk
{
    /** Global index of the first bit in this chunk. */
    std::size_t firstBit = 0;
    /** Labeled bits (empty until the labeling stage fills them). */
    channel::Bits bits;
    /** Erasure flags parallel to the bit stream. */
    channel::Bits erased;
    /** Per-bit average envelope power. */
    std::vector<double> power;
    /** Thresholds the labeling stage chose for this chunk's batches. */
    std::vector<double> thresholds;
    /** Bit start indices (decimated envelope coordinates). */
    std::vector<std::size_t> starts;
    /** Signaling-time estimate in effect for these bits. */
    double signalingTime = 0.0;
};

/** The unit flowing through stage queues. */
struct StreamMessage
{
    /** Per-edge sequence number (FIFO order within a queue). */
    std::size_t seq = 0;
    std::variant<IqChunk, EnvelopeChunk, BitChunk> payload;

    /**
     * Size of the message in "sample units" — raw IQ samples for an
     * IqChunk, decimated envelope samples for an EnvelopeChunk, bits
     * for a BitChunk. Used for queue occupancy accounting.
     */
    std::size_t
    sampleUnits() const
    {
        if (const auto *iq = std::get_if<IqChunk>(&payload))
            return iq->samples.size();
        if (const auto *env = std::get_if<EnvelopeChunk>(&payload))
            return env->y.size();
        return std::get<BitChunk>(payload).power.size();
    }
};

/** One processing stage of a streaming pipeline. */
class StreamStage
{
  public:
    /** Sink for a stage's outputs (pushes into the next queue). */
    using Emit = std::function<void(StreamMessage &&)>;

    virtual ~StreamStage();

    /** Stage name for the observability report. */
    virtual const char *name() const = 0;

    /** Consume one message, emitting zero or more outputs. */
    virtual void process(StreamMessage &&msg, const Emit &emit) = 0;

    /** Flush state at end of stream (default: nothing pending). */
    virtual void finish(const Emit &emit);

    /**
     * Current internal retention in sample units (same accounting as
     * StreamMessage::sampleUnits). The pipeline tracks the peak.
     */
    virtual std::size_t bufferedSamples() const { return 0; }
};

} // namespace emsc::stream

#endif // EMSC_STREAM_STAGE_HPP
