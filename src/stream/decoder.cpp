#include "stream/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "channel/acquisition.hpp"
#include "channel/timing.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace emsc::stream {

namespace detail {

namespace {

/** Smallest window the adaptation may reach (mirrors receive()). */
constexpr std::size_t kWindowFloor = 16;

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - since)
            .count());
}

} // namespace

void
appendNote(std::string &diag, const std::string &note)
{
    if (!diag.empty())
        diag += "; ";
    diag += note;
}

std::size_t
validateWindow(channel::AcquisitionConfig &acq, std::size_t min_window,
               std::string &diag)
{
    if (min_window < kWindowFloor) {
        char note[96];
        std::snprintf(note, sizeof(note), "minWindow %zu clamped to %zu",
                      min_window, kWindowFloor);
        appendNote(diag, note);
        min_window = kWindowFloor;
    }
    if (!dsp::isPowerOfTwo(min_window)) {
        std::size_t rounded = dsp::nextPowerOfTwo(min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "minWindow %zu rounded up to power of two %zu",
                      min_window, rounded);
        appendNote(diag, note);
        min_window = rounded;
    }
    if (acq.window == 0 || !dsp::isPowerOfTwo(acq.window) ||
        acq.window < min_window) {
        std::size_t rounded =
            std::max(dsp::nextPowerOfTwo(acq.window), min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "acquisition window %zu adjusted to %zu", acq.window,
                      rounded);
        appendNote(diag, note);
        acq.window = rounded;
    }
    return min_window;
}

std::size_t
warmupTarget(const channel::AcquisitionConfig &acq, std::size_t requested,
             std::string &diag)
{
    // The warm-up must at least feed the Welch carrier search.
    std::size_t warmup = std::max(requested, 4 * acq.searchWindow);
    if (warmup != requested) {
        char note[96];
        std::snprintf(note, sizeof(note),
                      "warmupSamples raised to %zu for the carrier "
                      "search",
                      warmup);
        appendNote(diag, note);
    }
    return warmup;
}

WarmupCalibration
calibrateWarmup(const channel::ReceiverConfig &cfg,
                const sdr::IqCapture &warm,
                channel::AcquisitionConfig acq, std::size_t min_window,
                channel::ReceiverResult &rx)
{
    WarmupCalibration out;
    std::size_t dec = std::max<std::size_t>(1, acq.decimation);

    channel::CarrierEstimate est =
        channel::estimateCarrierDetailed(warm, acq);
    rx.carrierHz = est.hz;
    out.snrDb = est.snrDb;
    if (rx.carrierHz <= 0.0) {
        appendNote(rx.diagnostic,
                   "no carrier found in the warm-up prefix");
        out.acq = acq;
        return out;
    }

    channel::AcquiredSignal warmSig;
    channel::BitTiming warmTiming;
    while (true) {
        warmSig = channel::acquire(warm, acq, rx.carrierHz);
        rx.windowUsed = acq.window;
        channel::TimingConfig tc = cfg.timing;
        if (tc.rampHint == 0)
            tc.rampHint = acq.window / dec;
        try {
            warmTiming = channel::recoverTiming(warmSig.y, tc);
        } catch (const RecoverableError &) {
            // Warm-up too short/flat to time: the streaming stage
            // falls back to its generic calibration below.
            warmTiming = channel::BitTiming{};
        }
        if (!cfg.adaptiveWindow)
            break;
        double bit_samples =
            warmTiming.signalingTime * static_cast<double>(dec);
        bool too_coarse =
            warmTiming.signalingTime > 0.0 &&
            bit_samples < 2.5 * static_cast<double>(acq.window);
        std::size_t halved = acq.window / 2;
        if (!too_coarse || halved < min_window)
            break;
        acq.window = halved;
    }

    TimingCalibration cal;
    cal.timing = cfg.timing;
    double tsig0 = warmTiming.signalingTime;
    if (tsig0 <= 4.0)
        tsig0 = cfg.timing.periodHint > 4.0 ? cfg.timing.periodHint
                                            : 64.0;
    cal.signalingTime = tsig0;
    std::size_t l_d = cfg.timing.edgeKernel;
    if (l_d == 0)
        l_d = static_cast<std::size_t>(std::lround(0.5 * tsig0));
    cal.edgeKernel = std::clamp<std::size_t>(l_d & ~std::size_t{1}, 4,
                                             4096);
    if (warmSig.y.size() >= 4 * cal.edgeKernel) {
        // Seed the stage's adaptive edge threshold with the same
        // quantile statistic the batch recovery uses.
        try {
            std::vector<double> edges =
                dsp::edgeDetect(warmSig.y, cal.edgeKernel);
            dsp::PeakOptions po;
            po.minDistance = std::max<std::size_t>(
                4, static_cast<std::size_t>(
                       std::lround(cfg.timing.minSpacingRatio * tsig0)));
            std::vector<std::size_t> pk = dsp::findPeaks(edges, po);
            std::vector<double> heights;
            heights.reserve(pk.size());
            for (std::size_t i : pk)
                heights.push_back(edges[i]);
            if (!heights.empty())
                cal.referenceQuantile =
                    quantile(std::move(heights), cfg.timing.peakQuantile);
        } catch (const RecoverableError &) {
            // Leave the stage to self-seed from its first span.
        }
    }

    out.acq = acq;
    out.cal = cal;
    out.decRate = warm.sampleRate / static_cast<double>(dec);
    out.carrierFound = true;
    return out;
}

StageSet
buildStages(const channel::ReceiverConfig &cfg,
            const WarmupCalibration &calib, double carrier_hz,
            double center_frequency, double sample_rate,
            TimeNs start_time, const StreamingOptions &opts)
{
    StageSet set;
    auto env = std::make_unique<EnvelopeStage>(
        carrier_hz, center_frequency, sample_rate, calib.acq,
        opts.tracker);
    set.envelope = env.get();
    set.stages.push_back(std::move(env));
    if (opts.detectKeystrokes) {
        auto key = std::make_unique<KeystrokeStage>(
            calib.decRate, start_time, opts.detector, opts.onKeystroke);
        set.keystroke = key.get();
        set.stages.push_back(std::move(key));
    }
    set.stages.push_back(std::make_unique<TimingStage>(calib.cal));
    set.stages.push_back(std::make_unique<LabelStage>(
        cfg.labeling, cfg.labeling.batchBits));
    auto dec = std::make_unique<DecodeStage>(cfg.frame);
    set.decode = dec.get();
    set.stages.push_back(std::move(dec));
    return set;
}

void
assembleResult(const StageSet &set, double dec_rate, StreamingResult &out)
{
    channel::ReceiverResult &rx = out.rx;
    rx.acquired.sampleRate = dec_rate;
    rx.acquired.carrierHz = set.envelope->carrierEstimate();
    appendNote(rx.diagnostic,
               "streaming decode: envelope not retained (bounded "
               "memory)");
    rx.timing.signalingTime = set.decode->signalingTime();
    rx.timing.starts = set.decode->starts();
    rx.labeled = set.decode->labeled();
    rx.frame = set.decode->frame();
    if (set.decode->anyErased())
        rx.erasureMask = set.decode->erasureMask();

    channel::ReceiverSegment seg;
    seg.begin = 0;
    seg.end = set.envelope->envelopeSamples();
    seg.carrierHz = set.envelope->carrierEstimate();
    seg.signalingTime = rx.timing.signalingTime;
    seg.bits = rx.labeled.bits.size();
    rx.segments.push_back(seg);

    out.firstBitLatencyNs = set.decode->firstBitLatencyNs();
    if (set.keystroke)
        out.keystrokes = set.keystroke->events();
}

void
decodeWarmupBatch(const channel::ReceiverConfig &cfg,
                  const sdr::IqCapture &warm,
                  const StreamingOptions &opts, std::size_t chunk_count,
                  StreamingResult &out)
{
    channel::ReceiverResult &rx = out.rx;
    std::string diag = std::move(rx.diagnostic);
    rx = channel::receive(warm, cfg);
    if (!diag.empty())
        appendNote(diag, rx.diagnostic);
    else
        diag = std::move(rx.diagnostic);
    rx.diagnostic = std::move(diag);
    appendNote(rx.diagnostic,
               "capture ended inside warm-up: batch decode");
    out.batchFallback = true;
    out.report.sourceChunks = chunk_count;
    out.report.sourceSamples = warm.samples.size();
    if (opts.detectKeystrokes && !rx.acquired.y.empty()) {
        keylog::DetectionResult det = keylog::detectKeystrokes(
            rx.acquired, warm.startTime, opts.detector);
        out.keystrokes = std::move(det.keystrokes);
        if (opts.onKeystroke)
            for (const keylog::DetectedKeystroke &k : out.keystrokes)
                opts.onKeystroke(k);
    }
}

} // namespace detail

StreamingDecoder::StreamingDecoder(const channel::ReceiverConfig &config,
                                   const StreamMeta &capture_meta,
                                   const StreamingOptions &options)
    : cfg(config), meta(capture_meta), opts(options)
{
    if (meta.sampleRate <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "StreamingDecoder needs a positive sample rate "
                   "(got %g)",
                   meta.sampleRate);
    acq = cfg.acquisition;
    minWindow =
        detail::validateWindow(acq, cfg.minWindow, result.rx.diagnostic);
    warmupNeeded = detail::warmupTarget(acq, opts.warmupSamples,
                                        result.rx.diagnostic);
}

void
StreamingDecoder::feed(IqChunk &&chunk)
{
    if (finished_)
        panic("StreamingDecoder::feed after finish");
    if (!started) {
        t0 = std::chrono::steady_clock::now();
        started = true;
    }
    ++srcChunks;
    srcSamples += chunk.samples.size();
    if (dead_)
        return; // counted for the report; decoding already settled

    try {
        if (!live_) {
            warmSamples += chunk.samples.size();
            bool last = chunk.last;
            warm.push_back(std::move(chunk));
            // A final chunk stays buffered: the capture fit inside the
            // warm-up, so finish() batch-decodes it exactly as
            // runStreaming() does when its source is exhausted early.
            if (!last && warmSamples >= warmupNeeded)
                beginStreaming();
            return;
        }
        StreamMessage msg;
        msg.seq = chunk.index;
        msg.payload = std::move(chunk);
        cascade.feed(std::move(msg));
    } catch (const RecoverableError &e) {
        dead_ = true;
        if (!result.rx.failure)
            result.rx.failure = e.toError();
        throw;
    }
}

void
StreamingDecoder::fail(const Error &error)
{
    dead_ = true;
    if (!result.rx.failure)
        result.rx.failure = error;
}

void
StreamingDecoder::beginStreaming()
{
    sdr::IqCapture warmCap;
    warmCap.sampleRate = meta.sampleRate;
    warmCap.centerFrequency = meta.centerFrequency;
    warmCap.startTime = meta.startTime;
    warmCap.samples.reserve(warmSamples);
    for (const IqChunk &c : warm)
        warmCap.samples.insert(warmCap.samples.end(), c.samples.begin(),
                               c.samples.end());

    detail::WarmupCalibration calib = detail::calibrateWarmup(
        cfg, warmCap, acq, minWindow, result.rx);
    snrDb_ = calib.snrDb;
    if (!calib.carrierFound) {
        dead_ = true;
        warm.clear();
        warm.shrink_to_fit();
        return;
    }
    decRate = calib.decRate;
    set = detail::buildStages(cfg, calib, result.rx.carrierHz,
                              meta.centerFrequency, meta.sampleRate,
                              meta.startTime, opts);
    stats.assign(set.stages.size(), StageStats{});
    for (std::size_t i = 0; i < set.stages.size(); ++i) {
        stats[i].name = set.stages[i]->name();
        cascade.attach(set.stages[i].get(), &stats[i]);
    }

    // Free the contiguous warm copy before streaming; the chunks
    // themselves replay through the cascade.
    warmCap.samples.clear();
    warmCap.samples.shrink_to_fit();

    live_ = true;
    std::vector<IqChunk> replay = std::move(warm);
    warm.clear();
    warmSamples = 0;
    for (IqChunk &c : replay) {
        StreamMessage msg;
        msg.seq = c.index;
        msg.payload = std::move(c);
        cascade.feed(std::move(msg));
    }
}

StreamingResult
StreamingDecoder::finish()
{
    if (finished_)
        panic("StreamingDecoder::finish called twice");
    finished_ = true;

    bool failed = result.rx.failure.has_value();
    if (!failed) {
        try {
            if (live_) {
                cascade.finish();
                result.streamed = true;
            } else if (!dead_) {
                // The whole capture fit inside the warm-up buffer: the
                // batch path decodes it in one shot with identical
                // results and no extra memory beyond what was already
                // resident.
                sdr::IqCapture warmCap;
                warmCap.sampleRate = meta.sampleRate;
                warmCap.centerFrequency = meta.centerFrequency;
                warmCap.startTime = meta.startTime;
                warmCap.samples.reserve(warmSamples);
                for (const IqChunk &c : warm)
                    warmCap.samples.insert(warmCap.samples.end(),
                                           c.samples.begin(),
                                           c.samples.end());
                detail::decodeWarmupBatch(cfg, warmCap, opts,
                                          warm.size(), result);
            }
        } catch (const RecoverableError &e) {
            failed = true;
            if (!result.rx.failure)
                result.rx.failure = e.toError();
        }
    }
    warm.clear();
    warm.shrink_to_fit();

    if (live_) {
        result.report.totalNs = detail::elapsedNs(t0);
        result.report.stages = stats;
        result.report.peakBufferedSamples = 0;
        for (const StageStats &s : stats)
            result.report.peakBufferedSamples += s.totalPeakSamples();
        if (!failed) {
            result.report.publish();
            detail::assembleResult(set, decRate, result);
        }
    }
    result.report.sourceChunks = srcChunks;
    result.report.sourceSamples = srcSamples;

    // The warm-up batch fallback publishes inside channel::receive();
    // every other outcome (streamed decode, carrier miss, failure) is
    // reported here so both decode paths surface the same channel.*
    // metric names — the exact runStreaming() contract.
    if (!result.batchFallback)
        channel::publishReceiverTelemetry(result.rx);
    return std::move(result);
}

std::size_t
StreamingDecoder::bitsDecoded() const
{
    return set.decode != nullptr ? set.decode->labeled().bits.size() : 0;
}

std::size_t
StreamingDecoder::framesDecoded() const
{
    return set.decode != nullptr && set.decode->frame().found ? 1 : 0;
}

double
StreamingDecoder::carrierEstimate() const
{
    return set.envelope != nullptr ? set.envelope->carrierEstimate()
                                   : result.rx.carrierHz;
}

} // namespace emsc::stream
