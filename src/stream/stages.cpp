#include "stream/stages.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/convolution.hpp"
#include "dsp/peaks.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/window.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace emsc::stream {

StreamStage::~StreamStage() = default;

void
StreamStage::finish(const Emit &)
{
}

namespace {

/** Raw-sample run length that condemns a span (matches the batch
 * receiver's per-bit scan). */
constexpr std::size_t kCorruptRun = 32;
/** |I| or |Q| at or above this counts as full-scale (clipped). */
constexpr double kClipLevel = 0.97;
/** Spacing-ring capacity backing the running signaling-time median. */
constexpr std::size_t kSpacingRing = 257;
/** Pending-envelope cap in signaling times: past this much silence the
 * open bit is force-closed so memory stays bounded. */
constexpr double kSilenceCapTsig = 64.0;

IqChunk &
expectIq(StreamMessage &msg)
{
    auto *iq = std::get_if<IqChunk>(&msg.payload);
    if (!iq)
        panic("stream stage received a non-IQ message");
    return *iq;
}

EnvelopeChunk &
expectEnvelope(StreamMessage &msg)
{
    auto *env = std::get_if<EnvelopeChunk>(&msg.payload);
    if (!env)
        panic("stream stage received a non-envelope message");
    return *env;
}

BitChunk &
expectBits(StreamMessage &msg)
{
    auto *bits = std::get_if<BitChunk>(&msg.payload);
    if (!bits)
        panic("stream stage received a non-bit message");
    return *bits;
}

} // namespace

// ---------------------------------------------------------------- envelope

EnvelopeStage::EnvelopeStage(double carrier_hz, double center_frequency,
                             double sample_rate,
                             const channel::AcquisitionConfig &acquisition,
                             const CarrierTrackerConfig &tracker)
    : acq(acquisition), trk(tracker), fc(center_frequency),
      fs(sample_rate), carrierEst(carrier_hz), trackedCarrier(carrier_hz)
{
    acquirer = std::make_unique<channel::StreamingAcquirer>(
        carrier_hz, fc, fs, acq);
    if (trk.enabled) {
        if (trk.snapshotWindow < 64)
            raiseError(ErrorKind::InvalidConfig,
                       "carrier-tracker snapshot window too small");
        snapshotPlan = dsp::FftPlan::forSize(trk.snapshotWindow);
        snapshot.assign(trk.snapshotWindow, sdr::IqSample{0.0, 0.0});
    }
}

void
EnvelopeStage::updateCarrier()
{
    // Hann-windowed FFT of the snapshot ring (oldest sample first).
    std::size_t m = trk.snapshotWindow;
    auto win_sp = dsp::cachedWindow(dsp::WindowKind::Hann, m);
    const std::vector<double> &win = *win_sp;
    snapBuf.resize(m);
    for (std::size_t i = 0; i < m; ++i)
        snapBuf[i] = snapshot[(snapHead + i) % m] * win[i];
    snapshotPlan->transform(snapBuf, false);

    // Magnitude-weighted centroid of the neighbourhood around the
    // tracked carrier, above the local floor so noise bins do not pull
    // the estimate.
    double off = trackedCarrier - fc;
    auto center = static_cast<long long>(
        std::llround(off * static_cast<double>(m) / fs));
    snapMag.clear();
    snapMag.reserve(2 * static_cast<std::size_t>(trk.trackBins) + 1);
    for (int d = -trk.trackBins; d <= trk.trackBins; ++d) {
        long long k = (center + d) % static_cast<long long>(m);
        if (k < 0)
            k += static_cast<long long>(m);
        snapMag.push_back(std::abs(snapBuf[static_cast<std::size_t>(k)]));
    }
    double floor = *std::min_element(snapMag.begin(), snapMag.end());
    double wsum = 0.0, fsum = 0.0;
    for (int d = -trk.trackBins; d <= trk.trackBins; ++d) {
        double w =
            snapMag[static_cast<std::size_t>(d + trk.trackBins)] - floor;
        double freq =
            fc + static_cast<double>(center + d) * fs /
                     static_cast<double>(m);
        wsum += w;
        fsum += w * freq;
    }
    if (wsum <= 0.0)
        return;

    // Decaying-average re-estimate.
    carrierEst = (1.0 - trk.alpha) * carrierEst + trk.alpha * (fsum / wsum);

    // Re-seed the acquirer only when the line left its tracked bin —
    // within the threshold the envelope stays bit-identical to an
    // untracked run.
    double bin_hz = fs / static_cast<double>(
                             std::max<std::size_t>(acq.window, 1));
    if (std::abs(carrierEst - trackedCarrier) >
        trk.hopThresholdBins * bin_hz) {
        acquirer = std::make_unique<channel::StreamingAcquirer>(
            carrierEst, fc, fs, acq);
        trackedCarrier = carrierEst;
        ++reseeds;
    }
}

void
EnvelopeStage::process(StreamMessage &&msg, const Emit &emit)
{
    IqChunk &iq = expectIq(msg);
    std::size_t dec = std::max<std::size_t>(acq.decimation, 1);

    // Corrupt-run scan on the raw samples: global decimated indices of
    // samples inside a sustained zero/clip run.
    std::vector<std::pair<std::size_t, std::size_t>> &corruptRanges =
        corruptScratch;
    corruptRanges.clear();
    for (std::size_t i = 0; i < iq.samples.size(); ++i) {
        double re = iq.samples[i].real();
        double im = iq.samples[i].imag();
        zeroRun = re == 0.0 && im == 0.0 ? zeroRun + 1 : 0;
        clipRun = std::abs(re) >= kClipLevel || std::abs(im) >= kClipLevel
                      ? clipRun + 1
                      : 0;
        if (zeroRun >= kCorruptRun || clipRun >= kCorruptRun) {
            std::size_t d = (iq.firstSample + i) / dec;
            if (!corruptRanges.empty() &&
                corruptRanges.back().second + 1 >= d)
                corruptRanges.back().second = d;
            else
                corruptRanges.emplace_back(d, d);
        }
    }

    // Tracker snapshot + periodic re-estimate (before feeding, so a
    // detected hop re-seeds the acquirer for this chunk's samples at
    // the earliest opportunity).
    if (trk.enabled) {
        for (const sdr::IqSample &s : iq.samples) {
            snapshot[snapHead] = s;
            snapHead = (snapHead + 1) % trk.snapshotWindow;
        }
        snapCount = std::min(snapCount + iq.samples.size(),
                             trk.snapshotWindow);
        rawSeen += iq.samples.size();
        if (snapCount >= trk.snapshotWindow &&
            rawSeen - lastUpdate >= trk.updateInterval) {
            lastUpdate = rawSeen;
            updateCarrier();
        }
    } else {
        rawSeen += iq.samples.size();
    }

    acquirer->feed(iq.samples);
    channel::AcquiredSignal sig = acquirer->take();
    if (sig.y.empty())
        return;

    EnvelopeChunk out;
    out.firstIndex = envCount;
    out.carrierHz = carrierEst;
    out.corrupt.assign(sig.y.size(), 0);
    for (const auto &[lo, hi] : corruptRanges) {
        std::size_t a = lo > envCount ? lo - envCount : 0;
        if (a >= out.corrupt.size())
            continue;
        std::size_t b =
            std::min(out.corrupt.size(),
                     hi >= envCount ? hi - envCount + 1 : 0);
        for (std::size_t j = a; j < b; ++j)
            out.corrupt[j] = 1;
    }
    out.y = std::move(sig.y);
    envCount += out.y.size();

    StreamMessage m;
    m.payload = std::move(out);
    emit(std::move(m));
}

std::size_t
EnvelopeStage::bufferedSamples() const
{
    // Sliding-DFT history plus the tracker snapshot, in raw samples.
    return acq.window + snapshot.size();
}

// ----------------------------------------------------------------- keylog

KeystrokeStage::KeystrokeStage(double envelope_rate, TimeNs capture_start,
                               const keylog::DetectorConfig &config,
                               Callback on_keystroke)
    : detector(envelope_rate, capture_start, config),
      callback(std::move(on_keystroke))
{
}

void
KeystrokeStage::drain()
{
    for (keylog::DetectedKeystroke &k : detector.poll()) {
        if (callback)
            callback(k);
        detected.push_back(k);
    }
}

void
KeystrokeStage::process(StreamMessage &&msg, const Emit &emit)
{
    EnvelopeChunk &env = expectEnvelope(msg);
    detector.feed(env.y.data(), env.y.size());
    drain();
    emit(std::move(msg));
}

void
KeystrokeStage::finish(const Emit &emit)
{
    (void)emit;
    detector.finish();
    drain();
}

std::size_t
KeystrokeStage::bufferedSamples() const
{
    return detector.bufferedSamples();
}

// ----------------------------------------------------------------- timing

TimingStage::TimingStage(const TimingCalibration &calibration)
    : cal(calibration)
{
    tsig = cal.signalingTime > 4.0 ? cal.signalingTime : 64.0;
    kernel = std::clamp<std::size_t>(cal.edgeKernel & ~std::size_t{1},
                                     4, 4096);
    spanSamples = std::max<std::size_t>(
        2048, static_cast<std::size_t>(std::lround(16.0 * tsig)));
    refQ = cal.referenceQuantile;
    // Seed the spacing ring so early spans cannot yank the median.
    spacings.assign(8, tsig);
}

void
TimingStage::emitBit(std::size_t a, std::size_t b, bool synthesized,
                     BitChunk &out)
{
    double power = 0.0;
    bool erasedBit = synthesized;
    std::size_t lo = a > envFirst ? a - envFirst : 0;
    std::size_t hi = b > envFirst ? b - envFirst : 0;
    hi = std::min(hi, env.size());
    if (lo < hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
            acc += env[i] * env[i];
            if (corrupt[i])
                erasedBit = true;
        }
        power = acc / static_cast<double>(hi - lo);
    } else {
        // The interval's envelope was already trimmed (deep silence):
        // nothing to measure, mark the placeholder as erased.
        erasedBit = true;
    }
    out.starts.push_back(a);
    out.power.push_back(power);
    out.erased.push_back(erasedBit ? 1 : 0);
    ++bitsOut;
}

void
TimingStage::acceptStart(std::size_t global, BitChunk &out)
{
    if (!havePending) {
        havePending = true;
        pendingStart = global;
        return;
    }
    if (global <= pendingStart)
        return;
    double gap = static_cast<double>(global - pendingStart);
    if (gap < cal.timing.minSpacingRatio * tsig)
        return; // too close: keep the earlier start (merge)

    // Gap filling at multiples of the signaling time, as in the batch
    // recovery: a gap of k periods hides k-1 missed bit starts.
    long k = 1;
    double ratio = gap / tsig;
    if (ratio >= cal.timing.gapFillRatio)
        k = std::max<long>(1, std::lround(ratio));
    std::size_t prev = pendingStart;
    for (long m = 1; m < k; ++m) {
        auto s = pendingStart +
                 static_cast<std::size_t>(std::lround(
                     static_cast<double>(m) * gap /
                     static_cast<double>(k)));
        emitBit(prev, s, true, out);
        prev = s;
    }
    emitBit(prev, global, false, out);

    // Signaling-time adaptation: running median over recent spacings
    // (per-period spacing when the gap was filled).
    double spacing = gap / static_cast<double>(k);
    if (spacings.size() >= kSpacingRing)
        spacings.erase(spacings.begin());
    spacings.push_back(spacing);
    std::vector<double> v(spacings);
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    tsig = v[v.size() / 2];

    pendingStart = global;
}

void
TimingStage::trim(std::size_t keep_from_local)
{
    // Never trim past the open bit's start: its power is computed from
    // this buffer when the next start arrives.
    if (havePending) {
        std::size_t pendLocal =
            pendingStart > envFirst ? pendingStart - envFirst : 0;
        keep_from_local = std::min(keep_from_local, pendLocal);
    }
    if (keep_from_local == 0)
        return;
    env.erase(env.begin(),
              env.begin() + static_cast<std::ptrdiff_t>(keep_from_local));
    corrupt.erase(corrupt.begin(),
                  corrupt.begin() +
                      static_cast<std::ptrdiff_t>(keep_from_local));
    envFirst += keep_from_local;
}

void
TimingStage::processSpans(bool final_span, BitChunk &out)
{
    for (;;) {
        std::size_t w = final_span ? env.size()
                                   : std::min(env.size(), spanSamples);
        if (w < 4 * kernel)
            return;
        if (!final_span && env.size() < spanSamples)
            return;

        // Edge detection runs on the env prefix in place (the kernel
        // only reads it), with the prefix-sum scratch and edge output
        // carved from the stage arena: once warm the span loop makes
        // no heap allocations.
        arena.reset();
        double *scratch = arena.doubles(w + 1);
        double *edge = arena.doubles(w);
        dsp::simd::kernels().edgeDetect(env.data(), w, kernel / 2,
                                        scratch, edge);
        dsp::PeakOptions opt;
        opt.minDistance = std::max<std::size_t>(
            4, static_cast<std::size_t>(std::lround(
                   cal.timing.minSpacingRatio * tsig)));
        dsp::findPeaksInto(edge, w, opt, peakScratch, peaksBuf);
        const std::vector<std::size_t> &peaks = peaksBuf;

        // Threshold adaptation: decaying average of the span's peak
        // quantile. Quiet spans (no bits) would drag the reference to
        // the noise floor, so only spans with comparable activity
        // update it.
        if (!peaks.empty()) {
            heightsBuf.clear();
            heightsBuf.reserve(peaks.size());
            for (std::size_t p : peaks)
                heightsBuf.push_back(edge[p]);
            double q = quantile(heightsBuf, cal.timing.peakQuantile);
            if (refQ <= 0.0)
                refQ = q;
            else if (q > 0.35 * refQ)
                refQ = 0.75 * refQ + 0.25 * q;
        }
        double thr = cal.timing.peakThresholdRatio * refQ;

        // Commit region: peaks close to the span's right edge see an
        // incomplete kernel footprint and re-appear (with full
        // context) in the next span.
        std::size_t commitEnd = final_span ? w : w - 2 * kernel;
        for (std::size_t p : peaks) {
            if (p >= commitEnd)
                break;
            if (edge[p] < thr)
                continue;
            acceptStart(envFirst + p, out);
        }

        if (final_span)
            return;

        // Keep kernel-length context behind the first uncommitted
        // position, plus everything from the open bit's start.
        std::size_t keep = w > 3 * kernel ? w - 3 * kernel : 0;

        // Bounded-memory guarantee: during a long silence the open bit
        // would pin the whole buffer; force-close it after
        // kSilenceCapTsig signaling times (the batch path labels such
        // a span near-zero anyway).
        double cap = kSilenceCapTsig * tsig;
        if (havePending &&
            static_cast<double>(envFirst + env.size() - pendingStart) >
                cap + static_cast<double>(spanSamples)) {
            std::size_t close =
                pendingStart +
                static_cast<std::size_t>(std::lround(tsig));
            emitBit(pendingStart, close, false, out);
            havePending = false;
        }
        std::size_t before = envFirst;
        trim(keep);
        if (envFirst == before)
            return; // no progress possible: wait for more envelope
    }
}

void
TimingStage::process(StreamMessage &&msg, const Emit &emit)
{
    EnvelopeChunk &chunk = expectEnvelope(msg);
    if (chunk.firstIndex != envFirst + env.size())
        panic("timing stage received a non-contiguous envelope chunk");
    env.insert(env.end(), chunk.y.begin(), chunk.y.end());
    corrupt.insert(corrupt.end(), chunk.corrupt.begin(),
                   chunk.corrupt.end());

    BitChunk out;
    out.firstBit = bitsOut;
    processSpans(false, out);
    if (!out.power.empty()) {
        out.signalingTime = tsig;
        StreamMessage m;
        m.payload = std::move(out);
        emit(std::move(m));
    }
}

void
TimingStage::finish(const Emit &emit)
{
    BitChunk out;
    out.firstBit = bitsOut;
    processSpans(true, out);
    if (havePending) {
        // Final bit: one signaling time past the last start (clamped),
        // matching the batch labeler's last-interval rule.
        std::size_t close =
            pendingStart + static_cast<std::size_t>(std::lround(tsig));
        close = std::min(close, envFirst + env.size());
        if (close > pendingStart)
            emitBit(pendingStart, close, false, out);
        havePending = false;
    }
    if (!out.power.empty()) {
        out.signalingTime = tsig;
        StreamMessage m;
        m.payload = std::move(out);
        emit(std::move(m));
    }
}

std::size_t
TimingStage::bufferedSamples() const
{
    return env.size();
}

// ------------------------------------------------------------------ label

LabelStage::LabelStage(const channel::LabelingConfig &labeling,
                       std::size_t batch_bits)
    : cfg(labeling), batchBits(batch_bits)
{
}

void
LabelStage::flush(std::size_t count, const Emit &emit)
{
    if (count == 0)
        return;
    BitChunk out;
    out.firstBit = nextFirstBit;
    out.signalingTime = pending.signalingTime;
    out.power.assign(pending.power.begin(),
                     pending.power.begin() +
                         static_cast<std::ptrdiff_t>(count));
    out.erased.assign(pending.erased.begin(),
                      pending.erased.begin() +
                          static_cast<std::ptrdiff_t>(count));
    out.starts.assign(pending.starts.begin(),
                      pending.starts.begin() +
                          static_cast<std::ptrdiff_t>(count));
    double thr = channel::selectThreshold(out.power, cfg);
    out.thresholds.push_back(thr);
    out.bits.reserve(count);
    for (double p : out.power)
        out.bits.push_back(p > thr ? 1 : 0);

    pending.power.erase(pending.power.begin(),
                        pending.power.begin() +
                            static_cast<std::ptrdiff_t>(count));
    pending.erased.erase(pending.erased.begin(),
                         pending.erased.begin() +
                             static_cast<std::ptrdiff_t>(count));
    pending.starts.erase(pending.starts.begin(),
                         pending.starts.begin() +
                             static_cast<std::ptrdiff_t>(count));
    nextFirstBit += count;

    StreamMessage m;
    m.payload = std::move(out);
    emit(std::move(m));
}

void
LabelStage::process(StreamMessage &&msg, const Emit &emit)
{
    BitChunk &in = expectBits(msg);
    pending.power.insert(pending.power.end(), in.power.begin(),
                         in.power.end());
    pending.erased.insert(pending.erased.end(), in.erased.begin(),
                          in.erased.end());
    pending.starts.insert(pending.starts.end(), in.starts.begin(),
                          in.starts.end());
    pending.signalingTime = in.signalingTime;
    while (batchBits > 0 && pending.power.size() >= batchBits)
        flush(batchBits, emit);
}

void
LabelStage::finish(const Emit &emit)
{
    flush(pending.power.size(), emit);
}

std::size_t
LabelStage::bufferedSamples() const
{
    return pending.power.size();
}

// ----------------------------------------------------------------- decode

DecodeStage::DecodeStage(const channel::FrameConfig &frame)
    : cfg(frame), epoch(std::chrono::steady_clock::now())
{
}

void
DecodeStage::process(StreamMessage &&msg, const Emit &emit)
{
    (void)emit;
    BitChunk &in = expectBits(msg);
    if (firstBitNs == 0 && !in.bits.empty())
        firstBitNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch)
                .count());
    stream.bits.insert(stream.bits.end(), in.bits.begin(),
                       in.bits.end());
    stream.bitPower.insert(stream.bitPower.end(), in.power.begin(),
                           in.power.end());
    stream.thresholds.insert(stream.thresholds.end(),
                             in.thresholds.begin(),
                             in.thresholds.end());
    erased.insert(erased.end(), in.erased.begin(), in.erased.end());
    allStarts.insert(allStarts.end(), in.starts.begin(),
                     in.starts.end());
    if (in.signalingTime > 0.0)
        tsig = in.signalingTime;
    for (auto e : in.erased)
        if (e)
            sawErased = true;
}

void
DecodeStage::finish(const Emit &emit)
{
    (void)emit;
    if (stream.bits.empty())
        return;
    parsed = sawErased ? channel::parseFrame(stream.bits, erased, cfg)
                       : channel::parseFrame(stream.bits, cfg);
}

std::size_t
DecodeStage::bufferedSamples() const
{
    return stream.bits.size();
}

} // namespace emsc::stream
