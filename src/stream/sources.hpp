/**
 * @file
 * Production chunk sources: the RTL-SDR simulator and interleaved-u8
 * capture files, both delivering bounded chunks so the streaming
 * pipeline never materialises a whole capture.
 */

#ifndef EMSC_STREAM_SOURCES_HPP
#define EMSC_STREAM_SOURCES_HPP

#include <memory>
#include <string>

#include "em/scene.hpp"
#include "sdr/iqfile.hpp"
#include "sdr/rtlsdr.hpp"
#include "sim/faults.hpp"
#include "stream/chunk.hpp"
#include "support/rng.hpp"

namespace emsc::stream {

/**
 * Streams an rtl_sdr-format capture file chunk by chunk. totalSamples()
 * is unknown (0): the file carries no header and the reader never scans
 * ahead of the chunk it is handing out.
 */
class IqFileChunkSource : public ChunkSource
{
  public:
    IqFileChunkSource(const std::string &path, double sample_rate,
                      double center_frequency, std::size_t chunk_samples,
                      TimeNs capture_start = 0);

    bool next(IqChunk &out) override;
    double sampleRate() const override { return reader.sampleRate(); }
    double centerFrequency() const override
    {
        return reader.centerFrequency();
    }
    TimeNs startTime() const override { return start; }
    std::size_t totalSamples() const override { return 0; }

  private:
    sdr::IqFileReader reader;
    TimeNs start;
    std::size_t chunk;
    std::size_t index = 0;
    bool finished = false;
};

/**
 * Synthesises a live RTL-SDR capture chunk by chunk via
 * RtlSdr::captureChunk(). Chunked synthesis needs a level-stable front
 * end, so when the config neither fixes the gain nor runs ideal, the
 * constructor probes the AGC once (RtlSdr::measureAgcGain on a private
 * RNG copy, leaving the shared noise stream untouched) and locks that
 * gain for every chunk; the resulting samples then match a
 * whole-buffer capture() with the same fixed gain to within one ADC
 * quantisation step (tone interferers re-derive their phase from
 * absolute time at chunk boundaries instead of accumulating it sample
 * by sample, so a rare pre-quantisation value rounds differently).
 *
 * next() must be driven in order, exactly once per chunk (the noise
 * RNG is sequential); the pipeline's single pump loop guarantees this.
 */
class SdrChunkSource : public ChunkSource
{
  public:
    SdrChunkSource(const sdr::SdrConfig &config, Rng &rng,
                   const em::ReceptionPlan &plan, TimeNs t0, TimeNs t1,
                   std::size_t chunk_samples,
                   const sim::FaultPlan *faults = nullptr);

    bool next(IqChunk &out) override;
    double sampleRate() const override { return sdr->config().sampleRate; }
    double centerFrequency() const override
    {
        return sdr->config().centerFrequency;
    }
    TimeNs startTime() const override { return t0; }
    std::size_t totalSamples() const override { return total; }

    /** Gain locked in for the run (the probe result or the config's). */
    double fixedGain() const { return sdr->config().fixedGain; }

  private:
    std::unique_ptr<sdr::RtlSdr> sdr;
    const em::ReceptionPlan *plan;
    const sim::FaultPlan *faults;
    TimeNs t0;
    std::size_t total;
    std::size_t chunk;
    std::size_t done = 0;
    std::size_t index = 0;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_SOURCES_HPP
