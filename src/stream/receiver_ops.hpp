/**
 * @file
 * Receiver entry points over chunked captures.
 *
 * ReceiverOps::runStreaming() is the bounded-memory counterpart of
 * channel::receive(): it calibrates carrier, window and bit timing on a
 * short warm-up prefix of the capture, then decodes the rest through a
 * StreamPipeline whose resident sample memory is O(window + chunk)
 * regardless of capture length. On clean captures the decoded payload
 * matches the batch path; under faults, corrupt-envelope masking feeds
 * per-bit erasures to the same erasure-aware frame parser the batch
 * segmented receiver uses.
 */

#ifndef EMSC_STREAM_RECEIVER_OPS_HPP
#define EMSC_STREAM_RECEIVER_OPS_HPP

#include <cstdint>
#include <vector>

#include "channel/receiver.hpp"
#include "keylog/detector.hpp"
#include "stream/chunk.hpp"
#include "stream/pipeline.hpp"
#include "stream/stages.hpp"

namespace emsc::stream {

/** Streaming-run knobs beyond the receiver configuration itself. */
struct StreamingOptions
{
    /** Per-edge stage queue capacity (messages). */
    std::size_t queueCapacity = 4;
    /**
     * Raw samples buffered for warm-up calibration (carrier search,
     * window adaptation, initial signaling time). Clamped up to what
     * the carrier search needs. A capture that ends inside the warm-up
     * is simply decoded by the batch path — it fit in memory anyway.
     */
    std::size_t warmupSamples = 1 << 18;
    /** Online carrier re-estimation (see CarrierTrackerConfig). */
    CarrierTrackerConfig tracker;
    /** Run the keystroke-detection tee. */
    bool detectKeystrokes = false;
    keylog::DetectorConfig detector;
    /**
     * Invoked as each keystroke burst completes. Called from a pipeline
     * worker thread in multi-threaded runs; must be thread-safe with
     * respect to the caller's own state.
     */
    KeystrokeStage::Callback onKeystroke;
};

/** Everything a streaming run produced. */
struct StreamingResult
{
    /**
     * Same shape as the batch receiver's result. acquired.y stays
     * empty by design (the envelope is never retained — that is the
     * point); rx.diagnostic says so.
     */
    channel::ReceiverResult rx;
    /** Per-stage observability report. */
    StreamReport report;
    /** Keystrokes from the tee (when detectKeystrokes was set). */
    std::vector<keylog::DetectedKeystroke> keystrokes;
    /** ns from pipeline start to the first labeled bit (0 if none). */
    std::uint64_t firstBitLatencyNs = 0;
    /** False when the capture ended inside warm-up (batch fallback). */
    bool streamed = false;
    /**
     * True when the warm-up batch fallback decoded the capture (its
     * channel::receive() call already published receiver telemetry).
     */
    bool batchFallback = false;
};

/**
 * Facade bundling the batch and streaming receiver paths behind one
 * configuration.
 */
class ReceiverOps
{
  public:
    explicit ReceiverOps(const channel::ReceiverConfig &config)
        : cfg(config)
    {
    }

    /** The whole-capture pipeline (channel::receive). */
    channel::ReceiverResult runBatch(const sdr::IqCapture &capture) const;

    /**
     * Decode a chunked capture with bounded memory. Never terminates
     * the process: recoverable errors from warm-up or any stage land in
     * result.rx.failure, exactly like the batch path.
     */
    StreamingResult runStreaming(ChunkSource &source,
                                 const StreamingOptions &options = {}) const;

    const channel::ReceiverConfig &config() const { return cfg; }

  private:
    void streamInto(ChunkSource &source, const StreamingOptions &options,
                    StreamingResult &out) const;

    channel::ReceiverConfig cfg;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_RECEIVER_OPS_HPP
