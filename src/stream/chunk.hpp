/**
 * @file
 * Chunked IQ ingestion: the unit of work of the streaming runtime.
 *
 * A capture too long to materialise (a typing session, a live SDR
 * feed) enters the streaming pipeline as a sequence of contiguous
 * IqChunk pieces produced by a ChunkSource. Chunks carry their global
 * sample offset so downstream stages can reason in capture coordinates
 * without ever holding more than a chunk (plus their own bounded
 * state) in memory.
 */

#ifndef EMSC_STREAM_CHUNK_HPP
#define EMSC_STREAM_CHUNK_HPP

#include <cstddef>
#include <vector>

#include "sdr/iq.hpp"
#include "support/types.hpp"

namespace emsc::stream {

/** One contiguous piece of a capture. */
struct IqChunk
{
    /** Sequence number (0, 1, 2, ... in production order). */
    std::size_t index = 0;
    /** Global sample index of samples[0] within the capture. */
    std::size_t firstSample = 0;
    /** The samples themselves. */
    std::vector<sdr::IqSample> samples;
    /** True on the final chunk of the capture. */
    bool last = false;
};

/**
 * Producer of consecutive capture chunks. next() hands out chunks in
 * order, each starting exactly where the previous one ended;
 * concatenating every chunk reconstructs the full capture.
 */
class ChunkSource
{
  public:
    virtual ~ChunkSource();

    /**
     * Produce the next chunk into `out` (replacing its contents).
     * @return false when the capture is exhausted (out is untouched).
     */
    virtual bool next(IqChunk &out) = 0;

    /** Capture sample rate (Hz). */
    virtual double sampleRate() const = 0;
    /** Frequency the receiver believes it is tuned to (Hz). */
    virtual double centerFrequency() const = 0;
    /** Absolute time of the capture's first sample. */
    virtual TimeNs startTime() const = 0;
    /** Total samples the source will produce, or 0 when unknown. */
    virtual std::size_t totalSamples() const = 0;
};

/**
 * In-memory source: slices an existing capture into fixed-size chunks.
 * Used by tests and by the warm-up replay inside runStreaming(); the
 * capture is borrowed, not copied, and must outlive the source.
 */
class MemoryChunkSource : public ChunkSource
{
  public:
    MemoryChunkSource(const sdr::IqCapture &capture,
                      std::size_t chunk_samples);

    bool next(IqChunk &out) override;
    double sampleRate() const override { return cap->sampleRate; }
    double centerFrequency() const override
    {
        return cap->centerFrequency;
    }
    TimeNs startTime() const override { return cap->startTime; }
    std::size_t totalSamples() const override
    {
        return cap->samples.size();
    }

  private:
    const sdr::IqCapture *cap;
    std::size_t chunk;
    std::size_t cursor = 0;
    std::size_t index = 0;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_CHUNK_HPP
