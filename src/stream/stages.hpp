/**
 * @file
 * Concrete streaming stages: envelope acquisition with an online
 * carrier tracker, keystroke detection tee, incremental bit-timing
 * recovery, batched labeling, and terminal frame decode.
 *
 * Stage graph (ReceiverOps::runStreaming wires it):
 *
 *   IqChunk -> [envelope] -> EnvelopeChunk -> ([keylog tee]) ->
 *     [timing] -> BitChunk(power) -> [label] -> BitChunk(bits) ->
 *     [decode]
 *
 * Each stage holds O(window + span) state — never the capture.
 */

#ifndef EMSC_STREAM_STAGES_HPP
#define EMSC_STREAM_STAGES_HPP

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "channel/acquisition.hpp"
#include "channel/coding.hpp"
#include "channel/labeling.hpp"
#include "channel/timing.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/peaks.hpp"
#include "dsp/simd/arena.hpp"
#include "keylog/detector.hpp"
#include "stream/stage.hpp"

namespace emsc::stream {

/**
 * Online carrier re-estimation: a periodic FFT over a small snapshot
 * of recent raw samples re-locates the VRM line near the tracked
 * carrier, and a decaying average smooths the estimate. When the
 * smoothed estimate moves beyond hopThresholdBins acquisition bins
 * (an LO hop or heavy drift), the envelope stage re-seeds its sliding
 * DFT on the new carrier. Within the threshold the acquirer is left
 * untouched, so clean captures produce a bit-identical envelope
 * whether the tracker is armed or not.
 */
struct CarrierTrackerConfig
{
    bool enabled = true;
    /** Raw samples between re-estimates. */
    std::size_t updateInterval = 1 << 18;
    /** Snapshot FFT size (raw samples, power of two). */
    std::size_t snapshotWindow = 4096;
    /** Decaying-average blend weight of each new estimate. */
    double alpha = 0.25;
    /** Re-seed when the estimate moves this many acquisition bins. */
    double hopThresholdBins = 1.25;
    /** Snapshot bins searched either side of the tracked carrier. */
    int trackBins = 6;
};

/**
 * Eq. (1) envelope acquisition over chunked input. Wraps
 * channel::StreamingAcquirer (sliding DFT + Hann synthesis +
 * decimation, state persisting across chunks), scans the raw samples
 * for sustained dropout/saturation runs to produce the corrupt mask,
 * and runs the online carrier tracker.
 */
class EnvelopeStage : public StreamStage
{
  public:
    EnvelopeStage(double carrier_hz, double center_frequency,
                  double sample_rate,
                  const channel::AcquisitionConfig &acquisition,
                  const CarrierTrackerConfig &tracker);

    const char *name() const override { return "envelope"; }
    void process(StreamMessage &&msg, const Emit &emit) override;
    std::size_t bufferedSamples() const override;

    /** Current (smoothed) carrier estimate in Hz. */
    double carrierEstimate() const { return carrierEst; }
    /** Times the tracker re-seeded the acquirer on a hop. */
    std::size_t carrierReseeds() const { return reseeds; }
    /** Decimated envelope samples emitted so far. */
    std::size_t envelopeSamples() const { return envCount; }

  private:
    void updateCarrier();

    channel::AcquisitionConfig acq;
    CarrierTrackerConfig trk;
    double fc;
    double fs;
    double carrierEst;
    double trackedCarrier;
    std::unique_ptr<channel::StreamingAcquirer> acquirer;
    std::shared_ptr<const dsp::FftPlan> snapshotPlan;
    /** Ring of the most recent snapshotWindow raw samples. */
    std::vector<sdr::IqSample> snapshot;
    std::size_t snapHead = 0;
    std::size_t snapCount = 0;
    std::size_t rawSeen = 0;
    std::size_t lastUpdate = 0;
    std::size_t reseeds = 0;
    /** Global decimated index of the next envelope sample. */
    std::size_t envCount = 0;
    /** Raw-domain corrupt-run trackers (persist across chunks). */
    std::size_t zeroRun = 0;
    std::size_t clipRun = 0;
    /** Per-chunk / per-update scratch (reused, never per-call). */
    std::vector<std::pair<std::size_t, std::size_t>> corruptScratch;
    std::vector<dsp::Complex> snapBuf;
    std::vector<double> snapMag;
};

/**
 * Pass-through tee feeding the online keystroke detector: envelope
 * chunks are forwarded unchanged while completed keystroke bursts are
 * surfaced through the callback (and accumulated for the final
 * result).
 */
class KeystrokeStage : public StreamStage
{
  public:
    using Callback =
        std::function<void(const keylog::DetectedKeystroke &)>;

    KeystrokeStage(double envelope_rate, TimeNs capture_start,
                   const keylog::DetectorConfig &config,
                   Callback on_keystroke = nullptr);

    const char *name() const override { return "keylog"; }
    void process(StreamMessage &&msg, const Emit &emit) override;
    void finish(const Emit &emit) override;
    std::size_t bufferedSamples() const override;

    /** All keystrokes detected during the run. */
    const std::vector<keylog::DetectedKeystroke> &events() const
    {
        return detected;
    }

  private:
    void drain();

    keylog::OnlineKeystrokeDetector detector;
    Callback callback;
    std::vector<keylog::DetectedKeystroke> detected;
};

/** Warm-up calibration handed to the incremental timing stage. */
struct TimingCalibration
{
    /** Initial signaling-time estimate (decimated samples). */
    double signalingTime = 64.0;
    /** Edge kernel length l_d (even, >= 2). */
    std::size_t edgeKernel = 16;
    /**
     * Calibrated reference edge-peak quantile: the warm-up envelope's
     * quantile(peak heights, peakQuantile), which the stage adapts
     * with a decaying average as spans arrive.
     */
    double referenceQuantile = 0.0;
    /** Ratio/quantile knobs (same semantics as batch recoverTiming). */
    channel::TimingConfig timing;
};

/**
 * Incremental bit-timing recovery with threshold adaptation: edge
 * detection and peak picking run span by span over a bounded pending
 * window of the envelope; accepted starts are merged/gap-filled
 * against the running signaling-time estimate (median over a bounded
 * ring of recent spacings), and each completed bit interval is emitted
 * as a per-bit power with its erasure flag (corrupt-envelope overlap).
 * Bits are labeled downstream by LabelStage.
 */
class TimingStage : public StreamStage
{
  public:
    explicit TimingStage(const TimingCalibration &calibration);

    const char *name() const override { return "timing"; }
    void process(StreamMessage &&msg, const Emit &emit) override;
    void finish(const Emit &emit) override;
    std::size_t bufferedSamples() const override;

    /** Current signaling-time estimate (decimated samples). */
    double signalingTime() const { return tsig; }

  private:
    void processSpans(bool final_span, BitChunk &out);
    void acceptStart(std::size_t global, BitChunk &out);
    void emitBit(std::size_t a, std::size_t b, bool synthesized,
                 BitChunk &out);
    void trim(std::size_t keep_from_local);

    TimingCalibration cal;
    /** Pending envelope span (global index of env[0] = envFirst). */
    std::vector<double> env;
    std::vector<char> corrupt;
    std::size_t envFirst = 0;
    /** Span geometry. */
    std::size_t spanSamples;
    std::size_t kernel;
    /** Running signaling time: median over a bounded spacing ring. */
    std::vector<double> spacings;
    double tsig;
    /** Adaptive edge-threshold reference quantile. */
    double refQ;
    /** Last accepted start (bit still open) in global coordinates. */
    std::size_t pendingStart = 0;
    bool havePending = false;
    std::size_t bitsOut = 0;
    /** Per-span scratch: arena for the edge/prefix buffers plus
     * reusable peak workspaces, so the steady-state span loop
     * performs no allocations once warm. */
    dsp::simd::Arena arena;
    dsp::PeakScratch peakScratch;
    std::vector<std::size_t> peaksBuf;
    std::vector<double> heightsBuf;
};

/**
 * Batched power labeling: accumulates per-bit powers until a batch is
 * full, selects the bimodal-histogram threshold for the batch (the
 * same channel::selectThreshold as the batch receiver), and emits the
 * labeled bits. Threshold adaptation across batches tracks slow gain
 * drift exactly as the batch labeler's per-batch thresholds do.
 */
class LabelStage : public StreamStage
{
  public:
    LabelStage(const channel::LabelingConfig &labeling,
               std::size_t batch_bits);

    const char *name() const override { return "label"; }
    void process(StreamMessage &&msg, const Emit &emit) override;
    void finish(const Emit &emit) override;
    std::size_t bufferedSamples() const override;

  private:
    void flush(std::size_t count, const Emit &emit);

    channel::LabelingConfig cfg;
    std::size_t batchBits;
    BitChunk pending;
    std::size_t nextFirstBit = 0;
};

/**
 * Terminal stage: accumulates the labeled bit stream (bits are tiny —
 * O(capture / 10^3) — and are the pipeline's product, not buffered
 * samples), records time-to-first-bit, and parses the frame at end of
 * stream (erasure-aware when any bit was erased).
 */
class DecodeStage : public StreamStage
{
  public:
    explicit DecodeStage(const channel::FrameConfig &frame);

    const char *name() const override { return "decode"; }
    void process(StreamMessage &&msg, const Emit &emit) override;
    void finish(const Emit &emit) override;
    std::size_t bufferedSamples() const override;

    const channel::LabeledBits &labeled() const { return stream; }
    const channel::Bits &erasureMask() const { return erased; }
    const std::vector<std::size_t> &starts() const { return allStarts; }
    const channel::ParsedFrame &frame() const { return parsed; }
    double signalingTime() const { return tsig; }
    /** ns from stage construction to the first labeled bit; 0 if none. */
    std::uint64_t firstBitLatencyNs() const { return firstBitNs; }
    bool anyErased() const { return sawErased; }

  private:
    channel::FrameConfig cfg;
    channel::LabeledBits stream;
    channel::Bits erased;
    std::vector<std::size_t> allStarts;
    channel::ParsedFrame parsed;
    double tsig = 0.0;
    bool sawErased = false;
    std::uint64_t firstBitNs = 0;
    std::chrono::steady_clock::time_point epoch;
};

} // namespace emsc::stream

#endif // EMSC_STREAM_STAGES_HPP
