#include "stream/chunk.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace emsc::stream {

ChunkSource::~ChunkSource() = default;

MemoryChunkSource::MemoryChunkSource(const sdr::IqCapture &capture,
                                     std::size_t chunk_samples)
    : cap(&capture), chunk(chunk_samples)
{
    if (chunk == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "MemoryChunkSource chunk size must be positive");
}

bool
MemoryChunkSource::next(IqChunk &out)
{
    if (cursor >= cap->samples.size())
        return false;
    std::size_t count = std::min(chunk, cap->samples.size() - cursor);
    out.index = index++;
    out.firstSample = cursor;
    out.samples.assign(cap->samples.begin() +
                           static_cast<std::ptrdiff_t>(cursor),
                       cap->samples.begin() +
                           static_cast<std::ptrdiff_t>(cursor + count));
    cursor += count;
    out.last = cursor >= cap->samples.size();
    return true;
}

} // namespace emsc::stream
