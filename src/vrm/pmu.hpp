/**
 * @file
 * Power management unit: couples the core to its voltage regulator.
 *
 * The PMU owns the VID interface (which voltage the VRM must supply
 * for the current P-state) and exposes the VRM's switching activity
 * for a simulated capture window. The processor side runs first (the
 * discrete-event CPU/OS simulation fills the load-current timeline);
 * the PMU then expands that timeline into the burst stream the
 * emanation model radiates. The VRM never influences the core, so this
 * two-phase split is exact and much faster than per-switch events.
 */

#ifndef EMSC_VRM_PMU_HPP
#define EMSC_VRM_PMU_HPP

#include <optional>
#include <utility>
#include <vector>

#include "cpu/core.hpp"
#include "vrm/buck.hpp"

namespace emsc::vrm {

/**
 * The PMU/VRM pair attached to one core.
 */
class Pmu
{
  public:
    Pmu(const cpu::CpuCore &core, const BuckConfig &buck_config, Rng &rng)
        : core(core), buck(buck_config, rng)
    {
    }

    /** VID request: the supply voltage for a given P-state. */
    static Volts
    vidVoltage(const cpu::PState &pstate)
    {
        return pstate.voltage;
    }

    /** Switching bursts emitted during [t0, t1). */
    std::vector<SwitchEvent>
    switchingEvents(TimeNs t0, TimeNs t1)
    {
        return buck.generate(core.currentTrace(), t0, t1,
                             plan ? &*plan : nullptr);
    }

    /**
     * Install a commanded switching-frequency plan (modem retuning,
     * e.g. B-FSK). Values <= 0 fall back to the nominal frequency;
     * with no plan installed the VRM runs fixed-frequency as before.
     */
    void
    setFrequencyPlan(sim::Timeline<Hertz> frequency_plan)
    {
        plan = std::move(frequency_plan);
    }

    /** The installed frequency plan, if any. */
    const sim::Timeline<Hertz> *
    frequencyPlan() const
    {
        return plan ? &*plan : nullptr;
    }

    /** The VRM's actual switching frequency (with unit error). */
    Hertz switchingFrequency() const { return buck.effectiveFrequency(); }

    const BuckConverter &converter() const { return buck; }

  private:
    const cpu::CpuCore &core;
    BuckConverter buck;
    std::optional<sim::Timeline<Hertz>> plan;
};

} // namespace emsc::vrm

#endif // EMSC_VRM_PMU_HPP
