/**
 * @file
 * Buck-converter (step-down VRM) switching model.
 *
 * §II: the VRM replenishes its output capacitor with a burst of input
 * current once per switching period T (1-4 us). Under light load it
 * improves efficiency by *skipping* replenishment periods whose charge
 * is not needed ("phase shedding" / pulse skipping). We model the skip
 * decision as a first-order sigma-delta on the charge deficit, which
 * keeps switching aligned to the T grid exactly as the paper
 * describes, and makes the spectral line at f = 1/T proportional to
 * the average load current — strong when the core is active, weak when
 * it idles. That amplitude modulation *is* the side channel.
 */

#ifndef EMSC_VRM_BUCK_HPP
#define EMSC_VRM_BUCK_HPP

#include <vector>

#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace emsc::vrm {

/** One input-current burst produced by the converter. */
struct SwitchEvent
{
    /** Burst start time. */
    TimeNs time;
    /**
     * Burst current amplitude (amps). The EM emission couples to the
     * di/dt edges of the burst, so this scales the emitted impulse.
     */
    double amplitude;
    /** Burst (on-time) duration. */
    TimeNs width;
};

/** Converter electrical/behavioural parameters. */
struct BuckConfig
{
    /** Nominal switching frequency f = 1/T. */
    Hertz switchFrequency = 970e3;
    /**
     * Load current above which the converter runs in continuous PWM
     * (one burst per period); below it, periods are skipped.
     */
    Amps shedThreshold = 2.5;
    /** On-time as a fraction of the switching period. */
    double dutyCycle = 0.12;
    /** RMS cycle-to-cycle period jitter, as a fraction of T. */
    double periodJitterRms = 0.002;
    /** Static frequency error of this unit (parts per million). */
    double frequencyErrorPpm = 0.0;
};

/**
 * Generates the switching-event stream for a load-current timeline.
 */
class BuckConverter
{
  public:
    BuckConverter(const BuckConfig &config, Rng &rng);

    /**
     * Produce all bursts in [t0, t1) given the load the core drew.
     *
     * A modem may retune the converter on the fly (B-FSK keys bits as
     * switching-frequency shifts, COVID-bit style) by supplying a
     * piecewise-constant plan of commanded frequencies. Plan values
     * <= 0 mean "nominal". The per-unit ppm error applies to commanded
     * frequencies exactly as it does to the nominal one. With no plan
     * the event stream — including the jitter draw sequence — is
     * identical to the historical fixed-frequency behaviour.
     *
     * @param load            piecewise-constant load current (amps)
     * @param frequency_plan  optional commanded switching frequency
     *                        (hertz) vs. time; nullptr = fixed nominal
     */
    std::vector<SwitchEvent>
    generate(const sim::Timeline<double> &load, TimeNs t0, TimeNs t1,
             const sim::Timeline<Hertz> *frequency_plan = nullptr);

    /** Effective switching frequency including the static error. */
    Hertz effectiveFrequency() const;

    const BuckConfig &config() const { return cfg; }

  private:
    BuckConfig cfg;
    Rng &rng;
};

} // namespace emsc::vrm

#endif // EMSC_VRM_BUCK_HPP
