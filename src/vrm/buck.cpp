#include "vrm/buck.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace emsc::vrm {

BuckConverter::BuckConverter(const BuckConfig &config, Rng &rng)
    : cfg(config), rng(rng)
{
    if (cfg.switchFrequency <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "buck switching frequency must be positive");
    if (cfg.dutyCycle <= 0.0 || cfg.dutyCycle >= 1.0)
        raiseError(ErrorKind::InvalidConfig,
                   "buck duty cycle must be in (0, 1)");
}

Hertz
BuckConverter::effectiveFrequency() const
{
    return cfg.switchFrequency * (1.0 + cfg.frequencyErrorPpm * 1e-6);
}

std::vector<SwitchEvent>
BuckConverter::generate(const sim::Timeline<double> &load, TimeNs t0,
                        TimeNs t1,
                        const sim::Timeline<Hertz> *frequency_plan)
{
    std::vector<SwitchEvent> events;
    if (t1 <= t0)
        return events;

    double ppm_scale = 1.0 + cfg.frequencyErrorPpm * 1e-6;
    double period_s = 1.0 / effectiveFrequency();
    auto nominal_period = static_cast<double>(fromSeconds(period_s));
    auto width = std::max<TimeNs>(
        1, static_cast<TimeNs>(nominal_period * cfg.dutyCycle));

    // Walk the load's change points alongside the switching grid so
    // each period sees the load in effect at its start.
    const auto &points = load.changePoints();
    std::size_t pi = 0;
    double current = load.at(t0);
    double t = static_cast<double>(t0);
    double deficit = 0.0; // accumulated un-replenished charge (coulombs)
    double q_nominal = cfg.shedThreshold * period_s;

    // Commanded-frequency plan (modem retuning), walked the same way.
    const sim::Timeline<Hertz>::Point *fplan = nullptr;
    std::size_t fn = 0, fi = 0;
    double commanded = 0.0; // <= 0 means nominal
    if (frequency_plan != nullptr && frequency_plan->size() > 0) {
        fplan = frequency_plan->changePoints().data();
        fn = frequency_plan->changePoints().size();
        commanded = frequency_plan->at(t0);
    }
    auto retune = [&](double freq_hz) {
        double eff = (freq_hz > 0.0 ? freq_hz : cfg.switchFrequency)
                     * ppm_scale;
        period_s = 1.0 / eff;
        nominal_period = static_cast<double>(fromSeconds(period_s));
        width = std::max<TimeNs>(
            1, static_cast<TimeNs>(nominal_period * cfg.dutyCycle));
        q_nominal = cfg.shedThreshold * period_s;
    };
    if (fplan != nullptr)
        retune(commanded);

    std::size_t estimated = static_cast<std::size_t>(
        toSeconds(t1 - t0) * effectiveFrequency()) + 16;
    events.reserve(estimated);

    while (t < static_cast<double>(t1)) {
        auto now = static_cast<TimeNs>(t);
        while (pi < points.size() && points[pi].time <= now) {
            current = points[pi].value;
            ++pi;
        }
        while (fi < fn && fplan[fi].time <= now) {
            if (fplan[fi].value != commanded) {
                commanded = fplan[fi].value;
                retune(commanded);
            }
            ++fi;
        }

        if (current >= cfg.shedThreshold) {
            // Continuous PWM: one burst per period carrying I * T.
            events.push_back(SwitchEvent{now, current, width});
            deficit = 0.0;
        } else if (current > 0.0) {
            // Pulse skipping: accumulate the deficit; emit a nominal
            // burst only when a full pulse of charge is owed.
            deficit += current * period_s;
            if (deficit >= q_nominal) {
                events.push_back(
                    SwitchEvent{now, cfg.shedThreshold, width});
                deficit -= q_nominal;
            }
        }

        double jitter = cfg.periodJitterRms > 0.0
                            ? rng.gaussian(0.0, cfg.periodJitterRms)
                            : 0.0;
        t += nominal_period * (1.0 + jitter);
    }
    return events;
}

} // namespace emsc::vrm
