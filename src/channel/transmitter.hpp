/**
 * @file
 * The covert-channel transmitter application (Fig. 3).
 *
 * An unprivileged process that, for each channel bit, either performs
 * busy-loop activity followed by a sleep (bit 1) or only sleeps for
 * twice as long (bit 0) — return-to-zero encoding of the data onto the
 * processor's power state. The per-bit housekeeping (reading the next
 * bit, the syscall path into usleep) itself produces the short
 * activity blip at every bit boundary that the receiver's edge
 * detector relies on (§IV-B1).
 */

#ifndef EMSC_CHANNEL_TRANSMITTER_HPP
#define EMSC_CHANNEL_TRANSMITTER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "channel/coding.hpp"
#include "cpu/os.hpp"

namespace emsc::channel {

/** Transmitter timing parameters (Fig. 3's knobs). */
struct TxParams
{
    /** SLEEP_PERIOD in microseconds. */
    double sleepPeriodUs = 100.0;
    /**
     * Busy-loop cycles for a 1-bit (LOOP_PERIOD). Zero means
     * "auto": pick cycles so active and idle periods have (almost)
     * equal length, as §IV-C1 does.
     */
    std::uint64_t loopCycles = 0;
    /** Sleep multiplier for a 0-bit (Fig. 3 uses 2x). */
    double zeroSleepFactor = 2.0;
    /** Housekeeping cycles burned at the start of every bit. */
    std::uint64_t perBitOverheadCycles = 40000;
};

/** Ground-truth record of one transmitted channel bit. */
struct TxBitRecord
{
    TimeNs start;
    std::uint8_t value;
};

/**
 * Drives the OS/CPU model to emit one frame of channel bits.
 */
class CovertTransmitter
{
  public:
    /**
     * @param os    OS services of the target machine
     * @param bits  channel bits to send (typically from buildFrame())
     */
    CovertTransmitter(cpu::OsModel &os, Bits bits, const TxParams &params);

    /** Begin transmission; `done` fires after the final bit. */
    void start(std::function<void()> done);

    /** Ground-truth timing of every transmitted bit. */
    const std::vector<TxBitRecord> &sentBits() const { return record; }

    /** Channel bits handed to the transmitter. */
    const Bits &bits() const { return data; }

    /** Cycles of busy work actually used per 1-bit. */
    std::uint64_t effectiveLoopCycles() const { return cycles1; }

    /** Estimated average seconds per channel bit for these params. */
    static double estimatedBitPeriod(const cpu::OsModel &os,
                                     const TxParams &params);

  private:
    void sendNext();

    cpu::OsModel &os;
    Bits data;
    TxParams p;
    std::uint64_t cycles1 = 0;
    std::size_t next = 0;
    std::vector<TxBitRecord> record;
    std::function<void()> completion;
};

} // namespace emsc::channel

#endif // EMSC_CHANNEL_TRANSMITTER_HPP
