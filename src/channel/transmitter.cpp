#include "channel/transmitter.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace emsc::channel {

CovertTransmitter::CovertTransmitter(cpu::OsModel &os, Bits bits,
                                     const TxParams &params)
    : os(os), data(std::move(bits)), p(params)
{
    if (data.empty())
        raiseError(ErrorKind::InsufficientData,
                   "CovertTransmitter given an empty bit stream");
    if (p.sleepPeriodUs <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "sleep period must be positive");

    if (p.loopCycles != 0) {
        cycles1 = p.loopCycles;
    } else {
        // Auto: busy for about as long as the (granularity-rounded)
        // sleep actually lasts, as the paper's setup does.
        const auto &cfg = os.config();
        TimeNs gran = std::max<TimeNs>(1, cfg.timerGranularity);
        TimeNs req = fromMicroseconds(p.sleepPeriodUs);
        TimeNs rounded = ((req + gran - 1) / gran) * gran;
        double freq = os.cpu().config().pstates.fastest().frequency;
        cycles1 = std::max<std::uint64_t>(
            1000, static_cast<std::uint64_t>(toSeconds(rounded) * freq));
    }
    record.reserve(data.size());
}

double
CovertTransmitter::estimatedBitPeriod(const cpu::OsModel &os,
                                      const TxParams &params)
{
    const auto &cfg = os.config();
    TimeNs gran = std::max<TimeNs>(1, cfg.timerGranularity);
    TimeNs req = fromMicroseconds(params.sleepPeriodUs);
    TimeNs rounded = ((req + gran - 1) / gran) * gran;
    TimeNs req0 = fromMicroseconds(params.sleepPeriodUs *
                                   params.zeroSleepFactor);
    TimeNs rounded0 = ((req0 + gran - 1) / gran) * gran;

    double one = 2.0 * toSeconds(rounded); // busy ~= sleep for a 1-bit
    double zero = toSeconds(rounded0);
    return 0.5 * (one + zero);
}

void
CovertTransmitter::start(std::function<void()> done)
{
    completion = std::move(done);
    next = 0;
    sendNext();
}

void
CovertTransmitter::sendNext()
{
    if (next >= data.size()) {
        if (completion)
            completion();
        return;
    }

    std::uint8_t bit = data[next++];
    // Housekeeping at the bit boundary: read the next bit, loop
    // control, entry into the timing path. This is the "sharp increase
    // whenever a new bit is transmitted, even when the bit is a zero".
    os.runBusyCycles(p.perBitOverheadCycles, [this, bit] {
        record.push_back(TxBitRecord{os.now(), bit});
        if (bit) {
            os.runBusyCycles(cycles1, [this] {
                os.sleepUs(p.sleepPeriodUs, [this] { sendNext(); });
            });
        } else {
            os.sleepUs(p.sleepPeriodUs * p.zeroSleepFactor,
                       [this] { sendNext(); });
        }
    });
}

} // namespace emsc::channel
