/**
 * @file
 * Channel coding and framing for the covert channel.
 *
 * §IV-B4/§IV-C2: the transmitter inserts parity bits so that the
 * minimum Hamming distance between codewords is at least three,
 * allowing single-error correction while staying simple enough to
 * re-implement on a target machine by hand. We use the classic
 * Hamming(15,11) code (rate 11/15, distance 3). Framing follows
 * §IV-C1: a synchronisation run of interleaved ones and zeros, a short
 * run of zeros, and a preamble marking the start of the data, followed
 * by a length header and the coded payload.
 *
 * Burst hardening: the coded body is passed through a block
 * interleaver (depth rows of 15-bit codewords, read column-wise), so a
 * contiguous burst of up to `interleaverDepth` channel bits lands as
 * at most one error per codeword — exactly what Hamming(15,11) can
 * correct. A CRC-16 appended to the body before coding lets the
 * parser distinguish frames that decoded clean, decoded with
 * corrections, or are still damaged after correction.
 */

#ifndef EMSC_CHANNEL_CODING_HPP
#define EMSC_CHANNEL_CODING_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace emsc::channel {

/** A bit sequence, one bit per byte (0 or 1). */
using Bits = std::vector<std::uint8_t>;

/** Convert a byte string to its bit sequence (MSB first). */
Bits bytesToBits(const std::string &bytes);

/** Convert a bit sequence back to bytes (length truncated to octets). */
std::string bitsToBytes(const Bits &bits);

/**
 * Encode data bits with Hamming(15,11). The input is zero-padded to a
 * multiple of 11 bits.
 */
Bits hammingEncode(const Bits &data);

/** Result of Hamming decoding. */
struct HammingDecodeResult
{
    /** Decoded data bits (11 per complete received block of 15). */
    Bits bits;
    /** Number of single-bit errors corrected. */
    std::size_t corrected = 0;
    /** Number of erased input bits resolved via erasure decoding. */
    std::size_t erasures = 0;
};

/**
 * Decode a Hamming(15,11) coded stream. A trailing partial block is
 * dropped. Any single-bit error per block is corrected; double errors
 * decode to a wrong codeword (distance-3 code).
 */
HammingDecodeResult hammingDecode(const Bits &coded);

/**
 * Erasure-aware Hamming decode. `erased` marks input positions whose
 * value is unknown (e.g. bits synthesised across an SDR dropout); it
 * must be empty or the same length as `coded`. A distance-3 code
 * resolves up to two erasures per block exactly (fill enumeration,
 * zero-syndrome match); blocks with more erasures fall back to
 * zero-fill plus ordinary single-error correction.
 */
HammingDecodeResult hammingDecodeErasures(const Bits &coded,
                                          const Bits &erased);

/**
 * CRC-16/CCITT (poly 0x1021, init 0xffff) over a bit sequence, MSB
 * first. As a degree-16 CRC it detects every single burst error of up
 * to 16 bits.
 */
std::uint16_t crc16(const Bits &bits);

/**
 * Block-interleave a bit stream: each chunk of depth*15 bits is viewed
 * as `depth` rows of 15 (one Hamming codeword per row) and emitted
 * column-wise, so a channel burst of up to `depth` bits touches each
 * codeword at most once. A partial trailing chunk uses the same
 * permutation filtered to the bits present, keeping the map a
 * bijection for any length. Depth <= 1 is the identity.
 */
Bits interleave(const Bits &bits, std::size_t depth);

/** Inverse of interleave() for the same depth. */
Bits deinterleave(const Bits &bits, std::size_t depth);

/** Frame layout parameters. */
struct FrameConfig
{
    /** Leading alternating 1-0 synchronisation bits. */
    std::size_t syncBits = 16;
    /** Zero run after the sync pattern. */
    std::size_t zeroBits = 8;
    /** Start-of-data delimiter. */
    Bits preamble = {1, 1, 1, 1, 0, 0, 1, 0};
    /** Maximum mismatches tolerated when locating the preamble. */
    std::size_t preambleTolerance = 1;
    /**
     * Codeword-interleaver depth: a burst of up to this many channel
     * bits degrades each codeword by at most one bit. 1 disables
     * interleaving (legacy layout). The default absorbs the typical
     * SDR dropout (a few ms ~ up to ~10 channel bits plus boundary
     * guards) with at most two erasures per codeword.
     */
    std::size_t interleaverDepth = 8;
    /** Append a CRC-16 to the body so the parser can verify it. */
    bool crc = true;
};

/**
 * Build the on-air bit stream for a payload: sync + zeros + preamble +
 * interleaved Hamming coding of [16-bit length || payload || CRC-16].
 * The coded body is zero-padded to whole interleaver chunks so every
 * chunk carrying frame bits is self-contained.
 */
Bits buildFrame(const Bits &payload, const FrameConfig &config);

/** How much of a parsed frame can be trusted. */
enum class FrameIntegrity
{
    /** No frame located. */
    None,
    /** CRC verified with zero corrections and zero erasures. */
    Verified,
    /** CRC verified, but only after corrections/erasure recovery. */
    Corrected,
    /** Frame located but the CRC does not match: payload suspect. */
    Damaged,
    /** CRC disabled in the FrameConfig; nothing to check against. */
    Unchecked,
};

/** Human-readable name of a FrameIntegrity value. */
const char *frameIntegrityName(FrameIntegrity integrity);

/** Outcome of locating and decoding a frame in a received stream. */
struct ParsedFrame
{
    /** Whether a plausible preamble was located. */
    bool found = false;
    /** Index just past the preamble in the channel stream. */
    std::size_t payloadStart = 0;
    /** Payload length claimed by the (decoded) header. */
    std::size_t claimedLength = 0;
    /** Decoded payload bits (clamped to the claimed length). */
    Bits payload;
    /** Single-bit corrections applied by the Hamming decoder. */
    std::size_t corrected = 0;
    /** Erased channel bits resolved by erasure decoding. */
    std::size_t erasedBits = 0;
    /** Whether the frame CRC verified (false when crc disabled). */
    bool crcOk = false;
    /** Overall trust classification for the decode. */
    FrameIntegrity integrity = FrameIntegrity::None;
};

/**
 * Locate the frame in a received channel-bit stream and decode its
 * payload. Tolerates a limited number of mismatches in the preamble
 * search to survive substitution errors.
 */
ParsedFrame parseFrame(const Bits &received, const FrameConfig &config);

/**
 * parseFrame() with an erasure mask parallel to `received` (empty or
 * same length): marked positions are treated as unknown by both the
 * preamble search (half-weight mismatches) and the Hamming decoder
 * (erasure decoding after deinterleaving).
 */
ParsedFrame parseFrame(const Bits &received, const Bits &erased,
                       const FrameConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_CODING_HPP
