/**
 * @file
 * Channel coding and framing for the covert channel.
 *
 * §IV-B4/§IV-C2: the transmitter inserts parity bits so that the
 * minimum Hamming distance between codewords is at least three,
 * allowing single-error correction while staying simple enough to
 * re-implement on a target machine by hand. We use the classic
 * Hamming(15,11) code (rate 11/15, distance 3). Framing follows
 * §IV-C1: a synchronisation run of interleaved ones and zeros, a short
 * run of zeros, and a preamble marking the start of the data, followed
 * by a length header and the coded payload.
 */

#ifndef EMSC_CHANNEL_CODING_HPP
#define EMSC_CHANNEL_CODING_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace emsc::channel {

/** A bit sequence, one bit per byte (0 or 1). */
using Bits = std::vector<std::uint8_t>;

/** Convert a byte string to its bit sequence (MSB first). */
Bits bytesToBits(const std::string &bytes);

/** Convert a bit sequence back to bytes (length truncated to octets). */
std::string bitsToBytes(const Bits &bits);

/**
 * Encode data bits with Hamming(15,11). The input is zero-padded to a
 * multiple of 11 bits.
 */
Bits hammingEncode(const Bits &data);

/** Result of Hamming decoding. */
struct HammingDecodeResult
{
    /** Decoded data bits (11 per complete received block of 15). */
    Bits bits;
    /** Number of single-bit errors corrected. */
    std::size_t corrected = 0;
};

/**
 * Decode a Hamming(15,11) coded stream. A trailing partial block is
 * dropped. Any single-bit error per block is corrected; double errors
 * decode to a wrong codeword (distance-3 code).
 */
HammingDecodeResult hammingDecode(const Bits &coded);

/** Frame layout parameters. */
struct FrameConfig
{
    /** Leading alternating 1-0 synchronisation bits. */
    std::size_t syncBits = 16;
    /** Zero run after the sync pattern. */
    std::size_t zeroBits = 8;
    /** Start-of-data delimiter. */
    Bits preamble = {1, 1, 1, 1, 0, 0, 1, 0};
    /** Maximum mismatches tolerated when locating the preamble. */
    std::size_t preambleTolerance = 1;
};

/**
 * Build the on-air bit stream for a payload: sync + zeros + preamble +
 * Hamming-coded [16-bit length || payload].
 */
Bits buildFrame(const Bits &payload, const FrameConfig &config);

/** Outcome of locating and decoding a frame in a received stream. */
struct ParsedFrame
{
    /** Whether a plausible preamble was located. */
    bool found = false;
    /** Index just past the preamble in the channel stream. */
    std::size_t payloadStart = 0;
    /** Payload length claimed by the (decoded) header. */
    std::size_t claimedLength = 0;
    /** Decoded payload bits (clamped to the claimed length). */
    Bits payload;
    /** Single-bit corrections applied by the Hamming decoder. */
    std::size_t corrected = 0;
};

/**
 * Locate the frame in a received channel-bit stream and decode its
 * payload. Tolerates a limited number of mismatches in the preamble
 * search to survive substitution errors.
 */
ParsedFrame parseFrame(const Bits &received, const FrameConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_CODING_HPP
