#include "channel/timing.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace emsc::channel {

namespace {

/**
 * Reject ratio configurations outside their meaningful domains up
 * front (negated comparisons so NaN fails too). In particular a
 * gapFillRatio <= 1 used to make the gap filler compute
 * lround(gap/tsig) - 1 == -1 in size_t arithmetic — SIZE_MAX inserted
 * starts, looping until OOM.
 */
void
validateConfig(const TimingConfig &cfg)
{
    if (cfg.symbolModel != SymbolModel::OokRz)
        raiseError(ErrorKind::InvalidConfig,
                   "timing recovery's edge-train estimator is "
                   "RZ-only; envelope declares symbol model '%s' — "
                   "recover a fixed symbol grid in the modem layer "
                   "instead", symbolModelName(cfg.symbolModel));
    if (!(cfg.peakQuantile >= 0.0 && cfg.peakQuantile <= 1.0))
        raiseError(ErrorKind::InvalidConfig,
                   "TimingConfig.peakQuantile must be in [0, 1], "
                   "got %g", cfg.peakQuantile);
    if (!(cfg.peakThresholdRatio >= 0.0))
        raiseError(ErrorKind::InvalidConfig,
                   "TimingConfig.peakThresholdRatio must be "
                   "non-negative, got %g", cfg.peakThresholdRatio);
    if (!(cfg.minSpacingRatio > 0.0 && cfg.minSpacingRatio <= 1.0))
        raiseError(ErrorKind::InvalidConfig,
                   "TimingConfig.minSpacingRatio must be in (0, 1], "
                   "got %g", cfg.minSpacingRatio);
    if (!(cfg.gapFillRatio > 1.0))
        raiseError(ErrorKind::InvalidConfig,
                   "TimingConfig.gapFillRatio must exceed 1 (a gap "
                   "shorter than a signaling time hides no starts), "
                   "got %g", cfg.gapFillRatio);
    if (cfg.maxLag <= cfg.minLag)
        raiseError(ErrorKind::InvalidConfig,
                   "TimingConfig.maxLag (%zu) must exceed minLag "
                   "(%zu)", cfg.maxLag, cfg.minLag);
    if (!(cfg.periodHint >= 0.0))
        raiseError(ErrorKind::InvalidConfig,
                   "TimingConfig.periodHint must be non-negative, "
                   "got %g", cfg.periodHint);
}

/** One edge-detection pass; returns detected start indices. */
std::vector<std::size_t>
detectStarts(const std::vector<double> &y, std::size_t l_d,
             std::size_t min_distance, const TimingConfig &cfg,
             std::vector<double> *edge_out)
{
    std::vector<double> edge = dsp::edgeDetect(y, l_d);

    dsp::PeakOptions opt;
    opt.minDistance = std::max<std::size_t>(1, min_distance);
    opt.minHeight = 0.0;
    std::vector<std::size_t> cand = dsp::findPeaks(edge, opt);
    if (cand.empty()) {
        if (edge_out)
            *edge_out = std::move(edge);
        return cand;
    }

    // Threshold relative to the strong-edge population so weak noise
    // wiggles are rejected without knowing absolute signal levels.
    std::vector<double> heights;
    heights.reserve(cand.size());
    for (std::size_t c : cand)
        heights.push_back(edge[c]);
    double ref = quantile(heights, cfg.peakQuantile);
    double thr = cfg.peakThresholdRatio * ref;

    std::vector<std::size_t> starts;
    for (std::size_t c : cand)
        if (edge[c] >= thr)
            starts.push_back(c);

    if (edge_out)
        *edge_out = std::move(edge);
    return starts;
}

} // namespace

const char *
symbolModelName(SymbolModel model)
{
    switch (model) {
    case SymbolModel::OokRz:
        return "ook-rz";
    case SymbolModel::FixedGrid:
        return "fixed-grid";
    }
    return "unknown";
}

double
estimateBitPeriod(const std::vector<double> &y, const TimingConfig &config)
{
    validateConfig(config);
    if (y.size() < 2 * config.minLag + 16)
        return 0.0;

    // Work on the *rising-edge* signal rather than the raw envelope:
    // every bit (one or zero) opens with exactly one rise — the
    // housekeeping blip or the busy plateau — while falls also occur
    // mid-bit. The rise train is therefore periodic at precisely the
    // signaling time, for any payload bit pattern.
    constexpr std::size_t kDiffSpan = 3;
    std::vector<double> d(y.size() - kDiffSpan, 0.0);
    double mean = 0.0;
    for (std::size_t i = 0; i + kDiffSpan < y.size(); ++i) {
        d[i] = std::max(y[i + kDiffSpan] - y[i], 0.0);
        mean += d[i];
    }
    mean /= static_cast<double>(d.size());

    std::size_t n2 = dsp::nextPowerOfTwo(2 * d.size());
    std::vector<dsp::Complex> buf(n2, dsp::Complex{0.0, 0.0});
    for (std::size_t i = 0; i < d.size(); ++i)
        buf[i] = dsp::Complex{d[i] - mean, 0.0};
    dsp::fftRadix2(buf, false);
    for (auto &c : buf)
        c = dsp::Complex{std::norm(c), 0.0};
    dsp::fftRadix2(buf, true);

    double r0 = buf[0].real();
    if (r0 <= 0.0)
        return 0.0;

    std::size_t max_lag = std::min<std::size_t>(config.maxLag,
                                                d.size() / 2);
    if (max_lag <= config.minLag + 2)
        return 0.0;

    // Normalised, lightly smoothed autocorrelation.
    std::vector<double> r(max_lag + 2, 0.0);
    for (std::size_t lag = 0; lag <= max_lag + 1 && lag < n2; ++lag)
        r[lag] = buf[lag].real() / r0;
    std::vector<double> rs(r.size(), 0.0);
    for (std::size_t i = 0; i < r.size(); ++i) {
        std::size_t lo = i >= 2 ? i - 2 : 0;
        std::size_t hi = std::min(r.size() - 1, i + 2);
        double acc = 0.0;
        for (std::size_t j = lo; j <= hi; ++j)
            acc += r[j];
        rs[i] = acc / static_cast<double>(hi - lo + 1);
    }

    // Skip the zero-lag main lobe (rise events have the width of the
    // acquisition window's edge ramp): advance to its first smoothed
    // local minimum.
    std::size_t lag_lo = std::max<std::size_t>(config.minLag, 2);
    while (lag_lo + 1 < max_lag && rs[lag_lo + 1] < rs[lag_lo])
        ++lag_lo;
    // A bit is never shorter than the envelope's edge ramp; noise
    // dimples on the (ramp-wide) main lobe must not end the walk early.
    if (config.rampHint > 0)
        lag_lo = std::max(lag_lo, config.rampHint);
    if (lag_lo + 1 >= max_lag)
        return 0.0;

    // Harmonic-comb period search (as robust pitch detectors do): a
    // true period T aligns autocorrelation peaks at T, 2T, 3T, ...;
    // noise ripples and period multiples do not align a full comb.
    auto peak_near = [&](double lag) {
        auto c = static_cast<std::ptrdiff_t>(std::lround(lag));
        double best = -1e300;
        for (std::ptrdiff_t d = -2; d <= 2; ++d) {
            std::ptrdiff_t i = c + d;
            if (i >= static_cast<std::ptrdiff_t>(lag_lo) &&
                i <= static_cast<std::ptrdiff_t>(max_lag))
                best = std::max(best, r[static_cast<std::size_t>(i)]);
        }
        return best;
    };

    // Only genuine autocorrelation peaks may anchor a comb; broadband
    // ripple near the main lobe otherwise wins at small periods.
    double r_max = 0.0;
    for (std::size_t t = lag_lo; t <= max_lag; ++t)
        r_max = std::max(r_max, r[t]);
    if (r_max <= 0.0)
        return 0.0;

    double best_comb = -1e300;
    std::size_t lag_pick = 0;
    for (std::size_t t = lag_lo; t <= max_lag; ++t) {
        if (r[t] < 0.35 * r_max || r[t] < r[t - 1] || r[t] < r[t + 1])
            continue;
        std::size_t teeth = std::min<std::size_t>(
            5, max_lag / std::max<std::size_t>(t, 1));
        if (teeth == 0)
            continue;
        double acc = 0.0;
        for (std::size_t j = 1; j <= teeth; ++j)
            acc += peak_near(static_cast<double>(j * t));
        double comb = acc / static_cast<double>(teeth);
        // Prefer the smallest period among near-equal combs (a comb at
        // 2T scores like T when r has peaks at every multiple of T).
        if (comb > best_comb * 1.02 ||
            (lag_pick != 0 && comb > 0.9 * best_comb && t < lag_pick &&
             comb >= best_comb)) {
            best_comb = comb;
            lag_pick = t;
        }
    }
    if (lag_pick == 0 || best_comb <= 0.0)
        return 0.0;

    // Snap to the actual local maximum near the chosen period.
    {
        auto c = static_cast<std::ptrdiff_t>(lag_pick);
        std::ptrdiff_t best_i = c;
        for (std::ptrdiff_t d = -2; d <= 2; ++d) {
            std::ptrdiff_t i = c + d;
            if (i >= static_cast<std::ptrdiff_t>(lag_lo) &&
                i <= static_cast<std::ptrdiff_t>(max_lag) &&
                r[static_cast<std::size_t>(i)] >
                    r[static_cast<std::size_t>(best_i)])
                best_i = i;
        }
        lag_pick = static_cast<std::size_t>(best_i);
    }

    // Parabolic refinement for sub-sample period accuracy.
    double prev = r[lag_pick - 1];
    double next = r[lag_pick + 1];
    double denom = prev - 2.0 * r[lag_pick] + next;
    double delta = denom < 0.0 ? 0.5 * (prev - next) / denom : 0.0;
    return static_cast<double>(lag_pick) + std::clamp(delta, -0.5, 0.5);
}

BitTiming
recoverTiming(const std::vector<double> &y, const TimingConfig &config)
{
    validateConfig(config);

    BitTiming out;
    if (y.size() < 16)
        return out;

    // Coarse period estimate sets the edge-kernel scale. The estimate
    // can lock onto a period multiple when the envelope ramps are as
    // long as a bit, so it is treated as a hypothesis to be checked
    // against the spacings the edge detector actually measures.
    double tsig0;
    if (config.edgeKernel != 0) {
        tsig0 = static_cast<double>(2 * config.edgeKernel);
    } else {
        tsig0 = estimateBitPeriod(y, config);
        if (tsig0 <= 0.0)
            tsig0 = config.periodHint > 0.0
                        ? config.periodHint
                        : 64.0; // fall back to a generic scale
    }

    auto clamp_kernel = [&](double t) {
        auto l = static_cast<std::size_t>(std::lround(t * 0.5));
        if (config.edgeKernel != 0)
            l = config.edgeKernel;
        return std::clamp<std::size_t>(l & ~std::size_t{1}, 4,
                                       y.size() / 4);
    };

    // Permissive first detection: the minimum spacing allows edges at
    // half the hypothesised period, so a 2x period lock is visible in
    // the measured spacings instead of being enforced.
    std::size_t l_d = clamp_kernel(tsig0);
    auto min_dist = static_cast<std::size_t>(
        std::max(4.0, 0.3 * tsig0));
    std::vector<std::size_t> starts =
        detectStarts(y, l_d, min_dist, config, &out.edgeSignal);
    if (starts.size() < 3) {
        out.starts = std::move(starts);
        out.signalingTime = tsig0;
        return out;
    }

    auto spacing_median = [](const std::vector<std::size_t> &st) {
        std::vector<double> sp;
        sp.reserve(st.size() - 1);
        for (std::size_t i = 1; i < st.size(); ++i)
            sp.push_back(static_cast<double>(st[i] - st[i - 1]));
        return median(sp);
    };

    double msp = spacing_median(starts);
    double tsig = tsig0;
    auto near = [](double a, double b) {
        return std::abs(a - b) <= 0.25 * b;
    };
    if (near(msp, tsig0)) {
        tsig = msp;
    } else if (near(msp, tsig0 / 2.0) || near(msp, 2.0 * tsig0)) {
        // The autocorrelation locked a period multiple/submultiple;
        // the detector's own spacings win. Re-run the detection with a
        // kernel matched to the corrected period.
        tsig = msp;
        l_d = clamp_kernel(tsig);
        min_dist = static_cast<std::size_t>(
            std::max(4.0, config.minSpacingRatio * tsig));
        starts = detectStarts(y, l_d, min_dist, config,
                              &out.edgeSignal);
        if (starts.size() < 3) {
            out.starts = std::move(starts);
            out.signalingTime = tsig;
            return out;
        }
        msp = spacing_median(starts);
        if (near(msp, tsig))
            tsig = msp;
    }
    out.signalingTime = tsig;

    std::vector<double> spacings;
    spacings.reserve(starts.size() - 1);
    for (std::size_t i = 1; i < starts.size(); ++i)
        spacings.push_back(static_cast<double>(starts[i] - starts[i - 1]));
    out.rawSpacings = spacings;
    if (tsig <= 0.0) {
        out.starts = std::move(starts);
        return out;
    }

    // Merge spuriously close starts (keep the earlier of each pair).
    std::vector<std::size_t> merged;
    merged.push_back(starts[0]);
    for (std::size_t i = 1; i < starts.size(); ++i) {
        double gap = static_cast<double>(starts[i] - merged.back());
        if (gap >= config.minSpacingRatio * tsig)
            merged.push_back(starts[i]);
    }

    // Fill gaps where edges disappeared (§IV-B2 "fill the gaps"):
    // a long spacing of ~n signaling times hides n-1 missed starts.
    out.starts.clear();
    for (std::size_t i = 0; i < merged.size(); ++i) {
        out.starts.push_back(merged[i]);
        if (i + 1 >= merged.size())
            continue;
        double gap = static_cast<double>(merged[i + 1] - merged[i]);
        if (gap >= config.gapFillRatio * tsig) {
            // lround can still land on <= 1 for gaps just past the
            // ratio; clamp so `missing` never wraps through zero.
            long periods = std::lround(gap / tsig);
            std::size_t missing =
                periods > 1 ? static_cast<std::size_t>(periods - 1) : 0;
            for (std::size_t k = 1; k <= missing; ++k) {
                double pos = static_cast<double>(merged[i]) +
                             gap * static_cast<double>(k) /
                                 static_cast<double>(missing + 1);
                out.starts.push_back(
                    static_cast<std::size_t>(std::lround(pos)));
            }
        }
    }
    std::sort(out.starts.begin(), out.starts.end());
    return out;
}

} // namespace emsc::channel
