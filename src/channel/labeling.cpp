#include "channel/labeling.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"

namespace emsc::channel {

double
selectThreshold(const std::vector<double> &bit_power,
                const LabelingConfig &config)
{
    if (bit_power.empty())
        raiseError(ErrorKind::InsufficientData,
                   "selectThreshold with no bit powers");
    if (bit_power.size() < 8) {
        // Too few samples for a histogram; fall back to the midpoint
        // of the extremes.
        auto [mn, mx] =
            std::minmax_element(bit_power.begin(), bit_power.end());
        return 0.5 * (*mn + *mx);
    }

    Histogram h =
        Histogram::fromSamples(bit_power, config.histogramBins);
    std::vector<std::size_t> peaks =
        h.findPeaks(config.smoothingRadius, config.peakSeparation);

    if (peaks.size() < 2) {
        // Unimodal histogram (all-same bits or extreme noise):
        // fall back to the mean of min/max.
        auto [mn, mx] =
            std::minmax_element(bit_power.begin(), bit_power.end());
        return 0.5 * (*mn + *mx);
    }

    double a = h.binCenter(peaks[0]);
    double b = h.binCenter(peaks[1]);
    return 0.5 * (a + b);
}

LabeledBits
labelBits(const std::vector<double> &y,
          const std::vector<std::size_t> &starts, double signaling_time,
          const LabelingConfig &config)
{
    LabeledBits out;
    if (starts.empty() || y.empty())
        return out;

    std::size_t nbits = starts.size();
    out.bitPower.reserve(nbits);

    for (std::size_t i = 0; i < nbits; ++i) {
        std::size_t lo = starts[i];
        std::size_t hi =
            i + 1 < nbits
                ? starts[i + 1]
                : std::min<std::size_t>(
                      y.size(), lo + static_cast<std::size_t>(std::lround(
                                         signaling_time)));
        hi = std::min(hi, y.size());
        if (hi <= lo) {
            out.bitPower.push_back(0.0);
            continue;
        }
        double acc = 0.0;
        for (std::size_t j = lo; j < hi; ++j)
            acc += y[j] * y[j];
        out.bitPower.push_back(acc / static_cast<double>(hi - lo));
    }

    // Batch-wise thresholding tracks slow amplitude drift.
    std::size_t batch = config.batchBits == 0 ? nbits : config.batchBits;
    out.bits.resize(nbits);
    for (std::size_t b0 = 0; b0 < nbits; b0 += batch) {
        std::size_t b1 = std::min(nbits, b0 + batch);
        std::vector<double> slice(out.bitPower.begin() +
                                      static_cast<std::ptrdiff_t>(b0),
                                  out.bitPower.begin() +
                                      static_cast<std::ptrdiff_t>(b1));
        double thr = selectThreshold(slice, config);
        out.thresholds.push_back(thr);
        for (std::size_t i = b0; i < b1; ++i)
            out.bits[i] = out.bitPower[i] > thr ? 1 : 0;
    }
    return out;
}

} // namespace emsc::channel
