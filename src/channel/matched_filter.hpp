/**
 * @file
 * Conventional matched-filter receiver — the paper's straw man.
 *
 * §IV-B1: "It is a common practice for conventional communication
 * systems to use a matched filter and sample the filtered signal at
 * each symbol (bit), but that approach assumes that the symbols have
 * practically no variation in their duration... we found that, when
 * applying the matched filter approach to our received signal, the BER
 * was high [because] the actual bit positions in the signal quickly
 * become misaligned with the clock created at the receiver."
 *
 * This implements exactly that conventional receiver: estimate the
 * symbol rate once, build the receiver's own symbol clock, integrate
 * the envelope over each fixed-length symbol window, and threshold.
 * Its failure against the drifting usleep clock — contrasted with the
 * asynchronous pipeline of receiver.hpp — is reproduced by
 * bench/ablation_receiver.
 */

#ifndef EMSC_CHANNEL_MATCHED_FILTER_HPP
#define EMSC_CHANNEL_MATCHED_FILTER_HPP

#include "channel/acquisition.hpp"
#include "channel/coding.hpp"

namespace emsc::channel {

/** Matched-filter (synchronous) decoder configuration. */
struct MatchedFilterConfig
{
    /**
     * Symbol period in envelope samples; 0 = estimate once from the
     * envelope autocorrelation (the receiver's one-shot clock
     * recovery).
     */
    double symbolPeriod = 0.0;
    /** Decision threshold ratio between the two power peaks. */
    double thresholdRatio = 0.5;
};

/** Matched-filter decoder output. */
struct MatchedFilterResult
{
    /** Decided bits, one per receiver-clock symbol slot. */
    Bits bits;
    /** The symbol period the receiver locked (envelope samples). */
    double symbolPeriod = 0.0;
    /** First symbol boundary the receiver chose (sample index). */
    double firstSymbol = 0.0;
};

/**
 * Decode an acquired envelope with a fixed receiver-side symbol clock:
 * integrate |Y|^2 over [k*T, (k+1)*T) and threshold. No edge tracking,
 * no gap filling — the conventional approach.
 */
MatchedFilterResult matchedFilterDecode(const AcquiredSignal &signal,
                                        const MatchedFilterConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_MATCHED_FILTER_HPP
