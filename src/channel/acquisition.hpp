/**
 * @file
 * Eq. (1) signal acquisition: Y[n] = sum over bins S of |F_n[k]|.
 *
 * The receiver first locates the VRM's spectral spikes (it knows the
 * rough band for the device class, or scans for the strongest
 * low-frequency comb), then runs a sliding M-point DFT tracking the
 * fundamental and its first harmonic, summing their magnitudes into a
 * single real envelope. The envelope is decimated for the downstream
 * timing/labeling stages.
 */

#ifndef EMSC_CHANNEL_ACQUISITION_HPP
#define EMSC_CHANNEL_ACQUISITION_HPP

#include <array>
#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "dsp/sliding_dft.hpp"
#include "sdr/iq.hpp"

namespace emsc::channel {

/** Acquisition configuration. */
struct AcquisitionConfig
{
    /** Sliding DFT window M (the paper's 1024-point FFT). */
    std::size_t window = 1024;
    /**
     * FFT size for the carrier *search* only: longer windows pull weak
     * lines out of the per-bin noise floor. The VRM's cycle-to-cycle
     * period jitter bounds the line's coherence to a few milliseconds,
     * so gains saturate beyond ~4096 samples at 2.4 Msps.
     */
    std::size_t searchWindow = 4096;
    /** Decimation applied to the Y[n] output. */
    std::size_t decimation = 16;
    /** Number of harmonics tracked (1 = fundamental only). */
    std::size_t harmonics = 2;
    /** Search band for the VRM fundamental (absolute Hz). */
    double searchLowHz = 200e3;
    double searchHighHz = 1.2e6;
    /**
     * Suppress the no-line-found warning. Speculative re-searches (the
     * segmented receiver probing each clean span for an LO hop) expect
     * to come up empty on weak spans and fall back to the global
     * carrier; warning per span would flood fault-injection sweeps.
     */
    bool quietSearch = false;
    /**
     * FDM-aware carrier search. The default (false) demotes a
     * modulated line when a modulated line also sits at half its
     * frequency — correct with a single transmitter, where the true
     * fundamental's second harmonic must not outrank it. With two FDM
     * transmitters keyed on harmonically related lines f and 2f that
     * heuristic silently discards the 2f transmitter; setting this
     * keeps both lines rankable so estimateCarriers() returns each.
     */
    bool fdmAware = false;
};

/** Acquired envelope plus its geometry. */
struct AcquiredSignal
{
    /** Decimated Y[n]. */
    std::vector<double> y;
    /** Effective sample rate of y (capture rate / decimation). */
    double sampleRate = 0.0;
    /** Estimated VRM fundamental (absolute Hz). */
    double carrierHz = 0.0;
    /** Tracked bin indices within the M-point window. */
    std::vector<std::size_t> bins;
};

/**
 * Welch-averaged magnitude spectrum of a capture: mean |X[k]| over up
 * to `frames` Hann-windowed FFTs of the given size spread across the
 * capture. Bin k maps to frequency via IqCapture::binForFrequency.
 */
std::vector<double> welchSpectrum(const sdr::IqCapture &capture,
                                  std::size_t window, std::size_t frames);

/**
 * Estimate the VRM fundamental frequency from the capture's average
 * spectrum (Welch-style magnitude averaging + strongest peak in band).
 */
double estimateCarrier(const sdr::IqCapture &capture,
                       const AcquisitionConfig &config);

/** Carrier estimate plus the lock quality behind it. */
struct CarrierEstimate
{
    /** Centroid-refined fundamental (Hz); 0 when no line was found. */
    double hz = 0.0;
    /**
     * Modulation swing of the winning line over a typical noise
     * bin's swing, in dB — the same value published to the
     * channel.carrier.snr_db gauge. NaN when no line was found or
     * the noise floor was degenerate.
     */
    double snrDb = std::numeric_limits<double>::quiet_NaN();
};

/**
 * estimateCarrier() plus the carrier-lock SNR, for callers that need
 * the lock quality itself (streaming warm-up calibration, the serve
 * Status frame, flight-recorder post-mortems) rather than only the
 * published gauge.
 */
CarrierEstimate estimateCarrierDetailed(const sdr::IqCapture &capture,
                                        const AcquisitionConfig &config);

/** One modulated spectral line found by estimateCarriers(). */
struct CarrierLine
{
    /** Centroid-refined line frequency (absolute Hz). */
    double frequencyHz = 0.0;
    /** Detector score (same scale estimateCarrier ranks by). */
    double score = 0.0;
    /** p90-p50 per-frame magnitude swing of the line's bin. */
    double swing = 0.0;
};

/**
 * Multi-transmitter variant of estimateCarrier(): every modulated
 * line in the search band, strongest first, up to `max_lines`. Lines
 * closer than two search bins are merged (strongest wins). With
 * config.fdmAware set, a line at the second harmonic of another
 * modulated line keeps its full score, so FDM transmitters on f and
 * 2f both surface; unset, ranking matches estimateCarrier exactly.
 */
std::vector<CarrierLine> estimateCarriers(const sdr::IqCapture &capture,
                                          const AcquisitionConfig &config,
                                          std::size_t max_lines);

/**
 * Run Eq. (1) over the capture: track the carrier and its harmonics
 * with a sliding DFT, output the decimated magnitude-sum envelope.
 *
 * @param carrier_hz  pass 0 to auto-estimate via estimateCarrier()
 */
AcquiredSignal acquire(const sdr::IqCapture &capture,
                       const AcquisitionConfig &config,
                       double carrier_hz = 0.0);

/**
 * Streaming variant of acquire() for captures too long to materialise
 * at once (e.g. a typing session): the sliding-DFT state persists
 * across feed() calls, so chunked captures produce the same envelope
 * as a single long one.
 */
class StreamingAcquirer
{
  public:
    /**
     * @param carrier_hz   VRM fundamental to track (must be known)
     * @param center_freq  the SDR's believed center frequency
     * @param sample_rate  capture sample rate
     */
    StreamingAcquirer(double carrier_hz, double center_freq,
                      double sample_rate, const AcquisitionConfig &config);

    /** Feed the next chunk of contiguous samples. */
    void feed(const std::vector<sdr::IqSample> &samples);

    /** Envelope accumulated so far. */
    const std::vector<double> &envelope() const { return y; }

    /** Move the accumulated signal out as an AcquiredSignal. */
    AcquiredSignal take();

  private:
    AcquisitionConfig cfg;
    double carrier;
    double decimatedRate;
    std::vector<std::size_t> bins;
    std::vector<std::array<std::size_t, 3>> triplets;
    std::unique_ptr<dsp::SlidingDft> sdft;
    std::size_t counter = 0;
    std::vector<double> y;
};

} // namespace emsc::channel

#endif // EMSC_CHANNEL_ACQUISITION_HPP
