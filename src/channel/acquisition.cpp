#include "channel/acquisition.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/sliding_dft.hpp"
#include "dsp/window.hpp"
#include "support/error.hpp"
#include "support/flight.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace emsc::channel {

std::vector<double>
welchSpectrum(const sdr::IqCapture &capture, std::size_t window,
              std::size_t frames)
{
    if (capture.samples.size() < window)
        raiseError(ErrorKind::InsufficientData,
                   "capture too short (%zu samples) for a %zu-point "
                   "spectrum", capture.samples.size(), window);
    auto win_sp = dsp::cachedWindow(dsp::WindowKind::Hann, window);
    const std::vector<double> &win = *win_sp;
    auto plan = dsp::FftPlan::forSize(window);
    std::size_t count =
        std::min<std::size_t>(frames, capture.samples.size() / window);
    count = std::max<std::size_t>(count, 1);
    std::size_t stride = capture.samples.size() / count;
    std::size_t used = 0;
    while (used < count &&
           used * stride + window <= capture.samples.size())
        ++used;

    // FFT the frames in parallel into per-frame rows, then accumulate
    // serially in frame order so the sum is bit-identical to the old
    // single-threaded loop.
    std::vector<std::vector<double>> rows(used);
    parallelFor(used, [&](std::size_t f) {
        thread_local std::vector<dsp::Complex> buf;
        buf.resize(window);
        std::size_t start = f * stride;
        for (std::size_t i = 0; i < window; ++i)
            buf[i] = capture.samples[start + i] * win[i];
        plan->transform(buf, false);
        std::vector<double> row(window);
        for (std::size_t k = 0; k < window; ++k)
            row[k] = std::abs(buf[k]);
        rows[f] = std::move(row);
    });
    std::vector<double> sum(window, 0.0);
    for (const std::vector<double> &row : rows)
        for (std::size_t k = 0; k < window; ++k)
            sum[k] += row[k];
    for (double &v : sum)
        v /= static_cast<double>(used);
    return sum;
}

namespace {

/** Per-bin frame-to-frame modulation statistics of a capture. */
struct BinSwingStats
{
    /** Search FFT size actually used (may shrink on short captures). */
    std::size_t m = 0;
    /** p90-p50 per-frame magnitude swing of every bin. */
    std::vector<double> swing;
    /** Per-frame magnitude median of every bin. */
    std::vector<double> med;
    /** Typical swing of a noise bin (the swing median). */
    double noiseSwing = 0.0;
};

/**
 * The shared heavy half of the carrier search. The VRM line is the
 * one spectral feature whose magnitude is *modulated* by processor
 * activity — that is the side channel itself. Steady interferer tones
 * (and their window-leakage skirts) have large means but almost no
 * frame-to-frame swing, and noise bins have swing proportional to
 * their (low) level. So the detectors rank bins by the p90-p50 swing
 * of per-frame magnitudes rather than by mean magnitude; p90 (not
 * max) keeps sparse broadband impulses from lending swing to steady
 * tones.
 */
BinSwingStats
computeBinSwing(const sdr::IqCapture &capture,
                const AcquisitionConfig &config)
{
    std::size_t m = config.searchWindow;
    while (m > 512 && capture.samples.size() < 8 * m)
        m /= 2;
    if (capture.samples.size() < m)
        raiseError(ErrorKind::InsufficientData,
                   "capture too short (%zu samples) for carrier "
                   "estimation", capture.samples.size());

    std::size_t frames =
        std::min<std::size_t>(256, capture.samples.size() / m);
    auto win_sp = dsp::cachedWindow(dsp::WindowKind::Hann, m);
    const std::vector<double> &win = *win_sp;
    auto plan = dsp::FftPlan::forSize(m);
    // mags[k] holds the per-frame magnitudes of bin k.
    std::vector<std::vector<double>> mags(
        m, std::vector<double>(frames, 0.0));
    std::size_t stride = capture.samples.size() / frames;
    std::size_t used = 0;
    while (used < frames &&
           used * stride + m <= capture.samples.size())
        ++used;
    if (used < 8)
        raiseError(ErrorKind::InsufficientData,
                   "capture too short for carrier estimation");

    // Each frame writes column f of every bin row — disjoint slots, so
    // the fan-out leaves mags bit-identical to the serial fill.
    parallelFor(used, [&](std::size_t f) {
        thread_local std::vector<dsp::Complex> buf;
        buf.resize(m);
        std::size_t start = f * stride;
        for (std::size_t i = 0; i < m; ++i)
            buf[i] = capture.samples[start + i] * win[i];
        plan->transform(buf, false);
        for (std::size_t k = 0; k < m; ++k)
            mags[k][f] = std::abs(buf[k]);
    });

    BinSwingStats st;
    st.m = m;
    st.swing.assign(m, 0.0);
    st.med.assign(m, 0.0);
    std::vector<double> &swing = st.swing;
    std::vector<double> &med = st.med;
    parallelFor(m, [&](std::size_t k) {
        std::vector<double> v(mags[k].begin(),
                              mags[k].begin() +
                                  static_cast<std::ptrdiff_t>(used));
        std::sort(v.begin(), v.end());
        auto idx = [&](double q) {
            return v[std::min(used - 1,
                              static_cast<std::size_t>(
                                  q * static_cast<double>(used - 1) +
                                  0.5))];
        };
        med[k] = idx(0.5);
        swing[k] = idx(0.90) - med[k];
    });

    // Reference level: the typical swing of a noise bin.
    std::vector<double> sorted_swing(swing);
    std::sort(sorted_swing.begin(), sorted_swing.end());
    st.noiseSwing = sorted_swing[m / 2];
    return st;
}

/**
 * Score one candidate bin exactly as estimateCarrier always has;
 * returns < 0 for bins that are not candidates (out of band, below
 * the noise gate, or not a local swing maximum).
 */
double
scoreCandidate(const sdr::IqCapture &capture,
               const AcquisitionConfig &config, const BinSwingStats &st,
               std::size_t k, double freq)
{
    const std::vector<double> &swing = st.swing;
    std::size_t m = st.m;
    double fs = capture.sampleRate;
    if (freq < config.searchLowHz || freq > config.searchHighHz)
        return -1.0;
    double sw = swing[k];
    if (sw < 3.2 * st.noiseSwing)
        return -1.0;
    // Local maximum of the swing (a tone's steady skirt cannot
    // mask a modulated line here, since skirts barely swing).
    std::size_t prev = (k + m - 1) % m;
    std::size_t nxt = (k + 1) % m;
    if (swing[prev] > sw || swing[nxt] > sw)
        return -1.0;

    double score = sw;
    // Relative modulation depth: a strong but slightly wobbling
    // tone (oscillator drift scalloping across the bin) can show
    // sizable absolute swing, yet only a small fraction of its
    // median; a real on-off-keyed line swings by at least its
    // idle-floor level. Anything below ~20% relative modulation is
    // certainly not the side channel.
    double rel = st.med[k] > 0.0 ? sw / st.med[k] : 1.0;
    score *= std::clamp((rel - 0.2) / 0.55, 0.02, 1.0);
    // Harmonic structure: a genuine switching fundamental has a
    // modulated partner at 2f (when in band); a bin that is itself
    // the second harmonic of a modulated lower line is demoted so
    // we lock the fundamental — unless the caller declared an FDM
    // scene, where a line at 2f is a second legitimate transmitter.
    double f2 = 2.0 * freq;
    if (std::abs(f2 - capture.centerFrequency) < fs / 2.0) {
        double sw2 = swing[capture.binForFrequency(f2, m)];
        if (sw2 > std::max(0.25 * sw, 2.0 * st.noiseSwing))
            score *= 1.6;
    }
    if (!config.fdmAware) {
        double fhalf = freq / 2.0;
        if (fhalf >= config.searchLowHz &&
            std::abs(fhalf - capture.centerFrequency) < fs / 2.0) {
            double swh = swing[capture.binForFrequency(fhalf, m)];
            if (swh > std::max(0.35 * sw, 2.0 * st.noiseSwing))
                score *= 0.25;
        }
    }
    return score;
}

/**
 * Swing-weighted centroid of the line's neighbourhood: the
 * jitter-broadened line spans a few bins, so the refined estimate
 * lands on the line's true centre.
 */
double
refineCentroid(const sdr::IqCapture &capture, const BinSwingStats &st,
               std::size_t best_bin, double best_freq)
{
    std::size_t m = st.m;
    double fs = capture.sampleRate;
    auto bin_freq = [&](std::size_t k) {
        double off = static_cast<double>(k) * fs / static_cast<double>(m);
        if (off >= fs / 2.0)
            off -= fs;
        return capture.centerFrequency + off;
    };
    double wsum = 0.0, fsum = 0.0;
    for (std::ptrdiff_t d = -3; d <= 3; ++d) {
        std::size_t kk = (best_bin + m + static_cast<std::size_t>(
                              static_cast<std::ptrdiff_t>(m) + d)) % m;
        double w = std::max(st.swing[kk] - st.noiseSwing, 0.0);
        wsum += w;
        fsum += w * bin_freq(kk);
    }
    return wsum > 0.0 ? fsum / wsum : best_freq;
}

} // namespace

double
estimateCarrier(const sdr::IqCapture &capture,
                const AcquisitionConfig &config)
{
    return estimateCarrierDetailed(capture, config).hz;
}

CarrierEstimate
estimateCarrierDetailed(const sdr::IqCapture &capture,
                        const AcquisitionConfig &config)
{
    telemetry::TraceSpan span("channel.estimate_carrier");
    BinSwingStats st = computeBinSwing(capture, config);
    std::size_t m = st.m;
    double fs = capture.sampleRate;
    auto bin_freq = [&](std::size_t k) {
        double off = static_cast<double>(k) * fs / static_cast<double>(m);
        if (off >= fs / 2.0)
            off -= fs;
        return capture.centerFrequency + off;
    };

    double best_score = -1.0;
    double best_freq = 0.0;
    std::size_t best_bin = 0;
    std::uint64_t candidates = 0;
    for (std::size_t k = 0; k < m; ++k) {
        double freq = bin_freq(k);
        double score = scoreCandidate(capture, config, st, k, freq);
        if (score < 0.0)
            continue;
        ++candidates;

        if (std::getenv("EMSC_DEBUG_CARRIER"))
            std::fprintf(stderr,
                         "carrier cand f=%.0f swing=%.2f score=%.2f\n",
                         freq, st.swing[k], score);

        if (score > best_score) {
            best_score = score;
            best_freq = freq;
            best_bin = k;
        }
    }
    static telemetry::Counter candCounter(
        telemetry::MetricsRegistry::global(),
        "channel.acquisition.candidates");
    static telemetry::Counter searchCounter(
        telemetry::MetricsRegistry::global(),
        "channel.acquisition.searches");
    static telemetry::Gauge snrGauge(telemetry::MetricsRegistry::global(),
                                     "channel.carrier.snr_db");
    candCounter.add(candidates);
    searchCounter.add();
    if (best_score < 0.0) {
        if (!config.quietSearch)
            warn("no modulated spectral line found in the %g-%g Hz "
                 "band",
                 config.searchLowHz, config.searchHighHz);
        return CarrierEstimate{};
    }
    CarrierEstimate est;
    // Carrier-lock SNR: modulation swing of the winning line over the
    // typical swing of a noise bin, in dB (paper terms: how far the
    // PMU spur stands out of the acquisition band's noise floor).
    if (st.noiseSwing > 0.0 && st.swing[best_bin] > 0.0) {
        est.snrDb = 20.0 * std::log10(st.swing[best_bin] / st.noiseSwing);
        snrGauge.set(est.snrDb);
    }

    est.hz = refineCentroid(capture, st, best_bin, best_freq);
    flight::FlightRecorder &rec = flight::FlightRecorder::global();
    if (rec.armed()) {
        json::Value data = json::Value::object();
        data.set("carrier_hz", est.hz);
        data.set("snr_db", std::isnan(est.snrDb)
                               ? json::Value(nullptr)
                               : json::Value(est.snrDb));
        rec.record("carrier_lock", std::move(data));
    }
    return est;
}

std::vector<CarrierLine>
estimateCarriers(const sdr::IqCapture &capture,
                 const AcquisitionConfig &config, std::size_t max_lines)
{
    telemetry::TraceSpan span("channel.estimate_carrier");
    std::vector<CarrierLine> lines;
    if (max_lines == 0)
        return lines;
    BinSwingStats st = computeBinSwing(capture, config);
    std::size_t m = st.m;
    double fs = capture.sampleRate;
    auto bin_freq = [&](std::size_t k) {
        double off = static_cast<double>(k) * fs / static_cast<double>(m);
        if (off >= fs / 2.0)
            off -= fs;
        return capture.centerFrequency + off;
    };

    struct Scored
    {
        std::size_t bin;
        double freq;
        double score;
    };
    std::vector<Scored> cands;
    std::uint64_t candidates = 0;
    for (std::size_t k = 0; k < m; ++k) {
        double freq = bin_freq(k);
        double score = scoreCandidate(capture, config, st, k, freq);
        if (score < 0.0)
            continue;
        ++candidates;
        cands.push_back(Scored{k, freq, score});
    }
    static telemetry::Counter candCounter(
        telemetry::MetricsRegistry::global(),
        "channel.acquisition.candidates");
    static telemetry::Counter searchCounter(
        telemetry::MetricsRegistry::global(),
        "channel.acquisition.searches");
    candCounter.add(candidates);
    searchCounter.add();

    // Strongest first; stable on the bin index so equal scores rank
    // deterministically.
    std::sort(cands.begin(), cands.end(),
              [](const Scored &a, const Scored &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.bin < b.bin;
              });

    // Greedy pick with a two-bin exclusion zone: a jitter-broadened
    // line can raise shoulder maxima beside its main bin, and those
    // must not count as separate transmitters.
    double bin_hz = fs / static_cast<double>(m);
    for (const Scored &c : cands) {
        if (lines.size() >= max_lines)
            break;
        double refined = refineCentroid(capture, st, c.bin, c.freq);
        bool dup = false;
        for (const CarrierLine &l : lines)
            if (std::abs(l.frequencyHz - refined) < 2.0 * bin_hz)
                dup = true;
        if (dup)
            continue;
        lines.push_back(CarrierLine{refined, c.score, st.swing[c.bin]});
    }
    if (lines.empty() && !config.quietSearch)
        warn("no modulated spectral line found in the %g-%g Hz band",
             config.searchLowHz, config.searchHighHz);
    return lines;
}

StreamingAcquirer::StreamingAcquirer(double carrier_hz,
                                     double center_freq,
                                     double sample_rate,
                                     const AcquisitionConfig &config)
    : cfg(config), carrier(carrier_hz)
{
    if (cfg.decimation == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "acquisition decimation must be positive");
    if (carrier_hz <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "StreamingAcquirer requires a known carrier");
    decimatedRate = sample_rate / static_cast<double>(cfg.decimation);

    // Tracked components: the carrier and harmonics inside Nyquist of
    // the complex capture. Each component is evaluated with a
    // Hann-windowed sliding DFT, synthesised from the rectangular
    // sliding bins via the 3-bin convolution identity
    //     F_hann[k] = 0.5 F[k] - 0.25 (F[k-1] + F[k+1]),
    // which pushes window sidelobes far down and keeps strong
    // interferer tones elsewhere in the band from leaking into (and
    // beating inside) the tracked bins.
    std::size_t m = cfg.window;
    std::vector<std::size_t> centers;
    for (std::size_t h = 1; h <= cfg.harmonics; ++h) {
        double freq = carrier * static_cast<double>(h);
        double off = freq - center_freq;
        if (std::abs(off) >= sample_rate / 2.0)
            break;
        // Same mapping as IqCapture::binForFrequency.
        double bin = off * static_cast<double>(m) / sample_rate;
        auto k = static_cast<long long>(std::llround(bin));
        auto mm = static_cast<long long>(m);
        k %= mm;
        if (k < 0)
            k += mm;
        centers.push_back(static_cast<std::size_t>(k));
    }
    if (centers.empty())
        raiseError(ErrorKind::InsufficientData,
                   "no trackable harmonic of %.0f Hz within the "
                   "capture band", carrier);

    auto index_of = [&](std::size_t bin) {
        for (std::size_t i = 0; i < bins.size(); ++i)
            if (bins[i] == bin)
                return i;
        bins.push_back(bin);
        return bins.size() - 1;
    };
    for (std::size_t c : centers) {
        std::array<std::size_t, 3> t{};
        t[0] = index_of((c + m - 1) % m);
        t[1] = index_of(c);
        t[2] = index_of((c + 1) % m);
        triplets.push_back(t);
    }
    sdft = std::make_unique<dsp::SlidingDft>(m, bins);
}

void
StreamingAcquirer::feed(const std::vector<sdr::IqSample> &samples)
{
    std::size_t dec = cfg.decimation;
    y.reserve(y.size() + samples.size() / dec + 1);

    // Feed the sliding DFT in runs that each end exactly on the next
    // decimated output instant (the sample whose pre-increment counter
    // is ≡ 0 mod decimation), so the emission phase is sample-exact
    // with the historical per-sample loop. Eq. (1) outputs are skipped
    // (null y_out): the envelope is synthesised from the raw bins via
    // the Hann 3-bin identity only at the decimated rate.
    std::size_t i = 0, n = samples.size();
    while (i < n) {
        std::size_t phase = counter % dec;
        std::size_t run = phase == 0 ? 1 : dec - phase + 1;
        bool emits = true;
        if (run > n - i) {
            run = n - i;
            emits = (counter + run - 1) % dec == 0;
        }
        sdft->pushChunk(samples.data() + i, run, nullptr);
        counter += run;
        i += run;
        if (emits) {
            double v = 0.0;
            for (const auto &t : triplets) {
                dsp::Complex hann =
                    0.5 * sdft->binValue(t[1]) -
                    0.25 * (sdft->binValue(t[0]) + sdft->binValue(t[2]));
                v += std::abs(hann);
            }
            y.push_back(v);
        }
    }
}

AcquiredSignal
StreamingAcquirer::take()
{
    AcquiredSignal out;
    out.carrierHz = carrier;
    out.sampleRate = decimatedRate;
    out.bins = bins;
    out.y = std::move(y);
    y.clear();
    return out;
}

AcquiredSignal
acquire(const sdr::IqCapture &capture, const AcquisitionConfig &config,
        double carrier_hz)
{
    double carrier = carrier_hz > 0.0 ? carrier_hz
                                      : estimateCarrier(capture, config);
    if (carrier <= 0.0) {
        AcquiredSignal out;
        out.sampleRate = capture.sampleRate /
                         static_cast<double>(std::max<std::size_t>(
                             config.decimation, 1));
        return out; // no carrier: empty acquisition, caller bails out
    }

    StreamingAcquirer acq(carrier, capture.centerFrequency,
                          capture.sampleRate, config);
    acq.feed(capture.samples);
    return acq.take();
}

} // namespace emsc::channel
