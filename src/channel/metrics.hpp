/**
 * @file
 * Channel quality metrics: BER, insertion and deletion probabilities.
 *
 * The channel suffers substitutions (mislabeled bits) but also
 * insertions and deletions from timing-recovery failures (§IV-B4,
 * Fig. 8). Plain positional comparison misattributes everything after
 * the first insertion/deletion, so the metrics align the transmitted
 * and received sequences with minimum edit distance and count each
 * operation type, exactly the bookkeeping Table II/III report.
 */

#ifndef EMSC_CHANNEL_METRICS_HPP
#define EMSC_CHANNEL_METRICS_HPP

#include <cstddef>

#include "channel/coding.hpp"

namespace emsc::channel {

/** Edit-distance alignment summary between sent and received bits. */
struct AlignmentCounts
{
    std::size_t substitutions = 0;
    std::size_t insertions = 0; //!< bits present only in the received
    std::size_t deletions = 0;  //!< sent bits missing from the received
    std::size_t matched = 0;
    std::size_t sentLength = 0;
    std::size_t receivedLength = 0;

    /** Substitution rate per transmitted bit. */
    double
    errorRate() const
    {
        return sentLength
                   ? static_cast<double>(substitutions) /
                         static_cast<double>(sentLength)
                   : 0.0;
    }

    /** Insertion probability per transmitted bit. */
    double
    insertionRate() const
    {
        return sentLength
                   ? static_cast<double>(insertions) /
                         static_cast<double>(sentLength)
                   : 0.0;
    }

    /** Deletion probability per transmitted bit. */
    double
    deletionRate() const
    {
        return sentLength
                   ? static_cast<double>(deletions) /
                         static_cast<double>(sentLength)
                   : 0.0;
    }
};

/**
 * Minimum-edit-distance alignment (unit costs) of received against
 * sent, counting substitutions, insertions and deletions.
 */
AlignmentCounts alignBits(const Bits &sent, const Bits &received);

/**
 * Semi-global variant: trailing received bits beyond the best match of
 * the full sent sequence are ignored (neither counted as insertions
 * nor errors). Used when the received stream may run past the end of
 * the transmission into post-capture noise bits.
 */
AlignmentCounts alignBitsSemiGlobal(const Bits &sent,
                                    const Bits &received);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_METRICS_HPP
