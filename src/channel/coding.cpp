#include "channel/coding.hpp"

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace emsc::channel {

namespace {

/**
 * Hamming(15,11) geometry: codeword positions 1..15, parity bits at
 * the powers of two (1, 2, 4, 8), data bits filling the rest in
 * ascending position order.
 */
constexpr std::size_t kBlockData = 11;
constexpr std::size_t kBlockCoded = 15;

bool
isPowerOfTwoPos(std::size_t pos)
{
    return (pos & (pos - 1)) == 0;
}

/** Encode one 11-bit block into 15 coded bits. */
void
encodeBlock(const std::uint8_t *data, std::uint8_t *out)
{
    // Place data bits.
    std::size_t di = 0;
    for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
        if (isPowerOfTwoPos(pos))
            continue;
        out[pos - 1] = data[di++];
    }
    // Compute even parity for each parity position.
    for (std::size_t p = 1; p <= kBlockCoded; p <<= 1) {
        std::uint8_t parity = 0;
        for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
            if (pos == p || !(pos & p))
                continue;
            parity ^= out[pos - 1];
        }
        out[p - 1] = parity;
    }
}

/** Syndrome of a 15-bit block (0 when all parity checks pass). */
std::size_t
blockSyndrome(const std::uint8_t *block)
{
    std::size_t syndrome = 0;
    for (std::size_t p = 1; p <= kBlockCoded; p <<= 1) {
        std::uint8_t parity = 0;
        for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
            if (!(pos & p))
                continue;
            parity ^= block[pos - 1];
        }
        if (parity)
            syndrome |= p;
    }
    return syndrome;
}

/** Copy the 11 data positions of a corrected block into `data`. */
void
extractData(const std::uint8_t *block, std::uint8_t *data)
{
    std::size_t di = 0;
    for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
        if (isPowerOfTwoPos(pos))
            continue;
        data[di++] = block[pos - 1];
    }
}

/** Decode one 15-bit block; returns corrections applied (0 or 1). */
std::size_t
decodeBlock(const std::uint8_t *coded, std::uint8_t *data)
{
    std::uint8_t block[kBlockCoded];
    std::copy(coded, coded + kBlockCoded, block);

    std::size_t syndrome = blockSyndrome(block);
    std::size_t corrected = 0;
    if (syndrome != 0 && syndrome <= kBlockCoded) {
        block[syndrome - 1] ^= 1;
        corrected = 1;
    }

    extractData(block, data);
    return corrected;
}

/**
 * Erasure fills per block are enumerated exhaustively; past this many
 * erased positions the block is unrecoverable anyway (distance 3), so
 * we stop enumerating and fall back to zero-fill + error correction.
 */
constexpr std::size_t kMaxErasureEnum = 4;

/**
 * Decode one block with known-erased positions. Up to two erasures
 * resolve exactly: among all fills of the erased bits, only the true
 * codeword can have syndrome zero (distance-3 code, no other errors).
 */
void
decodeBlockErasures(const std::uint8_t *coded, const std::uint8_t *erased,
                    std::uint8_t *data, HammingDecodeResult &tally)
{
    std::size_t epos[kBlockCoded];
    std::size_t ne = 0;
    for (std::size_t i = 0; i < kBlockCoded; ++i)
        if (erased[i])
            epos[ne++] = i;

    if (ne == 0) {
        tally.corrected += decodeBlock(coded, data);
        return;
    }
    tally.erasures += ne;

    std::uint8_t block[kBlockCoded];
    std::copy(coded, coded + kBlockCoded, block);

    if (ne <= kMaxErasureEnum) {
        for (std::size_t fill = 0; fill < (1u << ne); ++fill) {
            for (std::size_t i = 0; i < ne; ++i)
                block[epos[i]] = (fill >> i) & 1;
            if (blockSyndrome(block) == 0) {
                extractData(block, data);
                return;
            }
        }
    }
    // No consistent fill (erasures plus real errors, or too many
    // erasures): zero-fill and let single-error correction try.
    for (std::size_t i = 0; i < ne; ++i)
        block[epos[i]] = 0;
    tally.corrected += decodeBlock(block, data);
}

/**
 * Source index of each on-air bit for one interleaver chunk of `n`
 * bits (n <= depth*15): the full depth-by-15 matrix read column-wise,
 * filtered to indices present — a bijection for any n.
 */
std::vector<std::size_t>
chunkOrder(std::size_t n, std::size_t depth)
{
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t col = 0; col < kBlockCoded; ++col)
        for (std::size_t row = 0; row < depth; ++row) {
            std::size_t idx = row * kBlockCoded + col;
            if (idx < n)
                order.push_back(idx);
        }
    return order;
}

} // namespace

Bits
bytesToBits(const std::string &bytes)
{
    Bits bits;
    bits.reserve(bytes.size() * 8);
    for (unsigned char c : bytes)
        for (int b = 7; b >= 0; --b)
            bits.push_back((c >> b) & 1);
    return bits;
}

std::string
bitsToBytes(const Bits &bits)
{
    std::string out;
    out.reserve(bits.size() / 8);
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        unsigned char c = 0;
        for (std::size_t b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) | (bits[i + b] & 1));
        out.push_back(static_cast<char>(c));
    }
    return out;
}

Bits
hammingEncode(const Bits &data)
{
    Bits padded(data);
    while (padded.size() % kBlockData != 0)
        padded.push_back(0);

    Bits coded(padded.size() / kBlockData * kBlockCoded, 0);
    for (std::size_t i = 0; i < padded.size() / kBlockData; ++i)
        encodeBlock(&padded[i * kBlockData], &coded[i * kBlockCoded]);
    return coded;
}

HammingDecodeResult
hammingDecode(const Bits &coded)
{
    static telemetry::Counter decodes(
        telemetry::MetricsRegistry::global(),
        "channel.hamming.decodes");
    static telemetry::Counter blocksDecoded(
        telemetry::MetricsRegistry::global(),
        "channel.hamming.blocks");
    HammingDecodeResult res;
    std::size_t blocks = coded.size() / kBlockCoded;
    decodes.add();
    blocksDecoded.add(blocks);
    res.bits.resize(blocks * kBlockData);
    for (std::size_t i = 0; i < blocks; ++i)
        res.corrected += decodeBlock(&coded[i * kBlockCoded],
                                     &res.bits[i * kBlockData]);
    return res;
}

HammingDecodeResult
hammingDecodeErasures(const Bits &coded, const Bits &erased)
{
    if (erased.empty())
        return hammingDecode(coded);
    if (erased.size() != coded.size())
        raiseError(ErrorKind::MalformedInput,
                   "erasure mask of %zu bits does not match %zu coded "
                   "bits", erased.size(), coded.size());

    HammingDecodeResult res;
    std::size_t blocks = coded.size() / kBlockCoded;
    res.bits.resize(blocks * kBlockData);
    for (std::size_t i = 0; i < blocks; ++i)
        decodeBlockErasures(&coded[i * kBlockCoded],
                            &erased[i * kBlockCoded],
                            &res.bits[i * kBlockData], res);
    return res;
}

std::uint16_t
crc16(const Bits &bits)
{
    std::uint16_t crc = 0xffff;
    for (std::uint8_t b : bits) {
        crc ^= static_cast<std::uint16_t>((b & 1) << 15);
        crc = (crc & 0x8000)
                  ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                  : static_cast<std::uint16_t>(crc << 1);
    }
    return crc;
}

Bits
interleave(const Bits &bits, std::size_t depth)
{
    if (depth <= 1)
        return bits;
    Bits out;
    out.reserve(bits.size());
    std::size_t chunk = depth * kBlockCoded;
    for (std::size_t base = 0; base < bits.size(); base += chunk) {
        std::size_t n = std::min(chunk, bits.size() - base);
        for (std::size_t idx : chunkOrder(n, depth))
            out.push_back(bits[base + idx]);
    }
    return out;
}

Bits
deinterleave(const Bits &bits, std::size_t depth)
{
    if (depth <= 1)
        return bits;
    Bits out(bits.size());
    std::size_t chunk = depth * kBlockCoded;
    for (std::size_t base = 0; base < bits.size(); base += chunk) {
        std::size_t n = std::min(chunk, bits.size() - base);
        std::vector<std::size_t> order = chunkOrder(n, depth);
        for (std::size_t k = 0; k < n; ++k)
            out[base + order[k]] = bits[base + k];
    }
    return out;
}

const char *
frameIntegrityName(FrameIntegrity integrity)
{
    switch (integrity) {
    case FrameIntegrity::None:
        return "none";
    case FrameIntegrity::Verified:
        return "verified";
    case FrameIntegrity::Corrected:
        return "corrected";
    case FrameIntegrity::Damaged:
        return "damaged";
    case FrameIntegrity::Unchecked:
        return "unchecked";
    }
    return "unknown";
}

Bits
buildFrame(const Bits &payload, const FrameConfig &config)
{
    if (payload.size() > 0xffff)
        raiseError(ErrorKind::MalformedInput,
                   "frame payload of %zu bits exceeds the 16-bit "
                   "length field", payload.size());

    Bits frame;
    for (std::size_t i = 0; i < config.syncBits; ++i)
        frame.push_back(i % 2 == 0 ? 1 : 0);
    frame.insert(frame.end(), config.zeroBits, 0);
    frame.insert(frame.end(), config.preamble.begin(),
                 config.preamble.end());

    Bits body;
    auto len = static_cast<std::uint16_t>(payload.size());
    for (int b = 15; b >= 0; --b)
        body.push_back((len >> b) & 1);
    body.insert(body.end(), payload.begin(), payload.end());
    if (config.crc) {
        std::uint16_t check = crc16(body);
        for (int b = 15; b >= 0; --b)
            body.push_back((check >> b) & 1);
    }

    Bits coded = hammingEncode(body);
    if (config.interleaverDepth > 1) {
        // Pad to whole interleaver chunks so no chunk carrying frame
        // bits also carries post-frame channel noise. The all-zero
        // 15-bit block is a valid codeword; the decoded zeros fall
        // past the claimed length and are truncated.
        std::size_t chunk = config.interleaverDepth * 15;
        while (coded.size() % chunk != 0)
            coded.insert(coded.end(), 15, 0);
        coded = interleave(coded, config.interleaverDepth);
    }
    frame.insert(frame.end(), coded.begin(), coded.end());
    return frame;
}

ParsedFrame
parseFrame(const Bits &received, const FrameConfig &config)
{
    return parseFrame(received, Bits{}, config);
}

ParsedFrame
parseFrame(const Bits &received, const Bits &erased,
           const FrameConfig &config)
{
    if (!erased.empty() && erased.size() != received.size())
        raiseError(ErrorKind::MalformedInput,
                   "erasure mask of %zu bits does not match %zu "
                   "received bits", erased.size(), received.size());

    static telemetry::Counter searches(
        telemetry::MetricsRegistry::global(),
        "channel.frame.parses");
    searches.add();

    ParsedFrame out;
    const Bits &pre = config.preamble;
    if (pre.empty() || received.size() < pre.size())
        return out;

    // The preamble is preceded by a run of zeros; score every
    // occurrence of [zeros..., preamble] by mismatch count. Costs are
    // in half-mismatch units: an erased position counts as half a
    // mismatch, so real matches beat erased spans but a frame whose
    // sync region caught a dropout can still be located.
    auto costAt = [&](std::size_t i, std::uint8_t want) -> std::size_t {
        if (!erased.empty() && erased[i])
            return 1;
        return received[i] != want ? 2 : 0;
    };
    std::size_t zcheck = std::min<std::size_t>(config.zeroBits, 4);
    std::size_t tol = 2 * config.preambleTolerance;

    // Decode the body as if the preamble ended just before `start`.
    auto decodeAt = [&](std::size_t pos) {
        ParsedFrame f;
        f.found = true;
        f.payloadStart = pos + pre.size();
        auto start = static_cast<std::ptrdiff_t>(f.payloadStart);
        Bits coded(received.begin() + start, received.end());
        Bits mask;
        if (!erased.empty())
            mask.assign(erased.begin() + start, erased.end());
        if (config.interleaverDepth > 1) {
            coded = deinterleave(coded, config.interleaverDepth);
            if (!mask.empty())
                mask = deinterleave(mask, config.interleaverDepth);
        }
        HammingDecodeResult dec = hammingDecodeErasures(coded, mask);
        f.corrected = dec.corrected;
        f.erasedBits = dec.erasures;

        if (dec.bits.size() < 16) {
            f.integrity = config.crc ? FrameIntegrity::Damaged
                                     : FrameIntegrity::Unchecked;
            return f;
        }
        std::uint16_t len = 0;
        for (std::size_t b = 0; b < 16; ++b)
            len = static_cast<std::uint16_t>((len << 1) |
                                             (dec.bits[b] & 1));
        f.claimedLength = len;

        std::size_t avail = dec.bits.size() - 16;
        std::size_t take = std::min<std::size_t>(len, avail);
        f.payload.assign(dec.bits.begin() + 16,
                         dec.bits.begin() + 16 +
                             static_cast<std::ptrdiff_t>(take));

        if (!config.crc) {
            f.integrity = FrameIntegrity::Unchecked;
            return f;
        }
        if (avail >= static_cast<std::size_t>(len) + 16) {
            Bits body(dec.bits.begin(),
                      dec.bits.begin() +
                          16 + static_cast<std::ptrdiff_t>(len));
            std::uint16_t stored = 0;
            for (std::size_t b = 0; b < 16; ++b)
                stored = static_cast<std::uint16_t>(
                    (stored << 1) | (dec.bits[16 + len + b] & 1));
            f.crcOk = crc16(body) == stored;
        }
        f.integrity = !f.crcOk ? FrameIntegrity::Damaged
                      : (f.corrected == 0 && f.erasedBits == 0)
                          ? FrameIntegrity::Verified
                          : FrameIntegrity::Corrected;
        return f;
    };

    // A corrupt stream can contain an accidental [zeros+preamble]
    // pattern that scores no worse than the battered true one, and
    // locking to it truncates the frame. So instead of trusting the
    // single cheapest match, decode the few cheapest candidates and
    // let the body's own evidence (CRC, correction count) arbitrate.
    // Candidates above the preamble tolerance are considered too, but
    // only accepted when the CRC verifies — far stronger evidence of
    // a frame than the preamble bits themselves.
    std::vector<std::pair<std::size_t, std::size_t>> cands; // cost,pos
    for (std::size_t pos = zcheck;
         pos + pre.size() <= received.size(); ++pos) {
        std::size_t cost = 0;
        for (std::size_t i = 0; i < pre.size(); ++i)
            cost += costAt(pos + i, pre[i]);
        for (std::size_t i = 0; i < zcheck; ++i)
            cost += costAt(pos - 1 - i, 0);
        if (cost <= tol + 4)
            cands.emplace_back(cost, pos);
    }
    if (cands.empty())
        return out;
    std::stable_sort(cands.begin(), cands.end());
    constexpr std::size_t kMaxCandidates = 8;
    if (cands.size() > kMaxCandidates)
        cands.resize(kMaxCandidates);

    auto rank = [](const ParsedFrame &f) {
        switch (f.integrity) {
        case FrameIntegrity::Verified: return 4;
        case FrameIntegrity::Corrected: return 3;
        case FrameIntegrity::Unchecked: return 2;
        default: return 1;
        }
    };
    std::size_t best_cost = 0;
    for (const auto &[cost, pos] : cands) {
        ParsedFrame f = decodeAt(pos);
        bool in_tol = cost <= tol;
        if (std::getenv("EMSC_DEBUG_FRAME"))
            std::fprintf(stderr,
                         "frame: cand pos=%zu cost=%zu -> %s "
                         "(len=%zu corrected=%zu)\n",
                         pos, cost, frameIntegrityName(f.integrity),
                         f.claimedLength, f.corrected);
        if (!in_tol && rank(f) < 3)
            continue; // past tolerance and the body can't vouch for it
        // Candidates arrive cheapest-cost-first, so within a rank the
        // original preference (lowest cost, then earliest position)
        // stands; only genuinely stronger body evidence overrides it.
        if (!out.found || rank(f) > rank(out)) {
            out = std::move(f);
            best_cost = cost;
        }
        if (rank(out) == 4)
            break; // verified clean: no better candidate exists
    }
    if (out.found && std::getenv("EMSC_DEBUG_FRAME"))
        std::fprintf(stderr,
                     "frame: pos=%zu cost=%zu stream=%zu "
                     "claimedLength=%zu integrity=%s\n",
                     out.payloadStart - pre.size(), best_cost,
                     received.size(), out.claimedLength,
                     frameIntegrityName(out.integrity));
    return out;
}

} // namespace emsc::channel
