#include "channel/coding.hpp"

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "support/error.hpp"

namespace emsc::channel {

namespace {

/**
 * Hamming(15,11) geometry: codeword positions 1..15, parity bits at
 * the powers of two (1, 2, 4, 8), data bits filling the rest in
 * ascending position order.
 */
constexpr std::size_t kBlockData = 11;
constexpr std::size_t kBlockCoded = 15;

bool
isPowerOfTwoPos(std::size_t pos)
{
    return (pos & (pos - 1)) == 0;
}

/** Encode one 11-bit block into 15 coded bits. */
void
encodeBlock(const std::uint8_t *data, std::uint8_t *out)
{
    // Place data bits.
    std::size_t di = 0;
    for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
        if (isPowerOfTwoPos(pos))
            continue;
        out[pos - 1] = data[di++];
    }
    // Compute even parity for each parity position.
    for (std::size_t p = 1; p <= kBlockCoded; p <<= 1) {
        std::uint8_t parity = 0;
        for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
            if (pos == p || !(pos & p))
                continue;
            parity ^= out[pos - 1];
        }
        out[p - 1] = parity;
    }
}

/** Decode one 15-bit block; returns corrections applied (0 or 1). */
std::size_t
decodeBlock(const std::uint8_t *coded, std::uint8_t *data)
{
    std::uint8_t block[kBlockCoded];
    std::copy(coded, coded + kBlockCoded, block);

    std::size_t syndrome = 0;
    for (std::size_t p = 1; p <= kBlockCoded; p <<= 1) {
        std::uint8_t parity = 0;
        for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
            if (!(pos & p))
                continue;
            parity ^= block[pos - 1];
        }
        if (parity)
            syndrome |= p;
    }

    std::size_t corrected = 0;
    if (syndrome != 0 && syndrome <= kBlockCoded) {
        block[syndrome - 1] ^= 1;
        corrected = 1;
    }

    std::size_t di = 0;
    for (std::size_t pos = 1; pos <= kBlockCoded; ++pos) {
        if (isPowerOfTwoPos(pos))
            continue;
        data[di++] = block[pos - 1];
    }
    return corrected;
}

} // namespace

Bits
bytesToBits(const std::string &bytes)
{
    Bits bits;
    bits.reserve(bytes.size() * 8);
    for (unsigned char c : bytes)
        for (int b = 7; b >= 0; --b)
            bits.push_back((c >> b) & 1);
    return bits;
}

std::string
bitsToBytes(const Bits &bits)
{
    std::string out;
    out.reserve(bits.size() / 8);
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        unsigned char c = 0;
        for (std::size_t b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) | (bits[i + b] & 1));
        out.push_back(static_cast<char>(c));
    }
    return out;
}

Bits
hammingEncode(const Bits &data)
{
    Bits padded(data);
    while (padded.size() % kBlockData != 0)
        padded.push_back(0);

    Bits coded(padded.size() / kBlockData * kBlockCoded, 0);
    for (std::size_t i = 0; i < padded.size() / kBlockData; ++i)
        encodeBlock(&padded[i * kBlockData], &coded[i * kBlockCoded]);
    return coded;
}

HammingDecodeResult
hammingDecode(const Bits &coded)
{
    HammingDecodeResult res;
    std::size_t blocks = coded.size() / kBlockCoded;
    res.bits.resize(blocks * kBlockData);
    for (std::size_t i = 0; i < blocks; ++i)
        res.corrected += decodeBlock(&coded[i * kBlockCoded],
                                     &res.bits[i * kBlockData]);
    return res;
}

Bits
buildFrame(const Bits &payload, const FrameConfig &config)
{
    if (payload.size() > 0xffff)
        raiseError(ErrorKind::MalformedInput,
                   "frame payload of %zu bits exceeds the 16-bit "
                   "length field", payload.size());

    Bits frame;
    for (std::size_t i = 0; i < config.syncBits; ++i)
        frame.push_back(i % 2 == 0 ? 1 : 0);
    frame.insert(frame.end(), config.zeroBits, 0);
    frame.insert(frame.end(), config.preamble.begin(),
                 config.preamble.end());

    Bits body;
    auto len = static_cast<std::uint16_t>(payload.size());
    for (int b = 15; b >= 0; --b)
        body.push_back((len >> b) & 1);
    body.insert(body.end(), payload.begin(), payload.end());

    Bits coded = hammingEncode(body);
    frame.insert(frame.end(), coded.begin(), coded.end());
    return frame;
}

ParsedFrame
parseFrame(const Bits &received, const FrameConfig &config)
{
    ParsedFrame out;
    const Bits &pre = config.preamble;
    if (pre.empty() || received.size() < pre.size())
        return out;

    // The preamble is preceded by a run of zeros; search for the best
    // (fewest-mismatch) occurrence of [zeros..., preamble], preferring
    // earlier matches on ties so we lock to the true frame start.
    std::size_t best_pos = 0;
    std::size_t best_cost = pre.size() + 1;
    std::size_t zcheck = std::min<std::size_t>(config.zeroBits, 4);
    for (std::size_t pos = zcheck;
         pos + pre.size() <= received.size(); ++pos) {
        std::size_t cost = 0;
        for (std::size_t i = 0; i < pre.size(); ++i)
            cost += received[pos + i] != pre[i];
        for (std::size_t i = 0; i < zcheck; ++i)
            cost += received[pos - 1 - i] != 0;
        if (cost < best_cost) {
            best_cost = cost;
            best_pos = pos;
        }
        if (best_cost == 0)
            break;
    }
    if (best_cost > config.preambleTolerance)
        return out;

    out.found = true;
    out.payloadStart = best_pos + pre.size();
    if (std::getenv("EMSC_DEBUG_FRAME"))
        std::fprintf(stderr,
                     "frame: best_pos=%zu cost=%zu stream=%zu\n",
                     best_pos, best_cost, received.size());

    Bits coded(received.begin() +
                   static_cast<std::ptrdiff_t>(out.payloadStart),
               received.end());
    HammingDecodeResult dec = hammingDecode(coded);
    out.corrected = dec.corrected;

    if (dec.bits.size() < 16)
        return out;
    std::uint16_t len = 0;
    for (std::size_t b = 0; b < 16; ++b)
        len = static_cast<std::uint16_t>((len << 1) | (dec.bits[b] & 1));
    out.claimedLength = len;
    if (std::getenv("EMSC_DEBUG_FRAME"))
        std::fprintf(stderr, "frame: claimedLength=%u decoded=%zu\n",
                     len, dec.bits.size());

    std::size_t avail = dec.bits.size() - 16;
    std::size_t take = std::min<std::size_t>(len, avail);
    out.payload.assign(dec.bits.begin() + 16,
                       dec.bits.begin() + 16 +
                           static_cast<std::ptrdiff_t>(take));
    return out;
}

} // namespace emsc::channel
