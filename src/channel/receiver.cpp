#include "channel/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dsp/fft.hpp"
#include "support/error.hpp"
#include "support/flight.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace emsc::channel {

namespace {

/**
 * Smallest analysis window the adaptation is ever allowed to reach: a
 * sliding DFT narrower than this has no frequency selectivity left,
 * and downstream STFT stages require power-of-two sizes outright.
 */
constexpr std::size_t kWindowFloor = 16;

void
appendNote(std::string &diag, const std::string &note)
{
    if (!diag.empty())
        diag += "; ";
    diag += note;
}

/** Robust per-block envelope level: mean of the top decile. Every bit
 * opens with an activity burst, so clean blocks spanning at least one
 * bit keep a high top-decile level regardless of the bit values. */
double
blockLevel(const std::vector<double> &y, std::size_t lo, std::size_t hi)
{
    std::vector<double> v(y.begin() + static_cast<std::ptrdiff_t>(lo),
                          y.begin() + static_cast<std::ptrdiff_t>(hi));
    std::size_t keep = std::max<std::size_t>(1, v.size() / 10);
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                    v.size() - keep),
                     v.end());
    double acc = 0.0;
    for (std::size_t i = v.size() - keep; i < v.size(); ++i)
        acc += v[i];
    return acc / static_cast<double>(keep);
}

/**
 * Segmented self-healing decode: classify the capture into clean
 * segments separated by corrupt spans and AGC level steps, re-lock
 * carrier/timing/threshold per segment, and bridge corrupt spans with
 * erasure-marked bits. Returns false when the capture is clean (one
 * full-span segment) or segmentation cannot get a foothold — the
 * caller then runs the unchanged single-lock path.
 */
bool
segmentedReceive(const sdr::IqCapture &capture,
                 const ReceiverConfig &config,
                 const AcquisitionConfig &acq, ReceiverResult &res)
{
    const SegmentationConfig &sc = config.segmentation;
    const std::vector<double> &y = res.acquired.y;
    if (y.size() < 64)
        return false;

    double tsig0 = res.timing.signalingTime > 4.0
                       ? res.timing.signalingTime
                       : 64.0;
    std::size_t block = sc.blockSamples;
    if (block == 0)
        block = std::clamp<std::size_t>(
            static_cast<std::size_t>(std::lround(2.0 * tsig0)), 32, 2048);
    std::size_t nblocks = y.size() / block;
    if (nblocks < 2)
        return false;

    // Classify each block: corrupt spans are detected on the *raw*
    // samples (dropouts read back as exact zeros, saturation as
    // full-scale clipping), levels on the envelope.
    std::size_t dec = std::max<std::size_t>(1, acq.decimation);
    std::vector<double> level(nblocks, 0.0);
    std::vector<double> zero_frac(nblocks, 0.0);
    std::vector<double> clip_frac(nblocks, 0.0);
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::size_t lo = b * block;
        std::size_t hi = lo + block;
        level[b] = blockLevel(y, lo, hi);

        std::size_t r0 = lo * dec;
        std::size_t r1 = std::min(hi * dec, capture.samples.size());
        if (r1 <= r0)
            continue;
        std::size_t zeros = 0, clipped = 0;
        for (std::size_t i = r0; i < r1; ++i) {
            double re = capture.samples[i].real();
            double im = capture.samples[i].imag();
            if (re == 0.0 && im == 0.0)
                ++zeros;
            if (std::abs(re) >= sc.clipLevel ||
                std::abs(im) >= sc.clipLevel)
                ++clipped;
        }
        auto n = static_cast<double>(r1 - r0);
        zero_frac[b] = static_cast<double>(zeros) / n;
        clip_frac[b] = static_cast<double>(clipped) / n;
    }

    // A weak capture quantises to many exact zeros everywhere, so a
    // high zero fraction alone is not a dropout: the block's envelope
    // must also have collapsed relative to the capture's median level.
    double median_level;
    {
        std::vector<double> lv = level;
        std::nth_element(lv.begin(),
                         lv.begin() +
                             static_cast<std::ptrdiff_t>(lv.size() / 2),
                         lv.end());
        median_level = lv[lv.size() / 2];
    }
    std::vector<char> corrupt(nblocks, 0);
    for (std::size_t b = 0; b < nblocks; ++b) {
        bool dead = zero_frac[b] >= sc.deadZeroFraction &&
                    level[b] <= sc.deadLevelRatio * median_level;
        bool clipping = clip_frac[b] >= sc.clippedFraction;
        if (dead || clipping)
            corrupt[b] = 1;
    }

    for (std::size_t b = 0; b < nblocks; ++b)
        if (corrupt[b] && (b == 0 || !corrupt[b - 1]))
            ++res.corruptedSpans;

    // Clean runs, split further where the level steps (AGC re-train):
    // a jump past stepRatio sustained for two blocks opens a segment.
    std::vector<std::pair<std::size_t, std::size_t>> block_segs;
    std::size_t b = 0;
    while (b < nblocks) {
        if (corrupt[b]) {
            ++b;
            continue;
        }
        std::size_t run_end = b;
        while (run_end < nblocks && !corrupt[run_end])
            ++run_end;
        std::size_t s = b;
        double track = std::max(level[b], 1e-300);
        for (std::size_t i = b + 1; i < run_end; ++i) {
            double r = level[i] / track;
            bool jump = r > sc.stepRatio || r < 1.0 / sc.stepRatio;
            if (jump && i + 1 < run_end) {
                double r2 = level[i + 1] / track;
                jump = r2 > sc.stepRatio || r2 < 1.0 / sc.stepRatio;
            }
            if (jump) {
                block_segs.emplace_back(s, i);
                s = i;
                track = std::max(level[i], 1e-300);
            } else {
                track = std::max(0.8 * track + 0.2 * level[i], 1e-300);
            }
        }
        block_segs.emplace_back(s, run_end);
        b = run_end;
    }
    std::erase_if(block_segs, [&](const auto &p) {
        return p.second - p.first < sc.minSegmentBlocks;
    });
    if (block_segs.empty())
        return false;

    bool clean = res.corruptedSpans == 0 && block_segs.size() == 1 &&
                 block_segs[0].first == 0 &&
                 block_segs[0].second == nblocks;
    if (clean) {
        // Single clean full-span segment: record it and let the caller
        // run the exact single-lock path (bit-identical to pre-fault
        // behaviour on clean captures).
        ReceiverSegment seg;
        seg.begin = 0;
        seg.end = y.size();
        seg.carrierHz = res.carrierHz;
        seg.signalingTime = res.timing.signalingTime;
        seg.level = level[nblocks / 2];
        res.segments.push_back(seg);
        return false;
    }

    // Re-lock each segment independently and stitch the bit streams,
    // bridging inter-segment gaps with erasure-marked placeholder bits
    // so lost spans stay substitution (not deletion) bursts.
    double fs = capture.sampleRate;
    double prev_last_start = -1.0;
    double prev_tsig = 0.0;
    res.labeled = LabeledBits{};
    res.erasureMask.clear();
    // Stream positions of the inter-segment junctions: each bridge's
    // period count is a rounded estimate, and an off-by-one shifts
    // every bit that follows — the one corruption the erasure mask
    // cannot express. The re-parse below retries these ±1 bit.
    std::vector<std::size_t> junctions;

    auto push_erased = [&](std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            res.labeled.bits.push_back(0);
            res.labeled.bitPower.push_back(0.0);
            res.erasureMask.push_back(1);
        }
    };

    for (const auto &[sb, se] : block_segs) {
        std::size_t begin = sb * block;
        std::size_t end = se == nblocks ? y.size() : se * block;

        ReceiverSegment seg;
        seg.begin = begin;
        seg.end = end;
        seg.carrierHz = res.carrierHz;
        {
            std::vector<double> lv(level.begin() +
                                       static_cast<std::ptrdiff_t>(sb),
                                   level.begin() +
                                       static_cast<std::ptrdiff_t>(se));
            std::nth_element(lv.begin(), lv.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 lv.size() / 2),
                             lv.end());
            seg.level = lv[lv.size() / 2];
        }

        std::vector<double> ys(y.begin() +
                                   static_cast<std::ptrdiff_t>(begin),
                               y.begin() + static_cast<std::ptrdiff_t>(end));

        // Per-segment carrier re-acquisition: an LO hop moves the
        // VRM line out of the tracked bins; long enough segments are
        // re-searched and, if the carrier moved, re-acquired.
        std::size_t r0 = begin * dec;
        std::size_t r1 = std::min(end * dec, capture.samples.size());
        if (fs > 0.0 && r1 > r0 && r1 - r0 >= 4 * acq.searchWindow) {
            sdr::IqCapture sub;
            sub.sampleRate = fs;
            sub.centerFrequency = capture.centerFrequency;
            sub.startTime =
                capture.startTime +
                fromSeconds(static_cast<double>(r0) / fs);
            sub.samples.assign(capture.samples.begin() +
                                   static_cast<std::ptrdiff_t>(r0),
                               capture.samples.begin() +
                                   static_cast<std::ptrdiff_t>(r1));
            try {
                AcquisitionConfig sub_acq = acq;
                sub_acq.quietSearch = true;
                double c = estimateCarrier(sub, sub_acq);
                double bin_hz =
                    fs / static_cast<double>(std::max<std::size_t>(
                             acq.window, 1));
                if (c > 0.0 &&
                    std::abs(c - res.carrierHz) > 0.5 * bin_hz) {
                    AcquiredSignal sub_sig = acquire(sub, acq, c);
                    if (!sub_sig.y.empty()) {
                        ys = std::move(sub_sig.y);
                        seg.carrierHz = c;
                    }
                }
            } catch (const RecoverableError &) {
                // Too short/degenerate to re-search: keep the global
                // carrier's envelope for this segment.
            }
        }

        TimingConfig tc = config.timing;
        if (tc.rampHint == 0)
            tc.rampHint = acq.window / std::max<std::size_t>(dec, 1);
        tc.periodHint = prev_tsig > 0.0 ? prev_tsig : tsig0;
        BitTiming bt;
        try {
            bt = recoverTiming(ys, tc);
        } catch (const RecoverableError &) {
            bt = BitTiming{};
        }
        if (bt.starts.empty() || bt.signalingTime <= 0.0)
            continue; // unusable segment: the gap bridging spans it

        seg.signalingTime = bt.signalingTime;
        LabeledBits lb = labelBits(ys, bt.starts, bt.signalingTime,
                                   config.labeling);
        seg.bits = lb.bits.size();

        // A dropout inside a segment can swallow an edge, so the
        // recovered starts grid skips a beat and the labeled stream
        // silently loses a bit — a deletion the erasure mask cannot
        // express. Re-insert erased placeholders wherever consecutive
        // starts are more than ~1.5 signalling periods apart.
        std::vector<char> bit_inserted(lb.bits.size(), 0);
        std::vector<std::size_t> ambiguous_local;
        if (bt.signalingTime > 0.0 && bt.starts.size() > 1 &&
            lb.bits.size() == bt.starts.size()) {
            LabeledBits patched;
            std::vector<std::size_t> patched_starts;
            std::vector<char> patched_inserted;
            for (std::size_t i = 0; i < lb.bits.size(); ++i) {
                if (i > 0) {
                    double ratio =
                        (static_cast<double>(bt.starts[i]) -
                         static_cast<double>(bt.starts[i - 1])) /
                        bt.signalingTime;
                    long k = std::lround(ratio);
                    if (k >= 2 && std::abs(ratio - static_cast<double>(
                                                       k)) <= 0.3) {
                        // Confidently integral multi-period gap: the
                        // edge detector swallowed k-1 bits here.
                        for (long m = 1; m < k; ++m) {
                            patched.bits.push_back(0);
                            patched.bitPower.push_back(0.0);
                            patched_starts.push_back(
                                bt.starts[i - 1] +
                                static_cast<std::size_t>(std::lround(
                                    static_cast<double>(m) *
                                    bt.signalingTime)));
                            patched_inserted.push_back(1);
                        }
                    } else if (ratio > 1.3 && ratio < 1.7) {
                        // Could be jitter or a swallowed bit: leave
                        // the stream alone but let the junction ±1
                        // re-parse probe this position.
                        ambiguous_local.push_back(patched.bits.size());
                    }
                }
                patched.bits.push_back(lb.bits[i]);
                patched.bitPower.push_back(lb.bitPower[i]);
                patched_starts.push_back(bt.starts[i]);
                patched_inserted.push_back(0);
            }
            if (patched.bits.size() != lb.bits.size()) {
                patched.thresholds = lb.thresholds;
                lb = std::move(patched);
                bt.starts = std::move(patched_starts);
                bit_inserted = std::move(patched_inserted);
                seg.bits = lb.bits.size();
            }
        }

        // Per-bit raw-sample scan: a dropout or saturation burst too
        // short (or too off-centre) to condemn a whole block still
        // kills the bits it overlaps. A sustained run of exact zeros
        // or full-scale samples inside a bit's window marks that bit
        // as an erasure — consecutive runs separate true faults from
        // the scattered zeros of a merely weak capture.
        std::vector<char> bit_erased(lb.bits.size(), 0);
        {
            constexpr std::size_t kRun = 32;
            std::size_t base = begin * dec;
            for (std::size_t i = 0; i < lb.bits.size() &&
                                    i < bt.starts.size();
                 ++i) {
                std::size_t w0 = base + bt.starts[i] * dec;
                std::size_t w1 = std::min(
                    capture.samples.size(),
                    base + static_cast<std::size_t>(std::lround(
                               (static_cast<double>(bt.starts[i]) +
                                bt.signalingTime) *
                               static_cast<double>(dec))));
                std::size_t zrun = 0, crun = 0;
                for (std::size_t s = w0; s < w1; ++s) {
                    double re = capture.samples[s].real();
                    double im = capture.samples[s].imag();
                    zrun = re == 0.0 && im == 0.0 ? zrun + 1 : 0;
                    crun = std::abs(re) >= sc.clipLevel ||
                                   std::abs(im) >= sc.clipLevel
                               ? crun + 1
                               : 0;
                    if (zrun >= kRun || crun >= kRun) {
                        bit_erased[i] = 1;
                        break;
                    }
                }
            }
            for (std::size_t i = 0; i < bit_erased.size() &&
                                    i < bit_inserted.size();
                 ++i)
                if (bit_inserted[i])
                    bit_erased[i] = 1;
        }

        double first_start =
            static_cast<double>(begin + bt.starts.front());
        double tsig_bridge = prev_tsig > 0.0
                                 ? 0.5 * (prev_tsig + bt.signalingTime)
                                 : bt.signalingTime;
        bool bridged = false;
        if (prev_last_start < 0.0) {
            // Leading corrupt span: the transmitter was already
            // sending; synthesise the bits the gap must contain.
            auto lead = static_cast<std::size_t>(std::max(
                0.0, std::floor(first_start / tsig_bridge)));
            push_erased(lead);
            bridged = lead > 0;
        } else {
            double gap = first_start - prev_last_start;
            long periods = std::lround(gap / tsig_bridge);
            // The bits straddling any segment junction are suspect —
            // cut mid-flight by a corrupt span, or labeled against a
            // threshold from the wrong side of an AGC step. Erasing
            // them trades a possible silent error for a marked one the
            // interleaved code absorbs.
            if (!res.erasureMask.empty())
                res.erasureMask.back() = 1;
            junctions.push_back(res.labeled.bits.size());
            if (periods > 1)
                push_erased(static_cast<std::size_t>(periods - 1));
            bridged = true;
        }

        for (std::size_t local : ambiguous_local)
            junctions.push_back(res.labeled.bits.size() + local);
        res.labeled.bits.insert(res.labeled.bits.end(), lb.bits.begin(),
                                lb.bits.end());
        res.labeled.bitPower.insert(res.labeled.bitPower.end(),
                                    lb.bitPower.begin(),
                                    lb.bitPower.end());
        res.labeled.thresholds.insert(res.labeled.thresholds.end(),
                                      lb.thresholds.begin(),
                                      lb.thresholds.end());
        res.erasureMask.insert(res.erasureMask.end(), bit_erased.begin(),
                               bit_erased.end());
        res.erasureMask.resize(res.labeled.bits.size(), 0);
        if (bridged && !lb.bits.empty()) {
            // First bit after the span starts mid-ramp: guard-erase it.
            res.erasureMask[res.erasureMask.size() - lb.bits.size()] = 1;
        }

        prev_last_start = static_cast<double>(begin + bt.starts.back());
        prev_tsig = bt.signalingTime;
        res.segments.push_back(seg);
    }

    if (res.segments.empty())
        return false;

    // Trailing corrupt span: synthesise the bits it must contain so a
    // frame ending inside it still has erasures (not truncation).
    double tail = static_cast<double>(y.size()) -
                  (prev_last_start + prev_tsig);
    if (prev_tsig > 0.0 && tail > 0.0)
        push_erased(
            static_cast<std::size_t>(std::floor(tail / prev_tsig)));

    ParsedFrame seg_frame =
        parseFrame(res.labeled.bits, res.erasureMask, config.frame);

    auto rank = [](const ParsedFrame &f) {
        if (!f.found)
            return 0;
        switch (f.integrity) {
        case FrameIntegrity::Verified: return 4;
        case FrameIntegrity::Corrected: return 3;
        case FrameIntegrity::Unchecked: return 2;
        case FrameIntegrity::Damaged: return 1;
        case FrameIntegrity::None: return 1;
        }
        return 1;
    };

    // Junction ±1 re-parse: a bridge (or an ambiguous intra-segment
    // gap) whose length in periods rounds the wrong way shifts every
    // bit that follows. If the first parse is not CRC-clean, retry
    // with one erased bit inserted or removed at each candidate
    // position and keep the better decode. Greedy, so stacked
    // off-by-ones at different junctions repair one per round.
    if (rank(seg_frame) < 3 && !junctions.empty()) {
        for (std::size_t round = 0;
             round < junctions.size() && round < 4; ++round) {
            bool improved = false;
            for (std::size_t j = 0;
                 j < junctions.size() && !improved; ++j) {
                for (int delta : {1, -1}) {
                    std::size_t pos = junctions[j];
                    Bits bits = res.labeled.bits;
                    Bits mask = res.erasureMask;
                    std::vector<double> power = res.labeled.bitPower;
                    auto p = static_cast<std::ptrdiff_t>(pos);
                    if (delta > 0) {
                        bits.insert(bits.begin() + p, 0);
                        mask.insert(mask.begin() + p, 1);
                        power.insert(power.begin() + p, 0.0);
                    } else if (pos < bits.size()) {
                        bits.erase(bits.begin() + p);
                        mask.erase(mask.begin() + p);
                        if (pos < power.size())
                            power.erase(power.begin() + p);
                    } else {
                        continue;
                    }
                    ParsedFrame f = parseFrame(bits, mask, config.frame);
                    // Strictly better integrity wins outright; with
                    // rank tied (both still Damaged), fewer Hamming
                    // corrections is the gradient that lets stacked
                    // off-by-ones at different junctions be repaired
                    // one round at a time.
                    bool better =
                        rank(f) > rank(seg_frame) ||
                        (rank(f) == rank(seg_frame) && f.found &&
                         f.corrected < seg_frame.corrected);
                    if (better) {
                        seg_frame = std::move(f);
                        res.labeled.bits = std::move(bits);
                        res.labeled.bitPower = std::move(power);
                        res.erasureMask = std::move(mask);
                        for (std::size_t k = j + 1;
                             k < junctions.size(); ++k)
                            junctions[k] = static_cast<std::size_t>(
                                static_cast<std::ptrdiff_t>(
                                    junctions[k]) +
                                delta);
                        improved = true;
                        break;
                    }
                }
            }
            if (!improved || rank(seg_frame) >= 3)
                break;
        }
    }

    // Safety net: also decode the capture with the single global lock
    // and keep whichever frame is better. Segmenting a merely-noisy
    // capture (level flutter at low SNR resembles AGC steps) must
    // never lose a frame the whole-capture path would have found.
    LabeledBits whole = labelBits(res.acquired.y, res.timing.starts,
                                  res.timing.signalingTime,
                                  config.labeling);
    ParsedFrame whole_frame = parseFrame(whole.bits, config.frame);

    bool keep_segmented =
        rank(seg_frame) > rank(whole_frame) ||
        (rank(seg_frame) == rank(whole_frame) && res.corruptedSpans > 0);
    if (keep_segmented) {
        res.frame = std::move(seg_frame);
    } else {
        res.labeled = std::move(whole);
        res.frame = std::move(whole_frame);
        res.erasureMask.clear();
    }
    return true;
}

/**
 * Pipeline body; any stage may throw RecoverableError, which the
 * public receive() converts into ReceiverResult::failure.
 */
void
receiveInto(const sdr::IqCapture &capture, const ReceiverConfig &config,
            ReceiverResult &res)
{
    AcquisitionConfig acq = config.acquisition;

    // Validate the window geometry up front instead of letting a
    // misconfigured minWindow (e.g. 0) drive the adaptation loop down
    // to sizes the DFT stages reject.
    std::size_t min_window = config.minWindow;
    if (min_window < kWindowFloor) {
        char note[96];
        std::snprintf(note, sizeof(note),
                      "minWindow %zu clamped to %zu", min_window,
                      kWindowFloor);
        appendNote(res.diagnostic, note);
        min_window = kWindowFloor;
    }
    if (!dsp::isPowerOfTwo(min_window)) {
        std::size_t rounded = dsp::nextPowerOfTwo(min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "minWindow %zu rounded up to power of two %zu",
                      min_window, rounded);
        appendNote(res.diagnostic, note);
        min_window = rounded;
    }
    if (acq.window == 0 || !dsp::isPowerOfTwo(acq.window) ||
        acq.window < min_window) {
        std::size_t rounded =
            std::max(dsp::nextPowerOfTwo(acq.window), min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "acquisition window %zu adjusted to %zu",
                      acq.window, rounded);
        appendNote(res.diagnostic, note);
        acq.window = rounded;
    }

    res.carrierHz = estimateCarrier(capture, acq);
    if (res.carrierHz <= 0.0)
        return; // no carrier found: nothing to decode

    // Acquire and recover timing; if the recovered signaling time is
    // too short for the analysis window (the window smears adjacent
    // bits together), halve the window and retry.
    {
        telemetry::TraceSpan acquire_span("receiver.acquire");
        while (true) {
            res.acquired = acquire(capture, acq, res.carrierHz);
            res.windowUsed = acq.window;
            channel::TimingConfig timing_cfg = config.timing;
            if (timing_cfg.rampHint == 0)
                timing_cfg.rampHint = acq.window / acq.decimation;
            res.timing = recoverTiming(res.acquired.y, timing_cfg);

            if (!config.adaptiveWindow)
                break;
            double bit_samples =
                res.timing.signalingTime * static_cast<double>(acq.decimation);
            bool too_coarse = res.timing.signalingTime > 0.0 &&
                              bit_samples < 2.5 * static_cast<double>(acq.window);
            std::size_t halved = acq.window / 2;
            if (!too_coarse || halved < min_window)
                break;
            if (!dsp::isPowerOfTwo(halved)) {
                // Unreachable while the entry validation holds; bail out
                // with a diagnostic rather than aborting mid-pipeline.
                appendNote(res.diagnostic,
                           "adaptation stopped: halved window not a power "
                           "of two");
                break;
            }
            acq.window = halved;
        }
    }

    if (config.segmentation.enabled) {
        telemetry::TraceSpan span("receiver.segmented");
        if (segmentedReceive(capture, config, acq, res))
            return;
    }

    {
        telemetry::TraceSpan span("receiver.label");
        res.labeled = labelBits(res.acquired.y, res.timing.starts,
                                res.timing.signalingTime,
                                config.labeling);
    }
    telemetry::TraceSpan span("receiver.frame");
    res.frame = parseFrame(res.labeled.bits, config.frame);
}

} // namespace

SignalQuality
summarizeQuality(const ReceiverResult &res)
{
    SignalQuality q;
    q.bitsLabeled = res.labeled.bits.size();
    q.frameFound = res.frame.found;
    q.crcDamaged = res.frame.integrity == FrameIntegrity::Damaged;
    q.failed = res.failure.has_value();
    q.windowUsed = res.windowUsed;
    for (auto b : res.erasureMask)
        q.erasuresBridged += b ? 1 : 0;
    if (res.carrierHz > 0.0)
        q.carrierHz = res.carrierHz;
    if (res.timing.signalingTime > 0.0)
        q.signalingTime = res.timing.signalingTime;

    // Timing-recovery jitter: median absolute deviation of the raw
    // bit spacings, relative to the median spacing (unitless; the
    // paper's timing instability from DVFS-driven beat wander).
    std::vector<double> spacings = res.timing.rawSpacings;
    if (spacings.empty() && res.timing.starts.size() >= 2)
        for (std::size_t i = 0; i + 1 < res.timing.starts.size(); ++i)
            spacings.push_back(static_cast<double>(
                res.timing.starts[i + 1] - res.timing.starts[i]));
    if (spacings.size() >= 2) {
        std::sort(spacings.begin(), spacings.end());
        double med = spacings[spacings.size() / 2];
        if (med > 0.0) {
            for (auto &sp : spacings)
                sp = std::fabs(sp - med);
            std::sort(spacings.begin(), spacings.end());
            q.jitter = spacings[spacings.size() / 2] / med;
        }
    }

    // Threshold margin: distance from the decision threshold to the
    // nearer class mean, normalised by the class separation (0.5 is
    // a perfectly centred threshold, ~0 a threshold kissing a class).
    const LabeledBits &lab = res.labeled;
    if (!lab.bits.empty() && lab.bitPower.size() == lab.bits.size() &&
        !lab.thresholds.empty()) {
        double mu1 = 0.0, mu0 = 0.0;
        std::size_t n1 = 0, n0 = 0;
        for (std::size_t i = 0; i < lab.bits.size(); ++i) {
            if (lab.bits[i]) {
                mu1 += lab.bitPower[i];
                ++n1;
            } else {
                mu0 += lab.bitPower[i];
                ++n0;
            }
        }
        if (n1 && n0) {
            mu1 /= static_cast<double>(n1);
            mu0 /= static_cast<double>(n0);
            std::vector<double> thr = lab.thresholds;
            std::sort(thr.begin(), thr.end());
            double t = thr[thr.size() / 2];
            double sep = mu1 - mu0;
            if (sep > 0.0)
                q.thresholdMargin = std::min(mu1 - t, t - mu0) / sep;
        }
    }
    return q;
}

namespace {

/** Flight-recorder tap: one "reception" event per decode carrying
 * the same values summarizeQuality feeds the gauges, plus the dump
 * trigger for failed decodes. */
void
tapFlightRecorder(const ReceiverResult &res, const SignalQuality &q)
{
    flight::FlightRecorder &rec = flight::FlightRecorder::global();
    if (!rec.armed())
        return;

    auto numOrNull = [](double v) {
        return std::isnan(v) ? json::Value(nullptr) : json::Value(v);
    };
    json::Value data = json::Value::object();
    data.set("carrier_hz", numOrNull(q.carrierHz));
    data.set("jitter", numOrNull(q.jitter));
    data.set("threshold_margin", numOrNull(q.thresholdMargin));
    data.set("signaling_time", numOrNull(q.signalingTime));
    data.set("window_used", static_cast<double>(q.windowUsed));
    data.set("bits_labeled", static_cast<double>(q.bitsLabeled));
    data.set("erasures_bridged",
             static_cast<double>(q.erasuresBridged));
    data.set("corrupt_spans", static_cast<double>(res.corruptedSpans));
    data.set("frame_found", q.frameFound);
    data.set("crc_damaged", q.crcDamaged);
    if (res.failure)
        data.set("failure", res.failure->message);
    rec.record("reception", std::move(data));
    if (!res.acquired.y.empty())
        rec.recordEnvelope(res.acquired.y.data(), res.acquired.y.size(),
                           res.acquired.sampleRate);

    if (q.failed)
        rec.dump("decode_failure");
    else if (q.crcDamaged)
        rec.dump("crc_damaged");
    else if (!q.frameFound && res.carrierHz > 0.0)
        rec.dump("no_frame");
}

} // namespace

void
publishReceiverTelemetry(const ReceiverResult &res)
{
    const SignalQuality q = summarizeQuality(res);
    tapFlightRecorder(res, q);

    telemetry::MetricsRegistry &reg =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter receptions(reg, "channel.receptions");
    static telemetry::Counter bitsLabeled(reg, "channel.bits.labeled");
    static telemetry::Counter framesFound(reg, "channel.frames.found");
    static telemetry::Counter crcFailures(reg, "channel.crc.failures");
    static telemetry::Counter corrected(reg,
                                        "channel.hamming.corrected");
    static telemetry::Counter erasedBits(reg,
                                         "channel.hamming.erased_bits");
    static telemetry::Counter erasuresBridged(
        reg, "channel.erasures.bridged");
    static telemetry::Counter corruptSpans(reg,
                                           "channel.corrupt_spans");
    static telemetry::Counter segmentsUsed(reg,
                                           "channel.segments.used");
    static telemetry::Counter failures(reg, "channel.failures");
    static telemetry::Gauge carrierHz(reg, "channel.carrier.hz");
    static telemetry::Gauge jitter(reg, "channel.timing.jitter");
    static telemetry::Gauge signaling(reg,
                                      "channel.timing.signaling_time");
    static telemetry::Gauge margin(reg, "channel.threshold.margin");
    static telemetry::Gauge windowUsed(reg, "channel.window_used");
    if (!reg.enabled())
        return;

    receptions.add();
    bitsLabeled.add(q.bitsLabeled);
    if (q.frameFound)
        framesFound.add();
    if (q.crcDamaged)
        crcFailures.add();
    corrected.add(res.frame.corrected);
    erasedBits.add(res.frame.erasedBits);
    erasuresBridged.add(q.erasuresBridged);
    corruptSpans.add(res.corruptedSpans);
    segmentsUsed.add(res.segments.size());
    if (q.failed)
        failures.add();

    if (!std::isnan(q.carrierHz))
        carrierHz.set(q.carrierHz);
    if (!std::isnan(q.signalingTime))
        signaling.set(q.signalingTime);
    if (!std::isnan(q.jitter))
        jitter.set(q.jitter);
    if (!std::isnan(q.thresholdMargin))
        margin.set(q.thresholdMargin);
    if (q.windowUsed)
        windowUsed.set(static_cast<double>(q.windowUsed));
}

ReceiverResult
receive(const sdr::IqCapture &capture, const ReceiverConfig &config)
{
    ReceiverResult res;
    telemetry::TraceSpan span("receiver.receive");
    try {
        receiveInto(capture, config, res);
    } catch (const RecoverableError &e) {
        // Degrade per-capture: keep whatever stages completed and
        // report the stage error instead of terminating the sweep.
        res.failure = e.toError();
    }
    publishReceiverTelemetry(res);
    return res;
}

} // namespace emsc::channel
