#include "channel/receiver.hpp"

#include <algorithm>
#include <cstdio>

#include "dsp/fft.hpp"
#include "support/error.hpp"

namespace emsc::channel {

namespace {

/**
 * Smallest analysis window the adaptation is ever allowed to reach: a
 * sliding DFT narrower than this has no frequency selectivity left,
 * and downstream STFT stages require power-of-two sizes outright.
 */
constexpr std::size_t kWindowFloor = 16;

void
appendNote(std::string &diag, const std::string &note)
{
    if (!diag.empty())
        diag += "; ";
    diag += note;
}

/**
 * Pipeline body; any stage may throw RecoverableError, which the
 * public receive() converts into ReceiverResult::failure.
 */
void
receiveInto(const sdr::IqCapture &capture, const ReceiverConfig &config,
            ReceiverResult &res)
{
    AcquisitionConfig acq = config.acquisition;

    // Validate the window geometry up front instead of letting a
    // misconfigured minWindow (e.g. 0) drive the adaptation loop down
    // to sizes the DFT stages reject.
    std::size_t min_window = config.minWindow;
    if (min_window < kWindowFloor) {
        char note[96];
        std::snprintf(note, sizeof(note),
                      "minWindow %zu clamped to %zu", min_window,
                      kWindowFloor);
        appendNote(res.diagnostic, note);
        min_window = kWindowFloor;
    }
    if (!dsp::isPowerOfTwo(min_window)) {
        std::size_t rounded = dsp::nextPowerOfTwo(min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "minWindow %zu rounded up to power of two %zu",
                      min_window, rounded);
        appendNote(res.diagnostic, note);
        min_window = rounded;
    }
    if (acq.window == 0 || !dsp::isPowerOfTwo(acq.window) ||
        acq.window < min_window) {
        std::size_t rounded =
            std::max(dsp::nextPowerOfTwo(acq.window), min_window);
        char note[96];
        std::snprintf(note, sizeof(note),
                      "acquisition window %zu adjusted to %zu",
                      acq.window, rounded);
        appendNote(res.diagnostic, note);
        acq.window = rounded;
    }

    res.carrierHz = estimateCarrier(capture, acq);
    if (res.carrierHz <= 0.0)
        return; // no carrier found: nothing to decode

    // Acquire and recover timing; if the recovered signaling time is
    // too short for the analysis window (the window smears adjacent
    // bits together), halve the window and retry.
    while (true) {
        res.acquired = acquire(capture, acq, res.carrierHz);
        res.windowUsed = acq.window;
        channel::TimingConfig timing_cfg = config.timing;
        if (timing_cfg.rampHint == 0)
            timing_cfg.rampHint = acq.window / acq.decimation;
        res.timing = recoverTiming(res.acquired.y, timing_cfg);

        if (!config.adaptiveWindow)
            break;
        double bit_samples =
            res.timing.signalingTime * static_cast<double>(acq.decimation);
        bool too_coarse = res.timing.signalingTime > 0.0 &&
                          bit_samples < 2.5 * static_cast<double>(acq.window);
        std::size_t halved = acq.window / 2;
        if (!too_coarse || halved < min_window)
            break;
        if (!dsp::isPowerOfTwo(halved)) {
            // Unreachable while the entry validation holds; bail out
            // with a diagnostic rather than aborting mid-pipeline.
            appendNote(res.diagnostic,
                       "adaptation stopped: halved window not a power "
                       "of two");
            break;
        }
        acq.window = halved;
    }

    res.labeled = labelBits(res.acquired.y, res.timing.starts,
                            res.timing.signalingTime, config.labeling);
    res.frame = parseFrame(res.labeled.bits, config.frame);
}

} // namespace

ReceiverResult
receive(const sdr::IqCapture &capture, const ReceiverConfig &config)
{
    ReceiverResult res;
    try {
        receiveInto(capture, config, res);
    } catch (const RecoverableError &e) {
        // Degrade per-capture: keep whatever stages completed and
        // report the stage error instead of terminating the sweep.
        res.failure = e.toError();
    }
    return res;
}

} // namespace emsc::channel
