#include "channel/receiver.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace emsc::channel {

ReceiverResult
receive(const sdr::IqCapture &capture, const ReceiverConfig &config)
{
    ReceiverResult res;

    AcquisitionConfig acq = config.acquisition;
    res.carrierHz = estimateCarrier(capture, acq);
    if (res.carrierHz <= 0.0)
        return res; // no carrier found: nothing to decode

    // Acquire and recover timing; if the recovered signaling time is
    // too short for the analysis window (the window smears adjacent
    // bits together), halve the window and retry.
    while (true) {
        res.acquired = acquire(capture, acq, res.carrierHz);
        res.windowUsed = acq.window;
        channel::TimingConfig timing_cfg = config.timing;
        if (timing_cfg.rampHint == 0)
            timing_cfg.rampHint = acq.window / acq.decimation;
        res.timing = recoverTiming(res.acquired.y, timing_cfg);

        if (!config.adaptiveWindow)
            break;
        double bit_samples =
            res.timing.signalingTime * static_cast<double>(acq.decimation);
        bool too_coarse = res.timing.signalingTime > 0.0 &&
                          bit_samples < 2.5 * static_cast<double>(acq.window);
        if (!too_coarse || acq.window / 2 < config.minWindow)
            break;
        acq.window /= 2;
    }

    res.labeled = labelBits(res.acquired.y, res.timing.starts,
                            res.timing.signalingTime, config.labeling);
    res.frame = parseFrame(res.labeled.bits, config.frame);
    return res;
}

} // namespace emsc::channel
