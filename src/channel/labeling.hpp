/**
 * @file
 * Bit labeling from average per-bit signal power (§IV-B3, Fig. 7).
 *
 * Each recovered bit interval is summarised by the mean squared
 * magnitude of its Y samples. Because the active part of a period can
 * stretch, raw energy would mislabel; averaging over the interval's
 * actual duration compensates. The decision threshold is found from
 * the bimodal distribution of per-bit averages: locate the two
 * strongest peaks of the (smoothed) histogram and threshold at their
 * midpoint, per batch so slow gain drift is tracked.
 */

#ifndef EMSC_CHANNEL_LABELING_HPP
#define EMSC_CHANNEL_LABELING_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/coding.hpp"

namespace emsc::channel {

/** Labeling configuration. */
struct LabelingConfig
{
    /** Histogram bins used for threshold selection. */
    std::size_t histogramBins = 64;
    /** Histogram smoothing radius (bins). */
    std::size_t smoothingRadius = 2;
    /** Minimum separation between the two power peaks (bins). */
    std::size_t peakSeparation = 8;
    /** Bits per threshold batch (0 = single batch for the capture). */
    std::size_t batchBits = 4096;
};

/** Labeling output. */
struct LabeledBits
{
    /** Decided channel bits, one per recovered interval. */
    Bits bits;
    /** Per-bit average power values (Fig. 7's samples). */
    std::vector<double> bitPower;
    /** Thresholds chosen per batch. */
    std::vector<double> thresholds;
};

/**
 * Label each interval [starts[i], starts[i+1]) of the envelope.
 * The final interval extends one signaling time beyond the last start.
 */
LabeledBits labelBits(const std::vector<double> &y,
                      const std::vector<std::size_t> &starts,
                      double signaling_time,
                      const LabelingConfig &config);

/**
 * Threshold selection on a set of per-bit powers: the midpoint of the
 * two dominant histogram peaks (exposed separately for Fig. 7).
 */
double selectThreshold(const std::vector<double> &bit_power,
                       const LabelingConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_LABELING_HPP
