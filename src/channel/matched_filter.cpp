#include "channel/matched_filter.hpp"

#include <algorithm>
#include <cmath>

#include "channel/labeling.hpp"
#include "channel/timing.hpp"
#include "dsp/convolution.hpp"
#include "dsp/peaks.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"

namespace emsc::channel {

MatchedFilterResult
matchedFilterDecode(const AcquiredSignal &signal,
                    const MatchedFilterConfig &config)
{
    MatchedFilterResult out;
    const std::vector<double> &y = signal.y;
    if (y.size() < 64)
        return out;

    // One-shot clock recovery: the conventional receiver estimates the
    // symbol rate once (here via the same autocorrelation used by the
    // asynchronous pipeline, so the comparison is apples to apples).
    double period = config.symbolPeriod;
    if (period <= 0.0)
        period = estimateBitPeriod(y, TimingConfig{});
    if (period <= 0.0)
        return out;
    out.symbolPeriod = period;

    // Phase: align the clock to the strongest early rising edge.
    auto l_d = static_cast<std::size_t>(
        std::clamp(period / 2.0, 4.0, static_cast<double>(y.size()) / 4));
    l_d &= ~std::size_t{1};
    l_d = std::max<std::size_t>(l_d, 4);
    std::vector<double> edge = dsp::edgeDetect(y, l_d);
    std::size_t search =
        std::min<std::size_t>(y.size(), static_cast<std::size_t>(
                                            period * 8.0));
    std::size_t best = 0;
    for (std::size_t i = 1; i < search; ++i)
        if (edge[i] > edge[best])
            best = i;
    out.firstSymbol = static_cast<double>(best);

    // Integrate-and-dump on the fixed clock.
    std::vector<double> powers;
    for (double t = out.firstSymbol;
         t + period <= static_cast<double>(y.size()); t += period) {
        auto lo = static_cast<std::size_t>(t);
        auto hi = static_cast<std::size_t>(t + period);
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            acc += y[i] * y[i];
        powers.push_back(acc / static_cast<double>(hi - lo));
    }
    if (powers.empty())
        return out;

    double thr = selectThreshold(powers, LabelingConfig{});
    out.bits.reserve(powers.size());
    for (double p : powers)
        out.bits.push_back(p > thr ? 1 : 0);
    return out;
}

} // namespace emsc::channel
