/**
 * @file
 * Bit-timing recovery (§IV-B2, Figs. 5 and 6).
 *
 * The covert signal is asynchronous: sleep overshoot makes every bit a
 * slightly different length, so a matched filter against a fixed
 * symbol clock fails (§IV-B1). Instead, the receiver finds the sharp
 * rise at the start of every bit by convolving Y[n] with a +1/-1
 * step kernel and taking local maxima (Fig. 5); the median of the
 * distances between detected starts gives the signaling time (the
 * distances follow a Rayleigh-like, positively skewed distribution —
 * Fig. 6); and gaps where edges were missed are filled at multiples of
 * the signaling time.
 */

#ifndef EMSC_CHANNEL_TIMING_HPP
#define EMSC_CHANNEL_TIMING_HPP

#include <cstddef>
#include <vector>

namespace emsc::channel {

/**
 * Symbol-timing model of the envelope handed to timing recovery.
 *
 * The edge-train estimator below is derived for the paper's RZ keying
 * only: every bit opens with a rising activity burst, so the rise
 * train is periodic at the signaling time. Synchronous modems (B-FSK,
 * multi-level ASK) key a fixed symbol grid with no per-symbol rise —
 * their envelopes used to be accepted silently and produced garbage
 * timing. Declaring the model makes that mismatch a hard
 * InvalidConfig instead: fixed-grid demodulators recover their symbol
 * clock in the modem layer and must never reach this estimator.
 */
enum class SymbolModel {
    /** Return-to-zero OOK: each bit opens with a rising edge. */
    OokRz,
    /** Synchronous fixed symbol grid (B-FSK, ML-ASK): no edge train. */
    FixedGrid,
};

/** Human-readable name of a SymbolModel ("ook-rz", "fixed-grid"). */
const char *symbolModelName(SymbolModel model);

/**
 * Timing-recovery configuration.
 *
 * recoverTiming() validates the ratio fields up front and raises a
 * RecoverableError (kind InvalidConfig) when one is outside its
 * documented domain: peakQuantile in [0, 1], peakThresholdRatio >= 0,
 * minSpacingRatio in (0, 1], gapFillRatio > 1, maxLag > minLag.
 */
struct TimingConfig
{
    /**
     * Which symbol model produced the envelope. Both estimateBitPeriod
     * and recoverTiming raise InvalidConfig for anything but OokRz —
     * see SymbolModel.
     */
    SymbolModel symbolModel = SymbolModel::OokRz;
    /**
     * Edge kernel length l_d in (decimated) samples; 0 = derive
     * automatically from the envelope's autocorrelation.
     */
    std::size_t edgeKernel = 0;
    /** Fraction of the strongest edges used to set the peak threshold. */
    double peakQuantile = 0.85;
    /** Peak threshold as a fraction of that quantile height. */
    double peakThresholdRatio = 0.32;
    /** Spacings below this fraction of the median are merged. */
    double minSpacingRatio = 0.55;
    /** Spacings above this multiple of the median get starts inserted. */
    double gapFillRatio = 1.55;
    /** Autocorrelation lag search range (decimated samples). */
    std::size_t minLag = 4;
    std::size_t maxLag = 4000;
    /**
     * Length of the acquisition envelope's edge ramps (the sliding-DFT
     * window divided by the decimation), in decimated samples. Bit
     * periods cannot be shorter than the ramp, so the period search
     * starts beyond it. Zero = unknown.
     */
    std::size_t rampHint = 0;
    /**
     * Expected signaling time in (decimated) samples, used when the
     * autocorrelation finds no periodicity — e.g. a segment too short
     * or too corrupt to measure, re-locked with the period recovered
     * from an earlier clean segment. Zero = unknown; a generic scale
     * of 64 samples is assumed instead.
     */
    double periodHint = 0.0;
};

/**
 * Estimate the bit period of an RZ-keyed envelope from the first
 * dominant peak of its autocorrelation. Every bit opens with an
 * activity burst, so the envelope is strongly periodic at the
 * signaling time even before any edge detection.
 *
 * @return the period in samples, or 0 when no periodicity was found
 */
double estimateBitPeriod(const std::vector<double> &y,
                         const TimingConfig &config);

/** Timing-recovery output. */
struct BitTiming
{
    /** Start index (in Y samples) of each detected bit. */
    std::vector<std::size_t> starts;
    /** Median bit spacing (Y samples): the recovered signaling time. */
    double signalingTime = 0.0;
    /** Raw spacings between detected starts before gap filling. */
    std::vector<double> rawSpacings;
    /** Edge-detector output of the final pass (for Fig. 5). */
    std::vector<double> edgeSignal;
};

/**
 * Recover bit starting points from the acquired envelope.
 */
BitTiming recoverTiming(const std::vector<double> &y,
                        const TimingConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_TIMING_HPP
