#include "channel/metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

namespace emsc::channel {

namespace {

/**
 * Width of the diagonal band explored by the alignment. Insertions
 * and deletions are rare (<1% in every experiment), so the optimal
 * path stays close to the diagonal; the band keeps the DP linear in
 * sequence length instead of quadratic.
 */
constexpr std::ptrdiff_t kBandSlack = 96;

constexpr std::uint32_t kInf = 0x3fffffff;

AlignmentCounts
alignImpl(const Bits &sent, const Bits &received, bool semi_global)
{
    AlignmentCounts out;
    out.sentLength = sent.size();
    out.receivedLength = received.size();

    auto n = static_cast<std::ptrdiff_t>(sent.size());
    auto m = static_cast<std::ptrdiff_t>(received.size());
    if (n == 0) {
        out.insertions = semi_global ? 0 : static_cast<std::size_t>(m);
        return out;
    }
    if (m == 0) {
        out.deletions = static_cast<std::size_t>(n);
        return out;
    }

    // Banded Levenshtein: only |j - i| <= half is explored, with the
    // band sized to cover the length difference plus slack.
    std::ptrdiff_t half = kBandSlack + std::abs(m - n);
    std::ptrdiff_t width = 2 * half + 1;

    std::vector<std::uint32_t> dp(
        static_cast<std::size_t>((n + 1) * width), kInf);
    auto idx = [&](std::ptrdiff_t i, std::ptrdiff_t j) -> std::size_t {
        return static_cast<std::size_t>(i * width + (j - i + half));
    };
    auto inBand = [&](std::ptrdiff_t i, std::ptrdiff_t j) {
        return j >= 0 && j <= m && j - i >= -half && j - i <= half;
    };

    dp[idx(0, 0)] = 0;
    for (std::ptrdiff_t j = 1; j <= std::min(m, half); ++j)
        dp[idx(0, j)] = static_cast<std::uint32_t>(j);

    for (std::ptrdiff_t i = 1; i <= n; ++i) {
        std::ptrdiff_t jlo = std::max<std::ptrdiff_t>(0, i - half);
        std::ptrdiff_t jhi = std::min(m, i + half);
        for (std::ptrdiff_t j = jlo; j <= jhi; ++j) {
            std::uint32_t best = kInf;
            if (j > 0 && inBand(i - 1, j - 1)) {
                std::uint32_t c =
                    dp[idx(i - 1, j - 1)] +
                    (sent[static_cast<std::size_t>(i - 1)] !=
                     received[static_cast<std::size_t>(j - 1)]);
                best = std::min(best, c);
            }
            if (inBand(i - 1, j))
                best = std::min(best, dp[idx(i - 1, j)] + 1);
            if (j > 0 && inBand(i, j - 1))
                best = std::min(best, dp[idx(i, j - 1)] + 1);
            dp[idx(i, j)] = best;
        }
    }

    // Terminal cell: the corner for a global alignment; the cheapest
    // end column in the last row for a semi-global one (trailing
    // received bits are then simply not part of the alignment).
    std::ptrdiff_t jend = m;
    if (semi_global) {
        std::uint32_t best = kInf;
        std::ptrdiff_t jlo = std::max<std::ptrdiff_t>(0, n - half);
        for (std::ptrdiff_t j = jlo; j <= std::min(m, n + half); ++j) {
            if (dp[idx(n, j)] < best) {
                best = dp[idx(n, j)];
                jend = j;
            }
        }
    }

    // Backtrace, preferring match/substitution so counts are stable.
    std::ptrdiff_t i = n, j = jend;
    while (i > 0 || j > 0) {
        std::uint32_t cur = dp[idx(i, j)];
        if (i > 0 && j > 0 && inBand(i - 1, j - 1)) {
            std::uint32_t sub_cost =
                sent[static_cast<std::size_t>(i - 1)] !=
                received[static_cast<std::size_t>(j - 1)];
            if (cur == dp[idx(i - 1, j - 1)] + sub_cost) {
                if (sub_cost)
                    ++out.substitutions;
                else
                    ++out.matched;
                --i;
                --j;
                continue;
            }
        }
        if (i > 0 && inBand(i - 1, j) && cur == dp[idx(i - 1, j)] + 1) {
            ++out.deletions;
            --i;
            continue;
        }
        if (j > 0 && inBand(i, j - 1) && cur == dp[idx(i, j - 1)] + 1) {
            ++out.insertions;
            --j;
            continue;
        }
        // Band edge fallback (should not happen for sane inputs).
        if (i > 0) {
            ++out.deletions;
            --i;
        } else {
            ++out.insertions;
            --j;
        }
    }
    return out;
}

} // namespace

AlignmentCounts
alignBits(const Bits &sent, const Bits &received)
{
    return alignImpl(sent, received, false);
}

AlignmentCounts
alignBitsSemiGlobal(const Bits &sent, const Bits &received)
{
    return alignImpl(sent, received, true);
}

} // namespace emsc::channel
