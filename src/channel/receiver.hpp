/**
 * @file
 * The complete covert-channel receiver pipeline.
 *
 * Capture -> Eq. (1) acquisition (sliding DFT over the VRM's
 * fundamental + harmonic) -> asynchronous bit-timing recovery (edge
 * convolution, median signaling time, gap filling) -> per-bit power
 * labeling with a bimodal-histogram threshold -> frame
 * synchronisation -> Hamming correction. Each stage's intermediate
 * products are kept in the result for the figure benches and tests.
 */

#ifndef EMSC_CHANNEL_RECEIVER_HPP
#define EMSC_CHANNEL_RECEIVER_HPP

#include <optional>
#include <string>

#include "channel/acquisition.hpp"
#include "channel/coding.hpp"
#include "channel/labeling.hpp"
#include "channel/timing.hpp"
#include "sdr/iq.hpp"
#include "support/error.hpp"

namespace emsc::channel {

/** Aggregate receiver configuration. */
struct ReceiverConfig
{
    AcquisitionConfig acquisition;
    TimingConfig timing;
    LabelingConfig labeling;
    FrameConfig frame;
    /**
     * Shrink the sliding-DFT window when the recovered signaling time
     * shows the bits are shorter than the window can resolve (the
     * receiver-side equivalent of picking a sensible FFT length for
     * the observed symbol rate).
     */
    bool adaptiveWindow = true;
    /**
     * Smallest window the adaptation may fall to. Values below 16 or
     * not a power of two are clamped/rounded at receive() entry (a
     * zero here used to let the adaptation halve the window to sizes
     * the DFT stages reject).
     */
    std::size_t minWindow = 128;
};

/**
 * Everything the receiver extracted from one capture.
 *
 * Failure reporting is structured, never process-terminating:
 *  - failure holds the Error (kind + message) when a pipeline stage
 *    raised a RecoverableError on this capture (too short to analyse,
 *    degenerate timing config, ...). Stages completed before the
 *    error keep their intermediate products for post-mortems.
 *  - diagnostic records configuration values receive() silently
 *    adjusted while still producing a full result.
 *  - A capture with no detectable carrier is not a failure: the
 *    result is simply empty (carrierHz == 0, no frame).
 */
struct ReceiverResult
{
    /** Estimated VRM fundamental (Hz). */
    double carrierHz = 0.0;
    /** Window size actually used after adaptation. */
    std::size_t windowUsed = 0;
    /** Acquired (decimated) envelope. */
    AcquiredSignal acquired;
    /** Timing recovery output. */
    BitTiming timing;
    /** Labeling output; labeled.bits is the raw channel bit stream. */
    LabeledBits labeled;
    /** Frame parse of the channel stream. */
    ParsedFrame frame;
    /**
     * Notes about configuration values receive() had to adjust to keep
     * the pipeline well-formed (e.g. a clamped minWindow or a window
     * rounded to a power of two). Empty when the config was usable
     * as given.
     */
    std::string diagnostic;
    /**
     * Set when the pipeline stopped on a recoverable error; empty on
     * success. See the struct comment for the reporting contract.
     */
    std::optional<Error> failure;

    /** Whether the pipeline ran to completion on this capture. */
    bool ok() const { return !failure.has_value(); }

    /** Convenience: the decoded payload (empty if no frame found). */
    const Bits &payload() const { return frame.payload; }
};

/**
 * Run the full pipeline on a capture. Never terminates the process on
 * a malformed capture or config: recoverable errors from any stage are
 * caught and reported in ReceiverResult::failure.
 */
ReceiverResult receive(const sdr::IqCapture &capture,
                       const ReceiverConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_RECEIVER_HPP
