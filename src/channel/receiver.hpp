/**
 * @file
 * The complete covert-channel receiver pipeline.
 *
 * Capture -> Eq. (1) acquisition (sliding DFT over the VRM's
 * fundamental + harmonic) -> asynchronous bit-timing recovery (edge
 * convolution, median signaling time, gap filling) -> per-bit power
 * labeling with a bimodal-histogram threshold -> frame
 * synchronisation -> Hamming correction. Each stage's intermediate
 * products are kept in the result for the figure benches and tests.
 */

#ifndef EMSC_CHANNEL_RECEIVER_HPP
#define EMSC_CHANNEL_RECEIVER_HPP

#include <limits>
#include <optional>
#include <string>

#include "channel/acquisition.hpp"
#include "channel/coding.hpp"
#include "channel/labeling.hpp"
#include "channel/timing.hpp"
#include "sdr/iq.hpp"
#include "support/error.hpp"

namespace emsc::channel {

/**
 * Corrupt-span detection and per-segment re-lock configuration.
 *
 * The receiver classifies the capture into clean segments separated by
 * corrupt spans (SDR dropouts read as all-zero samples, saturation as
 * runs of full-scale samples) and front-end level steps (AGC
 * re-trains). Each clean segment re-acquires its own carrier, bit
 * timing and labeling threshold; corrupt spans are bridged with
 * erasure-marked bits so a burst of lost samples becomes a marked
 * substitution burst the interleaved Hamming code can absorb, instead
 * of a deletion that shifts every later bit.
 */
struct SegmentationConfig
{
    /** Master switch; off = the single-lock whole-capture pipeline. */
    bool enabled = true;
    /**
     * Classification block length in decimated envelope samples.
     * 0 = auto: about two recovered bit periods, so every clean block
     * sees at least one bit-start activity burst.
     */
    std::size_t blockSamples = 0;
    /** Fraction of exactly-zero raw samples marking a dropout block. */
    double deadZeroFraction = 0.7;
    /**
     * A block only counts as a dropout when its envelope level is also
     * below this fraction of the capture's median block level. Weak
     * captures (distance, walls) quantise to many exact zeros without
     * being dropouts; a true dropout span's envelope is essentially 0.
     */
    double deadLevelRatio = 0.05;
    /** Fraction of full-scale raw samples marking a saturated block. */
    double clippedFraction = 0.3;
    /** |I| or |Q| at or above this counts as full-scale (clipped). */
    double clipLevel = 0.97;
    /**
     * Adjacent block-level ratio (either direction, sustained for two
     * blocks) that opens a new segment: an AGC gain step. Small
     * enough to catch modest gain steps (whose stale threshold still
     * mislabels bits), large enough that low-SNR level flutter does
     * not shred clean captures into sub-lockable fragments.
     */
    double stepRatio = 1.30;
    /** Segments shorter than this many blocks are treated as corrupt. */
    std::size_t minSegmentBlocks = 3;
};

/** One clean span the receiver re-locked on. */
struct ReceiverSegment
{
    /** Decimated envelope range [begin, end). */
    std::size_t begin = 0;
    std::size_t end = 0;
    /** Carrier this segment tracked (Hz; the global one unless re-estimated). */
    double carrierHz = 0.0;
    /** Signaling time recovered inside the segment. */
    double signalingTime = 0.0;
    /** Robust envelope level (for diagnostics). */
    double level = 0.0;
    /** Channel bits this segment contributed to the stream. */
    std::size_t bits = 0;
};

/** Aggregate receiver configuration. */
struct ReceiverConfig
{
    AcquisitionConfig acquisition;
    TimingConfig timing;
    LabelingConfig labeling;
    FrameConfig frame;
    SegmentationConfig segmentation;
    /**
     * Shrink the sliding-DFT window when the recovered signaling time
     * shows the bits are shorter than the window can resolve (the
     * receiver-side equivalent of picking a sensible FFT length for
     * the observed symbol rate).
     */
    bool adaptiveWindow = true;
    /**
     * Smallest window the adaptation may fall to. Values below 16 or
     * not a power of two are clamped/rounded at receive() entry (a
     * zero here used to let the adaptation halve the window to sizes
     * the DFT stages reject).
     */
    std::size_t minWindow = 128;
};

/**
 * Everything the receiver extracted from one capture.
 *
 * Failure reporting is structured, never process-terminating:
 *  - failure holds the Error (kind + message) when a pipeline stage
 *    raised a RecoverableError on this capture (too short to analyse,
 *    degenerate timing config, ...). Stages completed before the
 *    error keep their intermediate products for post-mortems.
 *  - diagnostic records configuration values receive() silently
 *    adjusted while still producing a full result.
 *  - A capture with no detectable carrier is not a failure: the
 *    result is simply empty (carrierHz == 0, no frame).
 */
struct ReceiverResult
{
    /** Estimated VRM fundamental (Hz). */
    double carrierHz = 0.0;
    /** Window size actually used after adaptation. */
    std::size_t windowUsed = 0;
    /** Acquired (decimated) envelope. */
    AcquiredSignal acquired;
    /** Timing recovery output. */
    BitTiming timing;
    /** Labeling output; labeled.bits is the raw channel bit stream. */
    LabeledBits labeled;
    /** Frame parse of the channel stream. */
    ParsedFrame frame;
    /**
     * Clean segments the receiver re-locked on. A clean capture has
     * exactly one segment spanning the whole envelope (decoded by the
     * very same single-lock path as with segmentation disabled).
     */
    std::vector<ReceiverSegment> segments;
    /**
     * Erasure mask parallel to labeled.bits: 1 marks bits synthesised
     * across corrupt spans (their values are placeholders). Empty when
     * the capture was clean or segmentation is disabled.
     */
    Bits erasureMask;
    /** Number of contiguous corrupt spans (dropout/saturation) found. */
    std::size_t corruptedSpans = 0;
    /**
     * Notes about configuration values receive() had to adjust to keep
     * the pipeline well-formed (e.g. a clamped minWindow or a window
     * rounded to a power of two). Empty when the config was usable
     * as given.
     */
    std::string diagnostic;
    /**
     * Set when the pipeline stopped on a recoverable error; empty on
     * success. See the struct comment for the reporting contract.
     */
    std::optional<Error> failure;

    /** Whether the pipeline ran to completion on this capture. */
    bool ok() const { return !failure.has_value(); }

    /** Convenience: the decoded payload (empty if no frame found). */
    const Bits &payload() const { return frame.payload; }
};

/**
 * Signal-quality summary of one reception — the scalar values behind
 * the channel.* gauges, computed once and consumed by both the
 * telemetry publisher and the flight recorder so a post-mortem's
 * numbers match the published telemetry by construction.
 * NaN marks a quantity the reception did not yield.
 */
struct SignalQuality
{
    /** Timing-recovery jitter: MAD of the raw bit spacings over the
     * median spacing (unitless). */
    double jitter = std::numeric_limits<double>::quiet_NaN();
    /** Decision-threshold margin: distance from the threshold to the
     * nearer class mean over the class separation. */
    double thresholdMargin = std::numeric_limits<double>::quiet_NaN();
    /** Recovered signaling time (decimated samples per bit). */
    double signalingTime = std::numeric_limits<double>::quiet_NaN();
    /** Estimated carrier (Hz); NaN when no carrier was found. */
    double carrierHz = std::numeric_limits<double>::quiet_NaN();
    /** Sliding-DFT decision window actually used (0 = none). */
    std::size_t windowUsed = 0;
    std::size_t bitsLabeled = 0;
    std::size_t erasuresBridged = 0;
    bool frameFound = false;
    bool crcDamaged = false;
    bool failed = false;
};

/** Compute the SignalQuality summary of a (possibly partial) result. */
SignalQuality summarizeQuality(const ReceiverResult &res);

/**
 * Publish the channel-quality metrics of a completed (or partially
 * completed) reception into the global telemetry registry: carrier
 * frequency, timing jitter, threshold margin, Hamming corrections,
 * CRC failures, bridged erasures and segmentation counts.  Both the
 * batch receive() path and the streaming runtime feed their
 * ReceiverResult through this one function, so the two paths report
 * under the same stable metric names.  No-op while telemetry is
 * disabled.
 *
 * This is also the flight-recorder tap: when the recorder is armed,
 * every reception records a "reception" event carrying the same
 * SignalQuality values as the gauges plus an excerpt of the acquired
 * envelope, and a failed decode (pipeline failure, damaged CRC, or a
 * carrier without a frame) triggers an emsc.flight.v1 post-mortem
 * dump.  The tap runs even while the metrics registry is disabled.
 */
void publishReceiverTelemetry(const ReceiverResult &res);

/**
 * Run the full pipeline on a capture. Never terminates the process on
 * a malformed capture or config: recoverable errors from any stage are
 * caught and reported in ReceiverResult::failure.
 */
ReceiverResult receive(const sdr::IqCapture &capture,
                       const ReceiverConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_RECEIVER_HPP
