/**
 * @file
 * The complete covert-channel receiver pipeline.
 *
 * Capture -> Eq. (1) acquisition (sliding DFT over the VRM's
 * fundamental + harmonic) -> asynchronous bit-timing recovery (edge
 * convolution, median signaling time, gap filling) -> per-bit power
 * labeling with a bimodal-histogram threshold -> frame
 * synchronisation -> Hamming correction. Each stage's intermediate
 * products are kept in the result for the figure benches and tests.
 */

#ifndef EMSC_CHANNEL_RECEIVER_HPP
#define EMSC_CHANNEL_RECEIVER_HPP

#include <string>

#include "channel/acquisition.hpp"
#include "channel/coding.hpp"
#include "channel/labeling.hpp"
#include "channel/timing.hpp"
#include "sdr/iq.hpp"

namespace emsc::channel {

/** Aggregate receiver configuration. */
struct ReceiverConfig
{
    AcquisitionConfig acquisition;
    TimingConfig timing;
    LabelingConfig labeling;
    FrameConfig frame;
    /**
     * Shrink the sliding-DFT window when the recovered signaling time
     * shows the bits are shorter than the window can resolve (the
     * receiver-side equivalent of picking a sensible FFT length for
     * the observed symbol rate).
     */
    bool adaptiveWindow = true;
    /**
     * Smallest window the adaptation may fall to. Values below 16 or
     * not a power of two are clamped/rounded at receive() entry (a
     * zero here used to let the adaptation halve the window to sizes
     * the DFT stages reject with fatal()).
     */
    std::size_t minWindow = 128;
};

/** Everything the receiver extracted from one capture. */
struct ReceiverResult
{
    /** Estimated VRM fundamental (Hz). */
    double carrierHz = 0.0;
    /** Window size actually used after adaptation. */
    std::size_t windowUsed = 0;
    /** Acquired (decimated) envelope. */
    AcquiredSignal acquired;
    /** Timing recovery output. */
    BitTiming timing;
    /** Labeling output; labeled.bits is the raw channel bit stream. */
    LabeledBits labeled;
    /** Frame parse of the channel stream. */
    ParsedFrame frame;
    /**
     * Notes about configuration values receive() had to adjust to keep
     * the pipeline well-formed (e.g. a clamped minWindow or a window
     * rounded to a power of two). Empty when the config was usable
     * as given.
     */
    std::string diagnostic;

    /** Convenience: the decoded payload (empty if no frame found). */
    const Bits &payload() const { return frame.payload; }
};

/** Run the full pipeline on a capture. */
ReceiverResult receive(const sdr::IqCapture &capture,
                       const ReceiverConfig &config);

} // namespace emsc::channel

#endif // EMSC_CHANNEL_RECEIVER_HPP
