/**
 * @file
 * RTL-SDR v3 receiver model: baseband synthesis + front-end artefacts.
 *
 * The paper's receiver is a $25 RTL-SDR v3 sampling at 2.4 Msps
 * (its maximum). This model synthesises the complex baseband the
 * dongle would deliver for a ReceptionPlan: each di/dt field impulse
 * is deposited as a band-limited (fractionally delayed) complex
 * impulse after mixing with the (slightly inaccurate) local
 * oscillator, tones and impulsive interference are added, then AWGN,
 * automatic gain, a DC spur, and 8-bit quantisation are applied.
 */

#ifndef EMSC_SDR_RTLSDR_HPP
#define EMSC_SDR_RTLSDR_HPP

#include "em/scene.hpp"
#include "sdr/iq.hpp"
#include "sim/faults.hpp"
#include "support/rng.hpp"

namespace emsc::sdr {

/** Receiver configuration. */
struct SdrConfig
{
    /** Sample rate (Hz); 2.4 Msps is the RTL-SDR's maximum. */
    double sampleRate = 2.4e6;
    /** Frequency the operator tunes to (Hz). */
    double centerFrequency = 1.45e6;
    /** Crystal error (parts per million); shifts the true LO. */
    double tunerPpm = 9.0;
    /** Slow LO drift (Hz per second), e.g. thermal. */
    double driftHzPerSecond = 0.4;
    /** ADC resolution in bits (RTL-SDR: 8). */
    int adcBits = 8;
    /** AGC target RMS as a fraction of ADC full scale. */
    double agcTargetRms = 0.2;
    /** Residual DC offset as a fraction of full scale. */
    double dcOffset = 0.004;
    /** Disable quantisation (ideal front end) for diagnostics. */
    bool idealFrontEnd = false;
    /**
     * Fixed front-end gain. Zero (default) engages the AGC, which
     * normalises each capture's RMS to agcTargetRms. Chunked
     * (streaming) captures must use a fixed gain so chunk boundaries
     * do not step in level; measureAgcGain() provides one.
     */
    double fixedGain = 0.0;
};

/**
 * The receiver: turns a reception plan into the capture the attack
 * pipeline processes.
 */
class RtlSdr
{
  public:
    RtlSdr(const SdrConfig &config, Rng &rng);

    /**
     * Synthesise the capture for [t0, t1).
     *
     * @param plan    scaled emissions + interference from the EM scene
     * @param faults  optional fault plan; the SDR realises its Dropout
     *                (samples zeroed as by USB buffer loss), Saturation
     *                (front-end overload into ADC clipping), GainStep
     *                (AGC re-train holding a new gain until the next
     *                step) and LoHop (tuner re-lock offsetting the LO)
     *                events and ignores the rest
     */
    IqCapture capture(const em::ReceptionPlan &plan, TimeNs t0, TimeNs t1,
                      const sim::FaultPlan *faults = nullptr);

    /**
     * Synthesise one chunk of the capture that capture(plan, t0, t1)
     * would produce for the same window: samples
     * [first_sample, first_sample + count) of the total_samples-long
     * buffer starting at t0. Fault realisation uses global sample
     * indices, so gain steps hold across chunk boundaries and LO-hop
     * phase stays continuous. The AGC normalises over whatever buffer
     * it sees, so chunked synthesis requires a fixed front end:
     * config.fixedGain > 0 (see measureAgcGain()) or idealFrontEnd —
     * anything else raises InvalidConfig.
     *
     * addNoise() consumes the shared RNG sequentially, so chunks must
     * be requested in order, exactly once each, for the noise stream
     * to match a whole-buffer capture.
     */
    IqCapture captureChunk(const em::ReceptionPlan &plan, TimeNs t0,
                           std::size_t first_sample, std::size_t count,
                           std::size_t total_samples,
                           const sim::FaultPlan *faults = nullptr);

    /** Samples capture(plan, t0, t1) would synthesise for the window. */
    std::size_t sampleCount(TimeNs t0, TimeNs t1) const;

    const SdrConfig &config() const { return cfg; }

    /** True LO frequency including the ppm error (diagnostic). */
    double actualLoFrequency() const;

    /**
     * Measure the AGC gain a capture of this plan would get, without
     * producing samples — used to fix the gain before chunked capture.
     */
    double measureAgcGain(const em::ReceptionPlan &plan, TimeNs t0,
                          TimeNs t1);

  private:
    // The synthesis helpers operate on one chunk of a conceptually
    // larger buffer: `first` is the global sample index of buf[0] and
    // `total` the full buffer length. A whole-buffer capture is the
    // first = 0, total = buf.size() special case.
    void depositImpulses(std::vector<IqSample> &buf,
                         const std::vector<em::FieldImpulse> &impulses,
                         TimeNs t0, std::size_t first);
    void addTones(std::vector<IqSample> &buf,
                  const std::vector<em::ToneInterferer> &tones, TimeNs t0,
                  std::size_t first);
    void addNoise(std::vector<IqSample> &buf, double rms);
    void quantize(std::vector<IqSample> &buf);
    void applyAnalogFaults(std::vector<IqSample> &buf,
                           const sim::FaultPlan &faults, TimeNs t0,
                           std::size_t first, std::size_t total);
    void applyDropouts(std::vector<IqSample> &buf,
                       const sim::FaultPlan &faults, TimeNs t0,
                       std::size_t first, std::size_t total);
    IqCapture captureInto(const em::ReceptionPlan &plan, TimeNs t0,
                          std::size_t first, std::size_t count,
                          std::size_t total, const sim::FaultPlan *faults);

    SdrConfig cfg;
    Rng &rng;
};

} // namespace emsc::sdr

#endif // EMSC_SDR_RTLSDR_HPP
