#include "sdr/iqfile.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "support/error.hpp"

namespace emsc::sdr {

namespace {

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

unsigned char
toU8(double v)
{
    double clamped = std::clamp(v, -1.0, 1.0);
    // rtl_sdr convention: 0..255 with 127.5 as zero.
    return static_cast<unsigned char>(
        std::lround(clamped * 127.5 + 127.5));
}

} // namespace

std::size_t
writeIqU8(const IqCapture &capture, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        raiseError(ErrorKind::IoError, "cannot open '%s' for writing",
                   path.c_str());

    std::vector<unsigned char> buf;
    buf.reserve(capture.samples.size() * 2);
    for (const IqSample &s : capture.samples) {
        buf.push_back(toU8(s.real()));
        buf.push_back(toU8(s.imag()));
    }
    std::size_t written =
        std::fwrite(buf.data(), 1, buf.size(), f.get());
    if (written != buf.size())
        raiseError(ErrorKind::IoError,
                   "short write to '%s' (%zu of %zu bytes)",
                   path.c_str(), written, buf.size());
    // fwrite() only fills stdio's buffer; a full disk surfaces at
    // flush/close time, so both must be checked before reporting
    // success (FileCloser would silently discard the fclose result).
    if (std::fflush(f.get()) != 0)
        raiseError(ErrorKind::IoError, "cannot flush '%s'",
                   path.c_str());
    std::FILE *raw = f.release();
    if (std::fclose(raw) != 0)
        raiseError(ErrorKind::IoError, "cannot close '%s'",
                   path.c_str());
    return capture.samples.size();
}

IqCapture
readIqU8(const std::string &path, double sample_rate,
         double center_frequency)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        raiseError(ErrorKind::IoError, "cannot open '%s' for reading",
                   path.c_str());

    IqCapture cap;
    cap.sampleRate = sample_rate;
    cap.centerFrequency = center_frequency;

    std::vector<unsigned char> buf(1 << 16);
    unsigned char pending = 0;
    bool have_pending = false;
    while (true) {
        std::size_t n = std::fread(buf.data(), 1, buf.size(), f.get());
        if (n == 0) {
            // fread() returns 0 both at EOF and on a read error; the
            // latter must not masquerade as a clean (truncated) EOF.
            if (std::ferror(f.get()))
                raiseError(ErrorKind::IoError,
                           "read error on '%s' after %zu samples",
                           path.c_str(), cap.samples.size());
            break;
        }
        std::size_t i = 0;
        if (have_pending) {
            cap.samples.push_back(IqSample{
                (static_cast<double>(pending) - 127.5) / 127.5,
                (static_cast<double>(buf[0]) - 127.5) / 127.5});
            have_pending = false;
            i = 1;
        }
        for (; i + 1 < n; i += 2) {
            cap.samples.push_back(IqSample{
                (static_cast<double>(buf[i]) - 127.5) / 127.5,
                (static_cast<double>(buf[i + 1]) - 127.5) / 127.5});
        }
        if (i < n) {
            pending = buf[i];
            have_pending = true;
        }
    }
    if (have_pending)
        warn("'%s' has an odd byte count; trailing I sample dropped",
             path.c_str());
    return cap;
}

IqFileReader::IqFileReader(const std::string &path, double sample_rate,
                           double center_frequency)
    : path(path), fs(sample_rate), fc(center_frequency)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        raiseError(ErrorKind::IoError, "cannot open '%s' for reading",
                   path.c_str());
}

IqFileReader::~IqFileReader()
{
    if (file)
        std::fclose(file);
}

std::size_t
IqFileReader::readNext(std::size_t max_samples, std::vector<IqSample> &out)
{
    out.clear();
    if (truncated) {
        // The previous call delivered every complete sample and parked
        // the truncation here so the short final chunk still flowed
        // through with its correct count; now surface the diagnostic.
        truncated = false;
        done = true;
        raiseError(ErrorKind::MalformedInput,
                   "'%s' is truncated mid-sample (odd byte count): "
                   "trailing I byte has no Q component after %zu "
                   "complete samples",
                   path.c_str(), consumed);
    }
    if (done || max_samples == 0)
        return 0;
    out.reserve(max_samples);

    while (out.size() < max_samples) {
        // Ask for exactly the bytes the remaining samples need (plus
        // the odd byte a pending I component may leave), so the reader
        // never buffers beyond the caller's chunk.
        std::size_t want = (max_samples - out.size()) * 2 -
                           (havePending ? 1 : 0);
        buf.resize(want);
        std::size_t n = std::fread(buf.data(), 1, want, file);
        if (n == 0) {
            if (std::ferror(file))
                raiseError(ErrorKind::IoError,
                           "read error on '%s' after %zu samples",
                           path.c_str(), consumed + out.size());
            if (havePending) {
                // EOF split a sample in half: the capture was
                // truncated mid-write. Hand back whatever complete
                // samples this chunk gathered first (so the short
                // final chunk flows through with its correct count)
                // and raise the structured error on the next call —
                // or right now when there is nothing left to deliver.
                havePending = false;
                truncated = true;
                if (out.empty()) {
                    truncated = false;
                    done = true;
                    raiseError(ErrorKind::MalformedInput,
                               "'%s' is truncated mid-sample (odd "
                               "byte count): trailing I byte has no Q "
                               "component after %zu complete samples",
                               path.c_str(), consumed);
                }
            } else {
                done = true;
            }
            break;
        }
        std::size_t i = 0;
        if (havePending) {
            out.push_back(IqSample{
                (static_cast<double>(pending) - 127.5) / 127.5,
                (static_cast<double>(buf[0]) - 127.5) / 127.5});
            havePending = false;
            i = 1;
        }
        for (; i + 1 < n; i += 2) {
            out.push_back(IqSample{
                (static_cast<double>(buf[i]) - 127.5) / 127.5,
                (static_cast<double>(buf[i + 1]) - 127.5) / 127.5});
        }
        if (i < n) {
            pending = buf[i];
            havePending = true;
        }
    }
    consumed += out.size();
    return out.size();
}

} // namespace emsc::sdr
