/**
 * @file
 * IQ capture container for the software-defined-radio model.
 */

#ifndef EMSC_SDR_IQ_HPP
#define EMSC_SDR_IQ_HPP

#include <complex>
#include <cstddef>
#include <vector>

#include "support/types.hpp"

namespace emsc::sdr {

using IqSample = std::complex<double>;

/** A complex-baseband capture with its acquisition geometry. */
struct IqCapture
{
    /** Complex baseband samples. */
    std::vector<IqSample> samples;
    /** Sample rate (Hz). */
    double sampleRate = 0.0;
    /**
     * Frequency the receiver *believes* it is tuned to (Hz). The
     * tuner's ppm error means the true center differs slightly; the
     * receiver does not know by how much.
     */
    double centerFrequency = 0.0;
    /** Capture start time in the simulation. */
    TimeNs startTime = 0;

    /** Capture duration in seconds. */
    double
    duration() const
    {
        return sampleRate > 0.0
                   ? static_cast<double>(samples.size()) / sampleRate
                   : 0.0;
    }

    /**
     * Baseband DFT bin index (for an M-point DFT) of an absolute
     * radio frequency, as the receiver would compute it from its
     * believed center frequency. Negative offsets wrap to the upper
     * bins, matching DFT periodicity.
     */
    std::size_t
    binForFrequency(double freq_hz, std::size_t window) const
    {
        double offset = freq_hz - centerFrequency;
        double bin = offset * static_cast<double>(window) / sampleRate;
        auto k = static_cast<long long>(std::llround(bin));
        auto m = static_cast<long long>(window);
        k %= m;
        if (k < 0)
            k += m;
        return static_cast<std::size_t>(k);
    }
};

} // namespace emsc::sdr

#endif // EMSC_SDR_IQ_HPP
