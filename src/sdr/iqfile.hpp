/**
 * @file
 * IQ capture file I/O in the RTL-SDR interleaved-u8 format.
 *
 * rtl_sdr(1) and most SDR toolchains exchange captures as interleaved
 * unsigned 8-bit I/Q samples with 127.5 as the zero level. Writing our
 * simulated captures in that format lets them be inspected with the
 * exact tools the paper's authors used (GNU Radio, gqrx, inspectrum),
 * and reading lets externally recorded captures run through this
 * repository's receiver pipeline.
 */

#ifndef EMSC_SDR_IQFILE_HPP
#define EMSC_SDR_IQFILE_HPP

#include <string>

#include "sdr/iq.hpp"

namespace emsc::sdr {

/**
 * Write the capture as interleaved u8 I/Q (rtl_sdr format). Sample
 * values are expected in [-1, 1] (the RtlSdr model's full scale) and
 * are clamped otherwise. The stream is flushed and closed before
 * returning, so success really means the bytes reached the OS; any
 * failure (unwritable path, short write, full disk at flush/close)
 * raises a RecoverableError of kind IoError.
 *
 * @return number of complex samples written
 */
std::size_t writeIqU8(const IqCapture &capture, const std::string &path);

/**
 * Read an interleaved u8 I/Q file into a capture. The file carries no
 * metadata, so the caller supplies the acquisition geometry. An
 * odd-length file only costs the trailing half sample (with a warn());
 * an unreadable path or a mid-file read error raises a
 * RecoverableError of kind IoError instead of being mistaken for EOF.
 */
IqCapture readIqU8(const std::string &path, double sample_rate,
                   double center_frequency);

} // namespace emsc::sdr

#endif // EMSC_SDR_IQFILE_HPP
