/**
 * @file
 * IQ capture file I/O in the RTL-SDR interleaved-u8 format.
 *
 * rtl_sdr(1) and most SDR toolchains exchange captures as interleaved
 * unsigned 8-bit I/Q samples with 127.5 as the zero level. Writing our
 * simulated captures in that format lets them be inspected with the
 * exact tools the paper's authors used (GNU Radio, gqrx, inspectrum),
 * and reading lets externally recorded captures run through this
 * repository's receiver pipeline.
 */

#ifndef EMSC_SDR_IQFILE_HPP
#define EMSC_SDR_IQFILE_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "sdr/iq.hpp"

namespace emsc::sdr {

/**
 * Write the capture as interleaved u8 I/Q (rtl_sdr format). Sample
 * values are expected in [-1, 1] (the RtlSdr model's full scale) and
 * are clamped otherwise. The stream is flushed and closed before
 * returning, so success really means the bytes reached the OS; any
 * failure (unwritable path, short write, full disk at flush/close)
 * raises a RecoverableError of kind IoError.
 *
 * @return number of complex samples written
 */
std::size_t writeIqU8(const IqCapture &capture, const std::string &path);

/**
 * Read an interleaved u8 I/Q file into a capture. The file carries no
 * metadata, so the caller supplies the acquisition geometry. An
 * odd-length file only costs the trailing half sample (with a warn());
 * an unreadable path or a mid-file read error raises a
 * RecoverableError of kind IoError instead of being mistaken for EOF.
 */
IqCapture readIqU8(const std::string &path, double sample_rate,
                   double center_frequency);

/**
 * Chunked reader for the same interleaved-u8 format: readNext() hands
 * out the capture in caller-sized chunks without ever materialising
 * the whole file, so a streaming pipeline's resident sample memory is
 * bounded by the chunk size rather than the capture length. An
 * unopenable path or mid-file read error raises a RecoverableError of
 * kind IoError.
 *
 * A trailing odd byte means the capture was truncated mid-sample
 * (half an I/Q pair). Unlike readIqU8()'s whole-buffer convenience
 * path, the chunked reader is the live-ingest entry point, so it
 * surfaces that as data rather than as a log line: every complete
 * sample is still delivered (short final chunks flow through with
 * their correct counts), after which readNext() raises a
 * RecoverableError of kind MalformedInput carrying the
 * truncated-sample diagnostic.
 *
 * Concatenating every readNext() chunk yields exactly the sample
 * sequence readIqU8() returns for the same file.
 */
class IqFileReader
{
  public:
    IqFileReader(const std::string &path, double sample_rate,
                 double center_frequency);
    ~IqFileReader();

    IqFileReader(const IqFileReader &) = delete;
    IqFileReader &operator=(const IqFileReader &) = delete;

    /**
     * Read up to `max_samples` complex samples into `out` (replacing
     * its contents). @return the number of samples read; 0 only at end
     * of file.
     */
    std::size_t readNext(std::size_t max_samples,
                         std::vector<IqSample> &out);

    /** Whether the file has been fully consumed. */
    bool exhausted() const { return done; }

    /** Complex samples handed out so far. */
    std::size_t samplesRead() const { return consumed; }

    double sampleRate() const { return fs; }
    double centerFrequency() const { return fc; }

  private:
    std::FILE *file = nullptr;
    std::string path;
    double fs;
    double fc;
    std::size_t consumed = 0;
    bool done = false;
    /** EOF hit mid-sample; the next readNext() raises the error. */
    bool truncated = false;
    unsigned char pending = 0;
    bool havePending = false;
    std::vector<unsigned char> buf;
};

} // namespace emsc::sdr

#endif // EMSC_SDR_IQFILE_HPP
