#include "sdr/rtlsdr.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace emsc::sdr {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

} // namespace

RtlSdr::RtlSdr(const SdrConfig &config, Rng &rng) : cfg(config), rng(rng)
{
    if (cfg.sampleRate <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "SDR sample rate must be positive");
    if (cfg.adcBits < 2 || cfg.adcBits > 16)
        raiseError(ErrorKind::InvalidConfig,
                   "SDR ADC resolution %d out of range", cfg.adcBits);
}

double
RtlSdr::actualLoFrequency() const
{
    return cfg.centerFrequency * (1.0 + cfg.tunerPpm * 1e-6);
}

void
RtlSdr::depositImpulses(std::vector<IqSample> &buf,
                        const std::vector<em::FieldImpulse> &impulses,
                        TimeNs t0)
{
    double fs = cfg.sampleRate;
    double lo = actualLoFrequency();
    double drift = cfg.driftHzPerSecond;
    auto n = static_cast<std::ptrdiff_t>(buf.size());

    // Deposit a single complex impulse of amplitude `amp` occurring
    // `t_rel` seconds into the capture, linearly split between its two
    // neighbouring samples (adequately band-limited for bins well
    // inside Nyquist; the fixed roll-off folds into calibration).
    auto deposit = [&](double t_rel, double amp) {
        // Mixer phase at the impulse instant, including slow LO drift:
        // phi(t) = 2*pi*(lo*t + drift*t^2/2).
        double phase = kTwoPi * (lo * t_rel + 0.5 * drift * t_rel * t_rel);
        IqSample rotated = amp * IqSample{std::cos(phase),
                                          -std::sin(phase)};
        double pos = t_rel * fs;
        auto i0 = static_cast<std::ptrdiff_t>(std::floor(pos));
        double frac = pos - std::floor(pos);
        if (i0 >= 0 && i0 < n)
            buf[static_cast<std::size_t>(i0)] += rotated * (1.0 - frac);
        if (i0 + 1 >= 0 && i0 + 1 < n)
            buf[static_cast<std::size_t>(i0 + 1)] += rotated * frac;
    };

    for (const em::FieldImpulse &imp : impulses) {
        double t_rel = toSeconds(imp.time - t0);
        // di/dt of a trapezoidal current burst: a positive impulse at
        // the rising edge and a negative one at the falling edge.
        deposit(t_rel, imp.amplitude);
        deposit(t_rel + toSeconds(imp.width), -imp.amplitude);
    }
}

void
RtlSdr::addTones(std::vector<IqSample> &buf,
                 const std::vector<em::ToneInterferer> &tones, TimeNs t0)
{
    double fs = cfg.sampleRate;
    double lo = actualLoFrequency();
    double start_s = toSeconds(t0);

    for (const em::ToneInterferer &tone : tones) {
        if (tone.amplitude <= 0.0)
            continue;
        // Samples during which the source is switched on.
        std::size_t on0 = 0;
        std::size_t on1 = buf.size();
        if (tone.onset > t0)
            on0 = std::min(buf.size(),
                           static_cast<std::size_t>(
                               toSeconds(tone.onset - t0) * fs));
        if (tone.activeDuration > 0) {
            TimeNs off = tone.onset + tone.activeDuration;
            on1 = off <= t0 ? 0
                            : std::min(buf.size(),
                                       static_cast<std::size_t>(
                                           toSeconds(off - t0) * fs));
        }
        // Baseband offset of this tone through the (erroneous) LO.
        double base = tone.frequency - lo;
        // Recompute the phasor step once per block to track drift
        // cheaply; within a block the frequency is constant. The
        // initial phase derives from absolute time so chunked captures
        // stay phase-continuous across boundaries.
        constexpr std::size_t kBlock = 2048;
        double phase = std::fmod(kTwoPi * base * start_s, kTwoPi);
        for (std::size_t i = 0; i < buf.size(); i += kBlock) {
            double t_mid = start_s +
                           static_cast<double>(i) / fs;
            double wobble =
                tone.driftHz *
                std::sin(kTwoPi * t_mid / tone.driftPeriodS);
            double f_off = base + wobble;
            double step = kTwoPi * f_off / fs;
            std::size_t end = std::min(buf.size(), i + kBlock);
            for (std::size_t j = i; j < end; ++j) {
                // Keep the phase advancing across off spans so the
                // tone is phase-continuous when it is on.
                if (j >= on0 && j < on1)
                    buf[j] += tone.amplitude *
                              IqSample{std::cos(phase), std::sin(phase)};
                phase += step;
            }
            if (phase > kTwoPi * 1e6)
                phase = std::fmod(phase, kTwoPi);
        }
    }
}

void
RtlSdr::addNoise(std::vector<IqSample> &buf, double rms)
{
    if (rms <= 0.0)
        return;
    double per_component = rms / std::numbers::sqrt2;
    for (IqSample &s : buf)
        s += IqSample{rng.gaussian(0.0, per_component),
                      rng.gaussian(0.0, per_component)};
}

double
RtlSdr::measureAgcGain(const em::ReceptionPlan &plan, TimeNs t0, TimeNs t1)
{
    SdrConfig saved = cfg;
    cfg.idealFrontEnd = true; // skip quantisation for the probe
    IqCapture probe = capture(plan, t0, t1);
    cfg = saved;
    double acc = 0.0;
    for (const IqSample &s : probe.samples)
        acc += std::norm(s);
    double rms = std::sqrt(acc /
                           std::max<std::size_t>(probe.samples.size(), 1));
    return rms > 0.0 ? cfg.agcTargetRms / rms : 1.0;
}

void
RtlSdr::quantize(std::vector<IqSample> &buf)
{
    if (buf.empty())
        return;

    // AGC: normalise RMS to the target fraction of full scale, unless
    // the operator fixed the gain (chunked captures).
    double gain = cfg.fixedGain;
    if (gain <= 0.0) {
        double acc = 0.0;
        for (const IqSample &s : buf)
            acc += std::norm(s);
        double rms = std::sqrt(acc / static_cast<double>(buf.size()));
        gain = rms > 0.0 ? cfg.agcTargetRms / rms : 1.0;
    }

    double levels = static_cast<double>((1 << (cfg.adcBits - 1)) - 1);
    for (IqSample &s : buf) {
        double re = std::clamp(s.real() * gain + cfg.dcOffset, -1.0, 1.0);
        double im = std::clamp(s.imag() * gain + cfg.dcOffset, -1.0, 1.0);
        re = std::round(re * levels) / levels;
        im = std::round(im * levels) / levels;
        s = IqSample{re, im};
    }
}

namespace {

/** Sample index of an absolute time, clamped to the buffer. */
std::size_t
sampleIndex(TimeNs when, TimeNs t0, double fs, std::size_t n)
{
    if (when <= t0)
        return 0;
    return std::min(n, static_cast<std::size_t>(toSeconds(when - t0) * fs));
}

} // namespace

void
RtlSdr::applyAnalogFaults(std::vector<IqSample> &buf,
                          const sim::FaultPlan &faults, TimeNs t0)
{
    double fs = cfg.sampleRate;
    std::size_t n = buf.size();

    // Saturation bursts: drive the span hard so quantize() clips it.
    for (const sim::FaultEvent &e :
         faults.ofKind(sim::FaultKind::Saturation)) {
        std::size_t i0 = sampleIndex(e.start, t0, fs, n);
        std::size_t i1 = sampleIndex(e.start + e.duration, t0, fs, n);
        for (std::size_t i = i0; i < i1; ++i)
            buf[i] *= e.magnitude;
    }

    // AGC re-trains: each step holds its gain until the next step.
    std::vector<sim::FaultEvent> steps =
        faults.ofKind(sim::FaultKind::GainStep);
    for (std::size_t k = 0; k < steps.size(); ++k) {
        std::size_t i0 = sampleIndex(steps[k].start, t0, fs, n);
        std::size_t i1 = k + 1 < steps.size()
                             ? sampleIndex(steps[k + 1].start, t0, fs, n)
                             : n;
        for (std::size_t i = i0; i < i1; ++i)
            buf[i] *= steps[k].magnitude;
    }

    // Tuner re-locks: from each hop on, the LO is offset by the hop
    // frequency (replaced by the next hop), rotating the baseband.
    std::vector<sim::FaultEvent> hops =
        faults.ofKind(sim::FaultKind::LoHop);
    for (std::size_t k = 0; k < hops.size(); ++k) {
        std::size_t i0 = sampleIndex(hops[k].start, t0, fs, n);
        std::size_t i1 = k + 1 < hops.size()
                             ? sampleIndex(hops[k + 1].start, t0, fs, n)
                             : n;
        double step = -kTwoPi * hops[k].magnitude / fs;
        double phase = 0.0;
        for (std::size_t i = i0; i < i1; ++i) {
            buf[i] *= IqSample{std::cos(phase), std::sin(phase)};
            phase += step;
        }
    }
}

void
RtlSdr::applyDropouts(std::vector<IqSample> &buf,
                      const sim::FaultPlan &faults, TimeNs t0)
{
    double fs = cfg.sampleRate;
    std::size_t n = buf.size();
    for (const sim::FaultEvent &e :
         faults.ofKind(sim::FaultKind::Dropout)) {
        std::size_t i0 = sampleIndex(e.start, t0, fs, n);
        std::size_t i1 = sampleIndex(e.start + e.duration, t0, fs, n);
        // Post-quantisation zeros: the host never saw these samples.
        std::fill(buf.begin() + static_cast<std::ptrdiff_t>(i0),
                  buf.begin() + static_cast<std::ptrdiff_t>(i1),
                  IqSample{0.0, 0.0});
    }
}

IqCapture
RtlSdr::capture(const em::ReceptionPlan &plan, TimeNs t0, TimeNs t1,
                const sim::FaultPlan *faults)
{
    if (t1 <= t0)
        raiseError(ErrorKind::MalformedInput,
                   "RtlSdr::capture of an empty window");

    IqCapture cap;
    cap.sampleRate = cfg.sampleRate;
    cap.centerFrequency = cfg.centerFrequency;
    cap.startTime = t0;

    auto count = static_cast<std::size_t>(toSeconds(t1 - t0) *
                                          cfg.sampleRate);
    cap.samples.assign(count, IqSample{0.0, 0.0});

    depositImpulses(cap.samples, plan.impulses, t0);
    depositImpulses(cap.samples, plan.noiseImpulses, t0);
    addTones(cap.samples, plan.tones, t0);
    addNoise(cap.samples, plan.noiseRms);
    if (faults && !faults->empty())
        applyAnalogFaults(cap.samples, *faults, t0);
    if (!cfg.idealFrontEnd)
        quantize(cap.samples);
    if (faults && !faults->empty())
        applyDropouts(cap.samples, *faults, t0);

    return cap;
}

} // namespace emsc::sdr
