#include "sdr/rtlsdr.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"
#include "support/flight.hpp"
#include "support/json.hpp"

namespace emsc::sdr {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

} // namespace

RtlSdr::RtlSdr(const SdrConfig &config, Rng &rng) : cfg(config), rng(rng)
{
    if (cfg.sampleRate <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "SDR sample rate must be positive");
    if (cfg.adcBits < 2 || cfg.adcBits > 16)
        raiseError(ErrorKind::InvalidConfig,
                   "SDR ADC resolution %d out of range", cfg.adcBits);
}

double
RtlSdr::actualLoFrequency() const
{
    return cfg.centerFrequency * (1.0 + cfg.tunerPpm * 1e-6);
}

void
RtlSdr::depositImpulses(std::vector<IqSample> &buf,
                        const std::vector<em::FieldImpulse> &impulses,
                        TimeNs t0, std::size_t first)
{
    double fs = cfg.sampleRate;
    double lo = actualLoFrequency();
    double drift = cfg.driftHzPerSecond;
    auto n = static_cast<std::ptrdiff_t>(buf.size());

    // Deposit a single complex impulse of amplitude `amp` occurring
    // `t_rel` seconds into the capture, linearly split between its two
    // neighbouring samples (adequately band-limited for bins well
    // inside Nyquist; the fixed roll-off folds into calibration). The
    // mixer phase depends only on absolute time, so a chunk deposits
    // exactly what the same impulse contributes to a whole-buffer
    // capture.
    auto deposit = [&](double t_rel, double amp) {
        // Mixer phase at the impulse instant, including slow LO drift:
        // phi(t) = 2*pi*(lo*t + drift*t^2/2).
        double phase = kTwoPi * (lo * t_rel + 0.5 * drift * t_rel * t_rel);
        IqSample rotated = amp * IqSample{std::cos(phase),
                                          -std::sin(phase)};
        double pos = t_rel * fs - static_cast<double>(first);
        auto i0 = static_cast<std::ptrdiff_t>(std::floor(pos));
        double frac = pos - std::floor(pos);
        if (i0 >= 0 && i0 < n)
            buf[static_cast<std::size_t>(i0)] += rotated * (1.0 - frac);
        if (i0 + 1 >= 0 && i0 + 1 < n)
            buf[static_cast<std::size_t>(i0 + 1)] += rotated * frac;
    };

    for (const em::FieldImpulse &imp : impulses) {
        double t_rel = toSeconds(imp.time - t0);
        // di/dt of a trapezoidal current burst: a positive impulse at
        // the rising edge and a negative one at the falling edge.
        deposit(t_rel, imp.amplitude);
        deposit(t_rel + toSeconds(imp.width), -imp.amplitude);
    }
}

void
RtlSdr::addTones(std::vector<IqSample> &buf,
                 const std::vector<em::ToneInterferer> &tones, TimeNs t0,
                 std::size_t first)
{
    double fs = cfg.sampleRate;
    double lo = actualLoFrequency();
    double start_s = toSeconds(t0) + static_cast<double>(first) / fs;

    // Clamp a global on/off sample index into this chunk.
    auto local = [&](std::size_t global) {
        return global > first ? std::min(buf.size(), global - first)
                              : std::size_t{0};
    };

    for (const em::ToneInterferer &tone : tones) {
        if (tone.amplitude <= 0.0)
            continue;
        // Samples during which the source is switched on.
        std::size_t on0 = 0;
        std::size_t on1 = buf.size();
        if (tone.onset > t0)
            on0 = local(static_cast<std::size_t>(
                toSeconds(tone.onset - t0) * fs));
        if (tone.activeDuration > 0) {
            TimeNs off = tone.onset + tone.activeDuration;
            on1 = off <= t0 ? 0
                            : local(static_cast<std::size_t>(
                                  toSeconds(off - t0) * fs));
        }
        // Baseband offset of this tone through the (erroneous) LO.
        double base = tone.frequency - lo;
        // Recompute the phasor step once per block to track drift
        // cheaply; within a block the frequency is constant. The
        // initial phase derives from absolute time so chunked captures
        // stay phase-continuous across boundaries.
        constexpr std::size_t kBlock = 2048;
        double phase = std::fmod(kTwoPi * base * start_s, kTwoPi);
        for (std::size_t i = 0; i < buf.size(); i += kBlock) {
            double t_mid = start_s +
                           static_cast<double>(i) / fs;
            double wobble =
                tone.driftHz *
                std::sin(kTwoPi * t_mid / tone.driftPeriodS);
            double f_off = base + wobble;
            double step = kTwoPi * f_off / fs;
            std::size_t end = std::min(buf.size(), i + kBlock);
            for (std::size_t j = i; j < end; ++j) {
                // Keep the phase advancing across off spans so the
                // tone is phase-continuous when it is on.
                if (j >= on0 && j < on1)
                    buf[j] += tone.amplitude *
                              IqSample{std::cos(phase), std::sin(phase)};
                phase += step;
            }
            if (phase > kTwoPi * 1e6)
                phase = std::fmod(phase, kTwoPi);
        }
    }
}

void
RtlSdr::addNoise(std::vector<IqSample> &buf, double rms)
{
    if (rms <= 0.0)
        return;
    double per_component = rms / std::numbers::sqrt2;
    for (IqSample &s : buf)
        s += IqSample{rng.gaussian(0.0, per_component),
                      rng.gaussian(0.0, per_component)};
}

double
RtlSdr::measureAgcGain(const em::ReceptionPlan &plan, TimeNs t0, TimeNs t1)
{
    SdrConfig saved = cfg;
    cfg.idealFrontEnd = true; // skip quantisation for the probe
    IqCapture probe = capture(plan, t0, t1);
    cfg = saved;
    double acc = 0.0;
    for (const IqSample &s : probe.samples)
        acc += std::norm(s);
    double rms = std::sqrt(acc /
                           std::max<std::size_t>(probe.samples.size(), 1));
    return rms > 0.0 ? cfg.agcTargetRms / rms : 1.0;
}

void
RtlSdr::quantize(std::vector<IqSample> &buf)
{
    if (buf.empty())
        return;

    // AGC: normalise RMS to the target fraction of full scale, unless
    // the operator fixed the gain (chunked captures).
    double gain = cfg.fixedGain;
    if (gain <= 0.0) {
        double acc = 0.0;
        for (const IqSample &s : buf)
            acc += std::norm(s);
        double rms = std::sqrt(acc / static_cast<double>(buf.size()));
        gain = rms > 0.0 ? cfg.agcTargetRms / rms : 1.0;
    }

    double levels = static_cast<double>((1 << (cfg.adcBits - 1)) - 1);
    for (IqSample &s : buf) {
        double re = std::clamp(s.real() * gain + cfg.dcOffset, -1.0, 1.0);
        double im = std::clamp(s.imag() * gain + cfg.dcOffset, -1.0, 1.0);
        re = std::round(re * levels) / levels;
        im = std::round(im * levels) / levels;
        s = IqSample{re, im};
    }
}

namespace {

/** Global sample index of an absolute time, clamped to [0, total]. */
std::size_t
sampleIndex(TimeNs when, TimeNs t0, double fs, std::size_t total)
{
    if (when <= t0)
        return 0;
    return std::min(total,
                    static_cast<std::size_t>(toSeconds(when - t0) * fs));
}

/** Clamp a global sample index into chunk-local coordinates. */
std::size_t
chunkLocal(std::size_t global, std::size_t first, std::size_t count)
{
    return global > first ? std::min(count, global - first)
                          : std::size_t{0};
}

} // namespace

void
RtlSdr::applyAnalogFaults(std::vector<IqSample> &buf,
                          const sim::FaultPlan &faults, TimeNs t0,
                          std::size_t first, std::size_t total)
{
    double fs = cfg.sampleRate;
    std::size_t n = buf.size();

    // Saturation bursts: drive the span hard so quantize() clips it.
    for (const sim::FaultEvent &e :
         faults.ofKind(sim::FaultKind::Saturation)) {
        std::size_t i0 = chunkLocal(sampleIndex(e.start, t0, fs, total),
                                    first, n);
        std::size_t i1 = chunkLocal(
            sampleIndex(e.start + e.duration, t0, fs, total), first, n);
        for (std::size_t i = i0; i < i1; ++i)
            buf[i] *= e.magnitude;
    }

    // AGC re-trains: each step holds its gain until the next step —
    // including across chunk boundaries, where the global index math
    // keeps a step that fired in an earlier chunk applied here.
    std::vector<sim::FaultEvent> steps =
        faults.ofKind(sim::FaultKind::GainStep);
    for (std::size_t k = 0; k < steps.size(); ++k) {
        std::size_t i0 = chunkLocal(
            sampleIndex(steps[k].start, t0, fs, total), first, n);
        std::size_t i1 =
            k + 1 < steps.size()
                ? chunkLocal(sampleIndex(steps[k + 1].start, t0, fs,
                                         total), first, n)
                : n;
        for (std::size_t i = i0; i < i1; ++i)
            buf[i] *= steps[k].magnitude;
    }

    // Tuner re-locks: from each hop on, the LO is offset by the hop
    // frequency (replaced by the next hop), rotating the baseband. The
    // rotation phase is anchored to the hop's *global* sample index,
    // so a hop keeps rotating continuously from one chunk to the next.
    std::vector<sim::FaultEvent> hops =
        faults.ofKind(sim::FaultKind::LoHop);
    for (std::size_t k = 0; k < hops.size(); ++k) {
        std::size_t g0 = sampleIndex(hops[k].start, t0, fs, total);
        std::size_t g1 = k + 1 < hops.size()
                             ? sampleIndex(hops[k + 1].start, t0, fs,
                                           total)
                             : total;
        std::size_t i0 = chunkLocal(g0, first, n);
        std::size_t i1 = chunkLocal(g1, first, n);
        double step = -kTwoPi * hops[k].magnitude / fs;
        std::size_t lead = i0 + first - g0;
        double phase =
            lead == 0 ? 0.0 : step * static_cast<double>(lead);
        for (std::size_t i = i0; i < i1; ++i) {
            buf[i] *= IqSample{std::cos(phase), std::sin(phase)};
            phase += step;
        }
    }
}

void
RtlSdr::applyDropouts(std::vector<IqSample> &buf,
                      const sim::FaultPlan &faults, TimeNs t0,
                      std::size_t first, std::size_t total)
{
    double fs = cfg.sampleRate;
    std::size_t n = buf.size();
    for (const sim::FaultEvent &e :
         faults.ofKind(sim::FaultKind::Dropout)) {
        std::size_t i0 = chunkLocal(sampleIndex(e.start, t0, fs, total),
                                    first, n);
        std::size_t i1 = chunkLocal(
            sampleIndex(e.start + e.duration, t0, fs, total), first, n);
        // Post-quantisation zeros: the host never saw these samples.
        std::fill(buf.begin() + static_cast<std::ptrdiff_t>(i0),
                  buf.begin() + static_cast<std::ptrdiff_t>(i1),
                  IqSample{0.0, 0.0});
    }
}

IqCapture
RtlSdr::captureInto(const em::ReceptionPlan &plan, TimeNs t0,
                    std::size_t first, std::size_t count,
                    std::size_t total, const sim::FaultPlan *faults)
{
    IqCapture cap;
    cap.sampleRate = cfg.sampleRate;
    cap.centerFrequency = cfg.centerFrequency;
    cap.startTime =
        first == 0
            ? t0
            : t0 + fromSeconds(static_cast<double>(first) /
                               cfg.sampleRate);
    cap.samples.assign(count, IqSample{0.0, 0.0});

    // Flight tap: log the fault plan once per capture window (chunked
    // captures would repeat it per chunk), so a post-mortem shows the
    // injected faults next to the decode that tripped over them.
    if (faults && !faults->empty() && first == 0) {
        flight::FlightRecorder &rec = flight::FlightRecorder::global();
        if (rec.armed()) {
            for (const sim::FaultEvent &e : faults->events) {
                json::Value data = json::Value::object();
                data.set("fault", sim::faultKindName(e.kind));
                data.set("start_ns", static_cast<double>(e.start));
                data.set("duration_ns",
                         static_cast<double>(e.duration));
                data.set("magnitude", e.magnitude);
                rec.record("fault", std::move(data));
            }
        }
    }

    depositImpulses(cap.samples, plan.impulses, t0, first);
    depositImpulses(cap.samples, plan.noiseImpulses, t0, first);
    addTones(cap.samples, plan.tones, t0, first);
    addNoise(cap.samples, plan.noiseRms);
    if (faults && !faults->empty())
        applyAnalogFaults(cap.samples, *faults, t0, first, total);
    if (!cfg.idealFrontEnd)
        quantize(cap.samples);
    if (faults && !faults->empty())
        applyDropouts(cap.samples, *faults, t0, first, total);

    return cap;
}

std::size_t
RtlSdr::sampleCount(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0;
    return static_cast<std::size_t>(toSeconds(t1 - t0) * cfg.sampleRate);
}

IqCapture
RtlSdr::capture(const em::ReceptionPlan &plan, TimeNs t0, TimeNs t1,
                const sim::FaultPlan *faults)
{
    if (t1 <= t0)
        raiseError(ErrorKind::MalformedInput,
                   "RtlSdr::capture of an empty window");

    std::size_t count = sampleCount(t0, t1);
    return captureInto(plan, t0, 0, count, count, faults);
}

IqCapture
RtlSdr::captureChunk(const em::ReceptionPlan &plan, TimeNs t0,
                     std::size_t first_sample, std::size_t count,
                     std::size_t total_samples,
                     const sim::FaultPlan *faults)
{
    if (!cfg.idealFrontEnd && cfg.fixedGain <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "captureChunk requires a fixed front-end gain "
                   "(SdrConfig.fixedGain, see measureAgcGain) so chunk "
                   "boundaries do not step in level");
    if (first_sample + count > total_samples)
        raiseError(ErrorKind::MalformedInput,
                   "captureChunk [%zu, %zu) outside the %zu-sample "
                   "window", first_sample, first_sample + count,
                   total_samples);
    return captureInto(plan, t0, first_sample, count, total_samples,
                       faults);
}

} // namespace emsc::sdr
