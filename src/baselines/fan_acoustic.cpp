/**
 * @file
 * Fan-acoustic covert channel baseline (Fansmitter-style).
 *
 * Bits switch the fan RPM setpoint between two levels; the rotor's
 * inertia low-passes the command, and a microphone estimates the
 * blade-pass frequency over short analysis frames. The rotor time
 * constant (~1-2 s) plus the need for the tone to settle inside a bit
 * limits the channel to around one bit per second.
 */

#include "baselines/baseline.hpp"

#include <algorithm>
#include <cmath>

namespace emsc::baselines {

namespace {

class FanAcousticChannel : public CovertChannelBaseline
{
  public:
    std::string
    name() const override
    {
        return "Fan acoustic (Fansmitter-style)";
    }

    BaselineResult
    evaluate(std::size_t nbits, double target_ber,
             std::uint64_t seed) override
    {
        BaselineResult best;
        best.name = name();
        best.notes = "fan RPM keying vs. rotor inertia";

        const double periods[] = {0.4, 0.7, 1.0, 1.6, 2.5, 4.0};
        for (double period : periods) {
            double ber = simulate(nbits, period, seed);
            if (ber <= target_ber) {
                best.bitRateBps = 1.0 / period;
                best.ber = ber;
                return best;
            }
        }
        best.bitRateBps = 1.0 / periods[std::size(periods) - 1];
        best.ber = simulate(nbits, periods[std::size(periods) - 1], seed);
        return best;
    }

  private:
    double
    simulate(std::size_t nbits, double period, std::uint64_t seed)
    {
        Rng rng(seed ^ 0xfa9);

        // Rotor: first-order toward the setpoint, tau = 1.4 s; RPM
        // levels 2600/3200. Microphone: blade-pass frequency estimate
        // every 100 ms with ~12 RPM rms error plus room acoustics
        // disturbances.
        const double tau = 1.4;
        const double lo = 2600.0, hi = 3200.0;
        const double dt = 0.1;
        const double est_noise = 12.0;

        double rpm = lo;
        std::size_t errors = 0;
        for (std::size_t i = 0; i < nbits; ++i) {
            int bit = rng.chance(0.5) ? 1 : 0;
            double target = bit ? hi : lo;
            double acc = 0.0;
            int frames = 0;
            for (double t = 0.0; t < period; t += dt) {
                rpm += (target - rpm) * dt / tau;
                double est = rpm + rng.gaussian(0.0, est_noise);
                if (rng.chance(0.02))
                    est += rng.gaussian(0.0, 150.0); // door slam, speech
                acc += est;
                ++frames;
            }
            double mean = frames ? acc / frames : lo;
            int decided = mean > 0.5 * (lo + hi) ? 1 : 0;
            errors += decided != bit;
        }
        return static_cast<double>(errors) / static_cast<double>(nbits);
    }
};

} // namespace

std::unique_ptr<CovertChannelBaseline>
makeFanAcousticChannel()
{
    return std::make_unique<FanAcousticChannel>();
}

} // namespace emsc::baselines
