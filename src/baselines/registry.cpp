#include "baselines/baseline.hpp"

namespace emsc::baselines {

std::vector<std::unique_ptr<CovertChannelBaseline>>
allBaselines()
{
    std::vector<std::unique_ptr<CovertChannelBaseline>> out;
    out.push_back(makeThermalChannel());
    out.push_back(makeFanAcousticChannel());
    out.push_back(makeGsmemChannel());
    out.push_back(makePowertChannel());
    return out;
}

std::vector<BaselineResult>
literatureBaselines()
{
    // Attacks whose limiting mechanism we do not re-implement; rates
    // as reported by the cited papers under comparable conditions.
    std::vector<BaselineResult> out;
    out.push_back(BaselineResult{
        "AirHopper (FM from video cable)", 480.0, 0.0, false,
        "Guri et al., MALWARE'14 (60 B/s reported)"});
    out.push_back(BaselineResult{
        "USBee (USB data-bus EM)", 640.0, 0.0, false,
        "Guri et al. 2016 (80 B/s reported)"});
    out.push_back(BaselineResult{
        "Acoustic mesh (near-ultrasound)", 20.0, 0.0, false,
        "Hanspach & Goetz 2013 (~20 bps reported)"});
    return out;
}

} // namespace emsc::baselines
