/**
 * @file
 * Power-budget contention covert channel baseline (POWERT-style).
 *
 * A *digital* channel, included because the paper quotes a >20x rate
 * advantage over it: the source either runs power-hungry code or
 * idles; the shared package power limit then throttles the sink,
 * which infers each bit from its own measured performance. The power
 * limiter's actuation window (RAPL acts on multi-millisecond
 * horizons) plus performance-measurement noise cap the rate near a
 * hundred bits per second.
 */

#include "baselines/baseline.hpp"

#include <algorithm>
#include <cmath>

namespace emsc::baselines {

namespace {

class PowertChannel : public CovertChannelBaseline
{
  public:
    std::string
    name() const override
    {
        return "Power budget (POWERT-style)";
    }

    BaselineResult
    evaluate(std::size_t nbits, double target_ber,
             std::uint64_t seed) override
    {
        BaselineResult best;
        best.name = name();
        best.notes = "sink-side IPC sensing of the shared power limit";

        const double periods[] = {0.002, 0.004, 0.006, 0.008,
                                  0.012, 0.02,  0.04};
        for (double period : periods) {
            double ber = simulate(nbits, period, seed);
            if (ber <= target_ber) {
                best.bitRateBps = 1.0 / period;
                best.ber = ber;
                return best;
            }
        }
        best.bitRateBps = 1.0 / periods[std::size(periods) - 1];
        best.ber = simulate(nbits, periods[std::size(periods) - 1], seed);
        return best;
    }

  private:
    double
    simulate(std::size_t nbits, double period, std::uint64_t seed)
    {
        Rng rng(seed ^ 0x90e5);

        // The power limiter reacts with a first-order lag (~2 ms); the
        // sink's normalised throughput is 1.0 unthrottled and 0.88
        // throttled, measured with per-millisecond noise, plus
        // occasional scheduler-preemption outliers.
        const double tau = 0.002;
        const double fast = 1.0, slow = 0.88;
        const double ref_noise = 0.03;

        double level = fast;
        double noise = ref_noise / std::sqrt(period / 1e-3);
        std::size_t errors = 0;
        for (std::size_t i = 0; i < nbits; ++i) {
            int bit = rng.chance(0.5) ? 1 : 0;
            double target = bit ? slow : fast;
            // The sink averages its throughput over the *last quarter*
            // of the bit window, after the limiter has settled; the
            // earlier transient is discarded (standard symbol-timing
            // practice for a lagged channel).
            double t_q = 0.75 * period;
            double start_level =
                target + (level - target) * std::exp(-t_q / tau);
            double settle = tau / (period - t_q) *
                            (1.0 - std::exp(-(period - t_q) / tau));
            double mean = target + (start_level - target) * settle;
            level = target + (level - target) * std::exp(-period / tau);
            double observed = mean + rng.gaussian(0.0, noise * 2.0);
            if (rng.chance(0.008))
                observed -= rng.uniform(0.05, 0.3); // preemption
            int decided = observed < 0.5 * (fast + slow) ? 1 : 0;
            errors += decided != bit;
        }
        return static_cast<double>(errors) / static_cast<double>(nbits);
    }
};

} // namespace

std::unique_ptr<CovertChannelBaseline>
makePowertChannel()
{
    return std::make_unique<PowertChannel>();
}

} // namespace emsc::baselines
