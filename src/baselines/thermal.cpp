/**
 * @file
 * Thermal covert channel baseline (BitWhisper-style).
 *
 * The transmitter runs the CPU hot (bit 1) or idle (bit 0) for one bit
 * period; the package temperature follows a first-order thermal RC
 * toward the corresponding steady state; the receiver samples a
 * temperature sensor (quantised, noisy, slow) and decides each bit
 * from the temperature trend over the bit window. The thermal time
 * constant of a laptop package is seconds, which caps the channel at
 * a few bits per second regardless of receiver quality.
 */

#include "baselines/baseline.hpp"

#include <algorithm>
#include <cmath>

namespace emsc::baselines {

namespace {

class ThermalChannel : public CovertChannelBaseline
{
  public:
    std::string
    name() const override
    {
        return "Thermal (BitWhisper-style)";
    }

    BaselineResult
    evaluate(std::size_t nbits, double target_ber,
             std::uint64_t seed) override
    {
        BaselineResult best;
        best.name = name();
        best.notes = "CPU heat pulses vs. package thermal RC";

        // Candidate bit periods, fast to slow.
        const double periods[] = {0.1, 0.2, 0.35, 0.5, 0.8,
                                  1.2, 2.0, 3.5, 6.0};
        for (double period : periods) {
            double ber = simulate(nbits, period, seed);
            if (ber <= target_ber) {
                best.bitRateBps = 1.0 / period;
                best.ber = ber;
                return best;
            }
        }
        best.bitRateBps = 1.0 / periods[std::size(periods) - 1];
        best.ber = simulate(nbits, periods[std::size(periods) - 1], seed);
        return best;
    }

  private:
    double
    simulate(std::size_t nbits, double period, std::uint64_t seed)
    {
        Rng rng(seed ^ 0x7e47);

        // First-order package model: tau ~ 6 s, 18 C swing between
        // idle and full power; sensor: 0.25 C quantisation, 0.1 C rms
        // noise, 10 Hz sampling.
        const double tau = 6.0;
        const double swing = 18.0;
        const double dt = 0.1;
        const double q = 0.25;
        const double noise = 0.1;

        double temp = 0.0;
        std::size_t errors = 0;
        for (std::size_t i = 0; i < nbits; ++i) {
            int bit = rng.chance(0.5) ? 1 : 0;
            double target = bit ? swing : 0.0;
            double first = 1e9, last = 0.0;
            bool have_first = false;
            for (double t = 0.0; t < period; t += dt) {
                temp += (target - temp) * dt / tau;
                double reading =
                    std::round((temp + rng.gaussian(0.0, noise)) / q) * q;
                if (!have_first) {
                    first = reading;
                    have_first = true;
                }
                last = reading;
            }
            // Trend decision: rising temperature over the bit => 1.
            int decided = last > first ? 1 : 0;
            if (period < 2.0 * dt) // too fast to even take two samples
                decided = rng.chance(0.5) ? 1 : 0;
            errors += decided != bit;
        }
        return static_cast<double>(errors) / static_cast<double>(nbits);
    }
};

} // namespace

std::unique_ptr<CovertChannelBaseline>
makeThermalChannel()
{
    return std::make_unique<ThermalChannel>();
}

} // namespace emsc::baselines
