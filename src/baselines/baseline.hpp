/**
 * @file
 * Prior-art covert channels used as Fig. 9 comparison baselines.
 *
 * The paper compares its transmission rate against seven published
 * physical covert channels. We re-implement the four whose limiting
 * physics is simple enough to model faithfully (thermal, fan-acoustic,
 * memory-bus EM, power-budget contention) and carry the published
 * rates for the rest. Each implementation sweeps its bit period to
 * find the highest rate that still meets a BER target, so the Fig. 9
 * ordering emerges from channel physics — the slow actuators (thermal
 * mass, fan inertia) versus the fast ones (power-state switching) —
 * rather than from hard-coded numbers.
 */

#ifndef EMSC_BASELINES_BASELINE_HPP
#define EMSC_BASELINES_BASELINE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace emsc::baselines {

/** Outcome of evaluating one covert channel. */
struct BaselineResult
{
    std::string name;
    /** Highest rate meeting the BER target (bits/second). */
    double bitRateBps = 0.0;
    /** BER measured at that rate. */
    double ber = 0.0;
    /** False when the number is carried from the literature instead
     *  of produced by a simulation in this repository. */
    bool simulated = true;
    /** Mechanism / citation note for the Fig. 9 legend. */
    std::string notes;
};

/** Common interface: find the best rate under a BER constraint. */
class CovertChannelBaseline
{
  public:
    virtual ~CovertChannelBaseline() = default;

    virtual std::string name() const = 0;

    /**
     * Evaluate the channel: transmit `nbits` random bits per candidate
     * rate, decode, and return the fastest rate with BER at or below
     * `target_ber`.
     */
    virtual BaselineResult evaluate(std::size_t nbits, double target_ber,
                                    std::uint64_t seed) = 0;
};

/**
 * Thermal covert channel (BitWhisper-style): bits modulate CPU heat
 * output; the receiver watches a temperature sensor. Limited by the
 * package's thermal time constant (seconds).
 */
std::unique_ptr<CovertChannelBaseline> makeThermalChannel();

/**
 * Fan-acoustic channel (Fansmitter-style): bits switch the fan RPM
 * setpoint; a microphone tracks the blade-pass tone. Limited by rotor
 * inertia and the acoustic estimator.
 */
std::unique_ptr<CovertChannelBaseline> makeFanAcousticChannel();

/**
 * Memory-bus EM channel (GSMem-style): bits gate bursts of memory
 * traffic whose DRAM-bus emanations a nearby radio receives. Limited
 * by scheduling jitter of the memory bursts and the low modulation
 * depth of the bus emission.
 */
std::unique_ptr<CovertChannelBaseline> makeGsmemChannel();

/**
 * Power-budget contention channel (POWERT-style, digital): the source
 * modulates its power draw; a co-located sink infers the shared power
 * budget from its own performance. Limited by the power-limit
 * actuation window and performance-measurement noise.
 */
std::unique_ptr<CovertChannelBaseline> makePowertChannel();

/** All simulated baselines, in Fig. 9 order. */
std::vector<std::unique_ptr<CovertChannelBaseline>> allBaselines();

/** Literature-reported rates for the attacks we do not re-implement. */
std::vector<BaselineResult> literatureBaselines();

} // namespace emsc::baselines

#endif // EMSC_BASELINES_BASELINE_HPP
