/**
 * @file
 * Memory-bus EM covert channel baseline (GSMem-style).
 *
 * Bits gate bursts of multi-channel memory traffic; the DRAM bus's EM
 * emission rises while the bursts run, and a nearby receiver
 * integrates band energy per bit. Unlike the VRM channel, the
 * modulation depth is shallow (the bus also toggles for normal
 * traffic), the burst scheduling jitters with memory-controller
 * arbitration, and other system DRAM activity adds bursts of its own —
 * which together cap the reliable rate near a kilobit per second.
 */

#include "baselines/baseline.hpp"

#include <algorithm>
#include <cmath>

namespace emsc::baselines {

namespace {

class GsmemChannel : public CovertChannelBaseline
{
  public:
    std::string
    name() const override
    {
        return "Memory-bus EM (GSMem-style)";
    }

    BaselineResult
    evaluate(std::size_t nbits, double target_ber,
             std::uint64_t seed) override
    {
        BaselineResult best;
        best.name = name();
        best.notes = "DRAM-bus OOK, shallow modulation + traffic noise";

        const double periods[] = {0.0003, 0.0005, 0.0008, 0.0012,
                                  0.002,  0.004,  0.008};
        for (double period : periods) {
            double ber = simulate(nbits, period, seed);
            if (ber <= target_ber) {
                best.bitRateBps = 1.0 / period;
                best.ber = ber;
                return best;
            }
        }
        best.bitRateBps = 1.0 / periods[std::size(periods) - 1];
        best.ber = simulate(nbits, periods[std::size(periods) - 1], seed);
        return best;
    }

  private:
    double
    simulate(std::size_t nbits, double period, std::uint64_t seed)
    {
        Rng rng(seed ^ 0x65e3);

        // Per-bit received band energy: idle bus level 1.0, keyed
        // bursts raise it to 1.35 (shallow OOK). The energy estimate
        // improves with integration time (sqrt of the bit period
        // relative to a 1 ms reference). Background DRAM traffic adds
        // positive excursions on 0-bits; scheduling jitter erodes the
        // start/end of each keyed burst.
        const double idle = 1.0;
        const double keyed = 1.35;
        const double ref_noise = 0.055; // rms at 1 ms integration
        const double jitter_s = 50e-6;

        double noise = ref_noise / std::sqrt(period / 1e-3);
        std::size_t errors = 0;
        for (std::size_t i = 0; i < nbits; ++i) {
            int bit = rng.chance(0.5) ? 1 : 0;
            // Fraction of the bit actually spent keyed (jitter eats
            // the edges of short bits).
            double eaten =
                std::min(1.0, rng.rayleigh(jitter_s) / period);
            double level =
                bit ? keyed - (keyed - idle) * eaten : idle;
            if (!bit && rng.chance(0.012))
                level += rng.uniform(0.05, 0.3); // other DRAM traffic
            double observed = level + rng.gaussian(0.0, noise);
            int decided = observed > 0.5 * (idle + keyed) ? 1 : 0;
            errors += decided != bit;
        }
        return static_cast<double>(errors) / static_cast<double>(nbits);
    }
};

} // namespace

std::unique_ptr<CovertChannelBaseline>
makeGsmemChannel()
{
    return std::make_unique<GsmemChannel>();
}

} // namespace emsc::baselines
