#include "fingerprint/profile.hpp"

#include <algorithm>

namespace emsc::fingerprint {

std::vector<WebsiteProfile>
builtinWebsites()
{
    std::vector<WebsiteProfile> sites;

    // A text-heavy news front page: long parse + render, bursty ads.
    sites.push_back(WebsiteProfile{
        "news-site",
        {{180.0, 0.05, 0.25},   // network wait
         {420.0, 0.90, 0.12},   // HTML/CSS parse
         {650.0, 0.70, 0.15},   // layout + paint
         {350.0, 0.45, 0.30},   // ad/analytics scripts
         {250.0, 0.10, 0.40}}}); // late trickle

    // A search engine results page: short and sharp.
    sites.push_back(WebsiteProfile{
        "search-page",
        {{90.0, 0.05, 0.25},
         {140.0, 0.85, 0.10},
         {120.0, 0.55, 0.20}}});

    // A video portal: medium load, then sustained decode activity.
    sites.push_back(WebsiteProfile{
        "video-portal",
        {{200.0, 0.05, 0.25},
         {380.0, 0.85, 0.12},
         {300.0, 0.60, 0.15},
         {1400.0, 0.35, 0.10}}}); // steady playback

    // A webmail client: heavy script start-up, then quiet.
    sites.push_back(WebsiteProfile{
        "webmail",
        {{150.0, 0.05, 0.25},
         {300.0, 0.90, 0.10},
         {900.0, 0.80, 0.12},   // JS app boot
         {150.0, 0.20, 0.30}}});

    // A static documentation page: almost nothing.
    sites.push_back(WebsiteProfile{
        "docs-page",
        {{100.0, 0.05, 0.25},
         {160.0, 0.75, 0.12},
         {90.0, 0.35, 0.25}}});

    return sites;
}

std::vector<RealizedPhase>
realizeLoad(const WebsiteProfile &profile, TimeNs start, Rng &rng)
{
    std::vector<RealizedPhase> out;
    TimeNs t = start;
    for (const ActivityPhase &phase : profile.phases) {
        double ms = phase.durationMs *
                    (1.0 + phase.variability * rng.gaussian(0.0, 1.0));
        ms = std::max(ms, 10.0);
        RealizedPhase r;
        r.start = t;
        r.duration = fromMilliseconds(ms);
        r.duty = std::clamp(
            phase.duty * (1.0 + 0.1 * rng.gaussian(0.0, 1.0)), 0.0, 1.0);
        out.push_back(r);
        t += r.duration;
    }
    return out;
}

} // namespace emsc::fingerprint
