/**
 * @file
 * EM-trace features and a nearest-centroid website classifier.
 *
 * The attacker reduces each captured load to a handful of features of
 * the band-energy envelope — total active time, burst structure,
 * energy — trains centroids on loads of known sites (on their own
 * reference machine), and classifies observed loads by normalised
 * distance. Deliberately simple: the point (as in the paper) is how
 * much the EM envelope alone gives away, not classifier sophistication.
 */

#ifndef EMSC_FINGERPRINT_CLASSIFIER_HPP
#define EMSC_FINGERPRINT_CLASSIFIER_HPP

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "channel/acquisition.hpp"

namespace emsc::fingerprint {

/** Number of scalar features per trace. */
inline constexpr std::size_t kFeatureCount = 8;

/** Feature vector of one captured page load. */
using Features = std::array<double, kFeatureCount>;

/**
 * Extract features from an acquired envelope: total active seconds,
 * active fraction, burst count, longest burst seconds, mean active
 * level, and the distribution of activity across the first/middle/last
 * thirds of the capture (which separates one-shot renders from
 * sustained playback).
 */
Features extractFeatures(const channel::AcquiredSignal &signal);

/** Nearest-centroid classifier with per-feature z-normalisation. */
class WebsiteClassifier
{
  public:
    /** Accumulate one labelled training example. */
    void addExample(const std::string &label, const Features &f);

    /** Finish training: compute centroids and feature scales. */
    void finalize();

    /** Classify a trace; empty string when untrained. */
    std::string classify(const Features &f) const;

    /** Labels known to the classifier. */
    std::vector<std::string> labels() const;

  private:
    struct ClassData
    {
        std::string label;
        std::vector<Features> examples;
        Features centroid{};
    };

    ClassData &classFor(const std::string &label);

    std::vector<ClassData> classes;
    Features scale{};
    bool finalized = false;
};

} // namespace emsc::fingerprint

#endif // EMSC_FINGERPRINT_CLASSIFIER_HPP
