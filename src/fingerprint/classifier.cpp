#include "fingerprint/classifier.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "channel/labeling.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace emsc::fingerprint {

Features
extractFeatures(const channel::AcquiredSignal &signal)
{
    Features f{};
    const std::vector<double> &y = signal.y;
    if (y.size() < 16 || signal.sampleRate <= 0.0)
        return f;

    // Activity threshold from the bimodal envelope histogram (idle
    // floor vs. active level); a MAD rule would break whenever the
    // page keeps the processor busy for most of the capture.
    channel::LabelingConfig lab;
    lab.histogramBins = 96;
    lab.peakSeparation = 12;
    double thr = channel::selectThreshold(y, lab);

    double dt = 1.0 / signal.sampleRate;
    double active_s = 0.0, active_level = 0.0;
    std::size_t bursts = 0;
    double longest = 0.0, current = 0.0;
    bool in_burst = false;
    // Distribution of activity across the thirds of the *active span*
    // (first hot sample to last hot sample), which captures the
    // temporal shape of the load independent of capture margins.
    std::size_t first_hot = y.size(), last_hot = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y[i] > thr) {
            first_hot = std::min(first_hot, i);
            last_hot = i;
        }
    }
    double thirds[3] = {0.0, 0.0, 0.0};
    std::size_t span =
        first_hot < last_hot ? last_hot - first_hot + 1 : 1;

    for (std::size_t i = 0; i < y.size(); ++i) {
        bool hot = y[i] > thr;
        if (hot) {
            active_s += dt;
            active_level += y[i];
            current += dt;
            if (!in_burst) {
                ++bursts;
                in_burst = true;
            }
            std::size_t third =
                std::min<std::size_t>(2, 3 * (i - first_hot) / span);
            thirds[third] += dt;
        } else if (in_burst) {
            longest = std::max(longest, current);
            current = 0.0;
            in_burst = false;
        }
    }
    longest = std::max(longest, current);

    f[0] = active_s;
    f[1] = toSeconds(fromSeconds(static_cast<double>(span) * dt));
    f[2] = static_cast<double>(bursts);
    f[3] = longest;
    f[4] = active_s > 0.0 ? active_level / (active_s / dt) : 0.0;
    for (int t = 0; t < 3; ++t)
        f[5 + static_cast<std::size_t>(t)] =
            active_s > 0.0 ? thirds[t] / active_s : 0.0;
    return f;
}

WebsiteClassifier::ClassData &
WebsiteClassifier::classFor(const std::string &label)
{
    for (ClassData &c : classes)
        if (c.label == label)
            return c;
    classes.push_back(ClassData{label, {}, {}});
    return classes.back();
}

void
WebsiteClassifier::addExample(const std::string &label, const Features &f)
{
    classFor(label).examples.push_back(f);
    finalized = false;
}

void
WebsiteClassifier::finalize()
{
    if (classes.empty())
        raiseError(ErrorKind::InsufficientData,
                   "WebsiteClassifier has no training data");

    // Per-class centroids.
    for (ClassData &c : classes) {
        c.centroid = Features{};
        for (const Features &f : c.examples)
            for (std::size_t i = 0; i < kFeatureCount; ++i)
                c.centroid[i] += f[i];
        for (std::size_t i = 0; i < kFeatureCount; ++i)
            c.centroid[i] /= static_cast<double>(c.examples.size());
    }

    // Global per-feature scale (std across all examples) for
    // z-normalised distances.
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
        RunningStats s;
        for (const ClassData &c : classes)
            for (const Features &f : c.examples)
                s.add(f[i]);
        scale[i] = std::max(s.stddev(), 1e-9);
    }
    finalized = true;
}

std::string
WebsiteClassifier::classify(const Features &f) const
{
    if (!finalized || classes.empty())
        return "";
    // Nearest centroid in z-normalised feature space: with handfuls
    // of training loads per site, averaging is more robust than
    // nearest-neighbour against per-load noise.
    double best = 1e300;
    const ClassData *winner = nullptr;
    for (const ClassData &c : classes) {
        double d = 0.0;
        for (std::size_t i = 0; i < kFeatureCount; ++i) {
            double z = (f[i] - c.centroid[i]) / scale[i];
            d += z * z;
        }
        if (d < best) {
            best = d;
            winner = &c;
        }
    }
    return winner ? winner->label : "";
}

std::vector<std::string>
WebsiteClassifier::labels() const
{
    std::vector<std::string> out;
    for (const ClassData &c : classes)
        out.push_back(c.label);
    return out;
}

} // namespace emsc::fingerprint
