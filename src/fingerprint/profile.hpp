/**
 * @file
 * Workload activity profiles for website fingerprinting.
 *
 * §III's attack model (ii)(b): by watching how long the processor
 * stays active, an attacker can tell *which* website was loaded. A
 * page load is modelled as a sequence of activity phases (network
 * wait, parse, render, script), each with a duration, a CPU duty
 * cycle, and run-to-run variability — coarse but faithful to how real
 * page loads differ from each other in the EM trace.
 */

#ifndef EMSC_FINGERPRINT_PROFILE_HPP
#define EMSC_FINGERPRINT_PROFILE_HPP

#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace emsc::fingerprint {

/** One phase of a page load. */
struct ActivityPhase
{
    /** Mean phase duration (ms). */
    double durationMs = 0.0;
    /** CPU duty cycle within the phase (0..1; 0 = pure waiting). */
    double duty = 0.0;
    /** Run-to-run duration variability (fraction of the mean). */
    double variability = 0.15;
};

/** A website's load behaviour. */
struct WebsiteProfile
{
    std::string name;
    std::vector<ActivityPhase> phases;
};

/** A small catalogue of distinguishable sites. */
std::vector<WebsiteProfile> builtinWebsites();

/**
 * Realise one load of the profile: per-phase (start, duration, duty)
 * work segments with this run's randomness, starting at `start`.
 */
struct RealizedPhase
{
    TimeNs start = 0;
    TimeNs duration = 0;
    double duty = 0.0;
};

std::vector<RealizedPhase> realizeLoad(const WebsiteProfile &profile,
                                       TimeNs start, Rng &rng);

} // namespace emsc::fingerprint

#endif // EMSC_FINGERPRINT_PROFILE_HPP
