#include "keylog/keyboard.hpp"

#include <cctype>
#include <cmath>
#include <cstring>

namespace emsc::keylog {

namespace {

/** Row layouts with per-row column stagger, standard US QWERTY. */
struct RowDef
{
    const char *keys;
    double stagger;
};

constexpr RowDef kRows[] = {
    {"1234567890", 0.0},
    {"qwertyuiop", 0.5},
    {"asdfghjkl;", 0.75},
    {"zxcvbnm,./", 1.25},
};

/** Finger assignment by column for letter rows (0=index..3=pinky). */
int
fingerForColumn(int col)
{
    switch (col) {
      case 0:
        return 3;
      case 1:
        return 2;
      case 2:
        return 1;
      case 3:
      case 4:
        return 0;
      case 5:
      case 6:
        return 0;
      case 7:
        return 1;
      case 8:
        return 2;
      default:
        return 3;
    }
}

/**
 * The most frequent English digraphs with rough relative weights
 * (th ~ 1.0); everything else reads as 0.
 */
struct Digraph
{
    const char *pair;
    double weight;
};

constexpr Digraph kDigraphs[] = {
    {"th", 1.00}, {"he", 0.98}, {"in", 0.75}, {"er", 0.72}, {"an", 0.70},
    {"re", 0.62}, {"on", 0.57}, {"at", 0.51}, {"en", 0.49}, {"nd", 0.47},
    {"ti", 0.45}, {"es", 0.44}, {"or", 0.43}, {"te", 0.41}, {"of", 0.40},
    {"ed", 0.39}, {"is", 0.38}, {"it", 0.37}, {"al", 0.35}, {"ar", 0.35},
    {"st", 0.34}, {"to", 0.34}, {"nt", 0.33}, {"ng", 0.30}, {"se", 0.29},
    {"ha", 0.28}, {"as", 0.27}, {"ou", 0.27}, {"io", 0.25}, {"le", 0.25},
    {"ve", 0.24}, {"co", 0.23}, {"me", 0.23}, {"de", 0.22}, {"hi", 0.22},
    {"ri", 0.21}, {"ro", 0.21}, {"ic", 0.20}, {"ne", 0.20}, {"ea", 0.19},
    {"ra", 0.19}, {"ce", 0.18}, {"li", 0.18}, {"ch", 0.16}, {"ll", 0.16},
    {"be", 0.16}, {"ma", 0.15}, {"si", 0.15}, {"om", 0.15}, {"ur", 0.14},
};

} // namespace

KeyInfo
lookupKey(char c)
{
    KeyInfo info;
    char lower = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));

    if (lower == ' ') {
        info.row = 4;
        info.col = 5.0;
        info.hand = Hand::Either;
        info.finger = -1;
        info.known = true;
        return info;
    }

    for (int r = 0; r < 4; ++r) {
        const char *pos = std::strchr(kRows[r].keys, lower);
        if (!pos)
            continue;
        int col = static_cast<int>(pos - kRows[r].keys);
        info.row = r;
        info.col = kRows[r].stagger + static_cast<double>(col);
        info.hand = col <= 4 ? Hand::Left : Hand::Right;
        info.finger = fingerForColumn(col);
        info.known = true;
        return info;
    }
    return info; // unknown key: caller treats it as a generic press
}

double
keyDistance(char a, char b)
{
    KeyInfo ka = lookupKey(a);
    KeyInfo kb = lookupKey(b);
    if (!ka.known || !kb.known)
        return 2.0;
    double dr = static_cast<double>(ka.row - kb.row);
    double dc = ka.col - kb.col;
    return std::sqrt(dr * dr + dc * dc);
}

bool
differentHands(char a, char b)
{
    KeyInfo ka = lookupKey(a);
    KeyInfo kb = lookupKey(b);
    if (ka.hand == Hand::Either || kb.hand == Hand::Either)
        return true; // the space bar never blocks either hand
    return ka.hand != kb.hand;
}

bool
sameFinger(char a, char b)
{
    KeyInfo ka = lookupKey(a);
    KeyInfo kb = lookupKey(b);
    if (ka.hand == Hand::Either || kb.hand == Hand::Either)
        return false;
    return ka.hand == kb.hand && ka.finger == kb.finger;
}

double
digraphFrequency(char a, char b)
{
    char pair[2] = {
        static_cast<char>(std::tolower(static_cast<unsigned char>(a))),
        static_cast<char>(std::tolower(static_cast<unsigned char>(b)))};
    for (const Digraph &d : kDigraphs)
        if (d.pair[0] == pair[0] && d.pair[1] == pair[1])
            return d.weight;
    return 0.0;
}

} // namespace emsc::keylog
