/**
 * @file
 * Human typist model: keystroke timing with Salthouse-style structure.
 *
 * §V-B summarises the empirical regularities the keylogger can later
 * exploit: (i) far-apart keys (alternating hands) come in quicker
 * succession than close/same-finger keys, (ii) frequent digraphs are
 * typed faster than rare ones, (iii) practised sequences speed up over
 * a session. The model draws inter-key intervals from a lognormal-ish
 * base modulated by those factors, plus per-key dwell (press-release)
 * times — producing the (t_p, t_r, k) tuples of §V-A as ground truth.
 */

#ifndef EMSC_KEYLOG_TYPIST_HPP
#define EMSC_KEYLOG_TYPIST_HPP

#include <map>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace emsc::keylog {

/** One keystroke: the (t_p, t_r, k) tuple of §V-A. */
struct Keystroke
{
    TimeNs press = 0;
    TimeNs release = 0;
    char key = 0;
};

/** Typist behaviour parameters. */
struct TypistParams
{
    /** Mean inter-key interval for a neutral pair (ms). */
    double baseIntervalMs = 230.0;
    /** Lognormal-ish spread of the interval (fraction of mean). */
    double intervalSpread = 0.17;
    /** Floor below which no interval can fall (ms). */
    double minIntervalMs = 70.0;
    /** Multiplier when hands alternate (Salthouse (i): faster). */
    double alternateHandFactor = 0.82;
    /** Multiplier when the same finger must travel (slower). */
    double sameFingerFactor = 1.25;
    /** Maximum speed-up for the most frequent digraphs. */
    double digraphSpeedup = 0.25;
    /** Per-repetition speed-up of practised digraphs (iii). */
    double practiceFactor = 0.985;
    /** Floor of the practice effect. */
    double practiceFloor = 0.75;
    /** Slowdown entering a new word (after typing the space). */
    double wordInitialFactor = 2.2;
    /** Slight slowdown reaching for the space bar. */
    double preSpaceFactor = 1.1;
    /** Mean key dwell (press to release, ms). */
    double dwellMs = 85.0;
    /** Dwell spread (ms). */
    double dwellSigmaMs = 16.0;
};

/**
 * Generates keystroke sequences for given text.
 */
class Typist
{
  public:
    Typist(const TypistParams &params, Rng &rng)
        : p(params), rng(rng)
    {
    }

    /**
     * Type the text starting at `start`; returns one Keystroke per
     * character, in press order. Practice state persists across calls
     * (a session-long model).
     */
    std::vector<Keystroke> type(const std::string &text, TimeNs start);

  private:
    /** Inter-key interval (ns) between previous and next characters. */
    TimeNs interval(char prev, char next);

    TypistParams p;
    Rng &rng;
    std::map<std::pair<char, char>, int> practiceCount;
};

} // namespace emsc::keylog

#endif // EMSC_KEYLOG_TYPIST_HPP
