/**
 * @file
 * QWERTY keyboard geometry for the typist model.
 *
 * §V-B cites Salthouse's findings that inter-key timing depends on the
 * physical relationship of successive keys (far-apart keys — usually
 * typed by alternating hands — come in quicker succession than
 * same-finger neighbours). That needs key coordinates, hand and finger
 * assignments, which this table provides.
 */

#ifndef EMSC_KEYLOG_KEYBOARD_HPP
#define EMSC_KEYLOG_KEYBOARD_HPP

namespace emsc::keylog {

/** Which hand conventionally types a key. */
enum class Hand
{
    Left,
    Right,
    Either, // space bar (thumbs)
};

/** Physical description of one key. */
struct KeyInfo
{
    /** Row: 0 = number row, 1 = top letter row, 2 = home, 3 = bottom. */
    int row = 0;
    /** Column within the row (staggered layout folded in). */
    double col = 0.0;
    Hand hand = Hand::Either;
    /** Finger index 0..3 (index..pinky); thumbs = -1. */
    int finger = -1;
    bool known = false;
};

/** Geometry of a character's key ('a'-'z', '0'-'9', space, basic punctuation). */
KeyInfo lookupKey(char c);

/** Euclidean distance between two keys in key-pitch units. */
double keyDistance(char a, char b);

/** Whether two characters are typed by different hands. */
bool differentHands(char a, char b);

/** Whether two characters share the same finger of the same hand. */
bool sameFinger(char a, char b);

/**
 * Relative frequency (0..1) of the digraph `ab` in English text, from
 * a compact embedded table of the most common digraphs; 0 for rare
 * pairs. §V-B: frequent pairs are typed in quicker succession.
 */
double digraphFrequency(char a, char b);

} // namespace emsc::keylog

#endif // EMSC_KEYLOG_KEYBOARD_HPP
