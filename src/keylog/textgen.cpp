#include "keylog/textgen.hpp"

namespace emsc::keylog {

const std::vector<std::string> &
wordCorpus()
{
    static const std::vector<std::string> corpus = {
        "the",     "of",       "and",     "a",        "to",
        "in",      "is",       "you",     "that",     "it",
        "he",      "was",      "for",     "on",       "are",
        "as",      "with",     "his",     "they",     "at",
        "be",      "this",     "have",    "from",     "or",
        "one",     "had",      "by",      "word",     "but",
        "not",     "what",     "all",     "were",     "we",
        "when",    "your",     "can",     "said",     "there",
        "use",     "an",       "each",    "which",    "she",
        "do",      "how",      "their",   "if",       "will",
        "up",      "other",    "about",   "out",      "many",
        "then",    "them",     "these",   "so",       "some",
        "her",     "would",    "make",    "like",     "him",
        "into",    "time",     "has",     "look",     "two",
        "more",    "write",    "go",      "see",      "number",
        "no",      "way",      "could",   "people",   "my",
        "than",    "first",    "water",   "been",     "call",
        "who",     "oil",      "its",     "now",      "find",
        "long",    "down",     "day",     "did",      "get",
        "come",    "made",     "may",     "part",     "over",
        "new",     "sound",    "take",    "only",     "little",
        "work",    "know",     "place",   "year",     "live",
        "me",      "back",     "give",    "most",     "very",
        "after",   "thing",    "our",     "just",     "name",
        "good",    "sentence", "man",     "think",    "say",
        "great",   "where",    "help",    "through",  "much",
        "before",  "line",     "right",   "too",      "mean",
        "old",     "any",      "same",    "tell",     "boy",
        "follow",  "came",     "want",    "show",     "also",
        "around",  "form",     "three",   "small",    "set",
        "put",     "end",      "does",    "another",  "well",
        "large",   "must",     "big",     "even",     "such",
        "because", "turn",     "here",    "why",      "ask",
        "went",    "men",      "read",    "need",     "land",
        "different", "home",   "us",      "move",     "try",
        "kind",    "hand",     "picture", "again",    "change",
        "off",     "play",     "spell",   "air",      "away",
        "animal",  "house",    "point",   "page",     "letter",
        "mother",  "answer",   "found",   "study",    "still",
        "learn",   "should",   "america", "world",    "high",
    };
    return corpus;
}

std::vector<std::string>
randomWords(std::size_t count, Rng &rng)
{
    const auto &corpus = wordCorpus();
    std::vector<std::string> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto idx = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(corpus.size()) - 1));
        out.push_back(corpus[idx]);
    }
    return out;
}

std::string
joinWords(const std::vector<std::string> &words)
{
    std::string out;
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (i)
            out.push_back(' ');
        out += words[i];
    }
    return out;
}

} // namespace emsc::keylog
