#include "keylog/typist.hpp"

#include <algorithm>
#include <cmath>

#include "keylog/keyboard.hpp"

namespace emsc::keylog {

TimeNs
Typist::interval(char prev, char next)
{
    double mean = p.baseIntervalMs;

    if (prev != 0) {
        // Salthouse (i): alternating hands overlap their motions and
        // land sooner; same-finger travel is the slowest case, scaled
        // further by how far the finger must move.
        if (differentHands(prev, next)) {
            mean *= p.alternateHandFactor;
        } else if (sameFinger(prev, next)) {
            double travel = keyDistance(prev, next);
            mean *= p.sameFingerFactor * (1.0 + 0.1 * travel);
        }

        // Salthouse (ii): frequent digraphs are faster.
        mean *= 1.0 - p.digraphSpeedup * digraphFrequency(prev, next);

        // Word boundaries: typists plan the next word after the
        // space, and reach for the space bar slightly deliberately.
        if (prev == ' ')
            mean *= p.wordInitialFactor;
        else if (next == ' ')
            mean *= p.preSpaceFactor;

        // Salthouse (iii): practice within the session. Space-adjacent
        // transitions are lifelong-practised and already at asymptote,
        // so only letter digraphs speed up within the session.
        if (prev != ' ' && next != ' ') {
            auto key = std::make_pair(prev, next);
            int &count = practiceCount[key];
            double practice = std::max(
                p.practiceFloor,
                std::pow(p.practiceFactor, static_cast<double>(count)));
            mean *= practice;
            ++count;
        }
    }

    // Positively skewed draw around the mean (humans pause, they do
    // not anticipate): Gaussian core plus occasional hesitation tail.
    double ms = mean * (1.0 + p.intervalSpread * rng.gaussian(0.0, 1.0));
    // Hesitations cluster at word boundaries (thinking of the next
    // word), rarely mid-word.
    if (rng.chance(prev == ' ' ? 0.10 : 0.01))
        ms += rng.exponential(mean);
    ms = std::max(ms, p.minIntervalMs);
    return fromMilliseconds(ms);
}

std::vector<Keystroke>
Typist::type(const std::string &text, TimeNs start)
{
    std::vector<Keystroke> out;
    out.reserve(text.size());

    TimeNs t = start;
    char prev = 0;
    for (char c : text) {
        if (prev != 0)
            t += interval(prev, c);
        double dwell =
            std::max(25.0, rng.gaussian(p.dwellMs, p.dwellSigmaMs));
        Keystroke k;
        k.press = t;
        k.release = t + fromMilliseconds(dwell);
        k.key = c;
        out.push_back(k);
        prev = c;
    }
    return out;
}

} // namespace emsc::keylog
