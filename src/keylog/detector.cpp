#include "keylog/detector.hpp"

#include <algorithm>
#include <cmath>

#include "channel/labeling.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace emsc::keylog {

/**
 * Decision threshold for window energies. Keystrokes are sparse, so
 * the histogram is dominated by the idle floor with a separate bump of
 * active windows; when the bump is too small for reliable bimodal peak
 * finding, fall back to a robust floor + k*MAD rule.
 */
double
selectEnergyThreshold(const std::vector<double> &energy,
                      const DetectorConfig &cfg)
{
    if (energy.size() < 16) {
        auto [mn, mx] = std::minmax_element(energy.begin(), energy.end());
        return 0.5 * (*mn + *mx);
    }

    // Robust floor statistics.
    std::vector<double> sorted(energy);
    std::sort(sorted.begin(), sorted.end());
    double med = sorted[sorted.size() / 2];
    std::vector<double> dev;
    dev.reserve(sorted.size());
    for (double e : sorted)
        dev.push_back(std::fabs(e - med));
    std::sort(dev.begin(), dev.end());
    double mad = dev[dev.size() / 2];
    double fallback = med + cfg.madFactor * std::max(mad, 1e-12);

    // Bimodal attempt: take the two strongest histogram peaks if they
    // are well separated; otherwise the robust rule stands.
    channel::LabelingConfig lab;
    lab.histogramBins = cfg.histogramBins;
    lab.smoothingRadius = 2;
    lab.peakSeparation = cfg.histogramBins / 8;
    double bimodal = channel::selectThreshold(energy, lab);
    if (bimodal > med + 3.0 * mad)
        return std::min(bimodal, fallback * 4.0);
    return fallback;
}

namespace {

/** Detection telemetry shared by the batch and online detectors so
 * both report under the same stable names. */
void
publishDetectionTelemetry(std::size_t windows, double threshold,
                          std::size_t keystrokes)
{
    telemetry::MetricsRegistry &reg =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter windowCount(reg, "keylog.windows");
    static telemetry::Counter detections(reg, "keylog.detections");
    static telemetry::Gauge thresholdGauge(reg, "keylog.threshold");
    if (!reg.enabled())
        return;
    windowCount.add(windows);
    detections.add(keystrokes);
    if (threshold > 0.0)
        thresholdGauge.set(threshold);
}

} // namespace

DetectionResult
detectKeystrokes(const channel::AcquiredSignal &signal,
                 TimeNs capture_start, const DetectorConfig &config)
{
    telemetry::TraceSpan span("keylog.detect");
    DetectionResult out;
    if (signal.y.empty() || signal.sampleRate <= 0.0)
        return out;

    // Cut the envelope into non-overlapping windowMs segments and
    // average |Y|^2 within each (the §IV-B3 power statistic).
    auto per_window = static_cast<std::size_t>(
        signal.sampleRate * config.windowMs * 1e-3);
    per_window = std::max<std::size_t>(per_window, 1);
    out.windowNs = fromSeconds(static_cast<double>(per_window) /
                               signal.sampleRate);

    std::size_t windows = signal.y.size() / per_window;
    out.windowEnergy.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) {
        double acc = 0.0;
        for (std::size_t i = 0; i < per_window; ++i) {
            double v = signal.y[w * per_window + i];
            acc += v * v;
        }
        out.windowEnergy.push_back(acc / static_cast<double>(per_window));
    }
    if (out.windowEnergy.empty())
        return out;

    out.threshold = selectEnergyThreshold(out.windowEnergy, config);

    // Runs of above-threshold windows, merged across short dropouts,
    // filtered by the 30 ms minimum duration.
    auto merge_gap = static_cast<std::size_t>(
        std::ceil(config.mergeGapMs / config.windowMs));
    auto min_run = static_cast<std::size_t>(
        std::ceil(config.minDurationMs / config.windowMs));

    std::size_t run_start = 0;
    bool in_run = false;
    std::size_t gap = 0;
    auto window_time = [&](std::size_t w) {
        return capture_start +
               static_cast<TimeNs>(w) * out.windowNs;
    };
    auto close_run = [&](std::size_t end_window) {
        std::size_t len = end_window - run_start;
        if (len >= min_run) {
            DetectedKeystroke k;
            k.start = window_time(run_start);
            k.end = window_time(end_window);
            double acc = 0.0;
            for (std::size_t w = run_start; w < end_window; ++w)
                acc += out.windowEnergy[w];
            k.level = acc / static_cast<double>(len);
            out.keystrokes.push_back(k);
        }
    };

    for (std::size_t w = 0; w < out.windowEnergy.size(); ++w) {
        bool hot = out.windowEnergy[w] > out.threshold;
        if (hot) {
            if (!in_run) {
                in_run = true;
                run_start = w;
            }
            gap = 0;
        } else if (in_run) {
            ++gap;
            if (gap > merge_gap) {
                close_run(w - gap + 1);
                in_run = false;
                gap = 0;
            }
        }
    }
    if (in_run)
        close_run(out.windowEnergy.size() - gap);

    publishDetectionTelemetry(out.windowEnergy.size(), out.threshold,
                              out.keystrokes.size());
    return out;
}

namespace {

/** Windows buffered before the first online threshold calibration. */
constexpr std::size_t kCalibrationWindows = 64;
/** Threshold re-selection cadence (windows) once calibrated. */
constexpr std::size_t kRefreshWindows = 256;
/** Ring of recent window energies backing threshold adaptation. */
constexpr std::size_t kEnergyRingWindows = 4096;

} // namespace

OnlineKeystrokeDetector::OnlineKeystrokeDetector(
    double sample_rate, TimeNs capture_start,
    const DetectorConfig &config)
    : cfg(config), start(capture_start)
{
    if (sample_rate <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "OnlineKeystrokeDetector requires a positive "
                   "envelope rate");
    perWindow = std::max<std::size_t>(
        static_cast<std::size_t>(sample_rate * cfg.windowMs * 1e-3), 1);
    windowNs =
        fromSeconds(static_cast<double>(perWindow) / sample_rate);
    mergeGap = static_cast<std::size_t>(
        std::ceil(cfg.mergeGapMs / cfg.windowMs));
    minRun = static_cast<std::size_t>(
        std::ceil(cfg.minDurationMs / cfg.windowMs));
    ringCap = kEnergyRingWindows;
    ring.reserve(ringCap);
    tail.reserve(mergeGap + 2);
}

void
OnlineKeystrokeDetector::feed(const double *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        acc += y[i] * y[i];
        if (++accCount == perWindow) {
            pushWindow(acc / static_cast<double>(perWindow));
            acc = 0.0;
            accCount = 0;
        }
    }
}

void
OnlineKeystrokeDetector::pushWindow(double energy)
{
    if (ring.size() < ringCap) {
        ring.push_back(energy);
    } else {
        ring[ringHead] = energy;
        ringHead = (ringHead + 1) % ringCap;
    }

    if (!calibrated) {
        // Buffer the first windows, select the threshold once enough
        // have been seen, then replay them through the run logic so
        // early keystrokes are not lost to an uncalibrated detector.
        pending.push_back(energy);
        if (pending.size() >= kCalibrationWindows) {
            thr = selectEnergyThreshold(pending, cfg);
            calibrated = true;
            for (double e : pending)
                runLogic(e);
            pending.clear();
        }
        return;
    }

    // Slow adaptation: re-select from the recent-energy ring between
    // bursts (never mid-run, so one keystroke sees one threshold).
    if (!inRun && windows % kRefreshWindows == 0)
        thr = selectEnergyThreshold(ring, cfg);
    runLogic(energy);
}

void
OnlineKeystrokeDetector::runLogic(double energy)
{
    std::size_t w = windows++;
    bool hot = energy > thr;
    if (hot) {
        if (!inRun) {
            inRun = true;
            runStart = w;
            runEnergy = 0.0;
            tail.clear();
        }
        gap = 0;
    } else if (!inRun) {
        return;
    } else {
        ++gap;
    }
    runEnergy += energy;
    if (tail.size() >= mergeGap + 2)
        tail.erase(tail.begin());
    tail.push_back(energy);
    if (gap > mergeGap) {
        closeRun(w - gap + 1, gap);
        inRun = false;
        gap = 0;
    }
}

void
OnlineKeystrokeDetector::closeRun(std::size_t end_window,
                                  std::size_t drop_tail)
{
    std::size_t len = end_window - runStart;
    if (len < minRun)
        return;
    // The trailing `drop_tail` windows were the closing gap (below
    // threshold); exclude them from the burst's mean level, exactly as
    // the batch detector's [run_start, end_window) sum does.
    double energy = runEnergy;
    std::size_t drop = std::min(drop_tail, tail.size());
    for (std::size_t i = 0; i < drop; ++i)
        energy -= tail[tail.size() - 1 - i];
    DetectedKeystroke k;
    k.start = start + static_cast<TimeNs>(runStart) * windowNs;
    k.end = start + static_cast<TimeNs>(end_window) * windowNs;
    k.level = energy / static_cast<double>(len);
    ready.push_back(k);
}

void
OnlineKeystrokeDetector::finish()
{
    if (!calibrated && !pending.empty()) {
        thr = selectEnergyThreshold(pending, cfg);
        calibrated = true;
        for (double e : pending)
            runLogic(e);
        pending.clear();
    }
    if (inRun) {
        closeRun(windows - gap, gap);
        inRun = false;
        gap = 0;
    }
    publishDetectionTelemetry(windows, thr, ready.size());
}

std::vector<DetectedKeystroke>
OnlineKeystrokeDetector::poll()
{
    std::vector<DetectedKeystroke> out = std::move(ready);
    ready.clear();
    return out;
}

std::size_t
OnlineKeystrokeDetector::bufferedSamples() const
{
    return accCount + (pending.size() + ring.size()) * perWindow;
}

} // namespace emsc::keylog
