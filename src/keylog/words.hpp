/**
 * @file
 * Word segmentation and keylogging accuracy metrics (§V-C, Table IV).
 *
 * Once keystrokes are detected, words are reconstructed by grouping
 * temporally close keystrokes (the Berger et al. style approach the
 * paper uses): a new word starts whenever the gap to the previous
 * keystroke exceeds a multiple of the running median gap. Character
 * accuracy is scored as TPR/FPR against the ground-truth keystrokes;
 * word-length accuracy as precision (retrieved words with the correct
 * length) and recall (true words that were retrieved at all).
 */

#ifndef EMSC_KEYLOG_WORDS_HPP
#define EMSC_KEYLOG_WORDS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "keylog/detector.hpp"
#include "keylog/typist.hpp"

namespace emsc::keylog {

/** Word grouping configuration. */
struct WordGroupingConfig
{
    /** A gap above this multiple of the median gap splits words. */
    double gapFactor = 1.50;
    /** Absolute minimum word-splitting gap (ms). */
    double minGapMs = 300.0;
};

/** One reconstructed word. */
struct DetectedWord
{
    /** Index range [first, last] into the detected keystroke list. */
    std::size_t first = 0;
    std::size_t last = 0;
    /** Estimated letter count (trailing space keystroke removed). */
    std::size_t length = 0;
};

/** Group detected keystrokes into words. */
std::vector<DetectedWord>
groupWords(const std::vector<DetectedKeystroke> &keys,
           const WordGroupingConfig &config);

/** Character-level detection quality (Table IV "Char. Acc."). */
struct CharAccuracy
{
    std::size_t trueKeystrokes = 0;
    std::size_t detections = 0;
    std::size_t matched = 0;
    std::size_t falsePositives = 0;

    /** Fraction of true keystrokes that were detected. */
    double
    tpr() const
    {
        return trueKeystrokes
                   ? static_cast<double>(matched) /
                         static_cast<double>(trueKeystrokes)
                   : 0.0;
    }
    /** Fraction of detections not matching any true keystroke. */
    double
    fpr() const
    {
        return detections
                   ? static_cast<double>(falsePositives) /
                         static_cast<double>(detections)
                   : 0.0;
    }
};

/**
 * Match detections against ground truth: a detection matches a true
 * keystroke when their intervals overlap (with `tolerance` slack);
 * matching is 1:1 greedy in time order.
 */
CharAccuracy scoreCharacters(const std::vector<Keystroke> &truth,
                             const std::vector<DetectedKeystroke> &detected,
                             TimeNs tolerance = 30 * kMillisecond);

/** Word-level accuracy (Table IV "Word Acc."). */
struct WordAccuracy
{
    std::size_t trueWords = 0;
    std::size_t retrievedWords = 0;
    std::size_t alignedWords = 0;
    std::size_t correctLength = 0;

    /** Correct-length fraction of the retrieved words. */
    double
    precision() const
    {
        return retrievedWords
                   ? static_cast<double>(correctLength) /
                         static_cast<double>(retrievedWords)
                   : 0.0;
    }
    /** Fraction of true words retrieved at all. */
    double
    recall() const
    {
        return trueWords
                   ? static_cast<double>(alignedWords) /
                         static_cast<double>(trueWords)
                   : 0.0;
    }
};

/**
 * Score reconstructed word lengths against the true ones by aligning
 * the two length sequences with minimum edit distance.
 */
WordAccuracy scoreWords(const std::vector<std::string> &true_words,
                        const std::vector<DetectedWord> &detected);

} // namespace emsc::keylog

#endif // EMSC_KEYLOG_WORDS_HPP
