/**
 * @file
 * Random text generation for keylogging experiments.
 *
 * §V-C types 1000 random words from a typing-test corpus. We embed a
 * compact list of common English words and draw uniformly, which
 * reproduces the relevant statistics: realistic word lengths, realistic
 * digraph mix, spaces between words.
 */

#ifndef EMSC_KEYLOG_TEXTGEN_HPP
#define EMSC_KEYLOG_TEXTGEN_HPP

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace emsc::keylog {

/** The embedded common-word corpus. */
const std::vector<std::string> &wordCorpus();

/** Draw `count` words uniformly from the corpus. */
std::vector<std::string> randomWords(std::size_t count, Rng &rng);

/** Join words with single spaces. */
std::string joinWords(const std::vector<std::string> &words);

} // namespace emsc::keylog

#endif // EMSC_KEYLOG_TEXTGEN_HPP
