/**
 * @file
 * Keystroke detection from the acquired EM envelope (§V-C).
 *
 * The paper normalises the signal, cuts it into non-overlapping 5 ms
 * STFT segments, selects the band containing the PMU spikes, applies
 * the §IV-B3 thresholding to decide whether each window holds a
 * keystroke, and finally rejects detections shorter than 30 ms (a real
 * keystroke's burst is longer). This implementation consumes the
 * already-acquired Eq. (1) envelope — the same band-energy statistic —
 * windowed into 5 ms segments.
 */

#ifndef EMSC_KEYLOG_DETECTOR_HPP
#define EMSC_KEYLOG_DETECTOR_HPP

#include <cstddef>
#include <vector>

#include "channel/acquisition.hpp"
#include "support/types.hpp"

namespace emsc::keylog {

/** Detector configuration (§V-C values as defaults). */
struct DetectorConfig
{
    /** Segment (STFT window) length in milliseconds. */
    double windowMs = 5.0;
    /** Minimum keystroke duration; shorter runs are rejected. */
    double minDurationMs = 30.0;
    /** Runs separated by gaps up to this long are merged (debounce). */
    double mergeGapMs = 10.0;
    /** Histogram bins for threshold selection. */
    std::size_t histogramBins = 96;
    /** MAD multiplier of the fallback threshold. */
    double madFactor = 6.0;
};

/** One detected keystroke interval. */
struct DetectedKeystroke
{
    /** Estimated press time (absolute simulation time). */
    TimeNs start = 0;
    /** Estimated release/stop time. */
    TimeNs end = 0;
    /** Mean window energy inside the detection. */
    double level = 0.0;
};

/** Detector output plus diagnostics. */
struct DetectionResult
{
    std::vector<DetectedKeystroke> keystrokes;
    /** Per-window energies (for spectrogram-style diagnostics). */
    std::vector<double> windowEnergy;
    /** Chosen decision threshold. */
    double threshold = 0.0;
    /** Segment duration in ns. */
    TimeNs windowNs = 0;
};

/**
 * Detect keystrokes in an acquired envelope.
 *
 * @param signal         Eq. (1) envelope (decimated band energy)
 * @param capture_start  absolute time of the envelope's first sample
 */
DetectionResult detectKeystrokes(const channel::AcquiredSignal &signal,
                                 TimeNs capture_start,
                                 const DetectorConfig &config);

/**
 * Decision threshold for per-window energies: bimodal histogram split
 * when the active bump is strong enough, robust floor + k*MAD
 * otherwise. Exposed for the streaming detector, which applies the
 * same rule over a bounded ring of recent windows.
 */
double selectEnergyThreshold(const std::vector<double> &energy,
                             const DetectorConfig &config);

/**
 * Streaming counterpart of detectKeystrokes(): consumes the envelope
 * chunk by chunk and emits each keystroke as soon as its burst
 * completes (run closed by a gap longer than mergeGapMs), instead of
 * after the whole capture. Memory is bounded: a partial window
 * accumulator plus a fixed ring of recent window energies for
 * threshold adaptation.
 *
 * The decision rule matches the batch detector; the threshold is
 * re-selected every thresholdRefreshWindows windows from the ring, so
 * it adapts to slow level drift but — unlike the batch detector — is
 * never computed from windows it has not seen yet. Detections can
 * therefore differ slightly from the batch path near the start of a
 * session, before the ring has filled.
 */
class OnlineKeystrokeDetector
{
  public:
    /**
     * @param sample_rate    decimated envelope rate (Hz)
     * @param capture_start  absolute time of the first envelope sample
     */
    OnlineKeystrokeDetector(double sample_rate, TimeNs capture_start,
                            const DetectorConfig &config);

    /** Feed the next `n` contiguous envelope samples. */
    void feed(const double *y, std::size_t n);

    /** Flush: close a burst still open at end of stream. */
    void finish();

    /**
     * Keystrokes completed since the last poll() (chronological).
     * Clears the internal ready list.
     */
    std::vector<DetectedKeystroke> poll();

    /** Current decision threshold (diagnostics). */
    double threshold() const { return thr; }

    /** Envelope windows consumed so far. */
    std::size_t windowsSeen() const { return windows; }

    /** Bounded internal retention in envelope-sample units. */
    std::size_t bufferedSamples() const;

  private:
    void pushWindow(double energy);
    void runLogic(double energy);
    void closeRun(std::size_t end_window, std::size_t drop_tail);

    DetectorConfig cfg;
    TimeNs start;
    std::size_t perWindow;
    TimeNs windowNs;
    std::size_t mergeGap;
    std::size_t minRun;
    /** Ring of recent window energies for threshold selection. */
    std::vector<double> ring;
    std::size_t ringCap;
    std::size_t ringHead = 0;
    double thr = 0.0;
    bool calibrated = false;
    /** Windows buffered before the first threshold calibration. */
    std::vector<double> pending;
    /** Partial-window accumulator. */
    double acc = 0.0;
    std::size_t accCount = 0;
    /** Windows run through the decision logic so far. */
    std::size_t windows = 0;
    /** Open-run state (mirrors the batch run/merge logic). */
    bool inRun = false;
    std::size_t runStart = 0;
    std::size_t gap = 0;
    double runEnergy = 0.0;
    /** Recent in-run window energies (to exclude the closing gap). */
    std::vector<double> tail;
    std::vector<DetectedKeystroke> ready;
};

} // namespace emsc::keylog

#endif // EMSC_KEYLOG_DETECTOR_HPP
