/**
 * @file
 * Keystroke detection from the acquired EM envelope (§V-C).
 *
 * The paper normalises the signal, cuts it into non-overlapping 5 ms
 * STFT segments, selects the band containing the PMU spikes, applies
 * the §IV-B3 thresholding to decide whether each window holds a
 * keystroke, and finally rejects detections shorter than 30 ms (a real
 * keystroke's burst is longer). This implementation consumes the
 * already-acquired Eq. (1) envelope — the same band-energy statistic —
 * windowed into 5 ms segments.
 */

#ifndef EMSC_KEYLOG_DETECTOR_HPP
#define EMSC_KEYLOG_DETECTOR_HPP

#include <cstddef>
#include <vector>

#include "channel/acquisition.hpp"
#include "support/types.hpp"

namespace emsc::keylog {

/** Detector configuration (§V-C values as defaults). */
struct DetectorConfig
{
    /** Segment (STFT window) length in milliseconds. */
    double windowMs = 5.0;
    /** Minimum keystroke duration; shorter runs are rejected. */
    double minDurationMs = 30.0;
    /** Runs separated by gaps up to this long are merged (debounce). */
    double mergeGapMs = 10.0;
    /** Histogram bins for threshold selection. */
    std::size_t histogramBins = 96;
    /** MAD multiplier of the fallback threshold. */
    double madFactor = 6.0;
};

/** One detected keystroke interval. */
struct DetectedKeystroke
{
    /** Estimated press time (absolute simulation time). */
    TimeNs start = 0;
    /** Estimated release/stop time. */
    TimeNs end = 0;
    /** Mean window energy inside the detection. */
    double level = 0.0;
};

/** Detector output plus diagnostics. */
struct DetectionResult
{
    std::vector<DetectedKeystroke> keystrokes;
    /** Per-window energies (for spectrogram-style diagnostics). */
    std::vector<double> windowEnergy;
    /** Chosen decision threshold. */
    double threshold = 0.0;
    /** Segment duration in ns. */
    TimeNs windowNs = 0;
};

/**
 * Detect keystrokes in an acquired envelope.
 *
 * @param signal         Eq. (1) envelope (decimated band energy)
 * @param capture_start  absolute time of the envelope's first sample
 */
DetectionResult detectKeystrokes(const channel::AcquiredSignal &signal,
                                 TimeNs capture_start,
                                 const DetectorConfig &config);

} // namespace emsc::keylog

#endif // EMSC_KEYLOG_DETECTOR_HPP
