#include "keylog/words.hpp"

#include <algorithm>
#include <cmath>

#include "support/stats.hpp"

namespace emsc::keylog {

std::vector<DetectedWord>
groupWords(const std::vector<DetectedKeystroke> &keys,
           const WordGroupingConfig &config)
{
    std::vector<DetectedWord> out;
    if (keys.empty())
        return out;

    // Median inter-keystroke gap (start-to-start) sets the scale.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < keys.size(); ++i)
        gaps.push_back(toSeconds(keys[i].start - keys[i - 1].start));
    double med = gaps.empty() ? 0.25 : median(gaps);
    double split = std::max(config.gapFactor * med,
                            config.minGapMs * 1e-3);

    std::size_t first = 0;
    for (std::size_t i = 1; i <= keys.size(); ++i) {
        bool boundary =
            i == keys.size() ||
            toSeconds(keys[i].start - keys[i - 1].start) > split;
        if (!boundary)
            continue;
        DetectedWord w;
        w.first = first;
        w.last = i - 1;
        std::size_t count = i - first;
        // A word group normally carries its trailing space keystroke;
        // strip it from the letter count (the final group has none).
        w.length = (i == keys.size()) ? count
                                      : std::max<std::size_t>(1, count - 1);
        out.push_back(w);
        first = i;
    }
    return out;
}

CharAccuracy
scoreCharacters(const std::vector<Keystroke> &truth,
                const std::vector<DetectedKeystroke> &detected,
                TimeNs tolerance)
{
    CharAccuracy acc;
    acc.trueKeystrokes = truth.size();
    acc.detections = detected.size();

    // Greedy 1:1 matching in time order: each detection may claim the
    // earliest unmatched true keystroke whose (press - tol, release +
    // tol) interval overlaps the detection.
    std::vector<bool> taken(truth.size(), false);
    std::size_t cursor = 0;
    for (const DetectedKeystroke &d : detected) {
        bool matched = false;
        for (std::size_t i = cursor; i < truth.size(); ++i) {
            if (taken[i])
                continue;
            TimeNs lo = truth[i].press - tolerance;
            TimeNs hi = truth[i].release + tolerance;
            if (d.end < lo)
                break; // truth is sorted; nothing earlier can match
            if (d.start <= hi && d.end >= lo) {
                taken[i] = true;
                matched = true;
                while (cursor < truth.size() && taken[cursor])
                    ++cursor;
                break;
            }
        }
        if (matched)
            ++acc.matched;
        else
            ++acc.falsePositives;
    }
    return acc;
}

WordAccuracy
scoreWords(const std::vector<std::string> &true_words,
           const std::vector<DetectedWord> &detected)
{
    WordAccuracy acc;
    acc.trueWords = true_words.size();
    acc.retrievedWords = detected.size();

    // Align the two length sequences by minimum edit distance (unit
    // indel, zero-cost match irrespective of length equality) and then
    // score aligned pairs.
    std::size_t n = true_words.size();
    std::size_t m = detected.size();
    std::vector<std::vector<std::uint32_t>> dp(
        n + 1, std::vector<std::uint32_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i)
        dp[i][0] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 0; j <= m; ++j)
        dp[0][j] = static_cast<std::uint32_t>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            std::uint32_t sub =
                dp[i - 1][j - 1] +
                (true_words[i - 1].size() == detected[j - 1].length ? 0
                                                                    : 1);
            dp[i][j] = std::min({sub, dp[i - 1][j] + 2, dp[i][j - 1] + 2});
        }
    }

    std::size_t i = n, j = m;
    while (i > 0 && j > 0) {
        std::uint32_t sub_cost =
            true_words[i - 1].size() == detected[j - 1].length ? 0 : 1;
        if (dp[i][j] == dp[i - 1][j - 1] + sub_cost) {
            ++acc.alignedWords;
            if (sub_cost == 0)
                ++acc.correctLength;
            --i;
            --j;
        } else if (dp[i][j] == dp[i - 1][j] + 2) {
            --i;
        } else {
            --j;
        }
    }
    return acc;
}

} // namespace emsc::keylog
