/**
 * @file
 * Measurement scene: emitter + path + antenna + interference.
 *
 * A Scene combines the VRM's switching-event stream with the
 * propagation path, antenna model and interference environment, and
 * produces a ReceptionPlan: the fully scaled description of what
 * reaches the SDR front-end. The SDR sample synthesiser consumes the
 * plan to produce the complex baseband capture.
 */

#ifndef EMSC_EM_SCENE_HPP
#define EMSC_EM_SCENE_HPP

#include <vector>

#include "em/antenna.hpp"
#include "em/interference.hpp"
#include "em/propagation.hpp"
#include "sim/faults.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"
#include "vrm/buck.hpp"

namespace emsc::em {

/** A di/dt impulse pair arriving at the SDR input. */
struct FieldImpulse
{
    /** Time of the rising edge. */
    TimeNs time;
    /** Amplitude at the antenna output (positive impulse). */
    double amplitude;
    /** Delay of the equal-and-opposite falling edge (burst width). */
    TimeNs width;
};

/** Everything the SDR needs to synthesise the capture. */
struct ReceptionPlan
{
    /** Scaled VRM impulses. */
    std::vector<FieldImpulse> impulses;
    /** Scaled narrowband interferers. */
    std::vector<ToneInterferer> tones;
    /** Scaled broadband interference impulses (times pre-drawn). */
    std::vector<FieldImpulse> noiseImpulses;
    /** Receiver/ambient noise RMS per complex sample. */
    double noiseRms = 0.0;
};

/** Scene description. */
struct SceneConfig
{
    /**
     * Emitter coupling constant: antenna-output amplitude per ampere
     * of burst current at the reference distance with unit-gain
     * antenna. Device-specific (board layout, package).
     */
    double emitterCoupling = 1.0;
    PropagationPath path;
    AntennaModel antenna = makeCoilProbe();
    InterferenceEnvironment environment = quietEnvironment();
};

/**
 * Assemble the reception plan for a capture window.
 *
 * @param config  scene description
 * @param events  VRM switching bursts from the PMU
 * @param t0,t1   capture window
 * @param rng     source for interference event times
 */
ReceptionPlan buildReceptionPlan(const SceneConfig &config,
                                 const std::vector<vrm::SwitchEvent> &events,
                                 TimeNs t0, TimeNs t1, Rng &rng);

/**
 * One transmitter's contribution to a multi-transmitter scene: its
 * own coupling constant and propagation path (near/far geometry), and
 * its VRM burst stream. The antenna and interference environment stay
 * scene-wide properties of the SceneConfig.
 */
struct EmitterStream
{
    /** Device-specific coupling constant (see SceneConfig). */
    double emitterCoupling = 1.0;
    /** Path from this transmitter to the shared antenna. */
    PropagationPath path;
    /** This transmitter's switching bursts (borrowed, time-sorted). */
    const std::vector<vrm::SwitchEvent> *events = nullptr;
};

/**
 * Multi-transmitter variant of buildReceptionPlan(): several machines
 * radiating into one antenna — a same-harmonic collision, FDM on
 * distinct switching frequencies, or a near/far capture-effect scene.
 * Each emitter's impulses are scaled by its own coupling x path
 * (x the shared antenna gain) and the streams are merged in time
 * order. Interference and noise are drawn once for the scene, with
 * rng consumed exactly as the single-transmitter builder does. With
 * one emitter the result is identical to buildReceptionPlan given the
 * same base config, events and rng state.
 */
ReceptionPlan
buildMultiReceptionPlan(const SceneConfig &config,
                        const std::vector<EmitterStream> &emitters,
                        TimeNs t0, TimeNs t1, Rng &rng);

/**
 * Materialise a fault plan's InterfererOnset events as additional
 * impulsive interferers that switch on at the event start for its
 * duration — an appliance firing up mid-capture. Other fault kinds
 * are ignored here (they belong to the SDR/OS stages).
 */
InterferenceEnvironment
applyInterfererOnsets(InterferenceEnvironment environment,
                      const sim::FaultPlan &faults);

/**
 * Predicted signal-to-noise ratio (dB) of the VRM's fundamental bin
 * for an active core drawing `active_current`, given a DFT window of
 * `window` samples at `sample_rate`. A planning/diagnostic helper; the
 * receiver never uses it.
 */
double predictBinSnrDb(const SceneConfig &config, double active_current,
                       double switching_frequency, std::size_t window,
                       double sample_rate);

} // namespace emsc::em

#endif // EMSC_EM_SCENE_HPP
