/**
 * @file
 * Environmental interference sources.
 *
 * The NLoS experiment (Fig. 10) deliberately includes other electronic
 * devices — a printer in the transmitter's room and a refrigerator in
 * the receiver's room — whose unintentional emanations make the signal
 * noisier. Two archetypes cover what matters at the receiver: narrow
 * spectral tones from other switching power supplies, and broadband
 * impulsive bursts from commutation/relay events.
 */

#ifndef EMSC_EM_INTERFERENCE_HPP
#define EMSC_EM_INTERFERENCE_HPP

#include <string>
#include <vector>

#include "support/types.hpp"

namespace emsc::em {

/** A continuous narrowband interferer (e.g. another SMPS harmonic). */
struct ToneInterferer
{
    std::string name;
    /** Tone frequency at the antenna (Hz). */
    Hertz frequency = 0.0;
    /** Amplitude at the antenna output (signal units). */
    double amplitude = 0.0;
    /** Slow frequency wander amplitude (Hz peak). */
    double driftHz = 0.0;
    /** Wander period (seconds). */
    double driftPeriodS = 10.0;
    /** Absolute time the source switches on (0: always on). */
    TimeNs onset = 0;
    /** How long it stays on after onset (0: until capture end). */
    TimeNs activeDuration = 0;
};

/** A random broadband impulsive source (e.g. compressor commutation). */
struct ImpulsiveInterferer
{
    std::string name;
    /** Mean impulse rate (per second). */
    double ratePerSecond = 0.0;
    /** Impulse amplitude at the antenna output (signal units). */
    double amplitude = 0.0;
    /** Number of consecutive impulses per burst (ringing length). */
    std::size_t burstLength = 3;
    /** Spacing of impulses within a burst. */
    TimeNs burstSpacing = 2 * kMicrosecond;
    /** Absolute time the source switches on (0: always on). */
    TimeNs onset = 0;
    /** How long it stays on after onset (0: until capture end). */
    TimeNs activeDuration = 0;
};

/** The full interference environment of a measurement. */
struct InterferenceEnvironment
{
    std::vector<ToneInterferer> tones;
    std::vector<ImpulsiveInterferer> impulses;
};

/**
 * Check every interferer's fields — negative rates/amplitudes, a
 * non-positive burstSpacing with a multi-impulse burst, a
 * non-positive driftPeriodS with drift enabled, negative
 * onset/activeDuration — and raise RecoverableError (kind
 * InvalidConfig) on the first violation. Called by
 * buildReceptionPlan(); exposed for direct use in tests and tools.
 */
void validateEnvironment(const InterferenceEnvironment &environment);

/** A quiet lab: nothing but receiver noise. */
InterferenceEnvironment quietEnvironment();

/**
 * A normal office: a distant AM-broadcast-like tone and light
 * impulsive activity.
 */
InterferenceEnvironment officeEnvironment();

/**
 * The Fig. 10 two-room setup: printer PSU harmonics near the VRM band
 * plus refrigerator compressor impulses near the receiver.
 */
InterferenceEnvironment twoRoomEnvironment();

} // namespace emsc::em

#endif // EMSC_EM_INTERFERENCE_HPP
