/**
 * @file
 * Magnetic near-field propagation between the VRM and the antenna.
 *
 * At the VRM's switching frequency (<= ~1 MHz) the wavelength exceeds
 * 300 m, so every distance in the paper (10 cm to a few metres) is deep
 * in the near field. An ideal magnetic dipole falls off as 1/r^3, but
 * an extended source (the laptop's power-delivery network) in a real
 * room with reflections measures closer to 1/r^2; the exponent is a
 * model parameter. A wall contributes a fixed attenuation.
 */

#ifndef EMSC_EM_PROPAGATION_HPP
#define EMSC_EM_PROPAGATION_HPP

#include "support/units.hpp"

namespace emsc::em {

/** Propagation-path description. */
struct PropagationPath
{
    /** Antenna distance from the VRM, metres. */
    double distanceMeters = 0.1;
    /** Near-field roll-off exponent (1/r^n). */
    double rolloffExponent = 1.6;
    /** Distance at which the emitter constant is referenced. */
    double referenceMeters = 0.1;
    /** Extra attenuation of an intervening wall, dB (0 = no wall). */
    double wallAttenuationDb = 0.0;
    /**
     * Antenna orientation factor in [0, 1]; 1 = manually aligned for
     * maximum SNR as in §IV-C3.
     */
    double orientationFactor = 1.0;

    /** Total amplitude scale applied to the emitted field. */
    double
    amplitudeFactor() const
    {
        double ratio = referenceMeters / distanceMeters;
        double spread = ratio > 0.0
                            ? std::pow(ratio, rolloffExponent)
                            : 0.0;
        return spread * dbToAmplitude(-wallAttenuationDb) *
               orientationFactor;
    }
};

} // namespace emsc::em

#endif // EMSC_EM_PROPAGATION_HPP
