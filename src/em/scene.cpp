#include "em/scene.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::em {

AntennaModel
makeCoilProbe()
{
    AntennaModel a;
    a.kind = AntennaKind::CoilProbe;
    a.name = "33-turn coil probe (r=5mm)";
    a.gain = 1.0;
    // Tiny aperture: receiver noise dominated by the SDR front end.
    a.noiseRms = 0.06;
    return a;
}

AntennaModel
makeLoopAntenna()
{
    AntennaModel a;
    a.kind = AntennaKind::LoopAntenna;
    a.name = "AOR-LA390 loop (r=30cm, +20dB LNA)";
    // Large aperture + LNA: much more field-to-voltage gain, but it
    // collects proportionally more man-made ambient noise, so the net
    // sensitivity advantage over the coil is ~26 dB, not the raw ~60 dB
    // aperture ratio.
    a.gain = 20.0;
    a.noiseRms = 0.18;
    return a;
}

InterferenceEnvironment
quietEnvironment()
{
    return {};
}

InterferenceEnvironment
officeEnvironment()
{
    InterferenceEnvironment env;
    env.tones.push_back(ToneInterferer{
        "AM broadcast leakage", 1010e3, 0.002, 30.0, 7.0});
    env.impulses.push_back(ImpulsiveInterferer{
        "office switching transients", 4.0, 0.3, 2, 3 * kMicrosecond});
    return env;
}

InterferenceEnvironment
twoRoomEnvironment()
{
    InterferenceEnvironment env = officeEnvironment();
    // Printer PSU: ~66 kHz switcher; its 15th harmonic (994.5 kHz)
    // lands in the same part of the spectrum as a typical VRM
    // fundamental and shows up prominently in wall-case spectrograms.
    env.tones.push_back(
        ToneInterferer{"printer PSU 15th harmonic", 994.5e3, 0.05,
                       120.0, 11.0});
    // Refrigerator: compressor/relay commutation, broadband impulses.
    env.impulses.push_back(ImpulsiveInterferer{
        "refrigerator compressor", 6.0, 0.25, 4, 2 * kMicrosecond});
    return env;
}

void
validateEnvironment(const InterferenceEnvironment &environment)
{
    for (const ToneInterferer &tone : environment.tones) {
        if (tone.amplitude < 0.0)
            raiseError(ErrorKind::InvalidConfig,
                       "tone interferer '%s': negative amplitude %g",
                       tone.name.c_str(), tone.amplitude);
        if (tone.driftHz != 0.0 && tone.driftPeriodS <= 0.0)
            raiseError(ErrorKind::InvalidConfig,
                       "tone interferer '%s': driftPeriodS %g must be "
                       "positive when driftHz is set",
                       tone.name.c_str(), tone.driftPeriodS);
        if (tone.onset < 0 || tone.activeDuration < 0)
            raiseError(ErrorKind::InvalidConfig,
                       "tone interferer '%s': negative onset/duration",
                       tone.name.c_str());
    }
    for (const ImpulsiveInterferer &imp : environment.impulses) {
        if (imp.ratePerSecond < 0.0)
            raiseError(ErrorKind::InvalidConfig,
                       "impulsive interferer '%s': negative rate %g",
                       imp.name.c_str(), imp.ratePerSecond);
        if (imp.amplitude < 0.0)
            raiseError(ErrorKind::InvalidConfig,
                       "impulsive interferer '%s': negative amplitude %g",
                       imp.name.c_str(), imp.amplitude);
        if (imp.burstLength > 1 && imp.burstSpacing <= 0)
            raiseError(ErrorKind::InvalidConfig,
                       "impulsive interferer '%s': burstSpacing must be "
                       "positive for a burst of %zu impulses",
                       imp.name.c_str(), imp.burstLength);
        if (imp.onset < 0 || imp.activeDuration < 0)
            raiseError(ErrorKind::InvalidConfig,
                       "impulsive interferer '%s': negative "
                       "onset/duration", imp.name.c_str());
    }
}

InterferenceEnvironment
applyInterfererOnsets(InterferenceEnvironment environment,
                      const sim::FaultPlan &faults)
{
    for (const sim::FaultEvent &e :
         faults.ofKind(sim::FaultKind::InterfererOnset)) {
        ImpulsiveInterferer imp;
        imp.name = "fault interferer";
        // Dense commutation ring-down: strong enough to disturb the
        // envelope for the whole event, not just isolated samples.
        imp.ratePerSecond = 80.0;
        imp.amplitude = e.magnitude;
        imp.burstLength = 4;
        imp.burstSpacing = 2 * kMicrosecond;
        imp.onset = e.start;
        imp.activeDuration = e.duration;
        environment.impulses.push_back(imp);
    }
    return environment;
}

ReceptionPlan
buildMultiReceptionPlan(const SceneConfig &config,
                        const std::vector<EmitterStream> &emitters,
                        TimeNs t0, TimeNs t1, Rng &rng)
{
    if (t1 <= t0)
        raiseError(ErrorKind::MalformedInput,
                   "buildReceptionPlan: empty capture window");
    if (emitters.empty())
        raiseError(ErrorKind::InvalidConfig,
                   "buildMultiReceptionPlan: no emitters");
    validateEnvironment(config.environment);

    ReceptionPlan plan;
    std::size_t total = 0;
    for (const EmitterStream &em : emitters) {
        if (em.events == nullptr)
            raiseError(ErrorKind::InvalidConfig,
                       "buildMultiReceptionPlan: emitter with no "
                       "event stream");
        total += em.events->size();
    }
    plan.impulses.reserve(total);
    for (const EmitterStream &em : emitters) {
        double scale = em.emitterCoupling * em.path.amplitudeFactor() *
                       config.antenna.gain;
        for (const vrm::SwitchEvent &e : *em.events) {
            if (e.time < t0 || e.time >= t1)
                continue;
            plan.impulses.push_back(
                FieldImpulse{e.time, e.amplitude * scale, e.width});
        }
    }
    // Merge the per-emitter streams (each already time-sorted) into
    // one time-ordered stream; stable, so a single emitter's order —
    // and thus buildReceptionPlan's output — is untouched.
    std::stable_sort(plan.impulses.begin(), plan.impulses.end(),
                     [](const FieldImpulse &a, const FieldImpulse &b) {
                         return a.time < b.time;
                     });

    // Interference reaches the antenna directly (its own path is folded
    // into the configured amplitudes) but still scales with antenna gain.
    for (ToneInterferer tone : config.environment.tones) {
        tone.amplitude *= config.antenna.gain;
        plan.tones.push_back(tone);
    }

    for (const ImpulsiveInterferer &imp : config.environment.impulses) {
        if (imp.ratePerSecond <= 0.0)
            continue;
        // An interferer is only drawn while it is switched on: from its
        // onset (if later than the window start) until onset+duration
        // (or the window end for always-on sources).
        TimeNs on0 = std::max(t0, imp.onset);
        TimeNs on1 = t1;
        if (imp.activeDuration > 0)
            on1 = std::min(t1, imp.onset + imp.activeDuration);
        if (on1 <= on0)
            continue;
        double t = static_cast<double>(on0);
        while (true) {
            t += fromSeconds(rng.exponential(1.0 / imp.ratePerSecond));
            if (t >= static_cast<double>(on1))
                break;
            for (std::size_t k = 0; k < imp.burstLength; ++k) {
                auto when = static_cast<TimeNs>(t) +
                            static_cast<TimeNs>(k) * imp.burstSpacing;
                if (when >= on1)
                    break;
                // Alternate polarity within the ring-down.
                double sign = (k % 2 == 0) ? 1.0 : -1.0;
                double decay = std::pow(0.6, static_cast<double>(k));
                plan.noiseImpulses.push_back(FieldImpulse{
                    when, sign * decay * imp.amplitude *
                              config.antenna.gain,
                    1 * kMicrosecond});
            }
        }
    }

    plan.noiseRms = config.antenna.noiseRms;
    return plan;
}

ReceptionPlan
buildReceptionPlan(const SceneConfig &config,
                   const std::vector<vrm::SwitchEvent> &events, TimeNs t0,
                   TimeNs t1, Rng &rng)
{
    std::vector<EmitterStream> one(1);
    one[0].emitterCoupling = config.emitterCoupling;
    one[0].path = config.path;
    one[0].events = &events;
    return buildMultiReceptionPlan(config, one, t0, t1, rng);
}

double
predictBinSnrDb(const SceneConfig &config, double active_current,
                double switching_frequency, std::size_t window,
                double sample_rate)
{
    double scale = config.emitterCoupling *
                   config.path.amplitudeFactor() * config.antenna.gain;
    double per_burst = active_current * scale;

    // Bursts per DFT window (coherent integration).
    double bursts = static_cast<double>(window) / sample_rate *
                    switching_frequency;
    // Width factor |1 - e^{-j w T_on}| of the +/- di/dt impulse pair;
    // assume a ~12% duty cycle as in BuckConfig's default.
    double width_factor =
        2.0 * std::sin(std::numbers::pi * 0.12);
    double signal = per_burst * bursts * width_factor;

    double noise = config.antenna.noiseRms *
                   std::sqrt(static_cast<double>(window));
    if (noise <= 0.0)
        return 1e9;
    return 20.0 * std::log10(signal / noise);
}

} // namespace emsc::em
