/**
 * @file
 * Receive-antenna models.
 *
 * The paper uses two receivers (§IV-C1): a coin-sized 33-turn coil
 * probe (5 mm radius, <$5, no amplifier) held 10 cm from the laptop,
 * and an AOR-LA390 magnetic loop antenna (30 cm radius, built-in 20 dB
 * amplifier) for distance and through-wall captures. An antenna here
 * is a voltage gain applied to the incident field plus a self/ambient
 * noise contribution referred to its output.
 */

#ifndef EMSC_EM_ANTENNA_HPP
#define EMSC_EM_ANTENNA_HPP

#include <string>

namespace emsc::em {

/** Which physical receive antenna is in use. */
enum class AntennaKind
{
    /** Handmade 33-turn, 5 mm radius coil probe (near field). */
    CoilProbe,
    /** AOR-LA390 30 cm loop with built-in 20 dB LNA. */
    LoopAntenna,
};

/** Electrical summary of an antenna + front-end amplifier. */
struct AntennaModel
{
    AntennaKind kind = AntennaKind::CoilProbe;
    std::string name;
    /** Field-to-output voltage gain (arbitrary consistent units). */
    double gain = 1.0;
    /**
     * Ambient + amplifier noise at the antenna output, RMS per complex
     * sample at 2.4 Msps (same units as the signal). Larger apertures
     * collect proportionally more man-made ambient noise, so the loop's
     * gain advantage does not translate into the same SNR advantage.
     */
    double noiseRms = 0.0;
};

/** The handmade near-field coil probe. */
AntennaModel makeCoilProbe();

/** The AOR-LA390 loop antenna with its 20 dB amplifier. */
AntennaModel makeLoopAntenna();

} // namespace emsc::em

#endif // EMSC_EM_ANTENNA_HPP
