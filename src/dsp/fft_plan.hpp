/**
 * @file
 * Reusable FFT plans: precomputed twiddle factors, bit-reversal
 * tables, and Bluestein chirp spectra, cached per transform size.
 *
 * The STFT runs thousands of same-size FFTs per spectrogram and the
 * Monte-Carlo trial sweeps repeat that across hundreds of captures;
 * re-deriving sin/cos twiddles and the bit-reversal permutation on
 * every call dominated the per-frame cost. A plan is computed once per
 * size, shared via a thread-safe registry, and is immutable after
 * construction, so concurrent transforms need no locking.
 */

#ifndef EMSC_DSP_FFT_PLAN_HPP
#define EMSC_DSP_FFT_PLAN_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "dsp/fft.hpp"

namespace emsc::dsp {

/**
 * Radix-2 plan for one power-of-two size: the bit-reversal permutation
 * and the n/2 forward roots of unity. Inverse transforms conjugate the
 * same table, so one plan serves both directions.
 */
class FftPlan
{
  public:
    /**
     * Fetch (or build and cache) the plan for a power-of-two size.
     * Thread-safe; the returned plan is immutable and shared.
     */
    static std::shared_ptr<const FftPlan> forSize(std::size_t n);

    /** Number of distinct radix-2 plans currently cached. */
    static std::size_t cachedCount();

    /** In-place transform (unnormalised forward; inverse applies 1/N). */
    void transform(std::vector<Complex> &data, bool inverse) const;

    /** Raw-buffer variant; `data` must hold size() elements. */
    void transform(Complex *data, bool inverse) const;

    /** Transform size. */
    std::size_t size() const { return n_; }

    /** Build an uncached plan; prefer forSize() for shared reuse. */
    explicit FftPlan(std::size_t n);

  private:
    std::size_t n_;
    std::vector<std::size_t> bitrev_; //!< index permutation table
    std::vector<Complex> roots_;      //!< exp(-2*pi*i*j/n), j < n/2
};

/**
 * Bluestein chirp-z plan for one arbitrary size: the chirp sequence
 * and the pre-transformed filter spectra for both directions, plus the
 * shared radix-2 inner plan of size m = nextPowerOfTwo(2n - 1).
 */
class BluesteinPlan
{
  public:
    /** Fetch (or build and cache) the plan for an arbitrary size. */
    static std::shared_ptr<const BluesteinPlan> forSize(std::size_t n);

    /** Number of distinct Bluestein plans currently cached. */
    static std::size_t cachedCount();

    /**
     * DFT of `input` (length must equal size()). Same normalisation
     * contract as FftPlan::transform: the forward direction is
     * unnormalised and the inverse applies 1/N, so ifft() needs no
     * path-dependent scaling.
     */
    std::vector<Complex> transform(const std::vector<Complex> &input,
                                   bool inverse) const;

    /** Transform size. */
    std::size_t size() const { return n_; }

    /** Build an uncached plan; prefer forSize() for shared reuse. */
    explicit BluesteinPlan(std::size_t n);

  private:
    std::size_t n_;
    std::size_t m_;
    std::shared_ptr<const FftPlan> inner_;
    std::vector<Complex> chirp_;        //!< forward chirp, length n
    std::vector<Complex> filterFwd_;    //!< FFT of the forward filter
    std::vector<Complex> filterInv_;    //!< FFT of the inverse filter
};

/**
 * Real-input FFT plan for one even power-of-two size N >= 2: packs N
 * reals into an N/2-point complex FFT and untangles the half-spectrum
 * with precomputed twiddles, roughly halving the work of a
 * complexified transform. Used by convolveFft and the real-input
 * STFT, where the envelope signals are real by construction.
 */
class RealFftPlan
{
  public:
    /** Fetch (or build and cache) the plan for a power-of-two N >= 2. */
    static std::shared_ptr<const RealFftPlan> forSize(std::size_t n);

    /** Number of distinct real-FFT plans currently cached. */
    static std::size_t cachedCount();

    /**
     * Unnormalised forward transform of `x` (size() reals) into the
     * lower half-spectrum `spectrum[0 .. size()/2]` (DC through
     * Nyquist inclusive — the upper bins are the conjugate mirror).
     * `scratch` must hold size()/2 Complex values.
     */
    void forward(const double *x, Complex *spectrum,
                 Complex *scratch) const;

    /**
     * Exact inverse of forward() including the 1/N factor (same
     * inverse-normalises contract as FftPlan): consumes the
     * half-spectrum `spectrum[0 .. size()/2]`, writes size() reals.
     */
    void inverse(const Complex *spectrum, double *x,
                 Complex *scratch) const;

    /** Real transform length N. */
    std::size_t size() const { return n_; }

    /** Half-spectrum length, size()/2 + 1. */
    std::size_t spectrumSize() const { return n_ / 2 + 1; }

    /** Build an uncached plan; prefer forSize() for shared reuse. */
    explicit RealFftPlan(std::size_t n);

  private:
    std::size_t n_;
    std::shared_ptr<const FftPlan> half_; //!< inner N/2-point plan
    std::vector<Complex> rot_;            //!< exp(-2*pi*i*k/N), k <= N/2
};

} // namespace emsc::dsp

#endif // EMSC_DSP_FFT_PLAN_HPP
