#include "dsp/peaks.hpp"

#include <algorithm>

namespace emsc::dsp {

std::vector<std::size_t>
findPeaks(const std::vector<double> &signal, const PeakOptions &options)
{
    std::vector<std::size_t> candidates;
    std::size_t n = signal.size();
    for (std::size_t i = 0; i < n; ++i) {
        double v = signal[i];
        if (v < options.minHeight)
            continue;
        if (i > 0 && signal[i - 1] >= v)
            continue;
        // Walk any plateau to find where it ends; peak iff it then drops.
        std::size_t j = i;
        while (j + 1 < n && signal[j + 1] == v)
            ++j;
        bool rises_after = j + 1 < n && signal[j + 1] > v;
        if (!rises_after)
            candidates.push_back(i);
    }

    if (options.minDistance <= 1 || candidates.size() < 2)
        return candidates;

    // Enforce spacing, keeping the taller of any conflicting pair.
    std::vector<std::size_t> by_height(candidates);
    std::sort(by_height.begin(), by_height.end(),
              [&](std::size_t a, std::size_t b) {
                  return signal[a] > signal[b];
              });
    std::vector<bool> keep(signal.size(), false);
    std::vector<std::size_t> accepted;
    for (std::size_t c : by_height) {
        bool ok = true;
        for (std::size_t a : accepted) {
            std::size_t d = c > a ? c - a : a - c;
            if (d < options.minDistance) {
                ok = false;
                break;
            }
        }
        if (ok) {
            accepted.push_back(c);
            keep[c] = true;
        }
    }

    std::vector<std::size_t> out;
    for (std::size_t c : candidates)
        if (keep[c])
            out.push_back(c);
    return out;
}

std::vector<double>
refinePeaks(const std::vector<double> &signal,
            const std::vector<std::size_t> &peaks, std::size_t radius)
{
    std::vector<double> out;
    out.reserve(peaks.size());
    auto n = static_cast<std::ptrdiff_t>(signal.size());
    for (std::size_t p : peaks) {
        double wsum = 0.0, xsum = 0.0;
        auto c = static_cast<std::ptrdiff_t>(p);
        for (std::ptrdiff_t i = c - static_cast<std::ptrdiff_t>(radius);
             i <= c + static_cast<std::ptrdiff_t>(radius); ++i) {
            if (i < 0 || i >= n)
                continue;
            double w = std::max(signal[static_cast<std::size_t>(i)], 0.0);
            wsum += w;
            xsum += w * static_cast<double>(i);
        }
        out.push_back(wsum > 0.0 ? xsum / wsum : static_cast<double>(p));
    }
    return out;
}

} // namespace emsc::dsp
