#include "dsp/peaks.hpp"

#include <algorithm>

namespace emsc::dsp {

void
findPeaksInto(const double *signal, std::size_t n,
              const PeakOptions &options, PeakScratch &scratch,
              std::vector<std::size_t> &out)
{
    out.clear();
    std::vector<std::size_t> &candidates = scratch.candidates;
    candidates.clear();
    for (std::size_t i = 0; i < n; ++i) {
        double v = signal[i];
        if (v < options.minHeight)
            continue;
        // A peak needs a genuine rise into the sample: index 0 has no
        // left neighbour, so it can never be one.
        if (i == 0 || signal[i - 1] >= v)
            continue;
        // Walk any plateau to find where it ends; peak iff it then
        // drops. A plateau running into the boundary is NOT a peak —
        // the signal may continue rising past the truncation point.
        std::size_t j = i;
        while (j + 1 < n && signal[j + 1] == v)
            ++j;
        if (j + 1 < n && signal[j + 1] < v)
            candidates.push_back(i);
    }

    if (options.minDistance <= 1 || candidates.size() < 2) {
        out = candidates;
        return;
    }

    // Enforce spacing, keeping the taller of any conflicting pair.
    std::vector<std::size_t> &by_height = scratch.byHeight;
    by_height = candidates;
    std::sort(by_height.begin(), by_height.end(),
              [&](std::size_t a, std::size_t b) {
                  return signal[a] > signal[b];
              });
    std::vector<std::size_t> &accepted = scratch.accepted;
    accepted.clear();
    for (std::size_t c : by_height) {
        bool ok = true;
        for (std::size_t a : accepted) {
            std::size_t d = c > a ? c - a : a - c;
            if (d < options.minDistance) {
                ok = false;
                break;
            }
        }
        if (ok)
            accepted.push_back(c);
    }

    // Survivors in ascending index order (candidates are unique, so a
    // sort of the accepted set is equivalent to the historical
    // keep-mask walk over candidates).
    out = accepted;
    std::sort(out.begin(), out.end());
}

std::vector<std::size_t>
findPeaks(const std::vector<double> &signal, const PeakOptions &options)
{
    PeakScratch scratch;
    std::vector<std::size_t> out;
    findPeaksInto(signal.data(), signal.size(), options, scratch, out);
    return out;
}

std::vector<double>
refinePeaks(const std::vector<double> &signal,
            const std::vector<std::size_t> &peaks, std::size_t radius)
{
    std::vector<double> out;
    out.reserve(peaks.size());
    auto n = static_cast<std::ptrdiff_t>(signal.size());
    for (std::size_t p : peaks) {
        double wsum = 0.0, xsum = 0.0;
        auto c = static_cast<std::ptrdiff_t>(p);
        for (std::ptrdiff_t i = c - static_cast<std::ptrdiff_t>(radius);
             i <= c + static_cast<std::ptrdiff_t>(radius); ++i) {
            if (i < 0 || i >= n)
                continue;
            double w = std::max(signal[static_cast<std::size_t>(i)], 0.0);
            wsum += w;
            xsum += w * static_cast<double>(i);
        }
        out.push_back(wsum > 0.0 ? xsum / wsum : static_cast<double>(p));
    }
    return out;
}

} // namespace emsc::dsp
