/**
 * @file
 * Short-time Fourier transform and spectrogram containers.
 *
 * Spectrograms are the paper's primary visualisation (Figs. 2 and 11)
 * and the keylogger's feature extractor (§V-C uses non-overlapping 5 ms
 * STFT windows). The Spectrogram type stores magnitude frames with the
 * frequency/time geometry needed to map bins back to physical units.
 */

#ifndef EMSC_DSP_STFT_HPP
#define EMSC_DSP_STFT_HPP

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace emsc::dsp {

/** STFT configuration. */
struct StftConfig
{
    /** Samples per analysis window (FFT size; power of two preferred). */
    std::size_t fftSize = 1024;
    /** Samples between successive frames. */
    std::size_t hop = 256;
    /** Analysis window shape. */
    WindowKind window = WindowKind::Hann;
};

/**
 * Time-frequency magnitude grid produced by stft().
 *
 * frames[t][k] is |X_t[k]| for frame t and bin k, with only the lower
 * half-spectrum (k in [0, fftSize/2]) retained for real inputs and the
 * full bin range for complex inputs.
 */
struct Spectrogram
{
    /** Magnitude frames, outer index = time. */
    std::vector<std::vector<double>> frames;
    /** Sample rate of the analysed signal (Hz). */
    double sampleRate = 0.0;
    /** Hop size in samples. */
    std::size_t hop = 0;
    /** FFT size in samples. */
    std::size_t fftSize = 0;
    /** Frequency of bin 0 (baseband offset for complex captures). */
    double binZeroHz = 0.0;

    /** Number of time frames. */
    std::size_t numFrames() const { return frames.size(); }
    /** Number of frequency bins per frame. */
    std::size_t numBins() const { return frames.empty() ? 0 : frames[0].size(); }
    /** Time of the center of frame t, in seconds. */
    double frameTime(std::size_t t) const;
    /** Frequency of bin k, in Hz. */
    double binFrequency(std::size_t k) const;
    /** Index of the bin closest to the given frequency. */
    std::size_t nearestBin(double freq_hz) const;

    /**
     * Render the grid as coarse ASCII art (time on the x-axis), mainly
     * for the figure-reproduction benches. Rows are downsampled to at
     * most max_rows bins and columns to at most max_cols frames.
     */
    std::string renderAscii(std::size_t max_rows, std::size_t max_cols) const;
};

/** STFT of a real signal; keeps bins [0, fftSize/2]. */
Spectrogram stft(const std::vector<double> &signal, double sample_rate,
                 const StftConfig &config);

/**
 * STFT of a complex baseband capture; keeps all fftSize bins,
 * fftshifted so bin 0 corresponds to -fs/2.
 */
Spectrogram stftComplex(const std::vector<Complex> &signal,
                        double sample_rate, const StftConfig &config,
                        double center_freq_hz);

} // namespace emsc::dsp

#endif // EMSC_DSP_STFT_HPP
