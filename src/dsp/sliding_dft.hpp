/**
 * @file
 * Sliding DFT for the paper's Eq. (1) signal acquisition.
 *
 * Eq. (1) computes Y[n] = sum over a bin set S of |F_n[k]|, where F_n
 * is an M-point DFT of the most recent M samples ("1024 point FFT with
 * maximum overlapping", §IV-C1). Recomputing a full FFT per sample is
 * O(M log M) per output; the sliding DFT updates each tracked bin in
 * O(1) per sample: F_{n+1}[k] = (F_n[k] + x_{n+1} - x_{n+1-M}) * W^k.
 * Periodic renormalisation bounds the phasor drift from floating-point
 * rounding.
 */

#ifndef EMSC_DSP_SLIDING_DFT_HPP
#define EMSC_DSP_SLIDING_DFT_HPP

#include <complex>
#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"

namespace emsc::dsp {

/**
 * Streaming per-bin sliding DFT over a fixed window of M samples.
 */
class SlidingDft
{
  public:
    /**
     * Default exact re-seed cadence. Every O(1) bin update multiplies
     * the accumulated phasor by a twiddle whose magnitude rounds away
     * from 1, so the drift grows linearly in pushed samples; re-seeding
     * each bin exactly from the buffered window every interval bounds
     * the error independent of run length (streaming captures run for
     * minutes — hundreds of millions of hops).
     */
    static constexpr std::size_t kDefaultRenormInterval = 1 << 16;

    /**
     * @param window_size      M, the DFT length
     * @param bins             indices k of the tracked bins (0 <= k < M)
     * @param renorm_interval  pushes between exact re-seeds of the
     *                         tracked bins (0 = never re-seed; only for
     *                         drift measurements in tests)
     */
    SlidingDft(std::size_t window_size, std::vector<std::size_t> bins,
               std::size_t renorm_interval = kDefaultRenormInterval);

    /**
     * Push one complex sample; @return the current Eq. (1) output
     * Y[n] = sum_k |F_n[k]| over the tracked bins.
     */
    double push(Complex sample);

    /**
     * Push `n` samples through the vectorised kernel in one call,
     * splitting internally at renormalisation boundaries so the
     * re-seed cadence is sample-exact with the push() loop. When
     * `y_out` is non-null it receives the per-sample Eq. (1) outputs
     * (length n); null skips the magnitude work — callers that
     * synthesise their envelope from binValue() (the streaming
     * acquirer's Hann triplets) pay nothing for outputs they ignore.
     */
    void pushChunk(const Complex *x, std::size_t n, double *y_out);

    /** Current complex value of tracked bin i (index into bins()). */
    Complex
    binValue(std::size_t i) const
    {
        return Complex{accRe[i], accIm[i]};
    }

    /** Tracked bin indices. */
    const std::vector<std::size_t> &bins() const { return binIdx; }

    /** Window size M. */
    std::size_t windowSize() const { return m; }

    /** Number of samples consumed so far. */
    std::size_t samplesSeen() const { return seen; }

    /** Pushes between exact re-seeds (0 = never). */
    std::size_t renormInterval() const { return renormEvery; }

    /** Reset all state as if freshly constructed. */
    void reset();

    /**
     * Convenience batch driver: run the whole capture through the
     * sliding DFT and return Y[n] for every sample (first M-1 outputs
     * are the partial-window warmup values).
     */
    static std::vector<double> acquire(const std::vector<Complex> &capture,
                                       std::size_t window_size,
                                       const std::vector<std::size_t> &bins);

  private:
    void renormalize();

    std::size_t m;
    std::size_t renormEvery;
    std::vector<std::size_t> binIdx;
    /** Split re/im twiddles exp(+2*pi*i*k/M) and running accumulators
     * F_n[k], structure-of-arrays so one SIMD lane maps to one bin. */
    std::vector<double> twRe, twIm;
    std::vector<double> accRe, accIm;
    std::vector<Complex> history; //!< circular buffer of the last M samples
    std::size_t head = 0;
    std::size_t seen = 0;
};

} // namespace emsc::dsp

#endif // EMSC_DSP_SLIDING_DFT_HPP
