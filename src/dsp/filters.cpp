#include "dsp/filters.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace emsc::dsp {

std::vector<double>
movingAverage(const std::vector<double> &signal, std::size_t radius)
{
    std::size_t n = signal.size();
    std::vector<double> out(n, 0.0);
    if (n == 0)
        return out;

    // Prefix sums give O(1) window sums.
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        prefix[i + 1] = prefix[i] + signal[i];

    auto r = static_cast<std::ptrdiff_t>(radius);
    auto sn = static_cast<std::ptrdiff_t>(n);
    for (std::ptrdiff_t i = 0; i < sn; ++i) {
        std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - r);
        std::ptrdiff_t hi = std::min<std::ptrdiff_t>(sn - 1, i + r);
        double sum = prefix[static_cast<std::size_t>(hi + 1)] -
                     prefix[static_cast<std::size_t>(lo)];
        out[static_cast<std::size_t>(i)] =
            sum / static_cast<double>(hi - lo + 1);
    }
    return out;
}

std::vector<double>
medianFilter(const std::vector<double> &signal, std::size_t radius)
{
    std::size_t n = signal.size();
    std::vector<double> out(n, 0.0);
    std::vector<double> window;
    auto r = static_cast<std::ptrdiff_t>(radius);
    auto sn = static_cast<std::ptrdiff_t>(n);
    for (std::ptrdiff_t i = 0; i < sn; ++i) {
        window.clear();
        for (std::ptrdiff_t j = i - r; j <= i + r; ++j) {
            if (j < 0 || j >= sn)
                continue;
            window.push_back(signal[static_cast<std::size_t>(j)]);
        }
        auto mid = window.begin() +
                   static_cast<std::ptrdiff_t>(window.size() / 2);
        std::nth_element(window.begin(), mid, window.end());
        out[static_cast<std::size_t>(i)] = *mid;
    }
    return out;
}

std::vector<double>
singlePoleLowPass(const std::vector<double> &signal, double alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        raiseError(ErrorKind::InvalidConfig,
                   "singlePoleLowPass alpha must be in (0, 1], got %g",
                   alpha);
    std::vector<double> out(signal.size(), 0.0);
    double y = signal.empty() ? 0.0 : signal[0];
    for (std::size_t i = 0; i < signal.size(); ++i) {
        y = alpha * signal[i] + (1.0 - alpha) * y;
        out[i] = y;
    }
    return out;
}

std::vector<double>
power(const std::vector<double> &signal)
{
    std::vector<double> out(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i)
        out[i] = signal[i] * signal[i];
    return out;
}

} // namespace emsc::dsp
