/**
 * @file
 * Fast Fourier transform, implemented from scratch.
 *
 * The receiver chain needs FFTs for spectrograms (Figs. 2 and 11) and
 * fast convolution. A radix-2 iterative Cooley-Tukey transform covers
 * power-of-two sizes (the paper uses M = 1024); Bluestein's chirp-z
 * algorithm extends it to arbitrary sizes so window sweeps in tests and
 * benches are unconstrained.
 */

#ifndef EMSC_DSP_FFT_HPP
#define EMSC_DSP_FFT_HPP

#include <complex>
#include <cstddef>
#include <vector>

namespace emsc::dsp {

using Complex = std::complex<double>;

/** @return true when n is a power of two (n >= 1). */
constexpr bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Smallest power of two that is >= n. Raises ErrorKind::InvalidConfig
 * when no such power of two fits in size_t (n > SIZE_MAX/2 + 1).
 */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * In-place forward FFT of a power-of-two-length buffer.
 * No normalisation is applied (inverse applies 1/N).
 */
void fftRadix2(std::vector<Complex> &data, bool inverse);

/**
 * Forward DFT of arbitrary length: radix-2 when possible, Bluestein
 * otherwise. Returns a new vector; the input is untouched.
 */
std::vector<Complex> fft(const std::vector<Complex> &input);

/** Inverse DFT of arbitrary length, normalised by 1/N. */
std::vector<Complex> ifft(const std::vector<Complex> &input);

/**
 * Forward DFT of a real signal; returns all N complex bins (the upper
 * half is the conjugate mirror, retained for simplicity of use).
 */
std::vector<Complex> fftReal(const std::vector<double> &input);

/**
 * Packed real-input FFT (RealFftPlan): the unnormalised lower
 * half-spectrum X[0 .. N/2] of a real signal of power-of-two length
 * N >= 2, at roughly half the cost of a complexified transform. The
 * omitted upper bins are conj(X[N-k]).
 */
std::vector<Complex> fftRealPacked(const std::vector<double> &input);

/**
 * Inverse of fftRealPacked (1/N normalised): consumes the N/2+1-bin
 * half-spectrum of a real signal of length N, returns the N reals.
 */
std::vector<double> ifftRealPacked(const std::vector<Complex> &spectrum);

/** Magnitudes |X[k]| of a complex spectrum. */
std::vector<double> magnitudes(const std::vector<Complex> &spectrum);

/**
 * Direct O(N^2) DFT used as a reference implementation in tests.
 */
std::vector<Complex> dftReference(const std::vector<Complex> &input);

} // namespace emsc::dsp

#endif // EMSC_DSP_FFT_HPP
