/**
 * @file
 * Simple smoothing filters used throughout the receiver pipeline.
 */

#ifndef EMSC_DSP_FILTERS_HPP
#define EMSC_DSP_FILTERS_HPP

#include <cstddef>
#include <vector>

namespace emsc::dsp {

/**
 * Centered moving average of the given radius (window 2r+1), with
 * edge windows shortened to available samples.
 */
std::vector<double> movingAverage(const std::vector<double> &signal,
                                  std::size_t radius);

/**
 * Sliding median filter of the given radius; robust smoothing used to
 * suppress isolated interrupt spikes without blurring edges.
 */
std::vector<double> medianFilter(const std::vector<double> &signal,
                                 std::size_t radius);

/**
 * One-pole low-pass IIR: y[n] = alpha * x[n] + (1 - alpha) * y[n-1],
 * 0 < alpha <= 1.
 */
std::vector<double> singlePoleLowPass(const std::vector<double> &signal,
                                      double alpha);

/** Per-sample squared magnitude |x|^2 of a real signal. */
std::vector<double> power(const std::vector<double> &signal);

} // namespace emsc::dsp

#endif // EMSC_DSP_FILTERS_HPP
