/**
 * @file
 * Linear convolution and the edge-detection kernel of §IV-B2.
 *
 * The timing-recovery step convolves the acquired magnitude signal
 * Y[n] with a vector of length l_d whose first half is +1 and second
 * half is -1, approximating a derivative; its local maxima mark bit
 * starting points (Fig. 5).
 */

#ifndef EMSC_DSP_CONVOLUTION_HPP
#define EMSC_DSP_CONVOLUTION_HPP

#include <cstddef>
#include <vector>

namespace emsc::dsp {

/**
 * Full linear convolution (output length = |a| + |b| - 1) computed
 * directly; suitable for short kernels.
 */
std::vector<double> convolve(const std::vector<double> &a,
                             const std::vector<double> &b);

/**
 * FFT-based full linear convolution; asymptotically faster for long
 * kernels, numerically equivalent to convolve().
 */
std::vector<double> convolveFft(const std::vector<double> &a,
                                const std::vector<double> &b);

/**
 * "Same"-length correlation of the signal with the +1/-1 edge kernel
 * of length l_d (first half +1, second half -1). Output[i] is aligned
 * so that a rising step in the signal at index i produces a local
 * maximum at (approximately) i.
 *
 * @param signal  acquired magnitude signal Y[n]
 * @param l_d     kernel length; must be even and >= 2
 */
std::vector<double> edgeDetect(const std::vector<double> &signal,
                               std::size_t l_d);

} // namespace emsc::dsp

#endif // EMSC_DSP_CONVOLUTION_HPP
