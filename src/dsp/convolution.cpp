#include "dsp/convolution.hpp"

#include <algorithm>

#include "dsp/fft.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::dsp {

std::vector<double>
convolve(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        return {};
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        double ai = a[i];
        if (ai == 0.0)
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] += ai * b[j];
    }
    return out;
}

std::vector<double>
convolveFft(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        return {};
    std::size_t out_len = a.size() + b.size() - 1;
    std::size_t n = nextPowerOfTwo(out_len);

    std::vector<Complex> fa(n, Complex{0.0, 0.0});
    std::vector<Complex> fb(n, Complex{0.0, 0.0});
    for (std::size_t i = 0; i < a.size(); ++i)
        fa[i] = Complex{a[i], 0.0};
    for (std::size_t i = 0; i < b.size(); ++i)
        fb[i] = Complex{b[i], 0.0};

    fftRadix2(fa, false);
    fftRadix2(fb, false);
    for (std::size_t i = 0; i < n; ++i)
        fa[i] *= fb[i];
    fftRadix2(fa, true);

    std::vector<double> out(out_len);
    for (std::size_t i = 0; i < out_len; ++i)
        out[i] = fa[i].real();
    return out;
}

std::vector<double>
edgeDetect(const std::vector<double> &signal, std::size_t l_d)
{
    if (l_d < 2 || l_d % 2 != 0)
        raiseError(ErrorKind::InvalidConfig,
                   "edgeDetect kernel length must be even and >= 2, "
                   "got %zu", l_d);
    if (signal.empty())
        return {};

    std::size_t half = l_d / 2;
    std::vector<double> out(signal.size(), 0.0);

    // out[i] = sum(signal[i .. i+half-1]) - sum(signal[i-half .. i-1]),
    // computed with a running window for O(N) total cost. A rising step
    // at index i maximises this difference at i.
    auto n = static_cast<std::ptrdiff_t>(signal.size());
    auto h = static_cast<std::ptrdiff_t>(half);
    auto sample = [&](std::ptrdiff_t idx) {
        idx = std::clamp<std::ptrdiff_t>(idx, 0, n - 1);
        return signal[static_cast<std::size_t>(idx)];
    };

    double ahead = 0.0, behind = 0.0;
    for (std::ptrdiff_t j = 0; j < h; ++j) {
        ahead += sample(j);
        behind += sample(-1 - j);
    }
    for (std::ptrdiff_t i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = ahead - behind;
        // Slide the window one sample to the right.
        ahead += sample(i + h) - sample(i);
        behind += sample(i) - sample(i - h);
    }
    return out;
}

} // namespace emsc::dsp
