#include "dsp/convolution.hpp"

#include <algorithm>

#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd/simd.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::dsp {

std::vector<double>
convolve(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        return {};
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        double ai = a[i];
        if (ai == 0.0)
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] += ai * b[j];
    }
    return out;
}

std::vector<double>
convolveFft(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        return {};
    std::size_t out_len = a.size() + b.size() - 1;
    std::size_t n =
        std::max<std::size_t>(2, nextPowerOfTwo(out_len));

    // Both operands are real, so the transform runs through the
    // packed real-input plan: two half-size FFTs and one half-size
    // inverse instead of three full complex transforms.
    auto plan = RealFftPlan::forSize(n);
    std::size_t bins = plan->spectrumSize();
    std::vector<double> pa(n, 0.0), pb(n, 0.0);
    std::copy(a.begin(), a.end(), pa.begin());
    std::copy(b.begin(), b.end(), pb.begin());

    std::vector<Complex> scratch(n / 2);
    std::vector<Complex> fa(bins), fb(bins);
    plan->forward(pa.data(), fa.data(), scratch.data());
    plan->forward(pb.data(), fb.data(), scratch.data());
    for (std::size_t i = 0; i < bins; ++i)
        fa[i] *= fb[i];
    plan->inverse(fa.data(), pa.data(), scratch.data());

    pa.resize(out_len);
    return pa;
}

std::vector<double>
edgeDetect(const std::vector<double> &signal, std::size_t l_d)
{
    if (l_d < 2 || l_d % 2 != 0)
        raiseError(ErrorKind::InvalidConfig,
                   "edgeDetect kernel length must be even and >= 2, "
                   "got %zu", l_d);
    if (signal.empty())
        return {};

    std::size_t half = l_d / 2;
    std::size_t n = signal.size();
    std::vector<double> out(n);

    // out[i] = sum(signal[i .. i+half-1]) - sum(signal[i-half .. i-1])
    // with clamped indices; a rising step at index i maximises the
    // difference at i. Dispatched to the active SIMD backend; the
    // scratch buffer is the vector backends' prefix-sum workspace.
    std::vector<double> scratch(n + 1);
    simd::kernels().edgeDetect(signal.data(), n, half, scratch.data(),
                               out.data());
    return out;
}

} // namespace emsc::dsp
