/**
 * @file
 * Analysis window functions for short-time spectral processing.
 */

#ifndef EMSC_DSP_WINDOW_HPP
#define EMSC_DSP_WINDOW_HPP

#include <cstddef>
#include <memory>
#include <vector>

namespace emsc::dsp {

/** Supported analysis window shapes. */
enum class WindowKind
{
    Rectangular,
    Hann,
    Hamming,
    Blackman,
};

/** Generate a window of the given shape and length. */
std::vector<double> makeWindow(WindowKind kind, std::size_t length);

/**
 * Shared immutable window from a thread-safe (kind, length)-keyed
 * registry. The STFT and carrier-search hot paths request the same
 * window for every frame of every trial; the registry computes it
 * once and hands out the cached copy.
 */
std::shared_ptr<const std::vector<double>> cachedWindow(WindowKind kind,
                                                        std::size_t length);

/** Sum of window samples (useful for amplitude normalisation). */
double windowSum(const std::vector<double> &window);

/** Sum of squared window samples (useful for power normalisation). */
double windowPower(const std::vector<double> &window);

} // namespace emsc::dsp

#endif // EMSC_DSP_WINDOW_HPP
