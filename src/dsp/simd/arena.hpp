/**
 * @file
 * Grow-only bump allocator for per-chunk DSP scratch buffers.
 *
 * The streaming stages need a handful of span-sized scratch arrays
 * (edge-detect window, prefix sums, peak workspaces) on every chunk;
 * allocating them per call made the steady-state path malloc-bound.
 * An Arena hands out doubles from one block, reset()s in O(1) between
 * chunks, and only touches the heap while the high-water mark is
 * still growing — after warm-up the stream path performs no
 * allocations.
 */

#ifndef EMSC_DSP_SIMD_ARENA_HPP
#define EMSC_DSP_SIMD_ARENA_HPP

#include <cstddef>
#include <memory>
#include <vector>

namespace emsc::dsp::simd {

class Arena
{
  public:
    /**
     * Allocate `n` doubles (uninitialised). The pointer stays valid
     * until the next reset(). Never returns null; n == 0 is bumped to
     * one element so distinct calls return distinct pointers.
     */
    double *
    doubles(std::size_t n)
    {
        if (n == 0)
            n = 1;
        if (used_ + n > cap_)
            grow(n);
        double *p = blocks_.back().get() + used_;
        used_ += n;
        total_ += n;
        return p;
    }

    /**
     * Invalidate all outstanding pointers and recycle the memory.
     * When the previous cycle spilled into extra blocks, they are
     * consolidated into one block sized to the cycle's total, so a
     * steady-state workload settles into zero allocations.
     */
    void
    reset()
    {
        if (blocks_.size() > 1 || cap_ < total_) {
            std::size_t want = total_;
            blocks_.clear();
            blocks_.push_back(std::make_unique<double[]>(want));
            cap_ = want;
        }
        used_ = blocks_.empty() ? cap_ : 0;
        total_ = 0;
    }

    /** Doubles currently reserved across all blocks. */
    std::size_t capacity() const { return cap_; }

  private:
    void
    grow(std::size_t n)
    {
        // New block large enough for the request and for doubling the
        // high-water mark, so repeated growth converges quickly.
        std::size_t want = cap_ > n ? cap_ : n;
        if (want < 64)
            want = 64;
        blocks_.push_back(std::make_unique<double[]>(want));
        cap_ = want;
        used_ = 0;
    }

    /** Only the last block is carved from; earlier blocks just keep
     * their outstanding pointers alive until reset(). */
    std::vector<std::unique_ptr<double[]>> blocks_;
    std::size_t cap_ = 0;   //!< capacity of the last block
    std::size_t used_ = 0;  //!< doubles carved from the last block
    std::size_t total_ = 0; //!< doubles handed out this cycle
};

} // namespace emsc::dsp::simd

#endif // EMSC_DSP_SIMD_ARENA_HPP
