/**
 * @file
 * Runtime-dispatched SIMD kernels for the hot-path DSP layer.
 *
 * The streaming receiver spends its wall time in three inner loops:
 * the per-sample sliding-DFT bin update (Eq. (1)), spectrum magnitude
 * extraction, and the +1/-1 edge-detection correlation of §IV-B2.
 * Each is exposed here as a function-pointer kernel with a scalar
 * reference implementation and optional AVX2 / NEON backends. The
 * backend is selected once per process (first use) from CPU features,
 * overridable with EMSC_SIMD=scalar|avx2|neon for A/B testing.
 *
 * Equivalence contract (enforced by tests/test_simd.cpp):
 *  - the scalar backend is bit-identical to the historical per-call
 *    C++ loops (same std::complex arithmetic, same accumulation
 *    order), so EMSC_SIMD=scalar reproduces old outputs exactly;
 *  - every other backend matches scalar within 1e-9 relative error
 *    (relative to the output's own scale), which the downstream
 *    threshold logic is insensitive to.
 */

#ifndef EMSC_DSP_SIMD_SIMD_HPP
#define EMSC_DSP_SIMD_SIMD_HPP

#include <cstddef>

#include "dsp/fft.hpp"

namespace emsc::dsp::simd {

/** Available kernel backends. */
enum class Backend
{
    Scalar,
    Avx2,
    Neon,
};

/**
 * Structure-of-arrays view of a sliding-DFT bin bank: split re/im
 * accumulators and twiddles so a vector lane maps to a tracked bin.
 * All four arrays have length `bins`; accRe/accIm are updated in
 * place.
 */
struct SdftBank
{
    double *accRe;
    double *accIm;
    const double *twRe;
    const double *twIm;
    std::size_t bins;
};

/**
 * Kernel table for one backend. All pointers are non-null.
 */
struct Kernels
{
    /**
     * Push `n` samples through the bin bank: for each sample,
     * F <- (F + x_new - x_old) * W^k for every tracked bin (Eq. (1)
     * update), maintaining the circular `history` of `m` samples with
     * its oldest entry at `*head`. When `y_out` is non-null it
     * receives the per-sample Eq. (1) output sum_k |F[k]| (length n);
     * passing null skips the magnitude work entirely — the streaming
     * acquirer synthesises its envelope from the raw bins instead.
     */
    void (*sdftChunk)(const SdftBank &bank, const Complex *x,
                      std::size_t n, Complex *history, std::size_t m,
                      std::size_t *head, double *y_out);

    /** out[i] = |z[i]| for i < n. */
    void (*magnitudes)(const Complex *z, std::size_t n, double *out);

    /**
     * Edge detection (§IV-B2): out[i] = sum(x[i .. i+half-1]) -
     * sum(x[i-half .. i-1]) with indices clamped to [0, n-1]; `half`
     * is l_d/2 >= 1 and n > 0. `scratch` must hold at least n+1
     * doubles (prefix-sum workspace; backends may ignore it).
     */
    void (*edgeDetect)(const double *x, std::size_t n, std::size_t half,
                       double *scratch, double *out);

    /**
     * Fused magnitude + edge detection: mag_out[i] = |z[i]| followed
     * by edgeDetect(mag_out) into edge_out, without a second pass over
     * memory in vector backends. Same scratch requirement as
     * edgeDetect; mag_out and edge_out each hold n doubles.
     */
    void (*magEdge)(const Complex *z, std::size_t n, std::size_t half,
                    double *mag_out, double *scratch, double *edge_out);
};

/** Human-readable backend name ("scalar", "avx2", "neon"). */
const char *backendName(Backend b);

/** True when the backend is compiled in and the CPU supports it. */
bool backendAvailable(Backend b);

/**
 * The process-wide backend: EMSC_SIMD override when set and
 * available (unavailable or unknown values warn and fall through),
 * otherwise the best available backend. Chosen once, on first call.
 */
Backend activeBackend();

/** Kernel table of the active backend. */
const Kernels &kernels();

/**
 * Kernel table of a specific backend, or nullptr when unavailable.
 * Lets tests cross-check backends against each other in one process.
 */
const Kernels *kernelsFor(Backend b);

/** Reference (always-available) scalar table. */
const Kernels &scalarKernels();

/** Compiled-in vector tables; nullptr when not built for this arch.
 * CPU support is NOT checked here — use backendAvailable(). */
const Kernels *avx2Kernels();
const Kernels *neonKernels();

} // namespace emsc::dsp::simd

#endif // EMSC_DSP_SIMD_SIMD_HPP
