/**
 * @file
 * NEON (aarch64) kernels: 2-wide double lanes for the sliding-DFT
 * bin bank and deinterleaving loads for magnitudes. Edge detection
 * reuses the scalar recurrence — it is already O(n) with two adds
 * per sample, and the aarch64 build targets (laptop-class receivers)
 * are not bottlenecked there.
 *
 * Same numerical contract as the AVX2 backend: within 1e-9 relative
 * error of scalar (naive complex multiply, sqrt instead of hypot).
 */

#include "dsp/simd/simd.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

namespace emsc::dsp::simd {

namespace {

void
sdftChunkNeon(const SdftBank &bank, const Complex *x, std::size_t n,
              Complex *history, std::size_t m, std::size_t *head,
              double *y_out)
{
    std::size_t h = *head;
    std::size_t nb = bank.bins;
    std::size_t nb2 = nb & ~std::size_t{1};

    for (std::size_t s = 0; s < n; ++s) {
        Complex sample = x[s];
        Complex oldest = history[h];
        history[h] = sample;
        h = h + 1 == m ? 0 : h + 1;

        double dr = sample.real() - oldest.real();
        double di = sample.imag() - oldest.imag();
        float64x2_t vdr = vdupq_n_f64(dr);
        float64x2_t vdi = vdupq_n_f64(di);
        float64x2_t ysum = vdupq_n_f64(0.0);

        std::size_t i = 0;
        for (; i < nb2; i += 2) {
            float64x2_t ar = vld1q_f64(bank.accRe + i);
            float64x2_t ai = vld1q_f64(bank.accIm + i);
            float64x2_t tr = vld1q_f64(bank.twRe + i);
            float64x2_t ti = vld1q_f64(bank.twIm + i);
            float64x2_t nr = vaddq_f64(ar, vdr);
            float64x2_t ni = vaddq_f64(ai, vdi);
            float64x2_t rr = vfmsq_f64(vmulq_f64(nr, tr), ni, ti);
            float64x2_t ri = vfmaq_f64(vmulq_f64(ni, tr), nr, ti);
            vst1q_f64(bank.accRe + i, rr);
            vst1q_f64(bank.accIm + i, ri);
            if (y_out) {
                float64x2_t mag2 =
                    vfmaq_f64(vmulq_f64(ri, ri), rr, rr);
                ysum = vaddq_f64(ysum, vsqrtq_f64(mag2));
            }
        }
        double y = y_out ? vaddvq_f64(ysum) : 0.0;
        for (; i < nb; ++i) {
            double nr = bank.accRe[i] + dr;
            double ni = bank.accIm[i] + di;
            double rr = nr * bank.twRe[i] - ni * bank.twIm[i];
            double ri = nr * bank.twIm[i] + ni * bank.twRe[i];
            bank.accRe[i] = rr;
            bank.accIm[i] = ri;
            if (y_out)
                y += std::sqrt(rr * rr + ri * ri);
        }
        if (y_out)
            y_out[s] = y;
    }
    *head = h;
}

void
magnitudesNeon(const Complex *z, std::size_t n, double *out)
{
    const auto *p = reinterpret_cast<const double *>(z);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        float64x2x2_t ri = vld2q_f64(p + 2 * i); // deinterleaved re/im
        float64x2_t mag2 = vfmaq_f64(
            vmulq_f64(ri.val[1], ri.val[1]), ri.val[0], ri.val[0]);
        vst1q_f64(out + i, vsqrtq_f64(mag2));
    }
    for (; i < n; ++i) {
        double re = z[i].real(), im = z[i].imag();
        out[i] = std::sqrt(re * re + im * im);
    }
}

void
magEdgeNeon(const Complex *z, std::size_t n, std::size_t half,
            double *mag_out, double *scratch, double *edge_out)
{
    magnitudesNeon(z, n, mag_out);
    scalarKernels().edgeDetect(mag_out, n, half, scratch, edge_out);
}

} // namespace

const Kernels *
neonKernels()
{
    static const Kernels k = [] {
        Kernels t = scalarKernels();
        t.sdftChunk = sdftChunkNeon;
        t.magnitudes = magnitudesNeon;
        t.magEdge = magEdgeNeon;
        return t;
    }();
    return &k;
}

} // namespace emsc::dsp::simd

#else // !(__aarch64__ && __ARM_NEON)

namespace emsc::dsp::simd {

const Kernels *
neonKernels()
{
    return nullptr;
}

} // namespace emsc::dsp::simd

#endif
