/**
 * @file
 * Scalar reference kernels. These are the historical per-call C++
 * loops moved verbatim behind the dispatch table: same std::complex
 * multiply, same std::abs (hypot), same accumulation order — so the
 * EMSC_SIMD=scalar path is bit-identical to the pre-SIMD code and
 * serves as the ground truth the vector backends are tested against.
 */

#include "dsp/simd/simd.hpp"

#include <algorithm>
#include <cmath>

namespace emsc::dsp::simd {

namespace {

void
sdftChunkScalar(const SdftBank &bank, const Complex *x, std::size_t n,
                Complex *history, std::size_t m, std::size_t *head,
                double *y_out)
{
    std::size_t h = *head;
    for (std::size_t s = 0; s < n; ++s) {
        Complex sample = x[s];
        Complex oldest = history[h];
        history[h] = sample;
        h = (h + 1) % m;

        double y = 0.0;
        for (std::size_t i = 0; i < bank.bins; ++i) {
            Complex acc{bank.accRe[i], bank.accIm[i]};
            acc = (acc + sample - oldest) * Complex{bank.twRe[i],
                                                    bank.twIm[i]};
            bank.accRe[i] = acc.real();
            bank.accIm[i] = acc.imag();
            if (y_out)
                y += std::abs(acc);
        }
        if (y_out)
            y_out[s] = y;
    }
    *head = h;
}

void
magnitudesScalar(const Complex *z, std::size_t n, double *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::abs(z[i]);
}

void
edgeDetectScalar(const double *x, std::size_t n, std::size_t half,
                 double * /*scratch*/, double *out)
{
    // Running-window recurrence, identical to the historical
    // dsp::edgeDetect loop (clamped indices at both boundaries).
    auto nn = static_cast<std::ptrdiff_t>(n);
    auto h = static_cast<std::ptrdiff_t>(half);
    auto sample = [&](std::ptrdiff_t idx) {
        idx = std::clamp<std::ptrdiff_t>(idx, 0, nn - 1);
        return x[static_cast<std::size_t>(idx)];
    };

    double ahead = 0.0, behind = 0.0;
    for (std::ptrdiff_t j = 0; j < h; ++j) {
        ahead += sample(j);
        behind += sample(-1 - j);
    }
    for (std::ptrdiff_t i = 0; i < nn; ++i) {
        out[static_cast<std::size_t>(i)] = ahead - behind;
        ahead += sample(i + h) - sample(i);
        behind += sample(i) - sample(i - h);
    }
}

void
magEdgeScalar(const Complex *z, std::size_t n, std::size_t half,
              double *mag_out, double *scratch, double *edge_out)
{
    magnitudesScalar(z, n, mag_out);
    edgeDetectScalar(mag_out, n, half, scratch, edge_out);
}

} // namespace

const Kernels &
scalarKernels()
{
    static const Kernels k{sdftChunkScalar, magnitudesScalar,
                           edgeDetectScalar, magEdgeScalar};
    return k;
}

} // namespace emsc::dsp::simd
