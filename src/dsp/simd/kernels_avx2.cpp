/**
 * @file
 * AVX2+FMA kernels. This translation unit is compiled with
 * -mavx2 -mfma on x86 only (see src/dsp/CMakeLists.txt); whether the
 * running CPU actually supports the instructions is checked at
 * dispatch time (backendAvailable), never here.
 *
 * Numerical contract: within 1e-9 relative error of the scalar
 * backend (tests/test_simd.cpp). The complex multiply uses the naive
 * FMA form (no __muldc3 special-value handling — DSP data is finite)
 * and magnitudes use sqrt(re^2 + im^2) instead of hypot; both are
 * well inside the contract for the dynamic ranges the receiver sees.
 */

#include "dsp/simd/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace emsc::dsp::simd {

namespace {

/** Horizontal sum of the four lanes. */
inline double
hsum(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    __m128d swapped = _mm_unpackhi_pd(lo, lo);
    return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

void
sdftChunkAvx2(const SdftBank &bank, const Complex *x, std::size_t n,
              Complex *history, std::size_t m, std::size_t *head,
              double *y_out)
{
    std::size_t h = *head;
    std::size_t nb = bank.bins;
    std::size_t nb4 = nb & ~std::size_t{3};

    for (std::size_t s = 0; s < n; ++s) {
        Complex sample = x[s];
        Complex oldest = history[h];
        history[h] = sample;
        h = h + 1 == m ? 0 : h + 1;

        // delta = sample - oldest, broadcast across the bin lanes.
        double dr = sample.real() - oldest.real();
        double di = sample.imag() - oldest.imag();
        __m256d vdr = _mm256_set1_pd(dr);
        __m256d vdi = _mm256_set1_pd(di);
        __m256d ysum = _mm256_setzero_pd();

        std::size_t i = 0;
        for (; i < nb4; i += 4) {
            __m256d ar = _mm256_loadu_pd(bank.accRe + i);
            __m256d ai = _mm256_loadu_pd(bank.accIm + i);
            __m256d tr = _mm256_loadu_pd(bank.twRe + i);
            __m256d ti = _mm256_loadu_pd(bank.twIm + i);
            __m256d nr = _mm256_add_pd(ar, vdr);
            __m256d ni = _mm256_add_pd(ai, vdi);
            // (nr + i*ni) * (tr + i*ti)
            __m256d rr = _mm256_fmsub_pd(nr, tr, _mm256_mul_pd(ni, ti));
            __m256d ri = _mm256_fmadd_pd(nr, ti, _mm256_mul_pd(ni, tr));
            _mm256_storeu_pd(bank.accRe + i, rr);
            _mm256_storeu_pd(bank.accIm + i, ri);
            if (y_out) {
                __m256d mag2 =
                    _mm256_fmadd_pd(rr, rr, _mm256_mul_pd(ri, ri));
                ysum = _mm256_add_pd(ysum, _mm256_sqrt_pd(mag2));
            }
        }
        double y = y_out ? hsum(ysum) : 0.0;
        for (; i < nb; ++i) {
            double nr = bank.accRe[i] + dr;
            double ni = bank.accIm[i] + di;
            double rr = nr * bank.twRe[i] - ni * bank.twIm[i];
            double ri = nr * bank.twIm[i] + ni * bank.twRe[i];
            bank.accRe[i] = rr;
            bank.accIm[i] = ri;
            if (y_out)
                y += std::sqrt(rr * rr + ri * ri);
        }
        if (y_out)
            y_out[s] = y;
    }
    *head = h;
}

void
magnitudesAvx2(const Complex *z, std::size_t n, double *out)
{
    const auto *p = reinterpret_cast<const double *>(z);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d a = _mm256_loadu_pd(p + 2 * i);     // r0 i0 r1 i1
        __m256d b = _mm256_loadu_pd(p + 2 * i + 4); // r2 i2 r3 i3
        __m256d a2 = _mm256_mul_pd(a, a);
        __m256d b2 = _mm256_mul_pd(b, b);
        // hadd within 128-bit lanes: [m0, m2, m1, m3] -> permute to
        // ascending order.
        __m256d sums = _mm256_hadd_pd(a2, b2);
        sums = _mm256_permute4x64_pd(sums, _MM_SHUFFLE(3, 1, 2, 0));
        _mm256_storeu_pd(out + i, _mm256_sqrt_pd(sums));
    }
    for (; i < n; ++i) {
        double re = z[i].real(), im = z[i].imag();
        out[i] = std::sqrt(re * re + im * im);
    }
}

/**
 * Tile size for the prefix-sum edge detector. Prefix sums accumulate
 * rounding error proportional to the running total, so one prefix
 * over a megasample signal would breach the 1e-9 contract; per-tile
 * local prefixes keep the running totals (and therefore the error)
 * bounded independent of signal length.
 */
constexpr std::size_t kEdgeTile = 4096;

void
edgeDetectAvx2(const double *x, std::size_t n, std::size_t half,
               double *scratch, double *out)
{
    auto nn = static_cast<std::ptrdiff_t>(n);
    auto h = static_cast<std::ptrdiff_t>(half);
    double x0 = x[0];
    double xn = x[n - 1];

    // Scalar closed-form for positions whose window clamps at either
    // boundary: ahead(i) = sum x[i .. i+h-1], behind(i) =
    // sum x[i-h .. i-1], clamped terms folded in analytically.
    auto edge_at = [&](std::ptrdiff_t i, const double *q,
                       std::ptrdiff_t lo) {
        // q = local prefix over x[lo .. ), q[k] = sum x[lo .. lo+k).
        std::ptrdiff_t a_end = std::min<std::ptrdiff_t>(i + h, nn);
        double ahead = q[a_end - lo] - q[i - lo] +
                       static_cast<double>(std::max<std::ptrdiff_t>(
                           i + h - nn, 0)) *
                           xn;
        std::ptrdiff_t b_begin = std::max<std::ptrdiff_t>(i - h, 0);
        double behind = q[i - lo] - q[b_begin - lo] +
                        static_cast<double>(std::max<std::ptrdiff_t>(
                            h - i, 0)) *
                            x0;
        return ahead - behind;
    };

    for (std::ptrdiff_t t0 = 0; t0 < nn;
         t0 += static_cast<std::ptrdiff_t>(kEdgeTile)) {
        std::ptrdiff_t t1 = std::min<std::ptrdiff_t>(
            t0 + static_cast<std::ptrdiff_t>(kEdgeTile), nn);
        // Local prefix over the tile plus h of context on both sides.
        std::ptrdiff_t lo = std::max<std::ptrdiff_t>(t0 - h, 0);
        std::ptrdiff_t hi = std::min<std::ptrdiff_t>(t1 + h, nn);
        double *q = scratch;
        q[0] = 0.0;
        for (std::ptrdiff_t k = lo; k < hi; ++k)
            q[k - lo + 1] = q[k - lo] + x[k];

        // Interior positions (no clamping): out[i] =
        // q[i+h-lo] - 2 q[i-lo] + q[i-h-lo], vectorised.
        std::ptrdiff_t v0 = std::max<std::ptrdiff_t>(t0, h);
        std::ptrdiff_t v1 = std::min<std::ptrdiff_t>(t1, nn - h);
        std::ptrdiff_t i = t0;
        for (; i < std::min(t1, v0); ++i)
            out[i] = edge_at(i, q, lo);
        if (v1 > v0) {
            const __m256d two = _mm256_set1_pd(2.0);
            for (; i + 4 <= v1; i += 4) {
                __m256d pa = _mm256_loadu_pd(q + (i + h - lo));
                __m256d pc = _mm256_loadu_pd(q + (i - lo));
                __m256d pb = _mm256_loadu_pd(q + (i - h - lo));
                __m256d r = _mm256_fnmadd_pd(two, pc,
                                             _mm256_add_pd(pa, pb));
                _mm256_storeu_pd(out + i, r);
            }
            for (; i < v1; ++i)
                out[i] = q[i + h - lo] - 2.0 * q[i - lo] +
                         q[i - h - lo];
        }
        for (; i < t1; ++i)
            out[i] = edge_at(i, q, lo);
    }
}

void
magEdgeAvx2(const Complex *z, std::size_t n, std::size_t half,
            double *mag_out, double *scratch, double *edge_out)
{
    magnitudesAvx2(z, n, mag_out);
    edgeDetectAvx2(mag_out, n, half, scratch, edge_out);
}

} // namespace

const Kernels *
avx2Kernels()
{
    static const Kernels k{sdftChunkAvx2, magnitudesAvx2,
                           edgeDetectAvx2, magEdgeAvx2};
    return &k;
}

} // namespace emsc::dsp::simd

#else // !(__AVX2__ && __FMA__)

namespace emsc::dsp::simd {

const Kernels *
avx2Kernels()
{
    return nullptr;
}

} // namespace emsc::dsp::simd

#endif
