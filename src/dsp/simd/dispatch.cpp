/**
 * @file
 * One-time backend selection for the SIMD kernel tables.
 *
 * Selection order: an EMSC_SIMD=scalar|avx2|neon override when set
 * (unavailable or unrecognised values warn once and fall through),
 * otherwise the best backend both compiled in and supported by the
 * running CPU. The choice is made on first use and never changes, so
 * every stage of a run sees the same arithmetic.
 */

#include "dsp/simd/simd.hpp"

#include <cstdlib>
#include <cstring>

#include "support/logging.hpp"

namespace emsc::dsp::simd {

namespace {

bool
cpuHasAvx2Fma()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

Backend
chooseBackend()
{
    const char *env = std::getenv("EMSC_SIMD");
    if (env != nullptr && *env != '\0') {
        Backend want = Backend::Scalar;
        bool known = true;
        if (std::strcmp(env, "scalar") == 0)
            want = Backend::Scalar;
        else if (std::strcmp(env, "avx2") == 0)
            want = Backend::Avx2;
        else if (std::strcmp(env, "neon") == 0)
            want = Backend::Neon;
        else
            known = false;

        if (!known)
            warn("EMSC_SIMD=%s not recognised (expected "
                 "scalar|avx2|neon); auto-selecting",
                 env);
        else if (!backendAvailable(want))
            warn("EMSC_SIMD=%s requested but unavailable on this "
                 "host; auto-selecting",
                 env);
        else
            return want;
    }

    if (backendAvailable(Backend::Avx2))
        return Backend::Avx2;
    if (backendAvailable(Backend::Neon))
        return Backend::Neon;
    return Backend::Scalar;
}

} // namespace

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    case Backend::Neon:
        return "neon";
    }
    return "unknown";
}

bool
backendAvailable(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
        return avx2Kernels() != nullptr && cpuHasAvx2Fma();
    case Backend::Neon:
        return neonKernels() != nullptr;
    }
    return false;
}

Backend
activeBackend()
{
    static const Backend chosen = chooseBackend();
    return chosen;
}

const Kernels &
kernels()
{
    static const Kernels *table = kernelsFor(activeBackend());
    return *table;
}

const Kernels *
kernelsFor(Backend b)
{
    if (!backendAvailable(b))
        return nullptr;
    switch (b) {
    case Backend::Scalar:
        return &scalarKernels();
    case Backend::Avx2:
        return avx2Kernels();
    case Backend::Neon:
        return neonKernels();
    }
    return nullptr;
}

} // namespace emsc::dsp::simd
