#include "dsp/fft_plan.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "support/logging.hpp"
#include "support/telemetry.hpp"

namespace emsc::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

/**
 * Size-keyed plan registry. Lookup takes the mutex only long enough to
 * copy the shared_ptr; plan construction for a missing size happens
 * outside the critical path of other sizes but inside the lock so two
 * threads racing on the same size build it once.
 */
template <typename Plan>
class PlanRegistry
{
  public:
    /**
     * Look up the plan for `n`, constructing it on first use.
     * `hits`/`misses` track cache effectiveness in the telemetry
     * registry (one counter bump per lookup, not per sample).
     */
    std::shared_ptr<const Plan>
    get(std::size_t n, const telemetry::Counter &hits,
        const telemetry::Counter &misses)
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = plans.find(n);
        if (it != plans.end()) {
            hits.add();
            return it->second;
        }
        misses.add();
        auto plan = std::shared_ptr<const Plan>(new Plan(n));
        plans.emplace(n, plan);
        return plan;
    }

    std::size_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return plans.size();
    }

  private:
    mutable std::mutex mtx;
    std::unordered_map<std::size_t, std::shared_ptr<const Plan>> plans;
};

PlanRegistry<FftPlan> &
radix2Registry()
{
    static auto *reg = new PlanRegistry<FftPlan>();
    return *reg;
}

PlanRegistry<BluesteinPlan> &
bluesteinRegistry()
{
    static auto *reg = new PlanRegistry<BluesteinPlan>();
    return *reg;
}

PlanRegistry<RealFftPlan> &
realRegistry()
{
    static auto *reg = new PlanRegistry<RealFftPlan>();
    return *reg;
}

} // namespace

FftPlan::FftPlan(std::size_t n) : n_(n)
{
    if (!isPowerOfTwo(n))
        panic("FftPlan requires a power-of-two size, got %zu", n);

    bitrev_.resize(n);
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        bitrev_[i] = j;
    }

    roots_.resize(n / 2);
    for (std::size_t j = 0; j < n / 2; ++j) {
        double angle = -2.0 * kPi * static_cast<double>(j) /
                       static_cast<double>(n);
        roots_[j] = std::polar(1.0, angle);
    }
}

std::shared_ptr<const FftPlan>
FftPlan::forSize(std::size_t n)
{
    static telemetry::Counter hits(telemetry::MetricsRegistry::global(),
                                   "dsp.fft_plan.hits");
    static telemetry::Counter misses(telemetry::MetricsRegistry::global(),
                                     "dsp.fft_plan.misses");
    return radix2Registry().get(n, hits, misses);
}

std::size_t
FftPlan::cachedCount()
{
    return radix2Registry().count();
}

void
FftPlan::transform(std::vector<Complex> &data, bool inverse) const
{
    if (data.size() != n_)
        panic("FftPlan size mismatch: plan %zu, data %zu", n_,
              data.size());
    transform(data.data(), inverse);
}

void
FftPlan::transform(Complex *data, bool inverse) const
{
    for (std::size_t i = 1; i < n_; ++i) {
        std::size_t j = bitrev_[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n_; len <<= 1) {
        std::size_t stride = n_ / len;
        for (std::size_t i = 0; i < n_; i += len) {
            for (std::size_t j = 0; j < len / 2; ++j) {
                Complex w = roots_[j * stride];
                if (inverse)
                    w = std::conj(w);
                Complex u = data[i + j];
                Complex v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
            }
        }
    }

    if (inverse) {
        double inv = 1.0 / static_cast<double>(n_);
        for (std::size_t i = 0; i < n_; ++i)
            data[i] *= inv;
    }
}

BluesteinPlan::BluesteinPlan(std::size_t n) : n_(n)
{
    if (n == 0)
        panic("BluesteinPlan requires a positive size");
    m_ = nextPowerOfTwo(2 * n - 1);
    inner_ = FftPlan::forSize(m_);

    // Forward chirp c[k] = exp(-i * pi * k^2 / n); the inverse chirp is
    // its conjugate, so only the forward sequence is stored.
    chirp_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the angle argument small and exact.
        std::size_t k2 = (k * k) % (2 * n);
        double angle = -kPi * static_cast<double>(k2) /
                       static_cast<double>(n);
        chirp_[k] = std::polar(1.0, angle);
    }

    // Filter b[k] = conj(chirp[k]) mirrored into the padded buffer,
    // pre-transformed for both directions (the inverse filter is the
    // unconjugated chirp mirrored the same way).
    filterFwd_.assign(m_, Complex{0.0, 0.0});
    filterInv_.assign(m_, Complex{0.0, 0.0});
    filterFwd_[0] = std::conj(chirp_[0]);
    filterInv_[0] = chirp_[0];
    for (std::size_t k = 1; k < n; ++k) {
        filterFwd_[k] = filterFwd_[m_ - k] = std::conj(chirp_[k]);
        filterInv_[k] = filterInv_[m_ - k] = chirp_[k];
    }
    inner_->transform(filterFwd_, false);
    inner_->transform(filterInv_, false);
}

std::shared_ptr<const BluesteinPlan>
BluesteinPlan::forSize(std::size_t n)
{
    static telemetry::Counter hits(telemetry::MetricsRegistry::global(),
                                   "dsp.bluestein_plan.hits");
    static telemetry::Counter misses(telemetry::MetricsRegistry::global(),
                                     "dsp.bluestein_plan.misses");
    return bluesteinRegistry().get(n, hits, misses);
}

std::size_t
BluesteinPlan::cachedCount()
{
    return bluesteinRegistry().count();
}

std::vector<Complex>
BluesteinPlan::transform(const std::vector<Complex> &input,
                         bool inverse) const
{
    if (input.size() != n_)
        panic("BluesteinPlan size mismatch: plan %zu, data %zu", n_,
              input.size());

    std::vector<Complex> a(m_, Complex{0.0, 0.0});
    for (std::size_t k = 0; k < n_; ++k) {
        Complex c = inverse ? std::conj(chirp_[k]) : chirp_[k];
        a[k] = input[k] * c;
    }

    inner_->transform(a, false);
    const std::vector<Complex> &filter = inverse ? filterInv_ : filterFwd_;
    for (std::size_t k = 0; k < m_; ++k)
        a[k] *= filter[k];
    inner_->transform(a, true);

    std::vector<Complex> out(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        Complex c = inverse ? std::conj(chirp_[k]) : chirp_[k];
        out[k] = a[k] * c;
    }
    // The inverse direction applies 1/N here so both plan classes
    // share one normalisation contract (forward unnormalised, inverse
    // scaled); historically this scaling lived in ifft(), leaving a
    // bare BluesteinPlan inverse un-normalised unlike FftPlan's.
    if (inverse) {
        double inv = 1.0 / static_cast<double>(n_);
        for (Complex &v : out)
            v *= inv;
    }
    return out;
}

RealFftPlan::RealFftPlan(std::size_t n) : n_(n)
{
    if (!isPowerOfTwo(n) || n < 2)
        panic("RealFftPlan requires a power-of-two size >= 2, got %zu",
              n);
    half_ = FftPlan::forSize(n / 2);
    rot_.resize(n / 2 + 1);
    for (std::size_t k = 0; k <= n / 2; ++k) {
        double angle = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n);
        rot_[k] = std::polar(1.0, angle);
    }
}

std::shared_ptr<const RealFftPlan>
RealFftPlan::forSize(std::size_t n)
{
    static telemetry::Counter hits(telemetry::MetricsRegistry::global(),
                                   "dsp.real_fft_plan.hits");
    static telemetry::Counter misses(
        telemetry::MetricsRegistry::global(),
        "dsp.real_fft_plan.misses");
    return realRegistry().get(n, hits, misses);
}

std::size_t
RealFftPlan::cachedCount()
{
    return realRegistry().count();
}

void
RealFftPlan::forward(const double *x, Complex *spectrum,
                     Complex *scratch) const
{
    std::size_t nh = n_ / 2;
    // Pack adjacent reals into one complex sample and run the
    // half-size transform: Z = FFT_{N/2}(x[2k] + i x[2k+1]).
    for (std::size_t k = 0; k < nh; ++k)
        scratch[k] = Complex{x[2 * k], x[2 * k + 1]};
    half_->transform(scratch, false);

    // Untangle even/odd sub-spectra: with Zc = conj(Z[(nh-k) % nh]),
    // E = (Z + Zc)/2 and O = (Z - Zc)/(2i) are the DFTs of the even
    // and odd samples, and X[k] = E + w^k O with w = exp(-2*pi*i/N).
    Complex z0 = scratch[0];
    spectrum[0] = Complex{z0.real() + z0.imag(), 0.0};
    spectrum[nh] = Complex{z0.real() - z0.imag(), 0.0};
    for (std::size_t k = 1; k < nh; ++k) {
        Complex zk = scratch[k];
        Complex zc = std::conj(scratch[nh - k]);
        Complex e = 0.5 * (zk + zc);
        Complex d = zk - zc;
        Complex o{0.5 * d.imag(), -0.5 * d.real()};
        spectrum[k] = e + rot_[k] * o;
    }
}

void
RealFftPlan::inverse(const Complex *spectrum, double *x,
                     Complex *scratch) const
{
    std::size_t nh = n_ / 2;
    // Invert the untangling: recover Z[k] = E + iO from the
    // half-spectrum (conj(X[nh-k]) = E - w^k O for a real signal),
    // then one normalised inverse half-size FFT unpacks the reals.
    for (std::size_t k = 0; k < nh; ++k) {
        Complex xa = spectrum[k];
        Complex xb = std::conj(spectrum[nh - k]);
        Complex e = 0.5 * (xa + xb);
        Complex t = 0.5 * (xa - xb);
        Complex o = std::conj(rot_[k]) * t;
        scratch[k] = e + Complex{-o.imag(), o.real()};
    }
    half_->transform(scratch, true);
    for (std::size_t k = 0; k < nh; ++k) {
        x[2 * k] = scratch[k].real();
        x[2 * k + 1] = scratch[k].imag();
    }
}

} // namespace emsc::dsp
