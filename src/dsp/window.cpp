#include "dsp/window.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "support/error.hpp"

namespace emsc::dsp {

std::vector<double>
makeWindow(WindowKind kind, std::size_t length)
{
    if (length == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "window length must be positive");
    std::vector<double> w(length, 1.0);
    if (length == 1 || kind == WindowKind::Rectangular)
        return w;

    const double pi = std::numbers::pi;
    auto denom = static_cast<double>(length - 1);
    for (std::size_t i = 0; i < length; ++i) {
        double x = static_cast<double>(i) / denom;
        switch (kind) {
          case WindowKind::Hann:
            w[i] = 0.5 - 0.5 * std::cos(2.0 * pi * x);
            break;
          case WindowKind::Hamming:
            w[i] = 0.54 - 0.46 * std::cos(2.0 * pi * x);
            break;
          case WindowKind::Blackman:
            w[i] = 0.42 - 0.5 * std::cos(2.0 * pi * x) +
                   0.08 * std::cos(4.0 * pi * x);
            break;
          case WindowKind::Rectangular:
            break;
        }
    }
    return w;
}

std::shared_ptr<const std::vector<double>>
cachedWindow(WindowKind kind, std::size_t length)
{
    struct Key
    {
        WindowKind kind;
        std::size_t length;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<std::size_t>{}(k.length * 4 +
                                            static_cast<std::size_t>(
                                                k.kind));
        }
    };
    // Leaked on purpose: windows may be requested from static
    // destructors of long-lived experiment objects.
    static auto *cache = new std::unordered_map<
        Key, std::shared_ptr<const std::vector<double>>, KeyHash>();
    static std::mutex mtx;

    std::lock_guard<std::mutex> lock(mtx);
    Key key{kind, length};
    auto it = cache->find(key);
    if (it != cache->end())
        return it->second;
    auto win = std::make_shared<const std::vector<double>>(
        makeWindow(kind, length));
    cache->emplace(key, win);
    return win;
}

double
windowSum(const std::vector<double> &window)
{
    double acc = 0.0;
    for (double w : window)
        acc += w;
    return acc;
}

double
windowPower(const std::vector<double> &window)
{
    double acc = 0.0;
    for (double w : window)
        acc += w * w;
    return acc;
}

} // namespace emsc::dsp
