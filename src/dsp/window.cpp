#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "support/logging.hpp"

namespace emsc::dsp {

std::vector<double>
makeWindow(WindowKind kind, std::size_t length)
{
    if (length == 0)
        fatal("window length must be positive");
    std::vector<double> w(length, 1.0);
    if (length == 1 || kind == WindowKind::Rectangular)
        return w;

    const double pi = std::numbers::pi;
    auto denom = static_cast<double>(length - 1);
    for (std::size_t i = 0; i < length; ++i) {
        double x = static_cast<double>(i) / denom;
        switch (kind) {
          case WindowKind::Hann:
            w[i] = 0.5 - 0.5 * std::cos(2.0 * pi * x);
            break;
          case WindowKind::Hamming:
            w[i] = 0.54 - 0.46 * std::cos(2.0 * pi * x);
            break;
          case WindowKind::Blackman:
            w[i] = 0.42 - 0.5 * std::cos(2.0 * pi * x) +
                   0.08 * std::cos(4.0 * pi * x);
            break;
          case WindowKind::Rectangular:
            break;
        }
    }
    return w;
}

double
windowSum(const std::vector<double> &window)
{
    double acc = 0.0;
    for (double w : window)
        acc += w;
    return acc;
}

double
windowPower(const std::vector<double> &window)
{
    double acc = 0.0;
    for (double w : window)
        acc += w * w;
    return acc;
}

} // namespace emsc::dsp
