/**
 * @file
 * Local-maximum (peak) detection on one-dimensional signals.
 *
 * Used to turn the edge-detector output into candidate bit starting
 * points (§IV-B2) and to locate VRM spectral spikes in spectra.
 */

#ifndef EMSC_DSP_PEAKS_HPP
#define EMSC_DSP_PEAKS_HPP

#include <cstddef>
#include <vector>

namespace emsc::dsp {

/** Options controlling findPeaks(). */
struct PeakOptions
{
    /** Minimum value a peak must reach (absolute units). */
    double minHeight = 0.0;
    /**
     * Minimum index distance between two reported peaks; when two
     * candidates are closer, the taller one wins.
     */
    std::size_t minDistance = 1;
};

/**
 * Indices of local maxima of the signal satisfying the options, in
 * ascending index order. Plateau maxima report their first index.
 *
 * Boundary semantics: a peak requires a genuine rise before it and a
 * genuine drop after it, so index 0, plateaus starting at index 0,
 * and plateaus running into the end of the signal are never reported
 * — a truncated capture ending mid-pulse must not yield a phantom
 * peak.
 */
std::vector<std::size_t> findPeaks(const std::vector<double> &signal,
                                   const PeakOptions &options);

/** Reusable workspace for findPeaksInto(); contents are opaque. */
struct PeakScratch
{
    std::vector<std::size_t> candidates;
    std::vector<std::size_t> byHeight;
    std::vector<std::size_t> accepted;
};

/**
 * findPeaks() into a caller-owned output vector with caller-owned
 * scratch, so steady-state streaming callers allocate nothing once
 * the buffers have reached their high-water marks. `out` is cleared
 * first; results are identical to findPeaks().
 */
void findPeaksInto(const double *signal, std::size_t n,
                   const PeakOptions &options, PeakScratch &scratch,
                   std::vector<std::size_t> &out);

/**
 * Refine each peak index to the weighted centroid of the samples in a
 * +-radius neighbourhood, for sub-sample edge localisation.
 */
std::vector<double> refinePeaks(const std::vector<double> &signal,
                                const std::vector<std::size_t> &peaks,
                                std::size_t radius);

} // namespace emsc::dsp

#endif // EMSC_DSP_PEAKS_HPP
