#include "dsp/stft.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft_plan.hpp"
#include "dsp/simd/simd.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace emsc::dsp {

double
Spectrogram::frameTime(std::size_t t) const
{
    double center = static_cast<double>(t) * static_cast<double>(hop) +
                    static_cast<double>(fftSize) / 2.0;
    return center / sampleRate;
}

double
Spectrogram::binFrequency(std::size_t k) const
{
    return binZeroHz +
           static_cast<double>(k) * sampleRate /
               static_cast<double>(fftSize);
}

std::size_t
Spectrogram::nearestBin(double freq_hz) const
{
    double k = (freq_hz - binZeroHz) * static_cast<double>(fftSize) /
               sampleRate;
    auto idx = static_cast<std::ptrdiff_t>(std::lround(k));
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
            static_cast<std::ptrdiff_t>(numBins()) - 1);
    return static_cast<std::size_t>(idx);
}

std::string
Spectrogram::renderAscii(std::size_t max_rows, std::size_t max_cols) const
{
    if (frames.empty())
        return "(empty spectrogram)\n";

    const char *ramp = " .:-=+*#%@";
    const std::size_t ramp_len = 10;

    std::size_t bins = numBins();
    std::size_t cols = std::min(max_cols, numFrames());
    std::size_t rows = std::min(max_rows, bins);

    // Max-pool the grid down to rows x cols.
    std::vector<std::vector<double>> grid(rows,
                                          std::vector<double>(cols, 0.0));
    double peak = 1e-300;
    for (std::size_t t = 0; t < numFrames(); ++t) {
        std::size_t c = t * cols / numFrames();
        for (std::size_t k = 0; k < bins; ++k) {
            std::size_t r = k * rows / bins;
            grid[r][c] = std::max(grid[r][c], frames[t][k]);
            peak = std::max(peak, frames[t][k]);
        }
    }

    // Log scale over 60 dB of dynamic range, high frequencies on top.
    std::string out;
    out.reserve((cols + 16) * rows);
    for (std::size_t r = rows; r-- > 0;) {
        for (std::size_t c = 0; c < cols; ++c) {
            double db = 20.0 * std::log10(grid[r][c] / peak + 1e-12);
            double norm = std::clamp((db + 60.0) / 60.0, 0.0, 1.0);
            auto level = static_cast<std::size_t>(norm * (ramp_len - 1));
            out.push_back(ramp[level]);
        }
        out.push_back('\n');
    }
    return out;
}

namespace {

void
validateStftConfig(const StftConfig &config, double sample_rate)
{
    if (!isPowerOfTwo(config.fftSize))
        raiseError(ErrorKind::InvalidConfig,
                   "stft fftSize must be a power of two, got %zu",
                   config.fftSize);
    if (config.fftSize == 0 || config.hop == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "stft requires positive fftSize and hop");
    if (sample_rate <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "stft requires a positive sample rate");
}

/** Telemetry bracket shared by the real/complex frame fan-outs: frame
 * timing is derived from one clock pair around the whole fan-out
 * (mean ns/frame), never from per-frame clocks. */
class StftTelemetry
{
  public:
    StftTelemetry()
        : reg_(telemetry::MetricsRegistry::global()),
          t0_(reg_.enabled() ? telemetry::steadyNowNs() : 0)
    {
    }

    void
    done(std::size_t frames)
    {
        if (!reg_.enabled() || frames == 0)
            return;
        static telemetry::Counter frameCount(
            telemetry::MetricsRegistry::global(), "dsp.stft.frames");
        static telemetry::Histogram frameNs(
            telemetry::MetricsRegistry::global(), "dsp.stft.frame_ns",
            telemetry::expBounds(1e3, 1e7, 4.0));
        std::uint64_t dt = telemetry::steadyNowNs() - t0_;
        frameCount.add(frames);
        frameNs.observe(static_cast<double>(dt) /
                        static_cast<double>(frames));
    }

  private:
    telemetry::MetricsRegistry &reg_;
    std::uint64_t t0_;
};

} // namespace

Spectrogram
stft(const std::vector<double> &signal, double sample_rate,
     const StftConfig &config)
{
    validateStftConfig(config, sample_rate);

    std::shared_ptr<const std::vector<double>> window_sp =
        cachedWindow(config.window, config.fftSize);
    const std::vector<double> &window = *window_sp;

    Spectrogram out;
    out.sampleRate = sample_rate;
    out.hop = config.hop;
    out.fftSize = config.fftSize;
    out.binZeroHz = 0.0;

    if (signal.size() < config.fftSize)
        return out;

    std::size_t half = config.fftSize / 2;
    std::size_t frames = (signal.size() - config.fftSize) / config.hop + 1;
    out.frames.resize(frames);

    telemetry::TraceSpan span("dsp.stft");
    StftTelemetry telem;

    if (config.fftSize >= 2) {
        // Real input runs through the packed real-FFT plan: half-size
        // transform per frame, half+1 magnitude bins out.
        std::shared_ptr<const RealFftPlan> plan =
            RealFftPlan::forSize(config.fftSize);
        const simd::Kernels &kern = simd::kernels();
        parallelFor(frames, [&](std::size_t t) {
            thread_local std::vector<double> rbuf;
            thread_local std::vector<Complex> scratch, spec;
            rbuf.resize(config.fftSize);
            scratch.resize(config.fftSize / 2);
            spec.resize(half + 1);
            std::size_t start = t * config.hop;
            for (std::size_t i = 0; i < config.fftSize; ++i)
                rbuf[i] = signal[start + i] * window[i];
            plan->forward(rbuf.data(), spec.data(), scratch.data());
            std::vector<double> mags(half + 1);
            kern.magnitudes(spec.data(), half + 1, mags.data());
            out.frames[t] = std::move(mags);
        });
    } else {
        // fftSize == 1: the single bin is just the windowed sample.
        parallelFor(frames, [&](std::size_t t) {
            std::size_t start = t * config.hop;
            out.frames[t] = {std::abs(signal[start] * window[0])};
        });
    }
    telem.done(frames);
    return out;
}

Spectrogram
stftComplex(const std::vector<Complex> &signal, double sample_rate,
            const StftConfig &config, double center_freq_hz)
{
    validateStftConfig(config, sample_rate);

    std::shared_ptr<const std::vector<double>> window_sp =
        cachedWindow(config.window, config.fftSize);
    const std::vector<double> &window = *window_sp;
    std::shared_ptr<const FftPlan> plan = FftPlan::forSize(config.fftSize);

    Spectrogram out;
    out.sampleRate = sample_rate;
    out.hop = config.hop;
    out.fftSize = config.fftSize;
    out.binZeroHz = center_freq_hz - sample_rate / 2.0;

    if (signal.size() < config.fftSize)
        return out;

    std::size_t half = config.fftSize / 2;
    std::size_t frames = (signal.size() - config.fftSize) / config.hop + 1;
    out.frames.resize(frames);

    telemetry::TraceSpan span("dsp.stft");
    StftTelemetry telem;

    // Frames are independent and each writes only its own row, so the
    // fan-out is bit-identical to the serial loop for any thread count.
    parallelFor(frames, [&](std::size_t t) {
        thread_local std::vector<Complex> buf;
        buf.resize(config.fftSize);
        std::size_t start = t * config.hop;
        for (std::size_t i = 0; i < config.fftSize; ++i)
            buf[i] = signal[start + i] * window[i];
        plan->transform(buf, false);

        // fftshift: bins [-fs/2, fs/2) in ascending frequency.
        std::vector<double> mags(config.fftSize);
        for (std::size_t k = 0; k < config.fftSize; ++k) {
            std::size_t src = (k + half) % config.fftSize;
            mags[k] = std::abs(buf[src]);
        }
        out.frames[t] = std::move(mags);
    });
    telem.done(frames);
    return out;
}

} // namespace emsc::dsp
