#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "support/logging.hpp"

namespace emsc::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

/** Reorder the buffer into bit-reversed index order. */
void
bitReversePermute(std::vector<Complex> &data)
{
    std::size_t n = data.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

/** Bluestein chirp-z transform for arbitrary N, built on radix-2. */
std::vector<Complex>
bluestein(const std::vector<Complex> &input, bool inverse)
{
    std::size_t n = input.size();
    std::size_t m = nextPowerOfTwo(2 * n - 1);
    double sign = inverse ? 1.0 : -1.0;

    // Chirp w[k] = exp(sign * i * pi * k^2 / n).
    std::vector<Complex> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the angle argument small and exact.
        std::size_t k2 = (k * k) % (2 * n);
        double angle = sign * kPi * static_cast<double>(k2) /
                       static_cast<double>(n);
        chirp[k] = std::polar(1.0, angle);
    }

    std::vector<Complex> a(m, Complex{0.0, 0.0});
    std::vector<Complex> b(m, Complex{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k)
        a[k] = input[k] * chirp[k];
    b[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k)
        b[k] = b[m - k] = std::conj(chirp[k]);

    fftRadix2(a, false);
    fftRadix2(b, false);
    for (std::size_t k = 0; k < m; ++k)
        a[k] *= b[k];
    fftRadix2(a, true);

    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k)
        out[k] = a[k] * chirp[k];
    return out;
}

} // namespace

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fftRadix2(std::vector<Complex> &data, bool inverse)
{
    std::size_t n = data.size();
    if (!isPowerOfTwo(n))
        panic("fftRadix2 requires a power-of-two size, got %zu", n);

    bitReversePermute(data);

    for (std::size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
        Complex wlen = std::polar(1.0, angle);
        for (std::size_t i = 0; i < n; i += len) {
            Complex w{1.0, 0.0};
            for (std::size_t j = 0; j < len / 2; ++j) {
                Complex u = data[i + j];
                Complex v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        double inv = 1.0 / static_cast<double>(n);
        for (Complex &x : data)
            x *= inv;
    }
}

std::vector<Complex>
fft(const std::vector<Complex> &input)
{
    if (input.empty())
        return {};
    if (isPowerOfTwo(input.size())) {
        std::vector<Complex> data(input);
        fftRadix2(data, false);
        return data;
    }
    return bluestein(input, false);
}

std::vector<Complex>
ifft(const std::vector<Complex> &input)
{
    if (input.empty())
        return {};
    if (isPowerOfTwo(input.size())) {
        std::vector<Complex> data(input);
        fftRadix2(data, true);
        return data;
    }
    std::vector<Complex> out = bluestein(input, true);
    double inv = 1.0 / static_cast<double>(out.size());
    for (Complex &x : out)
        x *= inv;
    return out;
}

std::vector<Complex>
fftReal(const std::vector<double> &input)
{
    std::vector<Complex> data(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        data[i] = Complex{input[i], 0.0};
    return fft(data);
}

std::vector<double>
magnitudes(const std::vector<Complex> &spectrum)
{
    std::vector<double> out(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i)
        out[i] = std::abs(spectrum[i]);
    return out;
}

std::vector<Complex>
dftReference(const std::vector<Complex> &input)
{
    std::size_t n = input.size();
    std::vector<Complex> out(n, Complex{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t m = 0; m < n; ++m) {
            double angle = -2.0 * kPi * static_cast<double>(k * m) /
                           static_cast<double>(n);
            out[k] += input[m] * std::polar(1.0, angle);
        }
    }
    return out;
}

} // namespace emsc::dsp
