#include "dsp/fft.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>

#include "dsp/fft_plan.hpp"
#include "dsp/simd/simd.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

} // namespace

std::size_t
nextPowerOfTwo(std::size_t n)
{
    // Beyond 2^63 (on 64-bit) the shift below would wrap to zero and
    // loop forever; no power of two >= n exists in size_t, so reject.
    constexpr std::size_t kLargest = (SIZE_MAX >> 1) + 1;
    if (n > kLargest)
        raiseError(ErrorKind::InvalidConfig,
                   "nextPowerOfTwo(%zu) does not fit in size_t", n);
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fftRadix2(std::vector<Complex> &data, bool inverse)
{
    std::size_t n = data.size();
    if (!isPowerOfTwo(n))
        panic("fftRadix2 requires a power-of-two size, got %zu", n);
    FftPlan::forSize(n)->transform(data, inverse);
}

std::vector<Complex>
fft(const std::vector<Complex> &input)
{
    if (input.empty())
        return {};
    if (isPowerOfTwo(input.size())) {
        std::vector<Complex> data(input);
        fftRadix2(data, false);
        return data;
    }
    return BluesteinPlan::forSize(input.size())->transform(input, false);
}

std::vector<Complex>
ifft(const std::vector<Complex> &input)
{
    if (input.empty())
        return {};
    if (isPowerOfTwo(input.size())) {
        std::vector<Complex> data(input);
        fftRadix2(data, true);
        return data;
    }
    // Both plan classes apply 1/N inside their inverse transform (the
    // normalisation contract lives at the plan layer), so no
    // path-dependent scaling happens here.
    return BluesteinPlan::forSize(input.size())->transform(input, true);
}

std::vector<Complex>
fftReal(const std::vector<double> &input)
{
    std::vector<Complex> data(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        data[i] = Complex{input[i], 0.0};
    return fft(data);
}

std::vector<Complex>
fftRealPacked(const std::vector<double> &input)
{
    if (!isPowerOfTwo(input.size()) || input.size() < 2)
        raiseError(ErrorKind::InvalidConfig,
                   "fftRealPacked requires a power-of-two size >= 2, "
                   "got %zu", input.size());
    auto plan = RealFftPlan::forSize(input.size());
    std::vector<Complex> scratch(input.size() / 2);
    std::vector<Complex> spectrum(plan->spectrumSize());
    plan->forward(input.data(), spectrum.data(), scratch.data());
    return spectrum;
}

std::vector<double>
ifftRealPacked(const std::vector<Complex> &spectrum)
{
    if (spectrum.size() < 2)
        raiseError(ErrorKind::InvalidConfig,
                   "ifftRealPacked requires at least 2 bins, got %zu",
                   spectrum.size());
    std::size_t n = 2 * (spectrum.size() - 1);
    if (!isPowerOfTwo(n))
        raiseError(ErrorKind::InvalidConfig,
                   "ifftRealPacked requires a half-spectrum of "
                   "2^k + 1 bins, got %zu", spectrum.size());
    auto plan = RealFftPlan::forSize(n);
    std::vector<Complex> scratch(n / 2);
    std::vector<double> out(n);
    plan->inverse(spectrum.data(), out.data(), scratch.data());
    return out;
}

std::vector<double>
magnitudes(const std::vector<Complex> &spectrum)
{
    std::vector<double> out(spectrum.size());
    if (!spectrum.empty())
        simd::kernels().magnitudes(spectrum.data(), spectrum.size(),
                                   out.data());
    return out;
}

std::vector<Complex>
dftReference(const std::vector<Complex> &input)
{
    std::size_t n = input.size();
    std::vector<Complex> out(n, Complex{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t m = 0; m < n; ++m) {
            double angle = -2.0 * kPi * static_cast<double>(k * m) /
                           static_cast<double>(n);
            out[k] += input[m] * std::polar(1.0, angle);
        }
    }
    return out;
}

} // namespace emsc::dsp
