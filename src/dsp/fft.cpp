#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "dsp/fft_plan.hpp"
#include "support/logging.hpp"

namespace emsc::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

} // namespace

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fftRadix2(std::vector<Complex> &data, bool inverse)
{
    std::size_t n = data.size();
    if (!isPowerOfTwo(n))
        panic("fftRadix2 requires a power-of-two size, got %zu", n);
    FftPlan::forSize(n)->transform(data, inverse);
}

std::vector<Complex>
fft(const std::vector<Complex> &input)
{
    if (input.empty())
        return {};
    if (isPowerOfTwo(input.size())) {
        std::vector<Complex> data(input);
        fftRadix2(data, false);
        return data;
    }
    return BluesteinPlan::forSize(input.size())->transform(input, false);
}

std::vector<Complex>
ifft(const std::vector<Complex> &input)
{
    if (input.empty())
        return {};
    if (isPowerOfTwo(input.size())) {
        std::vector<Complex> data(input);
        fftRadix2(data, true);
        return data;
    }
    std::vector<Complex> out =
        BluesteinPlan::forSize(input.size())->transform(input, true);
    double inv = 1.0 / static_cast<double>(out.size());
    for (Complex &x : out)
        x *= inv;
    return out;
}

std::vector<Complex>
fftReal(const std::vector<double> &input)
{
    std::vector<Complex> data(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        data[i] = Complex{input[i], 0.0};
    return fft(data);
}

std::vector<double>
magnitudes(const std::vector<Complex> &spectrum)
{
    std::vector<double> out(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i)
        out[i] = std::abs(spectrum[i]);
    return out;
}

std::vector<Complex>
dftReference(const std::vector<Complex> &input)
{
    std::size_t n = input.size();
    std::vector<Complex> out(n, Complex{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t m = 0; m < n; ++m) {
            double angle = -2.0 * kPi * static_cast<double>(k * m) /
                           static_cast<double>(n);
            out[k] += input[m] * std::polar(1.0, angle);
        }
    }
    return out;
}

} // namespace emsc::dsp
