#include "dsp/sliding_dft.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace emsc::dsp {

SlidingDft::SlidingDft(std::size_t window_size, std::vector<std::size_t> bins,
                       std::size_t renorm_interval)
    : m(window_size), renormEvery(renorm_interval), binIdx(std::move(bins))
{
    if (m == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "SlidingDft window size must be positive");
    if (binIdx.empty())
        raiseError(ErrorKind::InvalidConfig,
                   "SlidingDft requires at least one tracked bin");
    for (std::size_t k : binIdx) {
        if (k >= m)
            raiseError(ErrorKind::InvalidConfig,
                       "SlidingDft bin %zu out of range for window "
                       "%zu", k, m);
        double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(m);
        twiddle.push_back(std::polar(1.0, angle));
    }
    accum.assign(binIdx.size(), Complex{0.0, 0.0});
    history.assign(m, Complex{0.0, 0.0});
}

void
SlidingDft::reset()
{
    accum.assign(binIdx.size(), Complex{0.0, 0.0});
    history.assign(m, Complex{0.0, 0.0});
    head = 0;
    seen = 0;
}

void
SlidingDft::renormalize()
{
    // Recompute each tracked bin exactly from the buffered window. The
    // circular buffer holds the window with its oldest sample at head;
    // rebuilding uses the standard DFT definition over that ordering.
    for (std::size_t i = 0; i < binIdx.size(); ++i) {
        std::size_t k = binIdx[i];
        Complex acc{0.0, 0.0};
        double base = -2.0 * std::numbers::pi * static_cast<double>(k) /
                      static_cast<double>(m);
        for (std::size_t j = 0; j < m; ++j) {
            Complex sample = history[(head + j) % m];
            acc += sample *
                   std::polar(1.0, base * static_cast<double>(j));
        }
        accum[i] = acc;
    }
}

double
SlidingDft::push(Complex sample)
{
    Complex oldest = history[head];
    history[head] = sample;
    head = (head + 1) % m;
    ++seen;

    double y = 0.0;
    for (std::size_t i = 0; i < binIdx.size(); ++i) {
        accum[i] = (accum[i] + sample - oldest) * twiddle[i];
        y += std::abs(accum[i]);
    }

    if (renormEvery != 0 && seen % renormEvery == 0)
        renormalize();
    return y;
}

std::vector<double>
SlidingDft::acquire(const std::vector<Complex> &capture,
                    std::size_t window_size,
                    const std::vector<std::size_t> &bins)
{
    SlidingDft sdft(window_size, bins);
    std::vector<double> out;
    out.reserve(capture.size());
    for (Complex s : capture)
        out.push_back(sdft.push(s));
    return out;
}

} // namespace emsc::dsp
