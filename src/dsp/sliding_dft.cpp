#include "dsp/sliding_dft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/simd/simd.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace emsc::dsp {

SlidingDft::SlidingDft(std::size_t window_size, std::vector<std::size_t> bins,
                       std::size_t renorm_interval)
    : m(window_size), renormEvery(renorm_interval), binIdx(std::move(bins))
{
    if (m == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "SlidingDft window size must be positive");
    if (binIdx.empty())
        raiseError(ErrorKind::InvalidConfig,
                   "SlidingDft requires at least one tracked bin");
    for (std::size_t k : binIdx) {
        if (k >= m)
            raiseError(ErrorKind::InvalidConfig,
                       "SlidingDft bin %zu out of range for window "
                       "%zu", k, m);
        double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(m);
        Complex tw = std::polar(1.0, angle);
        twRe.push_back(tw.real());
        twIm.push_back(tw.imag());
    }
    accRe.assign(binIdx.size(), 0.0);
    accIm.assign(binIdx.size(), 0.0);
    history.assign(m, Complex{0.0, 0.0});
}

void
SlidingDft::reset()
{
    accRe.assign(binIdx.size(), 0.0);
    accIm.assign(binIdx.size(), 0.0);
    history.assign(m, Complex{0.0, 0.0});
    head = 0;
    seen = 0;
}

void
SlidingDft::renormalize()
{
    static telemetry::Counter renorms(
        telemetry::MetricsRegistry::global(), "dsp.sdft.renorms");
    renorms.add();

    // Recompute each tracked bin exactly from the buffered window. The
    // circular buffer holds the window with its oldest sample at head;
    // rebuilding uses the standard DFT definition over that ordering.
    for (std::size_t i = 0; i < binIdx.size(); ++i) {
        std::size_t k = binIdx[i];
        Complex acc{0.0, 0.0};
        double base = -2.0 * std::numbers::pi * static_cast<double>(k) /
                      static_cast<double>(m);
        for (std::size_t j = 0; j < m; ++j) {
            Complex sample = history[(head + j) % m];
            acc += sample *
                   std::polar(1.0, base * static_cast<double>(j));
        }
        accRe[i] = acc.real();
        accIm[i] = acc.imag();
    }
}

void
SlidingDft::pushChunk(const Complex *x, std::size_t n, double *y_out)
{
    const simd::Kernels &k = simd::kernels();
    simd::SdftBank bank{accRe.data(), accIm.data(), twRe.data(),
                        twIm.data(), binIdx.size()};
    std::size_t i = 0;
    while (i < n) {
        // Stop each kernel run at the next re-seed boundary so the
        // renormalisation cadence is sample-exact with push().
        std::size_t run = n - i;
        if (renormEvery != 0)
            run = std::min(run, renormEvery - seen % renormEvery);
        k.sdftChunk(bank, x + i, run, history.data(), m, &head,
                    y_out != nullptr ? y_out + i : nullptr);
        seen += run;
        i += run;
        if (renormEvery != 0 && seen % renormEvery == 0)
            renormalize();
    }
}

double
SlidingDft::push(Complex sample)
{
    double y = 0.0;
    pushChunk(&sample, 1, &y);
    return y;
}

std::vector<double>
SlidingDft::acquire(const std::vector<Complex> &capture,
                    std::size_t window_size,
                    const std::vector<std::size_t> &bins)
{
    SlidingDft sdft(window_size, bins);
    std::vector<double> out(capture.size());
    sdft.pushChunk(capture.data(), capture.size(), out.data());
    return out;
}

} // namespace emsc::dsp
