/**
 * @file
 * Deterministic fault-injection plans for the whole signal chain.
 *
 * The paper's real-world runs succeed despite USB buffer loss, AGC
 * gain re-trains, LO re-tunes, scheduler preemption on the transmitter
 * and appliances switching on mid-capture. A FaultPlan is the seeded,
 * reproducible description of exactly such disturbances: a sorted list
 * of timed fault events that every stage consumes from one shared
 * plan — the SDR front end (dropouts, saturation, gain steps, LO
 * hops), the OS model (preemption bursts stealing the transmitter's
 * core) and the EM scene (interferers switching on mid-capture).
 *
 * Determinism contract: buildFaultPlan() depends only on (config,
 * window, seed) — never on thread count or call order — so the same
 * seed reproduces a bit-identical plan anywhere, and a failing run can
 * be replayed exactly (see `emsc_tool faults`).
 */

#ifndef EMSC_SIM_FAULTS_HPP
#define EMSC_SIM_FAULTS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace emsc::sim {

/** What a single fault event does to the chain. */
enum class FaultKind
{
    /** SDR samples lost (USB buffer overrun): the span reads as zeros. */
    Dropout,
    /** Front-end overload: the span is driven hard into ADC clipping. */
    Saturation,
    /**
     * AGC re-train: front-end gain changes by `magnitude` (a linear
     * amplitude factor) from `start` until the next GainStep.
     */
    GainStep,
    /** Tuner re-lock: the LO jumps by `magnitude` Hz at `start`. */
    LoHop,
    /**
     * Transmitter-side scheduler steal: another task occupies the core
     * for `duration`, stretching the bit being sent.
     */
    Preemption,
    /**
     * An interferer (appliance) switches on at `start` with impulse
     * amplitude `magnitude` and stays on for `duration`.
     */
    InterfererOnset,
};

/** Human-readable name of a FaultKind ("dropout", ...). */
const char *faultKindName(FaultKind kind);

/** One timed fault. Fields without meaning for a kind are zero. */
struct FaultEvent
{
    FaultKind kind = FaultKind::Dropout;
    /** When the fault begins (absolute simulation time). */
    TimeNs start = 0;
    /** How long it lasts (span-like kinds; 0 for point events). */
    TimeNs duration = 0;
    /** Kind-specific magnitude (gain factor, Hz offset, amplitude). */
    double magnitude = 0.0;

    bool operator==(const FaultEvent &) const = default;
};

/**
 * Fault-generation knobs. All rates default to zero, i.e. a default
 * FaultConfig produces an empty plan and the chain behaves exactly as
 * without fault injection.
 */
struct FaultConfig
{
    /** Mean SDR dropout rate (events per second) and span bounds. */
    double dropoutRate = 0.0;
    TimeNs dropoutMin = 500 * kMicrosecond;
    TimeNs dropoutMax = 3 * kMillisecond;

    /** Mean saturation-burst rate (per second) and span bounds. */
    double saturationRate = 0.0;
    TimeNs saturationMin = 300 * kMicrosecond;
    TimeNs saturationMax = 2 * kMillisecond;
    /** Linear gain applied during a saturation burst (drives clipping). */
    double saturationGain = 25.0;

    /** Mean AGC gain-step rate (per second). */
    double gainStepRate = 0.0;
    /** Gain-step magnitude range, in dB (sign drawn at random). */
    double gainStepMinDb = 4.0;
    double gainStepMaxDb = 12.0;

    /** Mean LO-hop rate (per second) and maximum hop (Hz, either sign). */
    double loHopRate = 0.0;
    double loHopMaxHz = 1500.0;

    /** Mean transmitter preemption rate (per second) and span bounds. */
    double preemptionRate = 0.0;
    TimeNs preemptionMin = 200 * kMicrosecond;
    TimeNs preemptionMax = 1 * kMillisecond;

    /** Mean interferer-onset rate (per second) and burst parameters. */
    double interfererOnsetRate = 0.0;
    double interfererAmplitude = 0.3;
    TimeNs interfererMin = 5 * kMillisecond;
    TimeNs interfererMax = 40 * kMillisecond;

    /**
     * Plan seed. The plan is a pure function of (config, window, seed);
     * experiment drivers that embed a FaultConfig derive a run-specific
     * seed when this is left at zero.
     */
    std::uint64_t seed = 0;

    /** Whether any fault family has a non-zero rate. */
    bool active() const;
};

/** The realised, sorted schedule of faults for one capture window. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    /** Events of one kind, in time order. */
    std::vector<FaultEvent> ofKind(FaultKind kind) const;

    /** Number of events of one kind. */
    std::size_t countOf(FaultKind kind) const;

    /** One-line summary ("3 dropouts, 2 gain-steps, ...") for logs. */
    std::string describe() const;

    bool empty() const { return events.empty(); }
};

/**
 * Realise a fault plan over [t0, t1). Each fault family draws from its
 * own derived RNG stream, so enabling one family never perturbs the
 * event times of another. Raises RecoverableError (kind InvalidConfig)
 * on negative rates, inverted span bounds, or an empty window.
 */
FaultPlan buildFaultPlan(const FaultConfig &config, TimeNs t0, TimeNs t1);

/**
 * A ready-made plan of the acceptance scenario: SDR dropouts plus AGC
 * gain steps, the combination that destroys a whole-capture receiver's
 * single timing/threshold lock.
 */
FaultConfig dropoutGainStepConfig(std::uint64_t seed);

/** Everything at once: the harshest named preset. */
FaultConfig harshConfig(std::uint64_t seed);

} // namespace emsc::sim

#endif // EMSC_SIM_FAULTS_HPP
