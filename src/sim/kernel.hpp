/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All behavioural models (CPU core, OS timers, VRM, interference
 * sources) schedule callbacks on a shared EventKernel. Time is an
 * integer nanosecond tick; events at the same tick execute in
 * scheduling order (a monotonically increasing sequence number breaks
 * ties), so runs are fully deterministic.
 */

#ifndef EMSC_SIM_KERNEL_HPP
#define EMSC_SIM_KERNEL_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/types.hpp"

namespace emsc::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Priority-queue based event kernel.
 *
 * The kernel is intentionally minimal: schedule, cancel, and run until
 * either a time bound is reached or the queue drains. Models interact
 * only through scheduled callbacks, which keeps subsystem coupling
 * explicit and ordering reproducible.
 */
class EventKernel
{
  public:
    EventKernel() = default;
    EventKernel(const EventKernel &) = delete;
    EventKernel &operator=(const EventKernel &) = delete;

    /** Current simulation time. */
    TimeNs now() const { return now_; }

    /**
     * Schedule a callback at an absolute time (>= now()).
     * @return an id usable with cancel().
     */
    EventId scheduleAt(TimeNs when, EventFn fn);

    /** Schedule a callback delay ticks after now(). */
    EventId
    scheduleAfter(TimeNs delay, EventFn fn)
    {
        return scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that has
     * already fired, was already cancelled, or was never scheduled is a
     * harmless no-op, counted in ignoredCancels() — it leaves no
     * residual bookkeeping behind.
     */
    void cancel(EventId id);

    /** Cancels that targeted no pending event (no-ops). */
    std::uint64_t ignoredCancels() const { return ignoredCancels_; }

    /** Cancelled events still sitting in the queue (bounded by it). */
    std::size_t cancelledBacklog() const { return cancelledIds.size(); }

    /**
     * Execute events in time order until the queue is empty or the next
     * event lies beyond the limit. Simulation time is left at the later
     * of the last executed event and the limit.
     *
     * @param limit  inclusive time bound
     * @return number of events executed
     */
    std::size_t runUntil(TimeNs limit);

    /** Execute all remaining events (use with care: needs a finite set). */
    std::size_t runToExhaustion();

    /** Number of events currently pending. */
    std::size_t pending() const { return queue.size() - cancelledIds.size(); }

  private:
    struct Entry
    {
        TimeNs when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    TimeNs now_ = 0;
    std::uint64_t nextSeq = 0;
    EventId nextId = 1;
    std::uint64_t ignoredCancels_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    std::unordered_set<EventId> pendingIds;   //!< scheduled, not yet popped
    std::unordered_set<EventId> cancelledIds; //!< pending and cancelled
};

} // namespace emsc::sim

#endif // EMSC_SIM_KERNEL_HPP
