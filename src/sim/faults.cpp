#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace emsc::sim {

namespace {

/**
 * Per-family stream indices for deriveSeed(). Fixed numbers (not enum
 * order) so adding a fault family never reshuffles existing streams.
 */
constexpr std::uint64_t kStreamDropout = 11;
constexpr std::uint64_t kStreamSaturation = 12;
constexpr std::uint64_t kStreamGainStep = 13;
constexpr std::uint64_t kStreamLoHop = 14;
constexpr std::uint64_t kStreamPreemption = 15;
constexpr std::uint64_t kStreamInterferer = 16;

void
validate(const FaultConfig &cfg, TimeNs t0, TimeNs t1)
{
    if (t1 <= t0)
        raiseError(ErrorKind::InvalidConfig,
                   "buildFaultPlan: empty window [%lld, %lld)",
                   static_cast<long long>(t0),
                   static_cast<long long>(t1));

    struct RateCheck
    {
        const char *name;
        double rate;
        TimeNs lo, hi;
    };
    const RateCheck rates[] = {
        {"dropoutRate", cfg.dropoutRate, cfg.dropoutMin, cfg.dropoutMax},
        {"saturationRate", cfg.saturationRate, cfg.saturationMin,
         cfg.saturationMax},
        // Point events have no span of their own; the placeholder
        // bounds always satisfy the ordered-positive-span check.
        {"gainStepRate", cfg.gainStepRate, 1, 1},
        {"loHopRate", cfg.loHopRate, 1, 1},
        {"preemptionRate", cfg.preemptionRate, cfg.preemptionMin,
         cfg.preemptionMax},
        {"interfererOnsetRate", cfg.interfererOnsetRate,
         cfg.interfererMin, cfg.interfererMax},
    };
    for (const RateCheck &r : rates) {
        if (!(r.rate >= 0.0))
            raiseError(ErrorKind::InvalidConfig,
                       "FaultConfig.%s must be non-negative, got %g",
                       r.name, r.rate);
        if (r.rate > 0.0 && (r.lo <= 0 || r.hi < r.lo))
            raiseError(ErrorKind::InvalidConfig,
                       "FaultConfig.%s span bounds [%lld, %lld] are "
                       "not a positive, ordered range",
                       r.name, static_cast<long long>(r.lo),
                       static_cast<long long>(r.hi));
    }
    if (cfg.gainStepRate > 0.0 &&
        !(cfg.gainStepMinDb > 0.0 && cfg.gainStepMaxDb >= cfg.gainStepMinDb))
        raiseError(ErrorKind::InvalidConfig,
                   "FaultConfig gain-step dB range [%g, %g] must be "
                   "positive and ordered",
                   cfg.gainStepMinDb, cfg.gainStepMaxDb);
    if (cfg.loHopRate > 0.0 && !(cfg.loHopMaxHz > 0.0))
        raiseError(ErrorKind::InvalidConfig,
                   "FaultConfig.loHopMaxHz must be positive, got %g",
                   cfg.loHopMaxHz);
    if (cfg.interfererOnsetRate > 0.0 && !(cfg.interfererAmplitude > 0.0))
        raiseError(ErrorKind::InvalidConfig,
                   "FaultConfig.interfererAmplitude must be positive, "
                   "got %g",
                   cfg.interfererAmplitude);
}

/**
 * Draw a Poisson event train over [t0, t1): exponential gaps at the
 * given mean rate, each event realised by `emit(rng, start)`.
 */
template <typename Emit>
void
drawTrain(std::vector<FaultEvent> &out, double rate, TimeNs t0, TimeNs t1,
          std::uint64_t seed, std::uint64_t stream, Emit emit)
{
    if (rate <= 0.0)
        return;
    Rng rng(deriveSeed(seed, stream));
    double t = static_cast<double>(t0);
    while (true) {
        t += static_cast<double>(fromSeconds(rng.exponential(1.0 / rate)));
        if (t >= static_cast<double>(t1))
            break;
        out.push_back(emit(rng, static_cast<TimeNs>(t)));
    }
}

TimeNs
spanDraw(Rng &rng, TimeNs lo, TimeNs hi)
{
    return static_cast<TimeNs>(
        rng.uniformInt(static_cast<std::int64_t>(lo),
                       static_cast<std::int64_t>(hi)));
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Dropout:
        return "dropout";
    case FaultKind::Saturation:
        return "saturation";
    case FaultKind::GainStep:
        return "gain-step";
    case FaultKind::LoHop:
        return "lo-hop";
    case FaultKind::Preemption:
        return "preemption";
    case FaultKind::InterfererOnset:
        return "interferer-onset";
    }
    return "unknown";
}

bool
FaultConfig::active() const
{
    // Non-zero rather than positive: a negative rate is an *invalid*
    // active config, and must reach buildFaultPlan()'s validation
    // instead of silently disabling fault injection.
    return dropoutRate != 0.0 || saturationRate != 0.0 ||
           gainStepRate != 0.0 || loHopRate != 0.0 ||
           preemptionRate != 0.0 || interfererOnsetRate != 0.0;
}

std::vector<FaultEvent>
FaultPlan::ofKind(FaultKind kind) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events)
        if (e.kind == kind)
            out.push_back(e);
    return out;
}

std::size_t
FaultPlan::countOf(FaultKind kind) const
{
    std::size_t n = 0;
    for (const FaultEvent &e : events)
        n += e.kind == kind;
    return n;
}

std::string
FaultPlan::describe() const
{
    if (events.empty())
        return "no faults";
    const FaultKind kinds[] = {
        FaultKind::Dropout,        FaultKind::Saturation,
        FaultKind::GainStep,       FaultKind::LoHop,
        FaultKind::Preemption,     FaultKind::InterfererOnset,
    };
    std::string out;
    for (FaultKind k : kinds) {
        std::size_t n = countOf(k);
        if (n == 0)
            continue;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s%zu %s(s)",
                      out.empty() ? "" : ", ", n, faultKindName(k));
        out += buf;
    }
    return out;
}

FaultPlan
buildFaultPlan(const FaultConfig &config, TimeNs t0, TimeNs t1)
{
    validate(config, t0, t1);

    FaultPlan plan;
    drawTrain(plan.events, config.dropoutRate, t0, t1, config.seed,
              kStreamDropout, [&](Rng &rng, TimeNs start) {
                  return FaultEvent{FaultKind::Dropout, start,
                                    spanDraw(rng, config.dropoutMin,
                                             config.dropoutMax),
                                    0.0};
              });
    drawTrain(plan.events, config.saturationRate, t0, t1, config.seed,
              kStreamSaturation, [&](Rng &rng, TimeNs start) {
                  return FaultEvent{FaultKind::Saturation, start,
                                    spanDraw(rng, config.saturationMin,
                                             config.saturationMax),
                                    config.saturationGain};
              });
    drawTrain(plan.events, config.gainStepRate, t0, t1, config.seed,
              kStreamGainStep, [&](Rng &rng, TimeNs start) {
                  double db = rng.uniform(config.gainStepMinDb,
                                          config.gainStepMaxDb);
                  double factor = std::pow(10.0, db / 20.0);
                  if (rng.chance(0.5))
                      factor = 1.0 / factor;
                  return FaultEvent{FaultKind::GainStep, start, 0, factor};
              });
    drawTrain(plan.events, config.loHopRate, t0, t1, config.seed,
              kStreamLoHop, [&](Rng &rng, TimeNs start) {
                  double hop =
                      rng.uniform(-config.loHopMaxHz, config.loHopMaxHz);
                  return FaultEvent{FaultKind::LoHop, start, 0, hop};
              });
    drawTrain(plan.events, config.preemptionRate, t0, t1, config.seed,
              kStreamPreemption, [&](Rng &rng, TimeNs start) {
                  return FaultEvent{FaultKind::Preemption, start,
                                    spanDraw(rng, config.preemptionMin,
                                             config.preemptionMax),
                                    1.0};
              });
    drawTrain(plan.events, config.interfererOnsetRate, t0, t1,
              config.seed, kStreamInterferer, [&](Rng &rng, TimeNs start) {
                  return FaultEvent{FaultKind::InterfererOnset, start,
                                    spanDraw(rng, config.interfererMin,
                                             config.interfererMax),
                                    config.interfererAmplitude};
              });

    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.start < b.start;
                     });
    return plan;
}

FaultConfig
dropoutGainStepConfig(std::uint64_t seed)
{
    FaultConfig cfg;
    cfg.dropoutRate = 3.0;
    cfg.gainStepRate = 3.0;
    cfg.seed = seed;
    return cfg;
}

FaultConfig
harshConfig(std::uint64_t seed)
{
    FaultConfig cfg = dropoutGainStepConfig(seed);
    cfg.saturationRate = 1.0;
    cfg.loHopRate = 0.5;
    cfg.preemptionRate = 4.0;
    cfg.interfererOnsetRate = 1.5;
    return cfg;
}

} // namespace emsc::sim
