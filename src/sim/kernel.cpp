#include "sim/kernel.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace emsc::sim {

EventId
EventKernel::scheduleAt(TimeNs when, EventFn fn)
{
    if (when < now_)
        panic("event scheduled in the past (when=%lld now=%lld)",
              static_cast<long long>(when), static_cast<long long>(now_));
    EventId id = nextId++;
    queue.push(Entry{when, nextSeq++, id, std::move(fn)});
    return id;
}

void
EventKernel::cancel(EventId id)
{
    cancelledIds.push_back(id);
    ++cancelled;
}

bool
EventKernel::isCancelled(EventId id) const
{
    return std::find(cancelledIds.begin(), cancelledIds.end(), id) !=
           cancelledIds.end();
}

std::size_t
EventKernel::runUntil(TimeNs limit)
{
    std::size_t executed = 0;
    while (!queue.empty() && queue.top().when <= limit) {
        Entry e = queue.top();
        queue.pop();
        if (isCancelled(e.id)) {
            cancelledIds.erase(std::find(cancelledIds.begin(),
                                         cancelledIds.end(), e.id));
            --cancelled;
            continue;
        }
        now_ = e.when;
        e.fn();
        ++executed;
    }
    now_ = std::max(now_, limit);
    return executed;
}

std::size_t
EventKernel::runToExhaustion()
{
    std::size_t executed = 0;
    while (!queue.empty()) {
        Entry e = queue.top();
        queue.pop();
        if (isCancelled(e.id)) {
            cancelledIds.erase(std::find(cancelledIds.begin(),
                                         cancelledIds.end(), e.id));
            --cancelled;
            continue;
        }
        now_ = e.when;
        e.fn();
        ++executed;
    }
    return executed;
}

} // namespace emsc::sim
