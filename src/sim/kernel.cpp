#include "sim/kernel.hpp"

#include "support/logging.hpp"

namespace emsc::sim {

EventId
EventKernel::scheduleAt(TimeNs when, EventFn fn)
{
    if (when < now_)
        panic("event scheduled in the past (when=%lld now=%lld)",
              static_cast<long long>(when), static_cast<long long>(now_));
    EventId id = nextId++;
    queue.push(Entry{when, nextSeq++, id, std::move(fn)});
    pendingIds.insert(id);
    return id;
}

void
EventKernel::cancel(EventId id)
{
    // Only a still-pending, not-yet-cancelled id leaves a mark; every
    // other cancel (already fired, double cancel, never scheduled) is a
    // counted no-op so the cancellation set stays bounded by the queue.
    if (!pendingIds.contains(id) || !cancelledIds.insert(id).second)
        ++ignoredCancels_;
}

std::size_t
EventKernel::runUntil(TimeNs limit)
{
    std::size_t executed = 0;
    while (!queue.empty() && queue.top().when <= limit) {
        Entry e = queue.top();
        queue.pop();
        pendingIds.erase(e.id);
        if (cancelledIds.erase(e.id) > 0)
            continue;
        now_ = e.when;
        e.fn();
        ++executed;
    }
    now_ = std::max(now_, limit);
    return executed;
}

std::size_t
EventKernel::runToExhaustion()
{
    std::size_t executed = 0;
    while (!queue.empty()) {
        Entry e = queue.top();
        queue.pop();
        pendingIds.erase(e.id);
        if (cancelledIds.erase(e.id) > 0)
            continue;
        now_ = e.when;
        e.fn();
        ++executed;
    }
    return executed;
}

} // namespace emsc::sim
