/**
 * @file
 * Piecewise-constant timelines of simulation quantities.
 *
 * The CPU model records its power state and load current as
 * step-functions of time; the VRM and emanation models then sample or
 * integrate these traces. A Timeline is append-only in time order,
 * which matches how discrete-event models produce them.
 */

#ifndef EMSC_SIM_TRACE_HPP
#define EMSC_SIM_TRACE_HPP

#include <cstddef>
#include <vector>

#include "support/logging.hpp"
#include "support/types.hpp"

namespace emsc::sim {

/**
 * Append-only piecewise-constant function of time.
 *
 * A timeline holds (time, value) change points; the value holds from
 * its change point until the next one. Queries before the first change
 * point return the initial value supplied at construction.
 */
template <typename T>
class Timeline
{
  public:
    struct Point
    {
        TimeNs time;
        T value;
    };

    /** @param initial value in effect from time 0 until the first set(). */
    explicit Timeline(T initial) : initial(initial) {}

    /**
     * Record that the quantity takes the given value from `when` on.
     * Change points must be appended in non-decreasing time order;
     * a same-time append overwrites the previous value.
     */
    void
    set(TimeNs when, T value)
    {
        if (!points.empty()) {
            if (when < points.back().time)
                panic("Timeline::set out of order (%lld < %lld)",
                      static_cast<long long>(when),
                      static_cast<long long>(points.back().time));
            if (when == points.back().time) {
                points.back().value = value;
                return;
            }
        }
        points.push_back(Point{when, value});
    }

    /** Value in effect at the given time. */
    T
    at(TimeNs when) const
    {
        // Binary search for the last change point at or before `when`.
        std::size_t lo = 0, hi = points.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (points[mid].time <= when)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo == 0)
            return initial;
        return points[lo - 1].value;
    }

    /** Value currently at the end of the timeline. */
    T
    last() const
    {
        return points.empty() ? initial : points.back().value;
    }

    /** All recorded change points, in time order. */
    const std::vector<Point> &changePoints() const { return points; }

    /** Number of change points. */
    std::size_t size() const { return points.size(); }

    /** Remove all change points (the initial value is retained). */
    void clear() { points.clear(); }

    /**
     * Integrate the timeline over [t0, t1) treating T as arithmetic;
     * returns the time-weighted sum in units of value * seconds.
     */
    double
    integrate(TimeNs t0, TimeNs t1) const
        requires std::is_arithmetic_v<T>
    {
        if (t1 <= t0)
            return 0.0;
        double acc = 0.0;
        TimeNs cursor = t0;
        T current = at(t0);
        for (const Point &p : points) {
            if (p.time <= t0)
                continue;
            if (p.time >= t1)
                break;
            acc += static_cast<double>(current) * toSeconds(p.time - cursor);
            cursor = p.time;
            current = p.value;
        }
        acc += static_cast<double>(current) * toSeconds(t1 - cursor);
        return acc;
    }

  private:
    T initial;
    std::vector<Point> points;
};

} // namespace emsc::sim

#endif // EMSC_SIM_TRACE_HPP
