#include "engine/journal.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace emsc::engine {

namespace {

constexpr const char *kSchema = "emsc.journal.v1";

std::array<std::uint32_t, 256>
crcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

std::string
seedString(std::uint64_t seed)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, seed);
    return buf;
}

/** Parse a decimal u64; false on any malformed input. */
bool
parseSeed(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
numberField(const json::Value &obj, const char *key, double &out)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        return false;
    out = v->number();
    return true;
}

bool
sizeField(const json::Value &obj, const char *key, std::size_t &out)
{
    double d = 0.0;
    if (!numberField(obj, key, d) || d < 0.0)
        return false;
    out = static_cast<std::size_t>(d);
    return true;
}

bool
stringField(const json::Value &obj, const char *key, std::string &out)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr || !v->isString())
        return false;
    out = v->string();
    return true;
}

bool
parseStatus(const std::string &name, UnitStatus &out)
{
    for (UnitStatus s : {UnitStatus::Ok, UnitStatus::Failed,
                         UnitStatus::TimedOut}) {
        if (name == unitStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
parseKind(const std::string &name, ErrorKind &out)
{
    for (ErrorKind k :
         {ErrorKind::InvalidConfig, ErrorKind::MalformedInput,
          ErrorKind::InsufficientData, ErrorKind::IoError,
          ErrorKind::ResourceExhausted}) {
        if (name == errorKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

json::Value
headerJson(const JournalHeader &header)
{
    json::Value v = json::Value::object();
    v.set("schema", kSchema);
    v.set("sweep", header.sweep);
    v.set("shard", header.shard);
    v.set("shards", header.shards);
    v.set("units", header.units);
    v.set("seed", seedString(header.seed));
    return v;
}

bool
parseHeader(const json::Value &v, JournalHeader &out)
{
    std::string schema, seed;
    if (!stringField(v, "schema", schema) || schema != kSchema)
        return false;
    if (!stringField(v, "sweep", out.sweep) ||
        !sizeField(v, "shard", out.shard) ||
        !sizeField(v, "shards", out.shards) ||
        !sizeField(v, "units", out.units) ||
        !stringField(v, "seed", seed) || !parseSeed(seed, out.seed))
        return false;
    return out.shards >= 1 && out.shard < out.shards;
}

bool
parseRecord(const json::Value &v, UnitRecord &out)
{
    std::string seed, status;
    if (!sizeField(v, "unit", out.unit) ||
        !stringField(v, "seed", seed) ||
        !parseSeed(seed, out.seed) ||
        !stringField(v, "status", status) ||
        !parseStatus(status, out.status) ||
        !sizeField(v, "attempts", out.attempts))
        return false;
    numberField(v, "wall_ms", out.wallMs); // optional
    if (out.status == UnitStatus::Ok) {
        const json::Value *result = v.find("result");
        if (result == nullptr)
            return false;
        out.result = *result;
        return true;
    }
    const json::Value *err = v.find("error");
    std::string kind;
    if (err == nullptr || !stringField(*err, "kind", kind) ||
        !parseKind(kind, out.error.kind) ||
        !stringField(*err, "message", out.error.message))
        return false;
    return true;
}

/** `<crc hex8> <json>` with the CRC verified; false on any defect. */
bool
parseLine(std::string_view line, json::Value &out)
{
    if (line.size() < 10 || line[8] != ' ')
        return false;
    std::uint32_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        char c = line[static_cast<std::size_t>(i)];
        std::uint32_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return false;
        stored = stored << 4 | digit;
    }
    std::string_view body = line.substr(9);
    if (crc32(body) != stored)
        return false;
    return json::Value::parse(std::string(body), out, nullptr);
}

std::string
formatLine(const std::string &json_text)
{
    char crc[16];
    std::snprintf(crc, sizeof crc, "%08x", crc32(json_text));
    std::string line;
    line.reserve(json_text.size() + 10);
    line += crc;
    line += ' ';
    line += json_text;
    line += '\n';
    return line;
}

} // namespace

std::uint32_t
crc32(std::string_view text)
{
    static const std::array<std::uint32_t, 256> table = crcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char c : text)
        crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

const char *
unitStatusName(UnitStatus status)
{
    switch (status) {
    case UnitStatus::Ok:
        return "ok";
    case UnitStatus::Failed:
        return "failed";
    case UnitStatus::TimedOut:
        return "timeout";
    }
    return "unknown";
}

std::string
journalPath(const std::string &dir, const std::string &sweep,
            std::size_t shard, std::size_t shards)
{
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, ".shard-%zu-of-%zu.journal",
                  shard, shards);
    std::string path = dir.empty() ? std::string(".") : dir;
    if (path.back() != '/')
        path += '/';
    return path + sweep + suffix;
}

std::string
shardSuffixedPath(const std::string &path, std::size_t shard,
                  std::size_t shards)
{
    char tag[48];
    std::snprintf(tag, sizeof tag, ".shard-%zu-of-%zu", shard, shards);
    std::size_t dot = path.rfind('.');
    std::size_t slash = path.rfind('/');
    bool has_ext = dot != std::string::npos &&
                   (slash == std::string::npos || dot > slash + 1) &&
                   dot != 0;
    if (!has_ext)
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

void
ensureDir(const std::string &dir)
{
    if (dir.empty() || dir == ".")
        return;
    std::string prefix;
    prefix.reserve(dir.size());
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            prefix += dir[i];
            continue;
        }
        if (!prefix.empty() && prefix != ".") {
            if (::mkdir(prefix.c_str(), 0777) != 0 &&
                errno != EEXIST)
                raiseError(ErrorKind::IoError,
                           "cannot create directory %s: %s",
                           prefix.c_str(), std::strerror(errno));
        }
        if (i < dir.size())
            prefix += '/';
    }
}

json::Value
unitRecordJson(const UnitRecord &record)
{
    json::Value v = json::Value::object();
    v.set("unit", record.unit);
    v.set("seed", seedString(record.seed));
    v.set("status", unitStatusName(record.status));
    v.set("attempts", record.attempts);
    v.set("wall_ms", record.wallMs);
    if (record.status == UnitStatus::Ok) {
        v.set("result", record.result);
    } else {
        json::Value err = json::Value::object();
        err.set("kind", errorKindName(record.error.kind));
        err.set("message", record.error.message);
        v.set("error", std::move(err));
    }
    return v;
}

JournalContents
loadJournal(const std::string &path)
{
    JournalContents out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (errno == ENOENT)
            return out;
        raiseError(ErrorKind::IoError, "cannot open %s: %s",
                   path.c_str(), std::strerror(errno));
    }
    std::string text;
    char buf[1 << 16];
    for (;;) {
        std::size_t n = std::fread(buf, 1, sizeof buf, f);
        text.append(buf, n);
        if (n < sizeof buf) {
            bool bad = std::ferror(f) != 0;
            std::fclose(f);
            if (bad)
                raiseError(ErrorKind::IoError, "cannot read %s",
                           path.c_str());
            break;
        }
    }
    out.exists = true;

    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            // Torn tail: an append died mid-write.
            ++out.droppedLines;
            return out;
        }
        std::string_view line(text.data() + pos, nl - pos);
        json::Value v;
        bool ok = parseLine(line, v);
        if (ok && first) {
            ok = parseHeader(v, out.header);
            if (ok)
                out.headerOk = true;
        } else if (ok) {
            UnitRecord rec;
            ok = parseRecord(v, rec);
            if (ok)
                out.records.push_back(std::move(rec));
        }
        if (!ok) {
            // Stop at the first bad line: the append-only contract
            // means everything after it is equally suspect.
            std::size_t rest = nl + 1;
            ++out.droppedLines;
            while ((rest = text.find('\n', rest)) !=
                   std::string::npos) {
                ++out.droppedLines;
                ++rest;
            }
            if (text.back() != '\n')
                ++out.droppedLines;
            return out;
        }
        first = false;
        pos = nl + 1;
        out.validBytes = pos;
    }
    return out;
}

JournalWriter::JournalWriter(std::FILE *file, std::string path)
    : file_(file), path_(std::move(path))
{
}

JournalWriter::JournalWriter(JournalWriter &&other) noexcept
    : file_(other.file_), path_(std::move(other.path_))
{
    other.file_ = nullptr;
}

JournalWriter &
JournalWriter::operator=(JournalWriter &&other) noexcept
{
    if (this != &other) {
        close();
        file_ = other.file_;
        path_ = std::move(other.path_);
        other.file_ = nullptr;
    }
    return *this;
}

JournalWriter::~JournalWriter() { close(); }

void
JournalWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

JournalWriter
JournalWriter::fresh(const std::string &path,
                     const JournalHeader &header)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        raiseError(ErrorKind::IoError, "cannot create journal %s: %s",
                   path.c_str(), std::strerror(errno));
    JournalWriter w(f, path);
    w.writeLine(headerJson(header).dump(0));
    return w;
}

JournalWriter
JournalWriter::resume(const std::string &path, std::size_t valid_bytes)
{
    if (::truncate(path.c_str(),
                   static_cast<off_t>(valid_bytes)) != 0)
        raiseError(ErrorKind::IoError,
                   "cannot truncate journal %s to %zu bytes: %s",
                   path.c_str(), valid_bytes, std::strerror(errno));
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (f == nullptr)
        raiseError(ErrorKind::IoError, "cannot append journal %s: %s",
                   path.c_str(), std::strerror(errno));
    return JournalWriter(f, path);
}

void
JournalWriter::writeLine(const std::string &json_text)
{
    std::string line = formatLine(json_text);
    bool ok = file_ != nullptr &&
              std::fwrite(line.data(), 1, line.size(), file_) ==
                  line.size();
    ok = ok && std::fflush(file_) == 0;
    ok = ok && ::fsync(fileno(file_)) == 0;
    if (!ok)
        raiseError(ErrorKind::IoError, "cannot append to journal %s",
                   path_.c_str());
}

void
JournalWriter::append(const UnitRecord &record)
{
    writeLine(unitRecordJson(record).dump(0));
}

} // namespace emsc::engine
