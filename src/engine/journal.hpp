/**
 * @file
 * Crash-safe work-unit journal ("emsc.journal.v1").
 *
 * Each experiment shard appends one record per completed work unit to
 * a line-oriented journal file, so a crash (or SIGKILL) loses at most
 * the unit that was in flight — never the units already finished.
 *
 * Format: every line, including the header, is
 *
 *     <crc32 hex8> <compact JSON>\n
 *
 * where the CRC-32 covers the JSON text. Line 1 is the header
 * (schema, sweep name, shard i/N, unit count, master seed); every
 * following line is one UnitRecord. Appends are flushed and fsync'd
 * record by record, so a torn final record — the only corruption an
 * append-crash can produce — fails its CRC (or lacks its newline) and
 * is dropped on load. Loading stops at the first bad line: an
 * append-only file corrupted mid-way is suspect from that point on,
 * and resume re-executes everything that no longer parses.
 *
 * Seeds are stored as decimal strings, not JSON numbers: a 64-bit
 * seed does not round-trip through a double.
 */

#ifndef EMSC_ENGINE_JOURNAL_HPP
#define EMSC_ENGINE_JOURNAL_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "support/json.hpp"

namespace emsc::engine {

/** CRC-32 (IEEE, reflected 0xEDB88320) over `text`. */
std::uint32_t crc32(std::string_view text);

/** Identity of one shard's journal; all fields must match on resume
 * and across the shards of one merge. */
struct JournalHeader
{
    std::string sweep;
    std::size_t shard = 0;
    std::size_t shards = 1;
    /** Total units in the whole sweep (not just this shard). */
    std::size_t units = 0;
    /** The sweep's master seed (provenance). */
    std::uint64_t seed = 0;

    bool
    matches(const JournalHeader &other) const
    {
        return sweep == other.sweep && shard == other.shard &&
               shards == other.shards && units == other.units &&
               seed == other.seed;
    }
};

/** Terminal state of one work unit. */
enum class UnitStatus {
    /** The unit ran to completion and produced a result. */
    Ok,
    /** Every attempt raised a RecoverableError. */
    Failed,
    /** The unit exceeded the watchdog budget and was abandoned. */
    TimedOut,
};

/** Journal/wire name of a UnitStatus ("ok", "failed", "timeout"). */
const char *unitStatusName(UnitStatus status);

/** One completed (or terminally failed) work unit. */
struct UnitRecord
{
    std::size_t unit = 0;
    std::uint64_t seed = 0;
    UnitStatus status = UnitStatus::Ok;
    /** Attempts consumed, including the final one. */
    std::size_t attempts = 1;
    /** Wall clock of the final attempt (telemetry only: merge output
     * is a pure function of `result`, never of timing). */
    double wallMs = 0.0;
    /** Sweep-defined payload; meaningful when status == Ok. */
    json::Value result;
    /** The final error; meaningful when status != Ok. */
    Error error;
};

/** `<dir>/<sweep>.shard-<i>-of-<N>.journal` */
std::string journalPath(const std::string &dir,
                        const std::string &sweep, std::size_t shard,
                        std::size_t shards);

/**
 * Insert a ".shard-<i>-of-<N>" tag before `path`'s extension
 * ("m.json" -> "m.shard-0-of-4.json"; no extension appends the tag),
 * so concurrent shards of one sweep write distinct metrics/trace
 * files instead of clobbering a shared snapshot, and merge knows
 * where to find every shard's file.
 */
std::string shardSuffixedPath(const std::string &path, std::size_t shard,
                              std::size_t shards);

/** Create `dir` (and parents) if missing; raises IoError. */
void ensureDir(const std::string &dir);

/** Everything a journal file yielded on load. */
struct JournalContents
{
    /** False when the file does not exist at all. */
    bool exists = false;
    /** True when line 1 parsed as a valid emsc.journal.v1 header. */
    bool headerOk = false;
    JournalHeader header;
    std::vector<UnitRecord> records;
    /** Lines dropped: the first torn/corrupt line and everything
     * after it (a partial tail counts as one line). */
    std::size_t droppedLines = 0;
    /** Byte length of the clean prefix; resume truncates here before
     * appending so new records never concatenate onto a torn line. */
    std::size_t validBytes = 0;
};

/**
 * Load and validate a journal. Never throws on corruption — corrupt
 * content is reported via droppedLines/headerOk so the caller can
 * resume from the last good record. Raises IoError only when the
 * file exists but cannot be read.
 */
JournalContents loadJournal(const std::string &path);

/**
 * Append-side handle. Records are written with fflush + fsync per
 * append: crash-safety over throughput (a work unit is seconds of
 * compute; one fsync is noise).
 */
class JournalWriter
{
  public:
    /** Truncate/create `path` and write the header. */
    static JournalWriter fresh(const std::string &path,
                               const JournalHeader &header);

    /**
     * Open `path` for appending after a resume scan: truncates the
     * file to `valid_bytes` (cutting off a torn tail) and appends
     * from there. The caller must have verified the on-disk header.
     */
    static JournalWriter resume(const std::string &path,
                                std::size_t valid_bytes);

    JournalWriter(JournalWriter &&other) noexcept;
    JournalWriter &operator=(JournalWriter &&other) noexcept;
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;
    ~JournalWriter();

    /** Append one record, fsync'd. Raises IoError on failure. */
    void append(const UnitRecord &record);

    /** Flush and close early (the destructor also closes). */
    void close();

  private:
    JournalWriter(std::FILE *file, std::string path);

    void writeLine(const std::string &json_text);

    std::FILE *file_ = nullptr;
    std::string path_;
};

/** Serialise a record to its journal JSON (exposed for tests). */
json::Value unitRecordJson(const UnitRecord &record);

} // namespace emsc::engine

#endif // EMSC_ENGINE_JOURNAL_HPP
