#include "engine/progress.hpp"

#include <algorithm>
#include <cstdio>

#include "engine/journal.hpp"

namespace emsc::engine {

SweepProgress
sweepProgress(const std::string &dir, const std::string &sweep,
              std::size_t units, std::size_t shards)
{
    SweepProgress out;
    out.sweep = sweep;
    out.units = units;
    out.shards = shards ? shards : 1;

    double okWallTotal = 0.0;
    std::size_t okCount = 0;
    for (std::size_t i = 0; i < out.shards; ++i) {
        ShardProgress sp;
        sp.shard = i;
        JournalContents jc =
            loadJournal(journalPath(dir, sweep, i, out.shards));
        sp.found = jc.exists;
        sp.headerOk = jc.headerOk;
        sp.droppedLines = jc.droppedLines;
        if (jc.headerOk && out.units == 0)
            out.units = jc.header.units;
        double wall = 0.0;
        std::size_t ok_here = 0;
        for (const UnitRecord &rec : jc.records) {
            ++sp.done;
            sp.attempts += rec.attempts;
            switch (rec.status) {
            case UnitStatus::Ok:
                ++sp.ok;
                wall += rec.wallMs;
                ++ok_here;
                break;
            case UnitStatus::Failed:
                ++sp.failed;
                break;
            case UnitStatus::TimedOut:
                ++sp.timedOut;
                break;
            }
        }
        if (ok_here)
            sp.meanOkWallMs = wall / static_cast<double>(ok_here);
        okWallTotal += wall;
        okCount += ok_here;
        out.perShard.push_back(sp);
    }

    // The deterministic partition: shard i owns units i, i+N, ...
    for (ShardProgress &sp : out.perShard) {
        if (out.units > sp.shard)
            sp.unitsAssigned =
                (out.units - sp.shard + out.shards - 1) / out.shards;
        out.done += sp.done;
        out.ok += sp.ok;
        out.failed += sp.failed;
        out.timedOut += sp.timedOut;
        out.retries += sp.attempts >= sp.done ? sp.attempts - sp.done
                                              : 0;
    }

    double sweepMean =
        okCount ? okWallTotal / static_cast<double>(okCount) : 0.0;
    if (okCount && out.units) {
        // Shards run concurrently: the sweep finishes when its
        // slowest shard does.
        double worst = 0.0;
        for (const ShardProgress &sp : out.perShard) {
            std::size_t left = sp.unitsAssigned > sp.done
                                   ? sp.unitsAssigned - sp.done
                                   : 0;
            double mean =
                sp.meanOkWallMs > 0.0 ? sp.meanOkWallMs : sweepMean;
            worst = std::max(worst,
                             static_cast<double>(left) * mean / 1e3);
        }
        out.etaSeconds = worst;
    }
    return out;
}

std::string
renderSweepTop(const SweepProgress &p)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "sweep %s: %zu/%zu units  ok %zu  failed %zu  "
                  "timeout %zu  retries %zu\n",
                  p.sweep.c_str(), p.done, p.units, p.ok, p.failed,
                  p.timedOut, p.retries);
    out += line;
    if (p.etaSeconds >= 0.0) {
        std::snprintf(line, sizeof line, "eta: %.0fs\n", p.etaSeconds);
        out += line;
    } else {
        out += "eta: n/a (no completed units yet)\n";
    }
    out += "shard      done/assigned    ok  fail  tout  "
           "mean-ms  journal\n";
    for (const ShardProgress &sp : p.perShard) {
        const char *state = !sp.found      ? "missing"
                            : !sp.headerOk ? "bad-header"
                            : sp.droppedLines ? "torn-tail"
                                              : "ok";
        std::snprintf(line, sizeof line,
                      "%5zu  %6zu/%-8zu  %4zu  %4zu  %4zu  %7.1f  %s\n",
                      sp.shard, sp.done, sp.unitsAssigned, sp.ok,
                      sp.failed, sp.timedOut, sp.meanOkWallMs, state);
        out += line;
    }
    if (p.complete())
        out += "sweep complete\n";
    return out;
}

} // namespace emsc::engine
