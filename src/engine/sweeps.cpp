#include "engine/sweeps.hpp"

#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "support/rng.hpp"

namespace emsc::engine {

namespace {

/** Highest-rate sleep period meeting the BER budget at this setup
 * (Table III procedure: lower TR with distance until the BER holds). */
core::CovertChannelResult
bestRate(const core::DeviceProfile &dev,
         const core::MeasurementSetup &setup, double target_ber,
         std::uint64_t seed)
{
    const double sleeps[] = {100.0, 150.0, 200.0, 300.0,
                             400.0, 600.0, 800.0};
    core::CovertChannelResult last;
    for (double s : sleeps) {
        core::CovertChannelOptions o;
        o.payloadBits = 1200;
        o.seed = seed;
        o.sleepPeriodUs = s;
        core::CovertChannelResult r =
            core::medianCovertChannel(dev, setup, o, 3);
        last = r;
        double err = r.ber + r.insertionProb + r.deletionProb;
        if (r.frameFound && err <= target_ber)
            return r;
    }
    return last;
}

struct CellStats
{
    std::size_t recovered = 0;
    std::size_t trials = 0;
    double berSum = 0.0;

    double
    recoveryPct() const
    {
        return trials == 0 ? 0.0
                           : 100.0 * static_cast<double>(recovered) /
                                 static_cast<double>(trials);
    }
    double
    meanBer() const
    {
        return trials == 0 ? 0.0
                           : berSum / static_cast<double>(trials);
    }
};

CellStats
sweepCell(const core::DeviceProfile &dev,
          const core::MeasurementSetup &setup,
          const core::CovertChannelOptions &base, std::size_t trials)
{
    std::vector<std::uint64_t> seeds =
        core::chainedSeeds(base.seed, trials, 2654435761u, 97);
    std::vector<core::CovertChannelResult> all =
        core::TrialRunner::runSeeded<core::CovertChannelResult>(
            seeds, [&](std::size_t, std::uint64_t seed) {
                core::CovertChannelOptions o = base;
                o.seed = seed;
                return core::runCovertChannel(dev, setup, o);
            });

    CellStats cell;
    for (const core::CovertChannelResult &r : all) {
        ++cell.trials;
        bool exact = r.ok() && r.frameFound &&
                     r.decodedPayload == base.payload;
        cell.recovered += exact;
        cell.berSum += r.ok() && r.frameFound ? r.ber : 1.0;
    }
    return cell;
}

/** The pre-hardening pipeline: single global lock, no interleaver,
 * no CRC — what the repo shipped before the fault harness. */
void
makeLegacy(core::CovertChannelOptions &o)
{
    o.receiver.segmentation.enabled = false;
    o.receiver.frame.interleaverDepth = 1;
    o.receiver.frame.crc = false;
}

} // namespace

Sweep
table3DistanceSweep()
{
    Sweep sweep;
    sweep.name = "table3_distance";
    sweep.units = 3;
    sweep.seed = 3300;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        const double distances[] = {1.0, 1.5, 2.5};
        const char *keys[] = {"los_1m0", "los_1m5", "los_2m5"};
        double meters = distances[unit];
        core::DeviceProfile dev = core::referenceDevice();
        core::CovertChannelResult r = bestRate(
            dev, core::distanceSetup(meters), 1e-2, 3300 + unit);

        std::string key = keys[unit];
        json::Value metrics = json::Value::object();
        metrics.set(key + ".ber", r.ber);
        metrics.set(key + ".tr_bps", r.trBps);
        metrics.set(key + ".insertion_prob", r.insertionProb);
        metrics.set(key + ".deletion_prob", r.deletionProb);

        json::Value row = json::Value::object();
        row.set("meters", meters);
        row.set("ber", r.ber);
        row.set("tr_bps", r.trBps);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

Sweep
table4KeyloggingSweep()
{
    Sweep sweep;
    sweep.name = "table4_keylogging";
    sweep.units = 3;
    sweep.seed = 4400;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        const char *keys[] = {"near_10cm", "los_2m", "wall_1m5"};
        core::DeviceProfile dev = core::findDevice("Precision");
        core::MeasurementSetup setup =
            unit == 0   ? core::nearFieldSetup()
            : unit == 1 ? core::distanceSetup(2.0)
                        : core::throughWallSetup();

        core::KeyloggingOptions o;
        o.words = 50;
        o.seed = 4400 + unit;
        core::KeyloggingResult r = core::runKeylogging(dev, setup, o);

        std::string key = keys[unit];
        json::Value metrics = json::Value::object();
        metrics.set(key + ".char_tpr", r.chars.tpr());
        metrics.set(key + ".char_fpr", r.chars.fpr());
        metrics.set(key + ".word_precision", r.words.precision());
        metrics.set(key + ".word_recall", r.words.recall());

        json::Value row = json::Value::object();
        row.set("char_tpr", r.chars.tpr());
        row.set("char_fpr", r.chars.fpr());
        row.set("word_precision", r.words.precision());
        row.set("word_recall", r.words.recall());
        row.set("words", o.words);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

Sweep
ablationFaultsSweep()
{
    Sweep sweep;
    sweep.name = "ablation_faults";
    sweep.units = 6;
    sweep.seed = 31000;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        constexpr std::size_t kTrials = 16;
        const double rates[] = {0.0, 3.0, 8.0, 15.0, 25.0};

        core::DeviceProfile dev = core::referenceDevice();
        core::MeasurementSetup setup = core::nearFieldSetup();

        core::CovertChannelOptions base;
        // Long enough (~0.3 s on the air) that a per-second fault
        // rate lands several events inside every capture.
        {
            Rng rng(99);
            base.payload.resize(600);
            for (auto &b : base.payload)
                b = rng.chance(0.5) ? 1 : 0;
        }
        base.seed = 31000;

        std::string key;
        core::CovertChannelOptions hard = base;
        if (unit < 5) {
            hard.faults.dropoutRate = rates[unit];
            hard.faults.gainStepRate = rates[unit];
            char buf[32];
            std::snprintf(buf, sizeof buf, "drop_gain_%.0fps",
                          rates[unit]);
            key = buf;
        } else {
            hard.faults = sim::harshConfig(0);
            key = "harsh";
        }
        core::CovertChannelOptions legacy = hard;
        makeLegacy(legacy);

        CellStats h = sweepCell(dev, setup, hard, kTrials);
        CellStats l = sweepCell(dev, setup, legacy, kTrials);

        json::Value metrics = json::Value::object();
        metrics.set(key + ".hardened.recovery_pct", h.recoveryPct());
        metrics.set(key + ".hardened.ber", h.meanBer());
        metrics.set(key + ".legacy.recovery_pct", l.recoveryPct());
        metrics.set(key + ".legacy.ber", l.meanBer());

        json::Value row = json::Value::object();
        row.set("hardened_recovery_pct", h.recoveryPct());
        row.set("hardened_ber", h.meanBer());
        row.set("legacy_recovery_pct", l.recoveryPct());
        row.set("legacy_ber", l.meanBer());
        row.set("trials", h.trials + l.trials);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

std::vector<std::string>
sweepNames()
{
    return {"table3_distance", "table4_keylogging",
            "ablation_faults"};
}

Sweep
makeSweep(const std::string &name)
{
    if (name == "table3_distance")
        return table3DistanceSweep();
    if (name == "table4_keylogging")
        return table4KeyloggingSweep();
    if (name == "ablation_faults")
        return ablationFaultsSweep();
    std::string known;
    for (const std::string &n : sweepNames()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    raiseError(ErrorKind::InvalidConfig,
               "unknown sweep '%s' (known: %s)", name.c_str(),
               known.c_str());
}

} // namespace emsc::engine
