#include "engine/sweeps.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "modem/link.hpp"
#include "modem/rate_control.hpp"
#include "modem/scenes.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace emsc::engine {

namespace {

/** Highest-rate sleep period meeting the BER budget at this setup
 * (Table III procedure: lower TR with distance until the BER holds). */
core::CovertChannelResult
bestRate(const core::DeviceProfile &dev,
         const core::MeasurementSetup &setup, double target_ber,
         std::uint64_t seed)
{
    const double sleeps[] = {100.0, 150.0, 200.0, 300.0,
                             400.0, 600.0, 800.0};
    core::CovertChannelResult last;
    for (double s : sleeps) {
        core::CovertChannelOptions o;
        o.payloadBits = 1200;
        o.seed = seed;
        o.sleepPeriodUs = s;
        core::CovertChannelResult r =
            core::medianCovertChannel(dev, setup, o, 3);
        last = r;
        double err = r.ber + r.insertionProb + r.deletionProb;
        if (r.frameFound && err <= target_ber)
            return r;
    }
    return last;
}

struct CellStats
{
    std::size_t recovered = 0;
    std::size_t trials = 0;
    double berSum = 0.0;

    double
    recoveryPct() const
    {
        return trials == 0 ? 0.0
                           : 100.0 * static_cast<double>(recovered) /
                                 static_cast<double>(trials);
    }
    double
    meanBer() const
    {
        return trials == 0 ? 0.0
                           : berSum / static_cast<double>(trials);
    }
};

CellStats
sweepCell(const core::DeviceProfile &dev,
          const core::MeasurementSetup &setup,
          const core::CovertChannelOptions &base, std::size_t trials)
{
    std::vector<std::uint64_t> seeds =
        core::chainedSeeds(base.seed, trials, 2654435761u, 97);
    std::vector<core::CovertChannelResult> all =
        core::TrialRunner::runSeeded<core::CovertChannelResult>(
            seeds, [&](std::size_t, std::uint64_t seed) {
                core::CovertChannelOptions o = base;
                o.seed = seed;
                return core::runCovertChannel(dev, setup, o);
            });

    CellStats cell;
    for (const core::CovertChannelResult &r : all) {
        ++cell.trials;
        bool exact = r.ok() && r.frameFound &&
                     r.decodedPayload == base.payload;
        cell.recovered += exact;
        cell.berSum += r.ok() && r.frameFound ? r.ber : 1.0;
    }
    return cell;
}

/** The pre-hardening pipeline: single global lock, no interleaver,
 * no CRC — what the repo shipped before the fault harness. */
void
makeLegacy(core::CovertChannelOptions &o)
{
    o.receiver.segmentation.enabled = false;
    o.receiver.frame.interleaverDepth = 1;
    o.receiver.frame.crc = false;
}

} // namespace

Sweep
table3DistanceSweep()
{
    Sweep sweep;
    sweep.name = "table3_distance";
    sweep.units = 3;
    sweep.seed = 3300;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        const double distances[] = {1.0, 1.5, 2.5};
        const char *keys[] = {"los_1m0", "los_1m5", "los_2m5"};
        double meters = distances[unit];
        core::DeviceProfile dev = core::referenceDevice();
        core::CovertChannelResult r = bestRate(
            dev, core::distanceSetup(meters), 1e-2, 3300 + unit);

        std::string key = keys[unit];
        json::Value metrics = json::Value::object();
        metrics.set(key + ".ber", r.ber);
        metrics.set(key + ".tr_bps", r.trBps);
        metrics.set(key + ".insertion_prob", r.insertionProb);
        metrics.set(key + ".deletion_prob", r.deletionProb);

        json::Value row = json::Value::object();
        row.set("meters", meters);
        row.set("ber", r.ber);
        row.set("tr_bps", r.trBps);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

Sweep
table4KeyloggingSweep()
{
    Sweep sweep;
    sweep.name = "table4_keylogging";
    sweep.units = 3;
    sweep.seed = 4400;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        const char *keys[] = {"near_10cm", "los_2m", "wall_1m5"};
        core::DeviceProfile dev = core::findDevice("Precision");
        core::MeasurementSetup setup =
            unit == 0   ? core::nearFieldSetup()
            : unit == 1 ? core::distanceSetup(2.0)
                        : core::throughWallSetup();

        core::KeyloggingOptions o;
        o.words = 50;
        o.seed = 4400 + unit;
        core::KeyloggingResult r = core::runKeylogging(dev, setup, o);

        std::string key = keys[unit];
        json::Value metrics = json::Value::object();
        metrics.set(key + ".char_tpr", r.chars.tpr());
        metrics.set(key + ".char_fpr", r.chars.fpr());
        metrics.set(key + ".word_precision", r.words.precision());
        metrics.set(key + ".word_recall", r.words.recall());

        json::Value row = json::Value::object();
        row.set("char_tpr", r.chars.tpr());
        row.set("char_fpr", r.chars.fpr());
        row.set("word_precision", r.words.precision());
        row.set("word_recall", r.words.recall());
        row.set("words", o.words);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

Sweep
ablationFaultsSweep()
{
    Sweep sweep;
    sweep.name = "ablation_faults";
    sweep.units = 6;
    sweep.seed = 31000;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        constexpr std::size_t kTrials = 16;
        const double rates[] = {0.0, 3.0, 8.0, 15.0, 25.0};

        core::DeviceProfile dev = core::referenceDevice();
        core::MeasurementSetup setup = core::nearFieldSetup();

        core::CovertChannelOptions base;
        // Long enough (~0.3 s on the air) that a per-second fault
        // rate lands several events inside every capture.
        {
            Rng rng(99);
            base.payload.resize(600);
            for (auto &b : base.payload)
                b = rng.chance(0.5) ? 1 : 0;
        }
        base.seed = 31000;

        std::string key;
        core::CovertChannelOptions hard = base;
        if (unit < 5) {
            hard.faults.dropoutRate = rates[unit];
            hard.faults.gainStepRate = rates[unit];
            char buf[32];
            std::snprintf(buf, sizeof buf, "drop_gain_%.0fps",
                          rates[unit]);
            key = buf;
        } else {
            hard.faults = sim::harshConfig(0);
            key = "harsh";
        }
        core::CovertChannelOptions legacy = hard;
        makeLegacy(legacy);

        CellStats h = sweepCell(dev, setup, hard, kTrials);
        CellStats l = sweepCell(dev, setup, legacy, kTrials);

        json::Value metrics = json::Value::object();
        metrics.set(key + ".hardened.recovery_pct", h.recoveryPct());
        metrics.set(key + ".hardened.ber", h.meanBer());
        metrics.set(key + ".legacy.recovery_pct", l.recoveryPct());
        metrics.set(key + ".legacy.ber", l.meanBer());

        json::Value row = json::Value::object();
        row.set("hardened_recovery_pct", h.recoveryPct());
        row.set("hardened_ber", h.meanBer());
        row.set("legacy_recovery_pct", l.recoveryPct());
        row.set("legacy_ber", l.meanBer());
        row.set("trials", h.trials + l.trials);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

namespace {

/** One rate rung of a modem's ladder: the timing knob value and the
 * nominal payload rate it implies. */
struct ModemRung
{
    double knob;
    double bps;
};

/** Rate ladder per modem, fastest rung first. The knob is the OOK
 * sleep period or the FSK/ASK symbol period (us). */
std::vector<ModemRung>
modemLadder(modem::ModemKind kind)
{
    switch (kind) {
    case modem::ModemKind::OokRz:
        // Rungs follow the measured rate-reliability curve of the
        // self-timed receiver: its timing recovery has an instability
        // pocket around 150-200 us sleep (deletions shear long frames
        // there even though 100 us is clean), and it stops tracking
        // bits above ~700 us — so the ladder skips the pocket and
        // anchors at 600.
        return {{100.0, 1800.0},
                {300.0, 480.0},
                {400.0, 360.0},
                {600.0, 260.0}};
    case modem::ModemKind::Bfsk:
        return {{250.0, 4000.0},
                {400.0, 2500.0},
                {600.0, 1667.0},
                {900.0, 1111.0}};
    case modem::ModemKind::Mlask4:
        return {{400.0, 5000.0},
                {600.0, 3333.0},
                {900.0, 2222.0},
                {1350.0, 1481.0}};
    }
    return {};
}

/** One probe transmission at a ladder rung; pass/fail by payload
 * error rate. */
modem::ModemLinkResult
probeRung(modem::ModemKind kind, double knob, std::uint64_t seed)
{
    core::DeviceProfile dev = core::referenceDevice();
    modem::ModemLinkOptions o;
    o.modem.kind = kind;
    // Large enough that one bit error cannot straddle the 1e-2 BER
    // budget (1/96 would): probe pass/fail stays stable across seeds.
    o.payloadBits = 192;
    o.seed = seed;
    switch (kind) {
    case modem::ModemKind::OokRz:
        o.sleepPeriodUs = knob;
        break;
    case modem::ModemKind::Bfsk:
        o.modem.bfsk.symbolPeriodUs = knob;
        break;
    case modem::ModemKind::Mlask4:
        o.modem.mlask.symbolPeriodUs = knob;
        break;
    }
    return modem::runModemLink(dev, core::nearFieldSetup(), o);
}

double
probeErr(const modem::ModemLinkResult &r)
{
    return r.ok() && r.frameFound ? r.berPayload : 1.0;
}

/** Median payload error rate over three probe captures — the same
 * trial-noise smoothing medianCovertChannel applies in the distance
 * table, so one unlucky capture does not misrank a rung. Also returns
 * the result whose error matched the median (for throughput stats). */
std::pair<double, modem::ModemLinkResult>
medianProbe(modem::ModemKind kind, double knob, std::uint64_t seed)
{
    std::array<modem::ModemLinkResult, 3> runs;
    std::array<double, 3> errs{};
    for (std::size_t j = 0; j < 3; ++j) {
        runs[j] = probeRung(kind, knob, deriveSeed(seed, j));
        errs[j] = probeErr(runs[j]);
    }
    std::array<std::size_t, 3> order{0, 1, 2};
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return errs[a] < errs[b];
              });
    return {errs[order[1]], runs[order[1]]};
}

} // namespace

Sweep
table3ModulationsSweep()
{
    Sweep sweep;
    sweep.name = "table3_modulations";
    sweep.units = 3;
    sweep.seed = 52000;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        constexpr double kTargetBer = 1e-2;
        const modem::ModemKind kinds[] = {modem::ModemKind::OokRz,
                                          modem::ModemKind::Bfsk,
                                          modem::ModemKind::Mlask4};
        modem::ModemKind kind = kinds[unit];
        std::vector<ModemRung> ladder = modemLadder(kind);
        std::uint64_t seed = 52000 + 100 * unit;

        // Fixed-rate ladder: fastest rung whose probe meets the BER
        // budget (Table III procedure, per modulation scheme).
        std::size_t best_fixed = ladder.size() - 1;
        double best_tr = 0.0, best_ber = 1.0;
        for (std::size_t i = 0; i < ladder.size(); ++i) {
            auto [err, r] =
                medianProbe(kind, ladder[i].knob, deriveSeed(seed, i));
            if (err <= kTargetBer) {
                best_fixed = i;
                best_tr = r.trPayloadBps;
                best_ber = err;
                break;
            }
        }

        // Adaptive-rate controller: probe/measure/step from the
        // slowest rung; one fresh capture per probe.
        modem::RateControllerConfig rc;
        rc.rungs = ladder.size();
        rc.start = ladder.size() - 1;
        rc.targetBer = kTargetBer;
        for (const ModemRung &r : ladder)
            rc.rungBps.push_back(r.bps);
        modem::RateController ctl(rc);
        std::size_t probes = 0;
        while (probes < 3 * ladder.size()) {
            ++probes;
            auto [err, r] = medianProbe(
                kind, ladder[ctl.current()].knob,
                deriveSeed(seed, 1000 + probes));
            (void)r;
            if (!ctl.report(err))
                break;
        }

        std::string key = modem::modemName(kind);
        json::Value metrics = json::Value::object();
        metrics.set(key + ".fixed.best_rung",
                    static_cast<double>(best_fixed));
        metrics.set(key + ".fixed.tr_payload_bps", best_tr);
        metrics.set(key + ".fixed.ber", best_ber);
        metrics.set(key + ".adaptive.rung",
                    static_cast<double>(ctl.current()));
        metrics.set(key + ".adaptive.steps",
                    static_cast<double>(ctl.steps()));
        metrics.set(key + ".adaptive.probes",
                    static_cast<double>(probes));

        json::Value row = json::Value::object();
        row.set("modem", key);
        row.set("fixed_best_rung", static_cast<double>(best_fixed));
        row.set("fixed_tr_payload_bps", best_tr);
        row.set("adaptive_rung",
                static_cast<double>(ctl.current()));
        row.set("adaptive_steps", static_cast<double>(ctl.steps()));

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

Sweep
ablationCollisionSweep()
{
    Sweep sweep;
    sweep.name = "ablation_collision";
    sweep.units = 3;
    sweep.seed = 53000;
    sweep.run = [](std::size_t unit, std::uint64_t) {
        const modem::TwoTxScene scenes[] = {
            modem::TwoTxScene::Collision, modem::TwoTxScene::Fdm,
            modem::TwoTxScene::NearFar};
        const char *keys[] = {"collision", "fdm", "near_far"};
        modem::TwoTxScene scene = scenes[unit];

        core::DeviceProfile dev = core::referenceDevice();
        modem::TwoTxOptions o;
        o.seed = 53000 + unit;
        modem::TwoTxResult r =
            modem::runTwoTransmitterScene(scene, dev, o);

        std::string key = keys[unit];
        json::Value metrics = json::Value::object();
        metrics.set(key + ".tx_a.recovered",
                    r.tx[0].payloadRecovered ? 1.0 : 0.0);
        metrics.set(key + ".tx_a.ber_payload", r.tx[0].berPayload);
        metrics.set(key + ".tx_b.recovered",
                    r.tx[1].payloadRecovered ? 1.0 : 0.0);
        metrics.set(key + ".tx_b.ber_payload", r.tx[1].berPayload);
        metrics.set(key + ".lines",
                    static_cast<double>(r.lines.size()));

        json::Value row = json::Value::object();
        row.set("scene", key);
        row.set("tx_a_recovered", r.tx[0].payloadRecovered ? 1.0 : 0.0);
        row.set("tx_b_recovered", r.tx[1].payloadRecovered ? 1.0 : 0.0);
        row.set("tx_a_ber_payload", r.tx[0].berPayload);
        row.set("tx_b_ber_payload", r.tx[1].berPayload);
        row.set("single_estimate_hz", r.singleEstimateHz);

        json::Value out = json::Value::object();
        out.set("metrics", std::move(metrics));
        out.set("row", std::move(row));
        return out;
    };
    return sweep;
}

std::vector<std::string>
sweepNames()
{
    return {"table3_distance", "table4_keylogging",
            "ablation_faults", "table3_modulations",
            "ablation_collision"};
}

Sweep
makeSweep(const std::string &name)
{
    if (name == "table3_distance")
        return table3DistanceSweep();
    if (name == "table4_keylogging")
        return table4KeyloggingSweep();
    if (name == "ablation_faults")
        return ablationFaultsSweep();
    if (name == "table3_modulations")
        return table3ModulationsSweep();
    if (name == "ablation_collision")
        return ablationCollisionSweep();
    std::string known;
    for (const std::string &n : sweepNames()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    raiseError(ErrorKind::InvalidConfig,
               "unknown sweep '%s' (known: %s)", name.c_str(),
               known.c_str());
}

} // namespace emsc::engine
