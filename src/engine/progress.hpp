/**
 * @file
 * Offline sweep progress: journal tailing, ETA, and the text view
 * behind `emsc_tool top <sweep>`.
 *
 * A sweep's shard journals (engine/journal.hpp) are append-only and
 * loadable at any moment — loadJournal() never throws on a torn tail
 * — so progress needs no cooperation from the running shards: tail
 * the journals, count records against the deterministic unit
 * partition (unit u belongs to shard u % N), and estimate time left
 * from the mean Ok wall time.  Works identically on a live sweep, a
 * crashed one, and a finished one.
 */

#ifndef EMSC_ENGINE_PROGRESS_HPP
#define EMSC_ENGINE_PROGRESS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace emsc::engine {

/** Progress of one shard, as read from its journal. */
struct ShardProgress
{
    std::size_t shard = 0;
    /** False when the journal file does not exist yet. */
    bool found = false;
    /** False when the journal exists but its header is unusable. */
    bool headerOk = false;
    /** Units assigned to this shard by the u % N partition. */
    std::size_t unitsAssigned = 0;
    std::size_t done = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    /** Attempts summed over journaled units (>= done; the excess is
     * retries). */
    std::size_t attempts = 0;
    /** Journal lines dropped as torn/corrupt on load. */
    std::size_t droppedLines = 0;
    /** Mean wall ms of this shard's Ok units (0 when none yet). */
    double meanOkWallMs = 0.0;
};

/** Aggregated view over all shards of one sweep. */
struct SweepProgress
{
    std::string sweep;
    std::size_t units = 0;
    std::size_t shards = 1;
    std::vector<ShardProgress> perShard;
    std::size_t done = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    std::size_t retries = 0;
    /**
     * Estimated seconds until the slowest shard finishes, assuming
     * shards run concurrently and future units cost the observed
     * mean Ok wall time (per shard when it has history, the sweep
     * mean otherwise).  Negative when no timing history exists yet.
     */
    double etaSeconds = -1.0;
    bool complete() const { return units > 0 && done >= units; }
};

/**
 * Tail the shard journals of `sweep` in `dir`.  `units` may be 0
 * when unknown; the first readable journal header supplies it (the
 * header records the whole sweep's unit count).
 */
SweepProgress sweepProgress(const std::string &dir,
                            const std::string &sweep, std::size_t units,
                            std::size_t shards);

/** Render the per-shard progress table + ETA (pure function, so the
 * layout is testable without a filesystem). */
std::string renderSweepTop(const SweepProgress &progress);

} // namespace emsc::engine

#endif // EMSC_ENGINE_PROGRESS_HPP
