#include "engine/merge.hpp"

#include <map>
#include <utility>

namespace emsc::engine {

namespace {

/** Fold a unit result's flat key → number object into `dest`. */
void
foldNumberMap(json::Value &dest, const json::Value *src)
{
    if (src == nullptr || !src->isObject())
        return;
    for (const auto &member : src->members())
        if (member.second.isNumber())
            dest.set(member.first, member.second);
}

} // namespace

MergeOutcome
mergeSweep(const Sweep &sweep, const std::string &dir,
           std::size_t shards)
{
    if (sweep.name.empty() || sweep.units == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "mergeSweep needs a named, non-empty sweep");
    if (shards == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "mergeSweep needs at least one shard");

    MergeOutcome out;
    out.unitsTotal = sweep.units;

    // Collect the best record per unit across all shard journals.
    // The unit → shard map is deterministic, so there is normally one
    // candidate; if duplicates ever exist (journals copied around), an
    // Ok record wins over a Failed one.
    std::map<std::size_t, UnitRecord> byUnit;
    for (std::size_t shard = 0; shard < shards; ++shard) {
        const std::string path =
            journalPath(dir, sweep.name, shard, shards);
        JournalContents contents = loadJournal(path);
        out.journalDropped += contents.droppedLines;
        if (!contents.exists || !contents.headerOk) {
            ++out.shardsMissing;
            continue;
        }
        JournalHeader expect;
        expect.sweep = sweep.name;
        expect.shard = shard;
        expect.shards = shards;
        expect.units = sweep.units;
        expect.seed = sweep.seed;
        if (!contents.header.matches(expect))
            raiseError(ErrorKind::InvalidConfig,
                       "journal %s belongs to a different run "
                       "(sweep '%s', shard %zu/%zu, %zu units)",
                       path.c_str(), contents.header.sweep.c_str(),
                       contents.header.shard, contents.header.shards,
                       contents.header.units);
        ++out.shardsFound;
        for (UnitRecord &rec : contents.records) {
            if (rec.unit >= sweep.units ||
                rec.seed != unitSeed(sweep, rec.unit))
                continue; // stale record from an older definition
            auto it = byUnit.find(rec.unit);
            if (it == byUnit.end() ||
                (it->second.status != UnitStatus::Ok &&
                 rec.status == UnitStatus::Ok))
                byUnit[rec.unit] = std::move(rec);
        }
    }

    json::Value throughput = json::Value::object();
    json::Value metrics = json::Value::object();
    for (std::size_t unit = 0; unit < sweep.units; ++unit) {
        auto it = byUnit.find(unit);
        if (it == byUnit.end()) {
            ++out.unitsMissing;
            out.missingUnits.push_back(unit);
            continue;
        }
        out.unitRecords.push_back(it->second);
        if (it->second.status != UnitStatus::Ok) {
            ++out.unitsFailed;
            continue;
        }
        ++out.unitsCompleted;
        foldNumberMap(metrics, it->second.result.find("metrics"));
        foldNumberMap(throughput,
                      it->second.result.find("throughput"));
    }

    // Provenance counters ride in the metrics block so the report
    // stays plain emsc.bench.v1 for every existing consumer.
    metrics.set("engine.units_total", out.unitsTotal);
    metrics.set("engine.units_completed", out.unitsCompleted);
    metrics.set("engine.units_failed", out.unitsFailed);
    metrics.set("engine.units_missing", out.unitsMissing);

    // wall_ms is zero by contract: the merged artifact is a pure
    // function of unit results, so a resumed run merges bit-identical
    // to an uninterrupted one. Real timing lives in the journals.
    json::Value wall = json::Value::object();
    wall.set("median", 0.0);
    wall.set("p90", 0.0);

    json::Value report = json::Value::object();
    report.set("schema", "emsc.bench.v1");
    report.set("name", sweep.name);
    report.set("runs", out.unitsCompleted);
    report.set("wall_ms", std::move(wall));
    report.set("throughput", std::move(throughput));
    report.set("metrics", std::move(metrics));
    out.report = std::move(report);
    return out;
}

std::string
writeMergedReport(const MergeOutcome &merge, const std::string &path)
{
    const json::Value *name = merge.report.find("name");
    std::string dest = path;
    if (dest.empty()) {
        if (name == nullptr || !name->isString())
            raiseError(ErrorKind::InvalidConfig,
                       "merged report has no name to derive a "
                       "file name from");
        dest = "BENCH_" + name->string() + ".json";
    }
    std::string text = merge.report.dump(2);
    json::writeFileAtomic(dest, text);
    return dest;
}

} // namespace emsc::engine
