#include "engine/engine.hpp"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "support/flight.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace emsc::engine {

namespace {

struct EngineCounters
{
    telemetry::Counter shardStarted, shardCompleted;
    telemetry::Counter unitRun, unitOk, unitFailed, unitTimeout,
        unitSkipped;
    telemetry::Counter retryAttempts, retryExhausted;
    telemetry::Counter journalResumed, journalDropped;

    EngineCounters()
    {
        telemetry::MetricsRegistry &reg =
            telemetry::MetricsRegistry::global();
        shardStarted = {reg, "engine.shard.started"};
        shardCompleted = {reg, "engine.shard.completed"};
        unitRun = {reg, "engine.unit.run"};
        unitOk = {reg, "engine.unit.ok"};
        unitFailed = {reg, "engine.unit.failed"};
        unitTimeout = {reg, "engine.unit.timeout"};
        unitSkipped = {reg, "engine.unit.skipped"};
        retryAttempts = {reg, "engine.retry.attempts"};
        retryExhausted = {reg, "engine.retry.exhausted"};
        journalResumed = {reg, "engine.journal.resumed"};
        journalDropped = {reg, "engine.journal.dropped"};
    }
};

const EngineCounters &
counters()
{
    static EngineCounters c;
    return c;
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    std::chrono::duration<double, std::milli> d =
        std::chrono::steady_clock::now() - t0;
    return d.count();
}

/** Result slot shared with a watchdog worker thread. The worker
 * writes under the mutex unless the shard already abandoned it, so an
 * abandoned worker's late result is discarded, never raced on. */
struct WatchdogSlot
{
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
    std::optional<json::Value> result;
    std::optional<Error> error;
};

/** One attempt of one unit; Ok/Failed only (no timeout path). */
void
attemptInline(const Sweep &sweep, std::size_t unit,
              std::uint64_t seed, std::optional<json::Value> &result,
              std::optional<Error> &error)
{
    try {
        result = sweep.run(unit, seed);
    } catch (const RecoverableError &e) {
        error = e.toError();
    }
}

/**
 * One attempt under the watchdog: the unit runs on its own thread;
 * if it misses the deadline the thread is abandoned (detached) and
 * the attempt reports a timeout.
 * @return false on timeout.
 */
bool
attemptWatched(const Sweep &sweep, std::size_t unit,
               std::uint64_t seed, double budget_seconds,
               std::optional<json::Value> &result,
               std::optional<Error> &error)
{
    auto slot = std::make_shared<WatchdogSlot>();
    WorkUnitFn fn = sweep.run;
    std::thread worker([slot, fn, unit, seed] {
        std::optional<json::Value> r;
        std::optional<Error> e;
        try {
            r = fn(unit, seed);
        } catch (const RecoverableError &ex) {
            e = ex.toError();
        }
        std::lock_guard<std::mutex> lock(slot->m);
        if (slot->abandoned)
            return; // the shard moved on; discard the late result
        slot->result = std::move(r);
        slot->error = std::move(e);
        slot->done = true;
        slot->cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(slot->m);
    bool finished = slot->cv.wait_for(
        lock, std::chrono::duration<double>(budget_seconds),
        [&] { return slot->done; });
    if (finished) {
        lock.unlock();
        worker.join();
        result = std::move(slot->result);
        error = std::move(slot->error);
        return true;
    }
    slot->abandoned = true;
    lock.unlock();
    worker.detach();
    return false;
}

UnitRecord
executeUnit(const Sweep &sweep, std::size_t unit,
            const ShardOptions &opts, ShardOutcome &outcome)
{
    UnitRecord rec;
    rec.unit = unit;
    rec.seed = unitSeed(sweep, unit);

    for (std::size_t attempt = 1;; ++attempt) {
        rec.attempts = attempt;
        auto t0 = std::chrono::steady_clock::now();
        std::optional<json::Value> result;
        std::optional<Error> error;
        bool in_time = true;
        {
            telemetry::TraceSpan span("engine.unit");
            if (opts.watchdogSeconds > 0.0)
                in_time = attemptWatched(sweep, unit, rec.seed,
                                         opts.watchdogSeconds,
                                         result, error);
            else
                attemptInline(sweep, unit, rec.seed, result, error);
        }
        rec.wallMs = wallMsSince(t0);

        if (!in_time) {
            // Hung once, presumed to hang again — and the abandoned
            // worker may still hold whatever it stalled on, so a
            // retry could stack hung threads. Fail the unit, keep
            // the shard alive.
            rec.status = UnitStatus::TimedOut;
            rec.error = {ErrorKind::ResourceExhausted,
                         "work unit exceeded the " +
                             std::to_string(opts.watchdogSeconds) +
                             " s watchdog budget"};
            counters().unitTimeout.add();
            ++outcome.unitsTimedOut;
            ++outcome.unitsFailed;
            flight::FlightRecorder &fr = flight::FlightRecorder::global();
            if (fr.armed()) {
                json::Value data = json::Value::object();
                data.set("sweep", sweep.name);
                data.set("unit", static_cast<double>(unit));
                data.set("attempt", static_cast<double>(attempt));
                data.set("budget_s", opts.watchdogSeconds);
                fr.record("watchdog_timeout", std::move(data));
                fr.dump("watchdog");
            }
            return rec;
        }
        if (result.has_value()) {
            rec.status = UnitStatus::Ok;
            rec.result = std::move(*result);
            counters().unitOk.add();
            ++outcome.unitsOk;
            return rec;
        }
        if (attempt < opts.maxAttempts) {
            counters().retryAttempts.add();
            ++outcome.retries;
            flight::FlightRecorder &fr = flight::FlightRecorder::global();
            if (fr.armed()) {
                json::Value data = json::Value::object();
                data.set("sweep", sweep.name);
                data.set("unit", static_cast<double>(unit));
                data.set("attempt", static_cast<double>(attempt));
                if (error)
                    data.set("error", error->message);
                fr.record("retry", std::move(data));
                fr.dump("retry");
            }
            double backoff =
                opts.retryBackoffSeconds *
                static_cast<double>(std::size_t{1} << (attempt - 1));
            if (backoff > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
            continue;
        }
        rec.status = UnitStatus::Failed;
        rec.error = std::move(*error);
        counters().unitFailed.add();
        if (opts.maxAttempts > 1)
            counters().retryExhausted.add();
        ++outcome.unitsFailed;
        return rec;
    }
}

void
validate(const Sweep &sweep, const ShardOptions &opts)
{
    if (sweep.name.empty())
        raiseError(ErrorKind::InvalidConfig, "sweep has no name");
    if (sweep.units == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "sweep '%s' has no work units",
                   sweep.name.c_str());
    if (!sweep.run)
        raiseError(ErrorKind::InvalidConfig,
                   "sweep '%s' has no work-unit function",
                   sweep.name.c_str());
    if (opts.shards == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "shard count must be >= 1");
    if (opts.shard >= opts.shards)
        raiseError(ErrorKind::InvalidConfig,
                   "shard index %zu out of range (%zu shards)",
                   opts.shard, opts.shards);
    if (opts.maxAttempts == 0)
        raiseError(ErrorKind::InvalidConfig,
                   "maxAttempts must be >= 1");
    if (opts.retryBackoffSeconds < 0.0 || opts.watchdogSeconds < 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "watchdog/backoff must be >= 0");
}

} // namespace

std::uint64_t
unitSeed(const Sweep &sweep, std::size_t unit)
{
    return deriveSeed(sweep.seed, unit);
}

ShardOutcome
runShard(const Sweep &sweep, const ShardOptions &opts)
{
    validate(sweep, opts);
    counters().shardStarted.add();
    telemetry::TraceSpan span("engine.shard");

    ensureDir(opts.dir);
    const std::string path =
        journalPath(opts.dir, sweep.name, opts.shard, opts.shards);
    JournalHeader header;
    header.sweep = sweep.name;
    header.shard = opts.shard;
    header.shards = opts.shards;
    header.units = sweep.units;
    header.seed = sweep.seed;

    ShardOutcome outcome;
    std::set<std::size_t> completed;
    std::optional<JournalWriter> writer;
    if (opts.resume) {
        JournalContents prior = loadJournal(path);
        outcome.journalDropped = prior.droppedLines;
        if (prior.droppedLines > 0)
            counters().journalDropped.add(prior.droppedLines);
        if (prior.exists && prior.headerOk) {
            if (!prior.header.matches(header))
                raiseError(
                    ErrorKind::InvalidConfig,
                    "journal %s belongs to a different run "
                    "(sweep '%s', shard %zu/%zu, %zu units); "
                    "delete it or pick another --dir",
                    path.c_str(), prior.header.sweep.c_str(),
                    prior.header.shard, prior.header.shards,
                    prior.header.units);
            for (const UnitRecord &rec : prior.records)
                completed.insert(rec.unit);
            counters().journalResumed.add();
            writer = JournalWriter::resume(path, prior.validBytes);
        }
        // A missing, empty, or corrupt-before-the-header journal
        // resumes as a fresh run.
    }
    if (!writer.has_value())
        writer = JournalWriter::fresh(path, header);

    for (std::size_t unit = opts.shard; unit < sweep.units;
         unit += opts.shards) {
        if (completed.count(unit) != 0) {
            counters().unitSkipped.add();
            ++outcome.unitsSkipped;
            continue;
        }
        counters().unitRun.add();
        ++outcome.unitsRun;
        UnitRecord rec = executeUnit(sweep, unit, opts, outcome);
        writer->append(rec);
    }
    writer->close();
    counters().shardCompleted.add();
    return outcome;
}

std::vector<ShardOutcome>
runSweepInProcess(const Sweep &sweep, ShardOptions options)
{
    options.shard = 0;
    validate(sweep, options);
    std::vector<ShardOutcome> outcomes(options.shards);
    // Pre-register the journal directory once so shards never race
    // mkdir; each shard owns its own journal file thereafter.
    ensureDir(options.dir);
    parallelFor(options.shards, [&](std::size_t shard) {
        ShardOptions o = options;
        o.shard = shard;
        outcomes[shard] = runShard(sweep, o);
    });
    return outcomes;
}

} // namespace emsc::engine
