/**
 * @file
 * Named experiment sweeps: the paper tables decomposed into engine
 * work units.
 *
 * Each factory returns a Sweep whose units reproduce one row/cell of
 * the corresponding bench table. Unit payloads follow the merge
 * convention (engine.hpp): a "metrics" object folded into the merged
 * emsc.bench.v1 report, plus a "row" object carrying the values the
 * bench executables print as the human-readable table.
 *
 * Seeding: these sweeps reproduce historical tables, so each unit
 * pins the table's legacy seed schedule (3300+i, 4400+i, 31000 + the
 * chainedSeeds trial chain) from its unit index and ignores the
 * engine-derived seed argument. Either way the unit is a pure
 * function of its index, which is all the determinism contract needs;
 * the derived seed exists for sweeps without a legacy schedule.
 */

#ifndef EMSC_ENGINE_SWEEPS_HPP
#define EMSC_ENGINE_SWEEPS_HPP

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace emsc::engine {

/** Table III: best covert-channel rate vs. LoS distance (3 units). */
Sweep table3DistanceSweep();

/** Table IV: keylogging accuracy vs. receiver placement (3 units). */
Sweep table4KeyloggingSweep();

/** Ablation: fault-injection robustness, hardened vs. single-lock
 * pipeline (6 units: 5 dropout/gain rates + the harsh profile). */
Sweep ablationFaultsSweep();

/** Table III extension: throughput/BER per modulation scheme with a
 * fixed rate ladder and the adaptive-rate controller (3 units, one
 * per modem: ook-rz, bfsk, mlask4). */
Sweep table3ModulationsSweep();

/** Ablation: two-transmitter scenes — collision, FDM on f and 2f,
 * near/far capture (3 units). */
Sweep ablationCollisionSweep();

/** Registered sweep names, in registry order. */
std::vector<std::string> sweepNames();

/** Look up a sweep by name; raises InvalidConfig for unknown names
 * (the message lists what exists). */
Sweep makeSweep(const std::string &name);

} // namespace emsc::engine

#endif // EMSC_ENGINE_SWEEPS_HPP
