/**
 * @file
 * Work-unit experiment engine: crash-safe sharded sweep execution.
 *
 * A sweep is a named list of independent work units, each a pure
 * function of (unit index, derived seed) returning a JSON payload.
 * The engine partitions units over shards deterministically (unit u
 * belongs to shard u % N), runs each shard's units in index order,
 * and appends every finished unit to that shard's journal
 * (engine/journal.hpp), so a crash loses at most the unit in flight.
 *
 * Shards run in separate processes (`emsc_tool sweep --shard i/N`)
 * or in-process over the shared ThreadPool (runSweepInProcess). The
 * partition, the per-unit seeds (deriveSeed(master, unit)) and the
 * merge (engine/merge.hpp) are all independent of shard count,
 * scheduling, resume history and retry count, so the merged artifact
 * is bit-identical to an uninterrupted single-process run.
 *
 * Robustness machinery around each unit:
 *  - resume: units already journaled are skipped, not re-run;
 *  - retry: a unit raising RecoverableError is retried with
 *    exponential backoff up to maxAttempts, then journaled Failed;
 *  - watchdog: a unit exceeding watchdogSeconds is abandoned (its
 *    worker thread is detached, its eventual result discarded) and
 *    journaled TimedOut — the shard keeps going instead of hanging.
 *    Timeouts are not retried: a unit that hung once is presumed to
 *    hang again, and its abandoned thread may still hold the stall.
 *
 * Telemetry (emsc.metrics.v1): engine.shard.{started,completed},
 * engine.unit.{run,ok,failed,timeout,skipped},
 * engine.retry.{attempts,exhausted}, engine.journal.{resumed,dropped}.
 */

#ifndef EMSC_ENGINE_ENGINE_HPP
#define EMSC_ENGINE_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/journal.hpp"
#include "support/json.hpp"

namespace emsc::engine {

/**
 * One work unit: pure function of its arguments, returning the
 * sweep-defined JSON payload. Convention for units feeding a merged
 * bench report: return an object whose "metrics" / "throughput"
 * members (flat key → number objects) are folded into the merged
 * emsc.bench.v1 artifact; anything else (e.g. a "row" object for
 * human tables) rides along untouched. May raise RecoverableError
 * (retried); anything else is a bug and propagates.
 */
using WorkUnitFn =
    std::function<json::Value(std::size_t unit, std::uint64_t seed)>;

/** A named, decomposed experiment sweep. */
struct Sweep
{
    std::string name;
    /** Total work units; unit indices are [0, units). */
    std::size_t units = 0;
    /** Master seed; per-unit seeds derive from it (unitSeed). */
    std::uint64_t seed = 0;
    WorkUnitFn run;
};

/** Seed for one unit: deriveSeed(sweep.seed, unit) — a function of
 * the unit index only, never of sharding or scheduling. */
std::uint64_t unitSeed(const Sweep &sweep, std::size_t unit);

/** Shard execution options. */
struct ShardOptions
{
    /** This shard's index in [0, shards). */
    std::size_t shard = 0;
    /** Total shards the sweep is partitioned over. */
    std::size_t shards = 1;
    /** Journal directory (created if missing). */
    std::string dir = "engine_journals";
    /** Skip units already journaled instead of truncating. */
    bool resume = false;
    /** Per-unit watchdog budget; 0 disables the watchdog. */
    double watchdogSeconds = 0.0;
    /** Attempts per unit (1 = no retry) for RecoverableError. */
    std::size_t maxAttempts = 1;
    /** First retry backoff; doubles per further attempt. */
    double retryBackoffSeconds = 0.05;
};

/** What one shard run did (journals carry the per-unit detail). */
struct ShardOutcome
{
    std::size_t unitsRun = 0;
    /** Units skipped because the journal already had them. */
    std::size_t unitsSkipped = 0;
    std::size_t unitsOk = 0;
    /** Terminal failures, including timeouts. */
    std::size_t unitsFailed = 0;
    std::size_t unitsTimedOut = 0;
    /** Re-attempts consumed across all units. */
    std::size_t retries = 0;
    /** Corrupt/torn journal lines dropped during the resume scan. */
    std::size_t journalDropped = 0;
};

/**
 * Run the shard's units in index order, journaling each as it
 * finishes. With resume set, previously journaled units (any
 * status) are skipped; a journal whose header does not match the
 * sweep raises InvalidConfig, and a missing/empty/corrupt-header
 * journal is recreated fresh. Raises InvalidConfig for a malformed
 * sweep or options.
 */
ShardOutcome runShard(const Sweep &sweep, const ShardOptions &options);

/**
 * Multi-shard fan-out inside one process: runs shards 0..N-1 (N =
 * options.shards; options.shard is ignored) across the shared
 * ThreadPool via parallelFor. Journals land exactly as if each shard
 * had run in its own process.
 */
std::vector<ShardOutcome> runSweepInProcess(const Sweep &sweep,
                                            ShardOptions options);

} // namespace emsc::engine

#endif // EMSC_ENGINE_ENGINE_HPP
