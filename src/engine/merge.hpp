/**
 * @file
 * Merge step: aggregate shard journals into one emsc.bench.v1 report.
 *
 * The merged artifact is a pure function of the per-unit results in
 * unit-index order — never of wall clock, shard count, resume history
 * or retry count — so a killed-and-resumed sharded sweep merges
 * bit-identically to an uninterrupted single-process run. Real timing
 * stays in the journals (UnitRecord::wallMs) and in telemetry; the
 * merged report's wall_ms block is zero by contract.
 *
 * Missing shards and failed/missing units degrade gracefully: the
 * report still forms, and its metrics carry the provenance counters
 * engine.units_total / engine.units_completed / engine.units_failed /
 * engine.units_missing so a consumer can tell a full merge from a
 * partial one.
 */

#ifndef EMSC_ENGINE_MERGE_HPP
#define EMSC_ENGINE_MERGE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "support/json.hpp"

namespace emsc::engine {

/** Aggregate of all shard journals of one sweep. */
struct MergeOutcome
{
    std::size_t unitsTotal = 0;
    /** Units journaled Ok. */
    std::size_t unitsCompleted = 0;
    /** Units journaled Failed or TimedOut. */
    std::size_t unitsFailed = 0;
    /** Units with no journal record (shard missing or cut short). */
    std::size_t unitsMissing = 0;
    /** Shard journals found with a valid, matching header. */
    std::size_t shardsFound = 0;
    /** Shard journals absent or too corrupt to carry a header. */
    std::size_t shardsMissing = 0;
    /** Corrupt/torn journal lines dropped across all shards. */
    std::size_t journalDropped = 0;
    /** Unit indices with no usable record, ascending. */
    std::vector<std::size_t> missingUnits;
    /** Usable records in ascending unit order (the benches print
     * their human tables from these; wallMs carries real timing). */
    std::vector<UnitRecord> unitRecords;
    /** The merged emsc.bench.v1 document. */
    json::Value report;

    /** True when every unit completed Ok. */
    bool
    complete() const
    {
        return unitsCompleted == unitsTotal;
    }
};

/**
 * Scan the `shards` journals of `sweep` under `dir` and build the
 * merged report. Records whose stored seed disagrees with
 * unitSeed(sweep, unit) are treated as missing (a stale journal from
 * an older sweep definition must not contaminate the merge); a
 * journal whose header names a different sweep/partition raises
 * InvalidConfig. Missing journals merely count into
 * shardsMissing/unitsMissing.
 */
MergeOutcome mergeSweep(const Sweep &sweep, const std::string &dir,
                        std::size_t shards);

/**
 * Write the merged report atomically (tmp + fsync + rename). An empty
 * path defaults to `BENCH_<sweep name>.json` in the current
 * directory. Returns the path written.
 */
std::string writeMergedReport(const MergeOutcome &merge,
                              const std::string &path = std::string());

} // namespace emsc::engine

#endif // EMSC_ENGINE_MERGE_HPP
