/**
 * @file
 * Umbrella header: the emsc public API.
 *
 * Pulls in the experiment drivers, device registry, measurement
 * setups, and the channel/keylogging building blocks a downstream
 * user composes. Include this and link emsc_core.
 */

#ifndef EMSC_CORE_API_HPP
#define EMSC_CORE_API_HPP

#include "channel/coding.hpp"
#include "channel/metrics.hpp"
#include "channel/receiver.hpp"
#include "channel/transmitter.hpp"
#include "core/device.hpp"
#include "core/experiment.hpp"
#include "core/fingerprinting.hpp"
#include "core/keylogging.hpp"
#include "core/setup.hpp"
#include "core/trial_runner.hpp"

#endif // EMSC_CORE_API_HPP
