#include "core/keylogging.hpp"

#include <algorithm>
#include <cmath>

#include "channel/acquisition.hpp"
#include "keylog/textgen.hpp"
#include "sdr/rtlsdr.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "vrm/pmu.hpp"

namespace emsc::core {

namespace {

/** Idle lead-in before the first keystroke. */
constexpr TimeNs kLeadIn = 500 * kMillisecond;

/**
 * Schedule the processor-side effects of one keystroke: the interrupt
 * handler fires immediately, followed by the application/browser
 * processing burst (echoing the character, re-rendering), and a small
 * burst on key release. This is the "burst of activity" of §V-B.
 */
void
scheduleKeystrokeWork(sim::EventKernel &kernel, cpu::OsModel &os,
                      const keylog::Keystroke &k, Rng &rng)
{
    double freq = os.cpu().config().pstates.fastest().frequency;
    auto cycles_for_ms = [&](double ms) {
        return static_cast<std::uint64_t>(ms * 1e-3 * freq);
    };

    double ui_ms = rng.uniform(24.0, 55.0);
    kernel.scheduleAt(k.press, [&os, &kernel, ui_ms, cycles_for_ms] {
        // Interrupt + input-stack handling, then UI processing.
        os.injectBurst(cycles_for_ms(1.2));
        kernel.scheduleAfter(fromMilliseconds(1.5),
                             [&os, ui_ms, cycles_for_ms] {
                                 os.injectBurst(cycles_for_ms(ui_ms));
                             });
    });
    kernel.scheduleAt(k.release, [&os, cycles_for_ms] {
        os.injectBurst(cycles_for_ms(2.0));
    });
}

/**
 * Browser housekeeping bursts: duty-cycled (I/O-bound) activity whose
 * average EM level sits below a solid keystroke burst — near the
 * receiver they occasionally cross the detection threshold (the false
 * positives of Table IV), at distance they sink into the noise.
 */
void
scheduleBrowserActivity(sim::EventKernel &kernel, cpu::OsModel &os,
                        double rate, TimeNs until, Rng &rng)
{
    if (rate <= 0.0)
        return;
    double freq = os.cpu().config().pstates.fastest().frequency;
    auto gap = fromSeconds(rng.exponential(1.0 / rate));
    TimeNs when = kernel.now() + std::max<TimeNs>(gap, 1);
    if (when > until)
        return;
    kernel.scheduleAt(when, [&kernel, &os, rate, until, &rng, freq] {
        // 8-20 sub-bursts of ~0.5 ms separated by ~0.7 ms idle.
        auto subs = static_cast<int>(rng.uniformInt(8, 20));
        TimeNs t = kernel.now();
        for (int i = 0; i < subs; ++i) {
            kernel.scheduleAt(t, [&os, freq] {
                os.injectBurst(
                    static_cast<std::uint64_t>(0.5e-3 * freq));
            });
            t += fromMicroseconds(1200);
        }
        scheduleBrowserActivity(kernel, os, rate, until, rng);
    });
}

} // namespace

namespace {

/** Body of runKeylogging; may throw RecoverableError. */
KeyloggingResult
runKeyloggingImpl(const DeviceProfile &device,
                  const MeasurementSetup &setup,
                  const KeyloggingOptions &options)
{
    Rng master(options.seed);
    Rng rng_text = master.fork();
    Rng rng_typist = master.fork();
    Rng rng_os = master.fork();
    Rng rng_vrm = master.fork();
    Rng rng_em = master.fork();
    Rng rng_sdr = master.fork();
    Rng rng_bursts = master.fork();

    KeyloggingResult result;

    // --- Ground truth: what the user types and when. ---------------
    result.text = options.text;
    std::vector<std::string> words;
    if (result.text.empty()) {
        words = keylog::randomWords(options.words, rng_text);
        result.text = keylog::joinWords(words);
    } else {
        std::string cur;
        for (char c : result.text) {
            if (c == ' ') {
                if (!cur.empty())
                    words.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(c);
            }
        }
        if (!cur.empty())
            words.push_back(cur);
    }

    keylog::Typist typist(options.typist, rng_typist);
    result.truth = typist.type(result.text, kLeadIn);
    result.keystrokes = result.truth.size();

    // --- Transmitter side: the victim machine. ---------------------
    sim::EventKernel kernel;
    cpu::CpuCore core(kernel, device.core);
    cpu::OsModel os(kernel, core, device.os, rng_os);

    TimeNs session_end =
        result.truth.back().release + 300 * kMillisecond;
    result.sessionSeconds = toSeconds(session_end);

    for (const keylog::Keystroke &k : result.truth)
        scheduleKeystrokeWork(kernel, os, k, rng_bursts);
    scheduleBrowserActivity(kernel, os, options.browserBurstRate,
                            session_end, rng_bursts);
    os.startBackgroundActivity(session_end);
    kernel.runUntil(session_end);

    // --- Chunked capture + streaming acquisition. ------------------
    vrm::Pmu pmu(core, device.buck, rng_vrm);
    em::SceneConfig scene = makeScene(device.emitterCoupling, setup);

    sdr::SdrConfig sdr_cfg;
    sdr_cfg.centerFrequency = 1.5 * device.buck.switchFrequency;
    sdr::RtlSdr radio(sdr_cfg, rng_sdr);

    TimeNs chunk = fromSeconds(options.chunkSeconds);
    TimeNs t0 = 0;

    // Freeze the gain on the first chunk so chunk boundaries are
    // seamless, and estimate the carrier from a chunk of actual typing.
    {
        auto events = pmu.switchingEvents(t0, t0 + chunk);
        em::ReceptionPlan plan =
            em::buildReceptionPlan(scene, events, t0, t0 + chunk, rng_em);
        sdr_cfg.fixedGain = radio.measureAgcGain(plan, t0, t0 + chunk);
    }
    sdr::RtlSdr fixed_radio(sdr_cfg, rng_sdr);

    channel::AcquisitionConfig acq_cfg;
    result.carrierHz = options.carrierHintHz;
    if (result.carrierHz <= 0.0) {
        TimeNs probe0 = kLeadIn;
        TimeNs probe1 = std::min<TimeNs>(session_end, probe0 + chunk);
        auto events = pmu.switchingEvents(probe0, probe1);
        em::ReceptionPlan plan =
            em::buildReceptionPlan(scene, events, probe0, probe1, rng_em);
        sdr::IqCapture probe = fixed_radio.capture(plan, probe0, probe1);
        result.carrierHz = channel::estimateCarrier(probe, acq_cfg);
        if (result.carrierHz <= 0.0) {
            warn("keylogging: no carrier found; falling back to the "
                 "device band");
            result.carrierHz = device.buck.switchFrequency;
        }
    }

    channel::StreamingAcquirer acquirer(result.carrierHz,
                                        sdr_cfg.centerFrequency,
                                        sdr_cfg.sampleRate, acq_cfg);
    for (TimeNs c0 = t0; c0 < session_end; c0 += chunk) {
        TimeNs c1 = std::min(session_end, c0 + chunk);
        auto events = pmu.switchingEvents(c0, c1);
        em::ReceptionPlan plan =
            em::buildReceptionPlan(scene, events, c0, c1, rng_em);
        sdr::IqCapture cap = fixed_radio.capture(plan, c0, c1);
        acquirer.feed(cap.samples);
    }

    channel::AcquiredSignal signal = acquirer.take();

    // --- Detection and scoring. -------------------------------------
    keylog::DetectionResult det =
        keylog::detectKeystrokes(signal, t0, options.detector);
    result.detections = det.keystrokes;
    result.windowEnergy = std::move(det.windowEnergy);
    result.windowSeconds = toSeconds(det.windowNs);

    result.chars = keylog::scoreCharacters(result.truth, result.detections);
    std::vector<keylog::DetectedWord> groups =
        keylog::groupWords(result.detections, options.grouping);
    result.words = keylog::scoreWords(words, groups);
    return result;
}

/**
 * Publish one keylogging session's detection quality: the raw inputs
 * of the paper's Table IV accuracies (matched / true / detected
 * counts feeding TPR and FPR) plus the session-level rates.
 */
void
publishKeyloggingTelemetry(const KeyloggingResult &result)
{
    telemetry::MetricsRegistry &reg =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter sessions(reg, "keylog.sessions");
    static telemetry::Counter trueKeys(reg, "keylog.keystrokes.true");
    static telemetry::Counter detected(reg,
                                       "keylog.keystrokes.detected");
    static telemetry::Counter matched(reg, "keylog.keystrokes.matched");
    static telemetry::Counter falsePos(reg,
                                       "keylog.keystrokes.false_pos");
    static telemetry::Counter failures(reg, "keylog.failures");
    static telemetry::Gauge tpr(reg, "keylog.char.tpr");
    static telemetry::Gauge fpr(reg, "keylog.char.fpr");
    static telemetry::Gauge wordPrecision(reg, "keylog.word.precision");
    static telemetry::Gauge wordRecall(reg, "keylog.word.recall");
    if (!reg.enabled())
        return;
    sessions.add();
    if (result.failure) {
        failures.add();
        return;
    }
    trueKeys.add(result.chars.trueKeystrokes);
    detected.add(result.chars.detections);
    matched.add(result.chars.matched);
    falsePos.add(result.chars.falsePositives);
    tpr.set(result.chars.tpr());
    fpr.set(result.chars.fpr());
    wordPrecision.set(result.words.precision());
    wordRecall.set(result.words.recall());
}

} // namespace

KeyloggingResult
runKeylogging(const DeviceProfile &device, const MeasurementSetup &setup,
              const KeyloggingOptions &options)
{
    telemetry::TraceSpan span("core.keylog_session");
    KeyloggingResult result;
    try {
        result = runKeyloggingImpl(device, setup, options);
    } catch (const RecoverableError &e) {
        result.failure = e.toError();
    }
    publishKeyloggingTelemetry(result);
    return result;
}

} // namespace emsc::core
