/**
 * @file
 * Measurement setups: where the receiver sits and what is in the way.
 *
 * The paper's three configurations (§IV-C): near field (coil probe at
 * 10 cm on the keyboard deck), line-of-sight distance (loop antenna in
 * a briefcase, 1-2.5 m), and non-line-of-sight (loop antenna behind a
 * 35 cm structural wall, with a printer and a refrigerator adding
 * interference, Fig. 10).
 */

#ifndef EMSC_CORE_SETUP_HPP
#define EMSC_CORE_SETUP_HPP

#include <string>

#include "em/scene.hpp"

namespace emsc::core {

/** A named receiver placement. */
struct MeasurementSetup
{
    std::string name;
    em::PropagationPath path;
    em::AntennaModel antenna;
    em::InterferenceEnvironment environment;
};

/** Coil probe 10 cm above the keyboard (Table II). */
MeasurementSetup nearFieldSetup();

/** Loop antenna at the given line-of-sight distance (Table III). */
MeasurementSetup distanceSetup(double meters);

/**
 * Loop antenna in the adjacent room: 1.5 m total with a 35 cm wall in
 * the path, printer + refrigerator interference (Fig. 10).
 */
MeasurementSetup throughWallSetup();

/** Fold a device's coupling and a setup into an EM scene. */
em::SceneConfig makeScene(double emitter_coupling,
                          const MeasurementSetup &setup);

} // namespace emsc::core

#endif // EMSC_CORE_SETUP_HPP
