/**
 * @file
 * End-to-end experiment drivers: the public API most users want.
 *
 * A covert-channel experiment wires the whole chain together —
 * transmitter app on the simulated laptop, VRM emission, propagation,
 * SDR capture, receiver pipeline — and reports the metrics the paper's
 * tables use (BER, TR, IP, DP). A power-state probe reproduces the
 * §III BIOS study. Everything is driven by one seed and fully
 * reproducible.
 */

#ifndef EMSC_CORE_EXPERIMENT_HPP
#define EMSC_CORE_EXPERIMENT_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "channel/receiver.hpp"
#include "channel/transmitter.hpp"
#include "core/device.hpp"
#include "core/setup.hpp"
#include "sdr/rtlsdr.hpp"
#include "sim/faults.hpp"
#include "support/error.hpp"

namespace emsc::core {

/** Covert-channel run options. */
struct CovertChannelOptions
{
    /** Number of payload (pre-coding) bits to exfiltrate. */
    std::size_t payloadBits = 2048;
    /** Explicit payload; overrides payloadBits when non-empty. */
    channel::Bits payload;
    /** Master seed for the whole run. */
    std::uint64_t seed = 1;
    /** SLEEP_PERIOD in us (0 = the device's default). */
    double sleepPeriodUs = 0.0;
    /** Include normal OS background activity (§IV-C1). */
    bool backgroundActivity = true;
    /** Scale of background activity (1 = normal, ~8 = resource heavy). */
    double backgroundIntensity = 1.0;
    /** Capture margin before/after the transmission (seconds). */
    double captureMarginS = 0.02;
    /** Receiver configuration. */
    channel::ReceiverConfig receiver;
    /** SDR configuration (center frequency auto-set near the VRM). */
    sdr::SdrConfig sdr;
    /** Auto-tune the SDR so the fundamental + harmonic are in band. */
    bool autoTune = true;
    /**
     * Fault injection. With all rates zero (default) no plan is built
     * and the run is bit-identical to pre-fault behaviour. When
     * active, one deterministic FaultPlan is realised over the run's
     * horizon and consumed by every stage (OS preemption, interferer
     * onsets, SDR dropouts/saturation/gain steps/LO hops). A zero
     * FaultConfig::seed derives the plan seed from the run seed, so
     * each averaged run sees different faults, reproducibly.
     */
    sim::FaultConfig faults;
};

/** Covert-channel run outcome. */
struct CovertChannelResult
{
    /** Whether the receiver located the frame at all. */
    bool frameFound = false;
    /** Channel-level bit error rate (substitutions, post-alignment). */
    double ber = 0.0;
    /** Payload BER after Hamming correction (post-alignment). */
    double berPayload = 0.0;
    /**
     * Transmission rate in channel bits/second (the paper's TR: raw
     * bits on the air, before coding overhead is removed).
     */
    double trBps = 0.0;
    /** Net payload throughput after coding overhead (bits/second). */
    double trPayloadBps = 0.0;
    /** Insertion probability per transmitted channel bit. */
    double insertionProb = 0.0;
    /** Deletion probability per transmitted channel bit. */
    double deletionProb = 0.0;
    /** Payload bits transmitted. */
    std::size_t payloadBits = 0;
    /** Channel bits on the air. */
    std::size_t channelBits = 0;
    /** Wall-clock of the transmission inside the simulation (s). */
    double elapsedS = 0.0;
    /** Receiver's carrier estimate (Hz). */
    double carrierHz = 0.0;
    /** Hamming corrections applied. */
    std::size_t corrected = 0;
    /** Clean segments the receiver re-locked on (1 = clean capture). */
    std::size_t segmentsUsed = 0;
    /** Corrupt spans (dropouts/saturation) bridged by the receiver. */
    std::size_t corruptedSpans = 0;
    /** Channel bits erased across corrupt spans. */
    std::size_t erasedBits = 0;
    /** Frame CRC verdict (false when the CRC is disabled or failed). */
    bool crcOk = false;
    /** Frame integrity classification; averaged runs keep the worst. */
    channel::FrameIntegrity integrity = channel::FrameIntegrity::None;
    /** Fault events realised over this run's horizon. */
    std::size_t faultEvents = 0;
    /** Decoded payload bits. */
    channel::Bits decodedPayload;
    /**
     * Set when the run stopped on a recoverable error (degenerate
     * config, unusable capture, ...); empty on success. A transmission
     * the receiver simply failed to decode is NOT a failure — that is
     * frameFound == false with ok().
     */
    std::optional<Error> failure;
    /** In averaged sweeps: how many runs ended with a failure. */
    std::size_t failedRuns = 0;

    /** Whether the run completed without a recoverable error. */
    bool ok() const { return !failure.has_value(); }
};

/**
 * Run one covert-channel transmission end to end. Malformed options
 * or degenerate captures are reported in CovertChannelResult::failure
 * instead of terminating the process.
 */
CovertChannelResult runCovertChannel(const DeviceProfile &device,
                                     const MeasurementSetup &setup,
                                     const CovertChannelOptions &options);

/**
 * Average `runs` covert-channel runs with derived seeds (the paper
 * averages 5 runs per Table II cell). Failed runs are excluded from
 * the average and counted in CovertChannelResult::failedRuns; the
 * aggregate only carries a failure itself when every run failed (the
 * first run's error is reported) or runs == 0.
 */
CovertChannelResult averageCovertChannel(const DeviceProfile &device,
                                         const MeasurementSetup &setup,
                                         CovertChannelOptions options,
                                         std::size_t runs);

/**
 * Median covert-channel metrics over `runs` runs. The paper averages
 * 5 runs per cell; with simulated seeds an occasional run loses the
 * timing lock entirely, and the median keeps one such outlier from
 * dominating a cell the way it would a mean.
 *
 * Runs fan out across the worker pool (EMSC_THREADS); the seed chain
 * is the historical serial one (chainedSeeds 2654435761/97),
 * precomputed up front, so the metrics are bit-identical to the old
 * serial loop for any thread count.
 */
CovertChannelResult medianCovertChannel(const DeviceProfile &device,
                                        const MeasurementSetup &setup,
                                        CovertChannelOptions options,
                                        std::size_t runs = 5);

/** §III BIOS-toggle probe options. */
struct StateProbeOptions
{
    bool pstatesEnabled = true;
    bool cstatesEnabled = true;
    /** Fig. 1 micro-benchmark period halves (us). */
    double activeUs = 400.0;
    double idleUs = 400.0;
    double durationS = 0.25;
    std::uint64_t seed = 7;
};

/** §III probe outcome. */
struct StateProbeResult
{
    /** Mean Eq. (1) envelope while the benchmark is busy. */
    double activeLevel = 0.0;
    /** Mean envelope while it sleeps. */
    double idleLevel = 0.0;
    /** Active/idle contrast in dB. */
    double contrastDb = 0.0;
    /**
     * True when the spectral spikes are continuously present (both
     * state families disabled -> no modulation to exploit).
     */
    bool alwaysStrong = false;
    /** Set when the probe stopped on a recoverable error. */
    std::optional<Error> failure;

    /** Whether the probe completed without a recoverable error. */
    bool ok() const { return !failure.has_value(); }
};

/** Run the §III power-state experiment under one BIOS configuration. */
StateProbeResult runStateProbe(const DeviceProfile &device,
                               const MeasurementSetup &setup,
                               const StateProbeOptions &options);

} // namespace emsc::core

#endif // EMSC_CORE_EXPERIMENT_HPP
