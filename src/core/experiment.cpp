#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "channel/metrics.hpp"
#include "core/trial_runner.hpp"
#include "cpu/apps.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"
#include "vrm/pmu.hpp"

namespace emsc::core {

namespace {

/** Lead-in of system idle time before the transmitter starts. */
constexpr TimeNs kLeadIn = 5 * kMillisecond;

channel::Bits
randomPayload(std::size_t nbits, Rng &rng)
{
    channel::Bits bits(nbits);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    return bits;
}

/** Tune the SDR so the fundamental and first harmonic fall in band. */
void
autoTuneSdr(sdr::SdrConfig &cfg, double vrm_freq)
{
    // Center between f and 2f: both sit at +-f/2 offsets, inside the
    // +-fs/2 = +-1.2 MHz baseband for every plausible VRM frequency.
    cfg.centerFrequency = 1.5 * vrm_freq;
}

} // namespace

namespace {

/** Body of runCovertChannel; may throw RecoverableError. */
CovertChannelResult
runCovertChannelImpl(const DeviceProfile &device,
                     const MeasurementSetup &setup,
                     const CovertChannelOptions &options)
{
    Rng master(options.seed);
    Rng rng_payload = master.fork();
    Rng rng_os = master.fork();
    Rng rng_vrm = master.fork();
    Rng rng_em = master.fork();
    Rng rng_sdr = master.fork();

    CovertChannelResult result;

    channel::Bits payload =
        options.payload.empty()
            ? randomPayload(options.payloadBits, rng_payload)
            : options.payload;
    result.payloadBits = payload.size();

    channel::Bits frame_bits =
        channel::buildFrame(payload, options.receiver.frame);
    result.channelBits = frame_bits.size();

    // --- Transmitter side: discrete-event CPU/OS simulation. -------
    sim::EventKernel kernel;
    cpu::CpuCore core(kernel, device.core);
    cpu::OsModel os(kernel, core, device.os, rng_os);

    channel::TxParams tx_params;
    tx_params.sleepPeriodUs = options.sleepPeriodUs > 0.0
                                  ? options.sleepPeriodUs
                                  : device.defaultSleepUs;
    channel::CovertTransmitter tx(os, frame_bits, tx_params);

    double est_bit =
        channel::CovertTransmitter::estimatedBitPeriod(os, tx_params);
    TimeNs horizon =
        kLeadIn +
        fromSeconds(est_bit * static_cast<double>(frame_bits.size()) * 3.0) +
        kSecond;

    // The fault plan spans the whole horizon (not the capture window,
    // which is only known after transmission) so preemption events can
    // be scheduled before the kernel runs. Events past the eventual
    // capture window simply never apply. The plan seed is derived from
    // the run seed — not another master.fork(), which would shift every
    // downstream RNG stream and break seeded reproductions.
    sim::FaultPlan faults;
    if (options.faults.active()) {
        sim::FaultConfig fault_cfg = options.faults;
        if (fault_cfg.seed == 0)
            fault_cfg.seed = deriveSeed(options.seed, 0x464155ull);
        faults = sim::buildFaultPlan(fault_cfg, 0, horizon);
        result.faultEvents = faults.events.size();
        os.schedulePreemptions(faults);
    }

    if (options.backgroundActivity) {
        os.setBackgroundIntensity(options.backgroundIntensity);
        os.startBackgroundActivity(horizon);
    }

    bool done = false;
    TimeNs tx_end = 0;
    kernel.scheduleAt(kLeadIn, [&] {
        tx.start([&] {
            done = true;
            tx_end = kernel.now();
        });
    });

    while (!done && kernel.now() < horizon)
        kernel.runUntil(kernel.now() + 10 * kMillisecond);
    if (!done) {
        warn("transmission did not finish within the horizon");
        tx_end = kernel.now();
    }

    TimeNs tx_start = tx.sentBits().empty() ? kLeadIn
                                            : tx.sentBits().front().start;
    result.elapsedS = toSeconds(tx_end - tx_start);
    if (result.elapsedS > 0.0) {
        result.trBps =
            static_cast<double>(frame_bits.size()) / result.elapsedS;
        result.trPayloadBps =
            static_cast<double>(payload.size()) / result.elapsedS;
    }

    // --- Emission, propagation, capture. ----------------------------
    TimeNs margin = fromSeconds(options.captureMarginS);
    TimeNs t0 = std::max<TimeNs>(0, tx_start - margin);
    TimeNs t1 = tx_end + margin;

    vrm::Pmu pmu(core, device.buck, rng_vrm);
    std::vector<vrm::SwitchEvent> events = pmu.switchingEvents(t0, t1);

    em::SceneConfig scene = makeScene(device.emitterCoupling, setup);
    if (faults.countOf(sim::FaultKind::InterfererOnset) > 0)
        scene.environment =
            em::applyInterfererOnsets(scene.environment, faults);
    em::ReceptionPlan plan =
        em::buildReceptionPlan(scene, events, t0, t1, rng_em);

    sdr::SdrConfig sdr_cfg = options.sdr;
    if (options.autoTune)
        autoTuneSdr(sdr_cfg, device.buck.switchFrequency);
    sdr::RtlSdr radio(sdr_cfg, rng_sdr);
    sdr::IqCapture capture =
        radio.capture(plan, t0, t1, faults.empty() ? nullptr : &faults);

    // --- Receiver pipeline. ------------------------------------------
    channel::ReceiverResult rx = channel::receive(capture,
                                                  options.receiver);
    result.carrierHz = rx.carrierHz;
    result.frameFound = rx.frame.found;
    result.corrected = rx.frame.corrected;
    result.segmentsUsed = rx.segments.size();
    result.corruptedSpans = rx.corruptedSpans;
    result.erasedBits = rx.frame.erasedBits;
    result.crcOk = rx.frame.crcOk;
    result.integrity = rx.frame.integrity;
    result.decodedPayload = rx.frame.payload;

    // A receiver-stage failure (not merely a missed frame) is this
    // run's structured failure.
    if (!rx.ok()) {
        result.failure = rx.failure;
        return result;
    }

    if (!rx.frame.found)
        return result;

    // Channel-level metrics: align the transmitted coded body against
    // the received bits from the locked frame position onward,
    // ignoring trailing noise bits (semi-global alignment).
    const channel::FrameConfig &fc = options.receiver.frame;
    std::size_t prefix =
        fc.syncBits + fc.zeroBits + fc.preamble.size();
    channel::Bits tx_body(frame_bits.begin() +
                              static_cast<std::ptrdiff_t>(prefix),
                          frame_bits.end());
    channel::Bits rx_tail(
        rx.labeled.bits.begin() +
            static_cast<std::ptrdiff_t>(std::min(
                rx.frame.payloadStart, rx.labeled.bits.size())),
        rx.labeled.bits.end());

    channel::AlignmentCounts counts =
        channel::alignBitsSemiGlobal(tx_body, rx_tail);
    result.ber = counts.errorRate();
    result.insertionProb = counts.insertionRate();
    result.deletionProb = counts.deletionRate();

    channel::AlignmentCounts pcounts =
        channel::alignBits(payload, rx.frame.payload);
    result.berPayload =
        (static_cast<double>(pcounts.substitutions) +
         static_cast<double>(pcounts.insertions) +
         static_cast<double>(pcounts.deletions)) /
        static_cast<double>(payload.size());

    return result;
}

/** Fold one covert-channel run's outcome into the global registry. */
void
publishCovertTelemetry(const CovertChannelResult &result)
{
    telemetry::MetricsRegistry &reg =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter runs(reg, "core.covert.runs");
    static telemetry::Counter framesFound(reg,
                                          "core.covert.frames_found");
    static telemetry::Counter failedRuns(reg, "core.covert.failed_runs");
    static telemetry::Counter faultEvents(reg, "core.fault_events");
    static telemetry::Gauge ber(reg, "core.covert.ber");
    static telemetry::Gauge berPayload(reg, "core.covert.ber_payload");
    static telemetry::Gauge trBps(reg, "core.covert.tr_bps");
    if (!reg.enabled())
        return;
    runs.add();
    if (result.frameFound)
        framesFound.add();
    if (result.failure)
        failedRuns.add();
    faultEvents.add(result.faultEvents);
    if (result.frameFound) {
        ber.set(result.ber);
        berPayload.set(result.berPayload);
        trBps.set(result.trBps);
    }
}

} // namespace

CovertChannelResult
runCovertChannel(const DeviceProfile &device, const MeasurementSetup &setup,
                 const CovertChannelOptions &options)
{
    telemetry::TraceSpan span("core.covert_run");
    CovertChannelResult result;
    try {
        result = runCovertChannelImpl(device, setup, options);
    } catch (const RecoverableError &e) {
        result.failure = e.toError();
    }
    publishCovertTelemetry(result);
    return result;
}

CovertChannelResult
averageCovertChannel(const DeviceProfile &device,
                     const MeasurementSetup &setup,
                     CovertChannelOptions options, std::size_t runs)
{
    if (runs == 0) {
        CovertChannelResult result;
        result.failure = Error{ErrorKind::InvalidConfig,
                               "averageCovertChannel needs at least "
                               "one run"};
        return result;
    }

    // Historical seed schedule (an LCG chain), precomputed so the
    // independent runs can fan out across cores; the accumulation below
    // stays in run order, keeping the average bit-identical to the old
    // serial loop for any thread count.
    std::vector<std::uint64_t> seeds = chainedSeeds(
        options.seed, runs, 6364136223846793005ull,
        1442695040888963407ull);
    std::vector<CovertChannelResult> all =
        TrialRunner::runSeeded<CovertChannelResult>(
            seeds, [&](std::size_t, std::uint64_t seed) {
                CovertChannelOptions o = options;
                o.seed = seed;
                return runCovertChannel(device, setup, o);
            });

    // Severity order for the aggregate integrity verdict: the averaged
    // result reports the worst frame outcome any surviving run saw.
    auto severity = [](channel::FrameIntegrity i) {
        switch (i) {
        case channel::FrameIntegrity::Verified: return 0;
        case channel::FrameIntegrity::Unchecked: return 1;
        case channel::FrameIntegrity::Corrected: return 2;
        case channel::FrameIntegrity::Damaged: return 3;
        case channel::FrameIntegrity::None: return 4;
        }
        return 4;
    };

    CovertChannelResult avg;
    std::size_t found = 0;
    bool all_crc_ok = true;
    for (const CovertChannelResult &one : all) {
        // Degrade per-trial: a failed run is counted and skipped, and
        // the sweep carries on with the runs that worked.
        if (!one.ok()) {
            ++avg.failedRuns;
            if (!avg.failure)
                avg.failure = one.failure;
            continue;
        }
        avg.payloadBits = one.payloadBits;
        avg.channelBits = one.channelBits;
        avg.carrierHz = one.carrierHz;
        avg.faultEvents += one.faultEvents;
        avg.corruptedSpans += one.corruptedSpans;
        if (!one.frameFound)
            continue;
        ++found;
        avg.ber += one.ber;
        avg.berPayload += one.berPayload;
        avg.trBps += one.trBps;
        avg.trPayloadBps += one.trPayloadBps;
        avg.insertionProb += one.insertionProb;
        avg.deletionProb += one.deletionProb;
        avg.elapsedS += one.elapsedS;
        avg.corrected += one.corrected;
        avg.segmentsUsed += one.segmentsUsed;
        avg.erasedBits += one.erasedBits;
        all_crc_ok = all_crc_ok && one.crcOk;
        if (severity(one.integrity) > severity(avg.integrity) ||
            (found == 1))
            avg.integrity = one.integrity;
    }
    // The aggregate is only a failure when no run survived; otherwise
    // the per-run error is advisory (failedRuns says how many).
    if (avg.failedRuns < runs)
        avg.failure.reset();
    if (found) {
        auto f = static_cast<double>(found);
        avg.frameFound = true;
        avg.crcOk = all_crc_ok;
        avg.ber /= f;
        avg.berPayload /= f;
        avg.trBps /= f;
        avg.trPayloadBps /= f;
        avg.insertionProb /= f;
        avg.deletionProb /= f;
        avg.elapsedS /= f;
    }
    return avg;
}

CovertChannelResult
medianCovertChannel(const DeviceProfile &device,
                    const MeasurementSetup &setup,
                    CovertChannelOptions options, std::size_t runs)
{
    if (runs == 0) {
        CovertChannelResult result;
        result.failure = Error{ErrorKind::InvalidConfig,
                               "medianCovertChannel needs at least "
                               "one run"};
        return result;
    }

    std::vector<std::uint64_t> seeds =
        chainedSeeds(options.seed, runs, 2654435761u, 97);
    std::vector<CovertChannelResult> all =
        TrialRunner::runSeeded<CovertChannelResult>(
            seeds, [&](std::size_t, std::uint64_t seed) {
                CovertChannelOptions o = options;
                o.seed = seed;
                return runCovertChannel(device, setup, o);
            });
    // A run that ended in a recoverable failure (res.ok() false) is
    // scored like a lost timing lock rather than polluting the median
    // with its zeroed metrics, and is tallied in failedRuns.
    auto med_of = [&](auto getter) {
        std::vector<double> xs;
        for (const auto &res : all)
            xs.push_back(res.ok() && res.frameFound ? getter(res)
                                                    : 1.0);
        return median(xs);
    };
    CovertChannelResult out = all.front();
    out.frameFound = false;
    out.failure.reset();
    for (const auto &res : all) {
        out.frameFound |= res.ok() && res.frameFound;
        if (!res.ok()) {
            ++out.failedRuns;
            if (!out.failure)
                out.failure = res.failure;
        }
    }
    if (out.failedRuns < all.size())
        out.failure.reset();
    out.ber = med_of([](const auto &r) { return r.ber; });
    out.insertionProb =
        med_of([](const auto &r) { return r.insertionProb; });
    out.deletionProb =
        med_of([](const auto &r) { return r.deletionProb; });
    out.trBps = med_of([](const auto &r) { return r.trBps; });
    out.trPayloadBps =
        med_of([](const auto &r) { return r.trPayloadBps; });
    return out;
}

namespace {

/** Body of runStateProbe; may throw RecoverableError. */
StateProbeResult
runStateProbeImpl(const DeviceProfile &device,
                  const MeasurementSetup &setup,
                  const StateProbeOptions &options)
{
    Rng master(options.seed);
    Rng rng_os = master.fork();
    Rng rng_vrm = master.fork();
    Rng rng_em = master.fork();
    Rng rng_sdr = master.fork();

    DeviceProfile dev = device;
    dev.core.pgov.enabled = options.pstatesEnabled;
    dev.core.cgov.enabled = options.cstatesEnabled;

    sim::EventKernel kernel;
    cpu::CpuCore core(kernel, dev.core);
    cpu::OsModel os(kernel, core, dev.os, rng_os);

    cpu::AlternatingLoadApp::Params app_params;
    app_params.activeUs = options.activeUs;
    app_params.idleUs = options.idleUs;
    cpu::AlternatingLoadApp app(os, app_params);

    kernel.scheduleAt(1 * kMillisecond, [&] { app.start(); });
    TimeNs t1 = fromSeconds(options.durationS);
    kernel.runUntil(t1);

    vrm::Pmu pmu(core, dev.buck, rng_vrm);
    std::vector<vrm::SwitchEvent> events = pmu.switchingEvents(0, t1);

    em::SceneConfig scene = makeScene(dev.emitterCoupling, setup);
    em::ReceptionPlan plan =
        em::buildReceptionPlan(scene, events, 0, t1, rng_em);

    sdr::SdrConfig sdr_cfg;
    autoTuneSdr(sdr_cfg, dev.buck.switchFrequency);
    sdr::RtlSdr radio(sdr_cfg, rng_sdr);
    sdr::IqCapture capture = radio.capture(plan, 0, t1);

    // A shorter analysis window keeps the envelope's edge ramps well
    // inside each active/idle phase so the guard band below does not
    // swallow whole phases.
    channel::AcquisitionConfig acq;
    acq.window = 256;
    channel::AcquiredSignal sig =
        channel::acquire(capture, acq, pmu.switchingFrequency());

    // Classify envelope samples by ground-truth busy state, skipping a
    // guard of one DFT window around each transition (smearing).
    const auto &busy = core.busyTrace();
    double guard_s = static_cast<double>(acq.window) / capture.sampleRate;
    TimeNs guard = fromSeconds(guard_s);

    RunningStats active_stats, idle_stats;
    double dec_rate = sig.sampleRate;
    for (std::size_t i = 0; i < sig.y.size(); ++i) {
        TimeNs t = static_cast<TimeNs>(
            static_cast<double>(i) / dec_rate * 1e9);
        int now_busy = busy.at(t);
        if (busy.at(std::max<TimeNs>(0, t - guard)) != now_busy ||
            busy.at(t + guard) != now_busy)
            continue; // transition region
        if (now_busy)
            active_stats.add(sig.y[i]);
        else
            idle_stats.add(sig.y[i]);
    }

    StateProbeResult res;
    res.activeLevel = active_stats.mean();
    res.idleLevel = idle_stats.mean();
    if (res.idleLevel > 0.0)
        res.contrastDb = amplitudeToDb(res.activeLevel / res.idleLevel);
    res.alwaysStrong = res.idleLevel > 0.5 * res.activeLevel;
    return res;
}

} // namespace

StateProbeResult
runStateProbe(const DeviceProfile &device, const MeasurementSetup &setup,
              const StateProbeOptions &options)
{
    try {
        return runStateProbeImpl(device, setup, options);
    } catch (const RecoverableError &e) {
        StateProbeResult res;
        res.failure = e.toError();
        return res;
    }
}

} // namespace emsc::core
