/**
 * @file
 * End-to-end keylogging experiment (§V, Table IV, Fig. 11).
 *
 * A simulated user types random words in a browser on the target
 * laptop; each keystroke briefly wakes the otherwise idle processor,
 * so the PMU's EM emanation carries a burst the receiver can detect.
 * The capture is processed in chunks (a typing session lasts tens of
 * simulated seconds, far too long to materialise at 2.4 Msps), with
 * the sliding-DFT acquisition state carried across chunk boundaries
 * and the SDR gain frozen after an initial AGC measurement.
 */

#ifndef EMSC_CORE_KEYLOGGING_HPP
#define EMSC_CORE_KEYLOGGING_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "core/setup.hpp"
#include "keylog/detector.hpp"
#include "keylog/typist.hpp"
#include "keylog/words.hpp"
#include "support/error.hpp"

namespace emsc::core {

/** Keylogging run options. */
struct KeyloggingOptions
{
    /** Number of random words to type (the paper types 1000; the
     *  default keeps bench runtimes sensible — see DESIGN.md). */
    std::size_t words = 60;
    /** Explicit text; overrides `words` when non-empty. */
    std::string text;
    /** Master seed. */
    std::uint64_t seed = 3;
    /** Typist behaviour. */
    keylog::TypistParams typist;
    /** Detector configuration. */
    keylog::DetectorConfig detector;
    /** Word grouping configuration. */
    keylog::WordGroupingConfig grouping;
    /** Mean rate of browser housekeeping bursts (false-positive source). */
    double browserBurstRate = 1.2;
    /** Capture chunk length (seconds). */
    double chunkSeconds = 2.0;
    /**
     * Carrier handling: 0 = estimate from the first chunk's spectrum;
     * otherwise the known band for the device (§V-C: "the band is
     * typically known for each device").
     */
    double carrierHintHz = 0.0;
};

/** Keylogging run outcome (Table IV row). */
struct KeyloggingResult
{
    keylog::CharAccuracy chars;
    keylog::WordAccuracy words;
    /** Carrier used by the detector. */
    double carrierHz = 0.0;
    /** Ground truth keystroke count. */
    std::size_t keystrokes = 0;
    /** Typing session length (seconds). */
    double sessionSeconds = 0.0;
    /** Detected keystrokes (for inspection / Fig. 11-style output). */
    std::vector<keylog::DetectedKeystroke> detections;
    /** Ground-truth keystrokes. */
    std::vector<keylog::Keystroke> truth;
    /** The typed text. */
    std::string text;
    /** Detector window energies (a coarse Fig. 11 time series). */
    std::vector<double> windowEnergy;
    double windowSeconds = 0.0;
    /** Set when the session stopped on a recoverable error. */
    std::optional<Error> failure;

    /** Whether the session completed without a recoverable error. */
    bool ok() const { return !failure.has_value(); }
};

/** Run one keylogging session end to end. */
KeyloggingResult runKeylogging(const DeviceProfile &device,
                               const MeasurementSetup &setup,
                               const KeyloggingOptions &options);

} // namespace emsc::core

#endif // EMSC_CORE_KEYLOGGING_HPP
