/**
 * @file
 * Target-device profiles (Table I).
 *
 * The paper evaluates six laptops from five vendors spanning Ivy
 * Bridge to Coffee Lake and three OS families. A DeviceProfile bundles
 * everything the simulation needs to stand in for one machine: OS
 * timing behaviour, CPU power/state tables, the VRM's switching
 * parameters, and the EM coupling strength of its board layout.
 * Values are calibrated so each simulated laptop reproduces its
 * paper-reported behaviour (UNIX-class timer precision vs. Windows
 * Sleep(), per-device SNR/jitter); the receiver never reads them.
 */

#ifndef EMSC_CORE_DEVICE_HPP
#define EMSC_CORE_DEVICE_HPP

#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "cpu/os.hpp"
#include "vrm/buck.hpp"

namespace emsc::core {

/** Everything that defines one target machine. */
struct DeviceProfile
{
    std::string name;
    std::string osName;
    std::string archName;

    cpu::OsConfig os;
    cpu::CoreConfig core;
    vrm::BuckConfig buck;

    /** Board-layout EM coupling (antenna units per ampere at 10 cm). */
    double emitterCoupling = 0.08;

    /** SLEEP_PERIOD used for this device's Table II row (us). */
    double defaultSleepUs = 100.0;
};

/** The six Table I laptops. */
std::vector<DeviceProfile> table1Devices();

/** Look up a Table I device by (partial) name. */
const DeviceProfile &findDevice(const std::string &name);

/** The distance/NLoS reference machine (DELL Inspiron, Table III). */
DeviceProfile referenceDevice();

} // namespace emsc::core

#endif // EMSC_CORE_DEVICE_HPP
