#include "core/device.hpp"

#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::core {

namespace {

DeviceProfile
baseUnixDevice()
{
    DeviceProfile d;
    d.os = cpu::makeUnixOsConfig();
    d.core = cpu::CoreConfig{};
    d.buck = vrm::BuckConfig{};
    return d;
}

DeviceProfile
baseWindowsDevice()
{
    DeviceProfile d;
    d.os = cpu::makeWindowsOsConfig();
    d.core = cpu::CoreConfig{};
    d.buck = vrm::BuckConfig{};
    d.defaultSleepUs = 500.0;
    return d;
}

} // namespace

std::vector<DeviceProfile>
table1Devices()
{
    std::vector<DeviceProfile> out;

    {
        // Dell Precision 7290 / Windows 10 / Kaby Lake. Windows Sleep
        // granularity caps the rate near 1 kbps; clean board -> low BER.
        DeviceProfile d = baseWindowsDevice();
        d.name = "DELL Precision";
        d.osName = "Windows 10";
        d.archName = "Kaby Lake";
        d.buck.switchFrequency = 820e3;
        d.buck.frequencyErrorPpm = 1400.0;
        d.emitterCoupling = 0.10;
        out.push_back(d);
    }
    {
        // MacBookPro 2015 / macOS Mojave / Broadwell. Very precise
        // usleep (highest TR) but a noisier/weaker emission path
        // (denser board) -> the highest BER of the set.
        DeviceProfile d = baseUnixDevice();
        d.name = "MacBookPro (2015)";
        d.osName = "macOS (Mojave)";
        d.archName = "Broadwell";
        d.os.overshootCoreSigma = 2 * kMicrosecond;
        d.os.overshootTailMean = 1500; // 1.5 us
        d.buck.switchFrequency = 540e3;
        d.buck.frequencyErrorPpm = -900.0;
        d.emitterCoupling = 0.006;
        out.push_back(d);
    }
    {
        // Dell Inspiron 15-3537 / Debian / Haswell: the paper's
        // workhorse (Figs. 2-8, Table III). 970 kHz VRM.
        DeviceProfile d = baseUnixDevice();
        d.name = "DELL Inspiron";
        d.osName = "Linux (Debian)";
        d.archName = "Haswell";
        d.os.overshootCoreSigma = 6 * kMicrosecond;
        d.os.overshootTailMean = 7 * kMicrosecond;
        d.buck.switchFrequency = 970e3;
        d.buck.frequencyErrorPpm = 600.0;
        d.emitterCoupling = 0.08;
        out.push_back(d);
    }
    {
        // MacBookPro 2018 / macOS Mojave / Coffee Lake.
        DeviceProfile d = baseUnixDevice();
        d.name = "MacBookPro (2018)";
        d.osName = "macOS (Mojave)";
        d.archName = "Coffee Lake";
        d.os.overshootCoreSigma = 2 * kMicrosecond;
        d.os.overshootTailMean = 2 * kMicrosecond;
        d.buck.switchFrequency = 610e3;
        d.buck.frequencyErrorPpm = 300.0;
        d.emitterCoupling = 0.009;
        out.push_back(d);
    }
    {
        // Lenovo Thinkpad / Ubuntu / Skylake.
        DeviceProfile d = baseUnixDevice();
        d.name = "Lenovo Thinkpad";
        d.osName = "Linux (Ubuntu)";
        d.archName = "SkyLake";
        d.os.overshootCoreSigma = 7 * kMicrosecond;
        d.os.overshootTailMean = 9 * kMicrosecond;
        d.buck.switchFrequency = 750e3;
        d.buck.frequencyErrorPpm = -400.0;
        d.emitterCoupling = 0.0075;
        out.push_back(d);
    }
    {
        // Sony Ultrabook / Windows 8 / Ivy Bridge.
        DeviceProfile d = baseWindowsDevice();
        d.name = "Sony Ultrabook";
        d.osName = "Windows 8";
        d.archName = "Ivy Bridge";
        d.os.overshootCoreSigma = 50 * kMicrosecond;
        d.os.overshootTailMean = 70 * kMicrosecond;
        d.buck.switchFrequency = 430e3;
        d.buck.frequencyErrorPpm = 2100.0;
        d.emitterCoupling = 0.095;
        out.push_back(d);
    }
    return out;
}

const DeviceProfile &
findDevice(const std::string &name)
{
    static const std::vector<DeviceProfile> devices = table1Devices();
    for (const DeviceProfile &d : devices)
        if (d.name.find(name) != std::string::npos)
            return d;
    raiseError(ErrorKind::InvalidConfig, "unknown device '%s'",
               name.c_str());
}

DeviceProfile
referenceDevice()
{
    return findDevice("DELL Inspiron");
}

} // namespace emsc::core
