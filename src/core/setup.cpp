#include "core/setup.hpp"

#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::core {

MeasurementSetup
nearFieldSetup()
{
    MeasurementSetup s;
    s.name = "near-field (coil probe, 10 cm)";
    s.path.distanceMeters = 0.1;
    s.path.referenceMeters = 0.1;
    s.antenna = em::makeCoilProbe();
    s.environment = em::officeEnvironment();
    return s;
}

MeasurementSetup
distanceSetup(double meters)
{
    if (meters <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "distance must be positive, got %g m", meters);
    MeasurementSetup s;
    s.name = "LoS " + std::to_string(meters) + " m (loop antenna)";
    s.path.distanceMeters = meters;
    s.path.referenceMeters = 0.1;
    s.antenna = em::makeLoopAntenna();
    s.environment = em::officeEnvironment();
    return s;
}

MeasurementSetup
throughWallSetup()
{
    MeasurementSetup s = distanceSetup(1.5);
    s.name = "NLoS 1.5 m through 35 cm wall (loop antenna)";
    s.path.wallAttenuationDb = 8.0;
    s.environment = em::twoRoomEnvironment();
    return s;
}

em::SceneConfig
makeScene(double emitter_coupling, const MeasurementSetup &setup)
{
    em::SceneConfig scene;
    scene.emitterCoupling = emitter_coupling;
    scene.path = setup.path;
    scene.antenna = setup.antenna;
    scene.environment = setup.environment;
    return scene;
}

} // namespace emsc::core
