/**
 * @file
 * End-to-end website-fingerprinting experiment (§III attack (ii)(b)).
 *
 * The attacker first profiles known sites on a reference machine of
 * the same model (training), then watches the victim's EM envelope and
 * classifies each observed page load. Everything runs through the same
 * CPU/VRM/EM/SDR chain as the covert channel.
 */

#ifndef EMSC_CORE_FINGERPRINTING_HPP
#define EMSC_CORE_FINGERPRINTING_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "core/setup.hpp"
#include "fingerprint/classifier.hpp"
#include "fingerprint/profile.hpp"
#include "support/error.hpp"

namespace emsc::core {

/** Fingerprinting run options. */
struct FingerprintingOptions
{
    /** Training loads per site (attacker's reference machine). */
    std::size_t trainPerSite = 4;
    /** Test loads per site (observations of the victim). */
    std::size_t testPerSite = 3;
    std::uint64_t seed = 5;
    /** Site catalogue; empty = builtinWebsites(). */
    std::vector<fingerprint::WebsiteProfile> sites;
};

/** One classified observation. */
struct FingerprintTrial
{
    std::string truth;
    std::string predicted;
};

/** Fingerprinting outcome. */
struct FingerprintingResult
{
    std::vector<FingerprintTrial> trials;
    std::size_t correct = 0;
    /** Set when the experiment stopped on a recoverable error. */
    std::optional<Error> failure;

    /** Whether the experiment completed without a recoverable error. */
    bool ok() const { return !failure.has_value(); }

    double
    accuracy() const
    {
        return trials.empty()
                   ? 0.0
                   : static_cast<double>(correct) /
                         static_cast<double>(trials.size());
    }
};

/**
 * Capture one page load of `site` on the device/setup and return its
 * feature vector (exposed for tests and examples).
 */
fingerprint::Features
captureLoadFeatures(const DeviceProfile &device,
                    const MeasurementSetup &setup,
                    const fingerprint::WebsiteProfile &site,
                    std::uint64_t seed);

/** Run the full train/test experiment. */
FingerprintingResult
runWebsiteFingerprinting(const DeviceProfile &device,
                         const MeasurementSetup &setup,
                         const FingerprintingOptions &options);

} // namespace emsc::core

#endif // EMSC_CORE_FINGERPRINTING_HPP
