#include "core/trial_runner.hpp"

namespace emsc::core {

TrialRunner::TrialRunner(std::uint64_t master_seed) : master(master_seed)
{
}

std::uint64_t
TrialRunner::trialSeed(std::size_t trial) const
{
    return deriveSeed(master, trial);
}

std::vector<std::uint64_t>
chainedSeeds(std::uint64_t seed, std::size_t count, std::uint64_t mult,
             std::uint64_t add)
{
    std::vector<std::uint64_t> seeds(count);
    for (std::size_t i = 0; i < count; ++i) {
        seed = seed * mult + add;
        seeds[i] = seed;
    }
    return seeds;
}

} // namespace emsc::core
