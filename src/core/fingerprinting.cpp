#include "core/fingerprinting.hpp"

#include <algorithm>

#include "channel/acquisition.hpp"
#include "cpu/core.hpp"
#include "cpu/os.hpp"
#include "sdr/rtlsdr.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "vrm/pmu.hpp"

namespace emsc::core {

namespace {

/** Idle lead-in before the navigation starts. */
constexpr TimeNs kLeadIn = 200 * kMillisecond;

/**
 * Schedule the CPU work of one realised load phase: duty-cycled work
 * slices, as a browser's renderer and script threads produce.
 */
void
schedulePhase(sim::EventKernel &kernel, cpu::OsModel &os,
              const fingerprint::RealizedPhase &phase)
{
    if (phase.duty <= 0.01)
        return;
    double freq = os.cpu().config().pstates.fastest().frequency;
    constexpr TimeNs kSlice = 4 * kMillisecond;
    for (TimeNs t = phase.start; t < phase.start + phase.duration;
         t += kSlice) {
        auto busy = static_cast<std::uint64_t>(
            phase.duty * toSeconds(kSlice) * freq);
        if (busy == 0)
            continue;
        kernel.scheduleAt(t, [&os, busy] { os.injectBurst(busy); });
    }
}

} // namespace

fingerprint::Features
captureLoadFeatures(const DeviceProfile &device,
                    const MeasurementSetup &setup,
                    const fingerprint::WebsiteProfile &site,
                    std::uint64_t seed)
{
    Rng master(seed);
    Rng rng_load = master.fork();
    Rng rng_os = master.fork();
    Rng rng_vrm = master.fork();
    Rng rng_em = master.fork();
    Rng rng_sdr = master.fork();

    sim::EventKernel kernel;
    cpu::CpuCore core(kernel, device.core);
    cpu::OsModel os(kernel, core, device.os, rng_os);

    auto phases = fingerprint::realizeLoad(site, kLeadIn, rng_load);
    TimeNs end = phases.back().start + phases.back().duration +
                 300 * kMillisecond;
    for (const auto &phase : phases)
        schedulePhase(kernel, os, phase);
    os.startBackgroundActivity(end);
    kernel.runUntil(end);

    vrm::Pmu pmu(core, device.buck, rng_vrm);
    auto events = pmu.switchingEvents(0, end);
    em::SceneConfig scene = makeScene(device.emitterCoupling, setup);
    em::ReceptionPlan plan =
        em::buildReceptionPlan(scene, events, 0, end, rng_em);

    sdr::SdrConfig sc;
    sc.centerFrequency = 1.5 * device.buck.switchFrequency;
    sdr::RtlSdr radio(sc, rng_sdr);
    sdr::IqCapture cap = radio.capture(plan, 0, end);

    // The attacker knows the device class's VRM band (§V-C).
    channel::AcquisitionConfig acq;
    channel::AcquiredSignal sig =
        channel::acquire(cap, acq, device.buck.switchFrequency);
    return fingerprint::extractFeatures(sig);
}

namespace {

/** Body of runWebsiteFingerprinting; may throw RecoverableError. */
FingerprintingResult
runWebsiteFingerprintingImpl(const DeviceProfile &device,
                             const MeasurementSetup &setup,
                             const FingerprintingOptions &options)
{
    std::vector<fingerprint::WebsiteProfile> sites =
        options.sites.empty() ? fingerprint::builtinWebsites()
                              : options.sites;
    if (sites.empty())
        raiseError(ErrorKind::InsufficientData,
                   "website fingerprinting needs at least one site "
                   "profile");

    fingerprint::WebsiteClassifier classifier;
    std::uint64_t seq = options.seed * 1000003ull;

    for (const auto &site : sites)
        for (std::size_t k = 0; k < options.trainPerSite; ++k)
            classifier.addExample(
                site.name,
                captureLoadFeatures(device, setup, site, seq++));
    classifier.finalize();

    FingerprintingResult result;
    for (const auto &site : sites) {
        for (std::size_t k = 0; k < options.testPerSite; ++k) {
            fingerprint::Features f =
                captureLoadFeatures(device, setup, site, seq++);
            FingerprintTrial trial;
            trial.truth = site.name;
            trial.predicted = classifier.classify(f);
            result.correct += trial.predicted == trial.truth;
            result.trials.push_back(trial);
        }
    }
    return result;
}

} // namespace

FingerprintingResult
runWebsiteFingerprinting(const DeviceProfile &device,
                         const MeasurementSetup &setup,
                         const FingerprintingOptions &options)
{
    try {
        return runWebsiteFingerprintingImpl(device, setup, options);
    } catch (const RecoverableError &e) {
        FingerprintingResult result;
        result.failure = e.toError();
        return result;
    }
}

} // namespace emsc::core
