/**
 * @file
 * Parallel Monte-Carlo trial execution with serial-identical results.
 *
 * Every paper table/figure averages (or takes the median of) several
 * independent covert-channel or keylogging runs per cell, and sweeps
 * such cells over devices, distances, and rates. Each trial is a pure
 * function of its seed, so the sweep fans out across cores via
 * parallelFor while each result lands in its trial's slot — the
 * returned vector is bit-identical to running the same seeds in a
 * serial loop (EMSC_THREADS=1 *is* that serial loop).
 *
 * Two seeding modes:
 *  - TrialRunner(master).run(n, fn): per-trial seeds come from
 *    deriveSeed(master, trial) — the preferred map for new code.
 *  - runSeeded(seeds, fn): explicit per-trial seeds, for callers that
 *    must reproduce a legacy serial seed chain exactly.
 *
 * Both have *Checked variants that catch a trial's RecoverableError
 * into a failed Result slot, so one degenerate trial (a capture too
 * noisy to analyse, say) never kills a whole sweep.
 */

#ifndef EMSC_CORE_TRIAL_RUNNER_HPP
#define EMSC_CORE_TRIAL_RUNNER_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace emsc::core {

namespace detail {

/** Per-trial telemetry shared by every TrialRunner entry point. */
inline const telemetry::Counter &
trialCounter()
{
    static telemetry::Counter trials(
        telemetry::MetricsRegistry::global(), "core.trials");
    return trials;
}

} // namespace detail

/** Fans independent experiment trials out across the worker pool. */
class TrialRunner
{
  public:
    /** @param master_seed  root of the per-trial seed derivation */
    explicit TrialRunner(std::uint64_t master_seed);

    /** Deterministic seed for one trial index. */
    std::uint64_t trialSeed(std::size_t trial) const;

    /** The master seed this runner derives from. */
    std::uint64_t masterSeed() const { return master; }

    /**
     * Run fn(trial, seed) for trial in [0, trials), in parallel, and
     * return the results in trial order. fn must be a pure function of
     * its arguments (no shared mutable state) — then the output is
     * bit-identical for any thread count.
     */
    template <typename R, typename Fn>
    std::vector<R>
    run(std::size_t trials, Fn &&fn) const
    {
        std::vector<R> out(trials);
        parallelFor(trials, [&](std::size_t i) {
            telemetry::TraceSpan span("core.trial");
            detail::trialCounter().add();
            out[i] = fn(i, trialSeed(i));
        });
        return out;
    }

    /**
     * Run fn(trial, seeds[trial]) with caller-supplied seeds, one trial
     * per seed. Lets benches keep their historical serial seed chains
     * (precomputed up front) while still executing in parallel.
     */
    template <typename R, typename Fn>
    static std::vector<R>
    runSeeded(const std::vector<std::uint64_t> &seeds, Fn &&fn)
    {
        std::vector<R> out(seeds.size());
        parallelFor(seeds.size(), [&](std::size_t i) {
            telemetry::TraceSpan span("core.trial");
            detail::trialCounter().add();
            out[i] = fn(i, seeds[i]);
        });
        return out;
    }

    /**
     * Like run(), but a trial that throws RecoverableError records a
     * failed Result in its slot instead of aborting the sweep: the
     * other trials still run, and the caller inspects which failed.
     * Non-recoverable exceptions (bugs) still propagate.
     */
    template <typename R, typename Fn>
    std::vector<Result<R>>
    runChecked(std::size_t trials, Fn &&fn) const
    {
        // Result<R> has no default state, so trials land in optional
        // slots (each written exactly once) and are unwrapped after.
        std::vector<std::optional<Result<R>>> slots(trials);
        parallelFor(trials, [&](std::size_t i) {
            telemetry::TraceSpan span("core.trial");
            detail::trialCounter().add();
            slots[i] = attempt([&] { return fn(i, trialSeed(i)); });
        });
        std::vector<Result<R>> out;
        out.reserve(trials);
        for (auto &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

    /** runSeeded() with the per-trial failure recording of runChecked(). */
    template <typename R, typename Fn>
    static std::vector<Result<R>>
    runSeededChecked(const std::vector<std::uint64_t> &seeds, Fn &&fn)
    {
        std::vector<std::optional<Result<R>>> slots(seeds.size());
        parallelFor(seeds.size(), [&](std::size_t i) {
            telemetry::TraceSpan span("core.trial");
            detail::trialCounter().add();
            slots[i] = attempt([&] { return fn(i, seeds[i]); });
        });
        std::vector<Result<R>> out;
        out.reserve(seeds.size());
        for (auto &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

  private:
    std::uint64_t master;
};

/**
 * The seed schedule the serial benches have always used: repeated
 * application of seed = seed * mult + add, collected into a vector so
 * the trials can run in any order yet see the same seeds.
 */
std::vector<std::uint64_t> chainedSeeds(std::uint64_t seed,
                                        std::size_t count,
                                        std::uint64_t mult,
                                        std::uint64_t add);

} // namespace emsc::core

#endif // EMSC_CORE_TRIAL_RUNNER_HPP
