/**
 * @file
 * Processor performance (P) and idle (C) state descriptions.
 *
 * Mirrors the Intel model described in §II: P-states are
 * voltage/frequency operating points for the active processor
 * (P0 = fastest); C-states are idle levels of increasing clock/power
 * gating (C0 = executing). The tables here drive both the power model
 * (load current seen by the VRM) and the governors.
 */

#ifndef EMSC_CPU_STATES_HPP
#define EMSC_CPU_STATES_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace emsc::cpu {

/** One performance operating point. */
struct PState
{
    /** State index; 0 is the highest-performance state. */
    int index = 0;
    /** Core clock frequency at this state. */
    Hertz frequency = 0.0;
    /** Supply voltage requested from the VRM at this state. */
    Volts voltage = 0.0;
};

/** One idle level. */
struct CState
{
    /** State index; 0 means "executing instructions". */
    int index = 0;
    /** Conventional name (C0, C1, C3, C6, ...). */
    std::string name;
    /** Time to resume execution when leaving this state. */
    TimeNs exitLatency = 0;
    /**
     * Minimum idle duration for which entering this state pays off;
     * the menu-style governor will not pick it for shorter idles.
     */
    TimeNs targetResidency = 0;
    /** Load current drawn from the VRM while parked in this state. */
    Amps idleCurrent = 0.0;
};

/** Ordered collection of P-states (index 0 first). */
struct PStateTable
{
    std::vector<PState> states;

    const PState &fastest() const { return states.front(); }
    const PState &slowest() const { return states.back(); }
    const PState &at(std::size_t i) const { return states[i]; }
    std::size_t size() const { return states.size(); }
};

/** Ordered collection of C-states (C0 first, deepest last). */
struct CStateTable
{
    std::vector<CState> states;

    const CState &c0() const { return states.front(); }
    const CState &deepest() const { return states.back(); }
    const CState &at(std::size_t i) const { return states[i]; }
    std::size_t size() const { return states.size(); }
};

/**
 * A representative laptop-class P-state table: 2.8 GHz @ 1.05 V down
 * to 800 MHz @ 0.72 V in roughly equal steps.
 */
PStateTable defaultPStates();

/**
 * A representative C-state table: C1/C1E (clock gating), C3, C6/C7
 * (voltage reduction and power gating) with realistic exit latencies.
 */
CStateTable defaultCStates();

} // namespace emsc::cpu

#endif // EMSC_CPU_STATES_HPP
