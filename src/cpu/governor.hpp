/**
 * @file
 * Power-management policies: P-state and C-state selection.
 *
 * The P-state governor models Speed-Shift-like hardware control: the
 * operating point ramps toward P0 shortly after work arrives and falls
 * back to the most efficient state when the core goes idle. The
 * C-state governor models a menu-like policy: given a prediction of
 * how long the core will stay idle, choose the deepest state whose
 * target residency fits (§II). The actual vendor algorithms are not
 * public; these capture the behaviour the side channel depends on —
 * that idleness reliably reaches a low-current state and activity a
 * high-current one.
 */

#ifndef EMSC_CPU_GOVERNOR_HPP
#define EMSC_CPU_GOVERNOR_HPP

#include <cstddef>

#include "cpu/states.hpp"

namespace emsc::cpu {

/**
 * Hardware-P-state style frequency selection.
 */
class PStateGovernor
{
  public:
    struct Params
    {
        /** Delay from work arrival to reaching the fastest state. */
        TimeNs rampLatency = 30 * kMicrosecond;
        /** Whether DVFS is enabled at all (BIOS switch, §III). */
        bool enabled = true;
    };

    PStateGovernor(const PStateTable &table, const Params &params)
        : table(table), p(params)
    {
    }

    /**
     * State used immediately when work starts after an idle period
     * (before the ramp completes): the most efficient state, or the
     * fastest when DVFS is disabled (the core is pinned at nominal).
     */
    const PState &initialOnWake() const;

    /** State reached once the ramp latency has elapsed under load. */
    const PState &sustained() const { return table.fastest(); }

    /** State while the OS idle loop runs (C-states disabled case). */
    const PState &idleLoopState() const;

    /** Ramp delay before sustained() applies. */
    TimeNs rampLatency() const { return p.enabled ? p.rampLatency : 0; }

    bool enabled() const { return p.enabled; }

  private:
    const PStateTable &table;
    Params p;
};

/**
 * Menu-governor style C-state selection from predicted idle duration.
 */
class CStateGovernor
{
  public:
    struct Params
    {
        /** Whether C-states are enabled (BIOS switch, §III). */
        bool enabled = true;
        /**
         * Safety factor applied to the prediction: a state is chosen
         * only if predicted_idle >= margin * targetResidency.
         */
        double residencyMargin = 1.0;
    };

    CStateGovernor(const CStateTable &table, const Params &params)
        : table(table), p(params)
    {
    }

    /**
     * Pick the C-state for an idle period predicted to last
     * `predicted_idle` ns. Returns C0 (index 0 in the table) when
     * C-states are disabled — the caller then runs the OS idle loop.
     */
    const CState &select(TimeNs predicted_idle) const;

    bool enabled() const { return p.enabled; }

  private:
    const CStateTable &table;
    Params p;
};

} // namespace emsc::cpu

#endif // EMSC_CPU_GOVERNOR_HPP
