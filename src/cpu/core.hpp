/**
 * @file
 * Single-core execution engine with P-/C-state behaviour.
 *
 * The core executes submitted work items (measured in cycles) FIFO on
 * the event kernel, transitioning between active execution (C0 at a
 * governor-chosen P-state) and idleness (a governor-chosen C-state, or
 * the OS idle loop when C-states are disabled). Every transition is
 * recorded on a load-current timeline — the exact signal the VRM, and
 * therefore the EM side channel, reacts to.
 */

#ifndef EMSC_CPU_CORE_HPP
#define EMSC_CPU_CORE_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "cpu/governor.hpp"
#include "cpu/power.hpp"
#include "cpu/states.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace emsc::cpu {

/** Aggregate configuration for a core. */
struct CoreConfig
{
    PStateTable pstates = defaultPStates();
    CStateTable cstates = defaultCStates();
    PowerModel::Params power;
    PStateGovernor::Params pgov;
    CStateGovernor::Params cgov;
    /**
     * If the core became idle less than this long ago, a fresh wake
     * resumes directly at the sustained P-state (models Speed-Shift's
     * short-term memory of the load level).
     */
    TimeNs pstateStickyWindow = 500 * kMicrosecond;
};

/**
 * The simulated core.
 */
class CpuCore
{
  public:
    using WorkDone = std::function<void()>;

    CpuCore(sim::EventKernel &kernel, const CoreConfig &config);

    CpuCore(const CpuCore &) = delete;
    CpuCore &operator=(const CpuCore &) = delete;

    /**
     * Enqueue a work item of the given cycle count; `done` fires on the
     * kernel when the item completes. Items run FIFO.
     */
    void submit(std::uint64_t cycles, WorkDone done);

    /**
     * Tell the idle-entry path when the next timer wakeup is expected;
     * the C-state governor uses (hint - now) as its idle prediction.
     */
    void hintNextWake(TimeNs when) { nextWakeHint = when; }

    /** Whether the core currently has work (running or queued). */
    bool busy() const { return running || !queue.empty(); }

    /** Load current drawn from the VRM over time. */
    const sim::Timeline<double> &currentTrace() const { return current; }

    /** C-state index over time (0 while executing / idle-looping). */
    const sim::Timeline<int> &cstateTrace() const { return cstates; }

    /** P-state index over time. */
    const sim::Timeline<int> &pstateTrace() const { return pstates; }

    /** Busy (1) vs idle (0) over time. */
    const sim::Timeline<int> &busyTrace() const { return busyTl; }

    /** Fraction of [t0, t1) spent executing work. */
    double utilization(TimeNs t0, TimeNs t1) const;

    /** Total cycles retired so far. */
    std::uint64_t cyclesRetired() const { return retired; }

    const CoreConfig &config() const { return cfg; }

  private:
    struct WorkItem
    {
        std::uint64_t cycles;
        WorkDone done;
    };

    void startNext();
    void finishCurrent();
    void enterIdle();
    void beginWake();
    void applyPState(const PState &ps);
    void onRampComplete();
    void rescheduleCompletion();
    void recordCurrent(Amps amps);

    sim::EventKernel &kernel;
    CoreConfig cfg;
    PowerModel power;
    PStateGovernor pgovernor;
    CStateGovernor cgovernor;

    std::deque<WorkItem> queue;
    bool running = false;       //!< a work item is executing now
    bool waking = false;        //!< C-state exit latency in progress
    std::uint64_t remainingCycles = 0;
    TimeNs segmentStart = 0;    //!< when the current run segment began
    const PState *pstate = nullptr;
    const CState *cstate = nullptr; //!< nullptr while in C0
    sim::EventId completionEvent = 0;
    sim::EventId rampEvent = 0;
    bool rampPending = false;
    TimeNs nextWakeHint = 0;
    TimeNs lastBusyEnd = -(1 << 30);
    std::uint64_t retired = 0;

    sim::Timeline<double> current{0.0};
    sim::Timeline<int> cstates{0};
    sim::Timeline<int> pstates{0};
    sim::Timeline<int> busyTl{0};
};

} // namespace emsc::cpu

#endif // EMSC_CPU_CORE_HPP
