#include "cpu/power.hpp"

#include "support/logging.hpp"

namespace emsc::cpu {

Amps
PowerModel::activeCurrent(const PState &pstate, ActivityClass activity) const
{
    if (activity == ActivityClass::Sleeping)
        panic("activeCurrent queried for a sleeping core");

    double alpha = activity == ActivityClass::Working ? p.workActivity
                                                      : p.idleLoopActivity;
    // Dynamic power C * V^2 * f * alpha, leakage scaling ~ V^2 (a
    // reasonable fit for subthreshold + gate leakage over small ranges),
    // divided by V to yield current.
    double v = pstate.voltage;
    Watts dynamic = p.dynCapacitance * v * v * pstate.frequency * alpha;
    double vr = v / p.nominalVoltage;
    Amps leak = p.leakageNominal * vr * vr;
    return dynamic / v + leak;
}

} // namespace emsc::cpu
