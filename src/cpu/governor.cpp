#include "cpu/governor.hpp"

namespace emsc::cpu {

const PState &
PStateGovernor::initialOnWake() const
{
    return p.enabled ? table.slowest() : table.fastest();
}

const PState &
PStateGovernor::idleLoopState() const
{
    // The OS knows the idle loop is not useful utilisation, so with
    // DVFS enabled it parks the clock at the most efficient point;
    // with DVFS disabled the core is pinned at nominal.
    return p.enabled ? table.slowest() : table.fastest();
}

const CState &
CStateGovernor::select(TimeNs predicted_idle) const
{
    if (!p.enabled)
        return table.c0();

    const CState *best = &table.c0();
    for (const CState &s : table.states) {
        if (s.index == 0)
            continue;
        auto need = static_cast<TimeNs>(p.residencyMargin *
                                        static_cast<double>(s.targetResidency));
        if (predicted_idle >= need)
            best = &s;
    }
    // Always at least clock-gate when C-states are available: even a
    // zero-length prediction enters C1 (this matches hardware, where
    // HLT immediately clock-gates).
    if (best->index == 0 && table.size() > 1)
        best = &table.at(1);
    return *best;
}

} // namespace emsc::cpu
