#include "cpu/states.hpp"

namespace emsc::cpu {

PStateTable
defaultPStates()
{
    PStateTable t;
    // (frequency GHz, voltage V) pairs loosely modelled on a mobile
    // Intel part: voltage scales roughly linearly with frequency.
    const double freqs[] = {2.8e9, 2.4e9, 2.0e9, 1.6e9, 1.2e9, 0.8e9};
    const double volts[] = {1.05, 0.98, 0.91, 0.85, 0.78, 0.72};
    for (int i = 0; i < 6; ++i)
        t.states.push_back(PState{i, freqs[i], volts[i]});
    return t;
}

CStateTable
defaultCStates()
{
    CStateTable t;
    t.states.push_back(CState{0, "C0", 0, 0, 0.0});
    t.states.push_back(
        CState{1, "C1", 2 * kMicrosecond, 2 * kMicrosecond, 1.8});
    t.states.push_back(
        CState{3, "C3", 30 * kMicrosecond, 60 * kMicrosecond, 0.7});
    t.states.push_back(
        CState{6, "C6", 90 * kMicrosecond, 300 * kMicrosecond, 0.12});
    return t;
}

} // namespace emsc::cpu
