/**
 * @file
 * Load-current model: what the core asks of its voltage regulator.
 *
 * The side channel exists because active and idle states draw very
 * different currents from the VRM (§II). The model combines switching
 * power C_dyn * V^2 * f * alpha with voltage-dependent leakage, then
 * converts watts to amps at the operating voltage. C-state residency
 * overrides the dynamic term with the state's parked current.
 */

#ifndef EMSC_CPU_POWER_HPP
#define EMSC_CPU_POWER_HPP

#include "cpu/states.hpp"
#include "support/types.hpp"

namespace emsc::cpu {

/** What kind of code (if any) the core is running. */
enum class ActivityClass
{
    /** Parked in a C-state (no instruction execution). */
    Sleeping,
    /**
     * The OS idle loop: spinning without useful work. Only occurs when
     * C-states are disabled in the BIOS (§III footnote 2).
     */
    IdleLoop,
    /** Executing a workload at full tilt (busy loop, app code). */
    Working,
};

/**
 * Converts an execution condition to the instantaneous current drawn
 * from the VRM.
 */
class PowerModel
{
  public:
    struct Params
    {
        /** Effective switched capacitance (farads), sets dynamic power. */
        double dynCapacitance = 4.5e-9;
        /** Activity factor while running real work. */
        double workActivity = 1.0;
        /** Activity factor of the OS idle spin loop. */
        double idleLoopActivity = 0.55;
        /** Leakage current at nominal voltage (amps). */
        Amps leakageNominal = 0.9;
        /** Nominal voltage at which leakageNominal is specified. */
        Volts nominalVoltage = 1.05;
    };

    explicit PowerModel(const Params &params) : p(params) {}

    /**
     * Current drawn while executing in C0 at the given P-state.
     * @param activity Working or IdleLoop
     */
    Amps activeCurrent(const PState &pstate, ActivityClass activity) const;

    /** Current drawn while parked in the given C-state. */
    Amps
    sleepCurrent(const CState &cstate) const
    {
        return cstate.idleCurrent;
    }

    const Params &params() const { return p; }

  private:
    Params p;
};

} // namespace emsc::cpu

#endif // EMSC_CPU_POWER_HPP
