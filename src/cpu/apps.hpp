/**
 * @file
 * Canonical user-level workloads from the paper.
 *
 * AlternatingLoadApp is the Fig. 1 micro-benchmark: an infinite loop
 * that performs processor-intensive activity for t1, then idles for
 * t2. It is used in §III to demonstrate that power-state alternation
 * produces the strong/weak EM spike pattern of Fig. 2.
 */

#ifndef EMSC_CPU_APPS_HPP
#define EMSC_CPU_APPS_HPP

#include <cstdint>

#include "cpu/os.hpp"

namespace emsc::cpu {

/**
 * Fig. 1: while (1) { busy for t1; usleep(t2); }.
 */
class AlternatingLoadApp
{
  public:
    struct Params
    {
        /** Active-period length t1 (microseconds of busy work). */
        double activeUs = 200.0;
        /** Idle-period length t2 (microseconds of sleep). */
        double idleUs = 200.0;
    };

    AlternatingLoadApp(OsModel &os, const Params &params)
        : os(os), p(params)
    {
    }

    /** Start looping; the app runs until the kernel stops executing. */
    void
    start()
    {
        runActivePhase();
    }

    /** Number of completed active/idle iterations. */
    std::uint64_t iterations() const { return iters; }

  private:
    void
    runActivePhase()
    {
        // Convert the requested busy time to cycles at the sustained
        // clock, as a calibrated busy loop would.
        double freq = os.cpu().config().pstates.fastest().frequency;
        auto cycles =
            static_cast<std::uint64_t>(p.activeUs * 1e-6 * freq);
        os.runBusyCycles(std::max<std::uint64_t>(cycles, 1),
                         [this] { runIdlePhase(); });
    }

    void
    runIdlePhase()
    {
        os.sleepUs(p.idleUs, [this] {
            ++iters;
            runActivePhase();
        });
    }

    OsModel &os;
    Params p;
    std::uint64_t iters = 0;
};

} // namespace emsc::cpu

#endif // EMSC_CPU_APPS_HPP
