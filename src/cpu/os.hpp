/**
 * @file
 * Operating-system services relevant to the side channel.
 *
 * The covert channel's bit rate is limited by how precisely a
 * user-level process can control idleness (§IV-A): usleep() on
 * UNIX-like systems has microsecond granularity but is "lengthened
 * slightly" by system activity; Sleep() on Windows rounds to the
 * multimedia-timer period (0.5-1 ms). This model provides sleep with
 * calibrated granularity and positively skewed overshoot, syscall
 * overhead as real core work, and background activity (short interrupt
 * service bursts plus occasional longer bursts) that perturbs the
 * channel exactly the way §IV-B4 describes.
 */

#ifndef EMSC_CPU_OS_HPP
#define EMSC_CPU_OS_HPP

#include <cstdint>
#include <functional>

#include "cpu/core.hpp"
#include "sim/faults.hpp"
#include "sim/kernel.hpp"
#include "support/rng.hpp"

namespace emsc::cpu {

/** OS family, which determines sleep primitive behaviour. */
enum class OsFamily
{
    Linux,
    MacOs,
    Windows,
};

/** Tunable OS timing/activity parameters. */
struct OsConfig
{
    OsFamily family = OsFamily::Linux;

    /** Sleep requests round up to a multiple of this. */
    TimeNs timerGranularity = 1 * kMicrosecond;
    /** Gaussian core of the sleep overshoot (see Rng::skewedOvershoot). */
    TimeNs overshootCoreSigma = 4 * kMicrosecond;
    /** Exponential tail of the sleep overshoot. */
    TimeNs overshootTailMean = 3 * kMicrosecond;

    /** Cycles burned entering/exiting a sleep syscall + housekeeping. */
    std::uint64_t syscallCycles = 22000;
    /** Cycles burned servicing a routine interrupt. */
    std::uint64_t interruptCycles = 9000;

    /** Mean rate of short background service bursts (per second). */
    double backgroundBurstRate = 120.0;
    /** Cycle range of short background bursts. */
    std::uint64_t backgroundCyclesMin = 4000;
    std::uint64_t backgroundCyclesMax = 60000;

    /** Mean rate of long background bursts (per second). */
    double longBurstRate = 1.5;
    /**
     * Cycle range of long bursts. §IV-C2 observes that normal
     * background services produce "short bursts of activity ... smaller
     * than one sleep/active period"; ~50-150 us at nominal clock.
     */
    std::uint64_t longCyclesMin = 150000;
    std::uint64_t longCyclesMax = 400000;
};

/** A reasonable Linux/macOS timing profile. */
OsConfig makeUnixOsConfig();
/** A Windows profile: 0.5 ms multimedia-timer granularity. */
OsConfig makeWindowsOsConfig();

/**
 * The OS service layer bound to one core.
 */
class OsModel
{
  public:
    OsModel(sim::EventKernel &kernel, CpuCore &core, const OsConfig &config,
            Rng &rng);

    OsModel(const OsModel &) = delete;
    OsModel &operator=(const OsModel &) = delete;

    /**
     * Sleep for the requested microseconds (as usleep()/Sleep() would),
     * then run `wake` on the kernel. The actual duration is the request
     * rounded up to the timer granularity plus a positively skewed
     * overshoot; the syscall overhead is burned as core work before the
     * core can idle, and again at wakeup.
     */
    void sleepUs(double us, std::function<void()> wake);

    /** Run a busy loop of the given cycle count, then `done`. */
    void runBusyCycles(std::uint64_t cycles, std::function<void()> done);

    /**
     * Deliver an interrupt whose handler (plus downstream processing)
     * costs the given cycles. Used for keystrokes and device activity.
     */
    void injectBurst(std::uint64_t cycles);

    /**
     * Start generating background activity (short IRQ-like bursts and
     * occasional long bursts) until the given time.
     */
    void startBackgroundActivity(TimeNs until);

    /**
     * Scale background burst rates (1.0 = config values). Used to model
     * "resource-intensive background activity" (§IV-C2).
     */
    void setBackgroundIntensity(double scale);

    /**
     * Schedule scheduler-steal bursts from a fault plan's Preemption
     * events: at each event start a competing task occupies the core
     * for the event's duration (converted to cycles at the fastest
     * P-state), stretching whatever bit the transmitter is sending.
     * Events already in the past are skipped. Other fault kinds are
     * ignored here.
     */
    void schedulePreemptions(const sim::FaultPlan &faults);

    const OsConfig &config() const { return cfg; }
    CpuCore &cpu() { return core; }
    const CpuCore &cpu() const { return core; }

    /** Current simulation time (the system clock). */
    TimeNs now() const { return kernel.now(); }

  private:
    void scheduleNextBackground(bool long_burst, TimeNs until);

    sim::EventKernel &kernel;
    CpuCore &core;
    OsConfig cfg;
    Rng &rng;
    double intensity = 1.0;
};

} // namespace emsc::cpu

#endif // EMSC_CPU_OS_HPP
