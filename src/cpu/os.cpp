#include "cpu/os.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace emsc::cpu {

OsConfig
makeUnixOsConfig()
{
    return OsConfig{}; // defaults model Linux/macOS usleep behaviour
}

OsConfig
makeWindowsOsConfig()
{
    OsConfig cfg;
    cfg.family = OsFamily::Windows;
    // Sleep() with timeBeginPeriod(1) on a multimedia timer: requests
    // quantise to ~0.5 ms and overshoot substantially more than usleep.
    cfg.timerGranularity = 500 * kMicrosecond;
    cfg.overshootCoreSigma = 40 * kMicrosecond;
    cfg.overshootTailMean = 60 * kMicrosecond;
    cfg.syscallCycles = 40000;
    return cfg;
}

OsModel::OsModel(sim::EventKernel &kernel, CpuCore &core,
                 const OsConfig &config, Rng &rng)
    : kernel(kernel), core(core), cfg(config), rng(rng)
{
}

void
OsModel::sleepUs(double us, std::function<void()> wake)
{
    if (us <= 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "OsModel::sleepUs of a non-positive duration %g",
                   us);

    TimeNs requested = fromMicroseconds(us);
    TimeNs gran = std::max<TimeNs>(1, cfg.timerGranularity);
    TimeNs rounded = ((requested + gran - 1) / gran) * gran;
    auto overshoot = static_cast<TimeNs>(rng.skewedOvershoot(
        static_cast<double>(cfg.overshootCoreSigma),
        static_cast<double>(cfg.overshootTailMean)));
    TimeNs actual = rounded + overshoot;

    // The sleeping process first burns the syscall entry path, then the
    // core may idle until the timer fires; the timer interrupt burns
    // the exit path before the process-level callback runs.
    auto wake_shared =
        std::make_shared<std::function<void()>>(std::move(wake));
    core.submit(cfg.syscallCycles, [this, actual, wake_shared] {
        TimeNs due = kernel.now() + actual;
        core.hintNextWake(due);
        kernel.scheduleAt(due, [this, wake_shared] {
            core.submit(cfg.syscallCycles, [wake_shared] {
                (*wake_shared)();
            });
        });
    });
}

void
OsModel::runBusyCycles(std::uint64_t cycles, std::function<void()> done)
{
    core.submit(cycles, std::move(done));
}

void
OsModel::injectBurst(std::uint64_t cycles)
{
    core.submit(cfg.interruptCycles + cycles, nullptr);
}

void
OsModel::setBackgroundIntensity(double scale)
{
    if (scale < 0.0)
        raiseError(ErrorKind::InvalidConfig,
                   "background intensity must be non-negative, got %g",
                   scale);
    intensity = scale;
}

void
OsModel::schedulePreemptions(const sim::FaultPlan &faults)
{
    double clock = core.config().pstates.fastest().frequency;
    for (const sim::FaultEvent &e :
         faults.ofKind(sim::FaultKind::Preemption)) {
        if (e.start < kernel.now() || e.duration <= 0)
            continue;
        auto cycles = static_cast<std::uint64_t>(toSeconds(e.duration) *
                                                 clock);
        kernel.scheduleAt(e.start, [this, cycles] {
            core.submit(cfg.interruptCycles + cycles, nullptr);
        });
    }
}

void
OsModel::scheduleNextBackground(bool long_burst, TimeNs until)
{
    double rate = (long_burst ? cfg.longBurstRate
                              : cfg.backgroundBurstRate) *
                  intensity;
    if (rate <= 0.0)
        return;
    auto gap = static_cast<TimeNs>(
        fromSeconds(rng.exponential(1.0 / rate)));
    TimeNs when = kernel.now() + std::max<TimeNs>(gap, 1);
    if (when > until)
        return;

    kernel.scheduleAt(when, [this, long_burst, until] {
        std::uint64_t lo =
            long_burst ? cfg.longCyclesMin : cfg.backgroundCyclesMin;
        std::uint64_t hi =
            long_burst ? cfg.longCyclesMax : cfg.backgroundCyclesMax;
        auto cycles = static_cast<std::uint64_t>(rng.uniformInt(
            static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
        core.submit(cfg.interruptCycles + cycles, nullptr);
        scheduleNextBackground(long_burst, until);
    });
}

void
OsModel::startBackgroundActivity(TimeNs until)
{
    scheduleNextBackground(false, until);
    scheduleNextBackground(true, until);
}

} // namespace emsc::cpu
